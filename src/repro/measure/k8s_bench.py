"""Pod-to-pod measurement harness (paper Fig 9 and Table V).

The netperf TCP_RR workload between pod pairs:

- per-pair RTT is measured by driving real transactions through the
  simulated cluster (pods, veth, bridge, vxlan — and the TC fast paths when
  accelerated);
- multiple pairs run on separate cores (the paper's c6525-25g nodes have
  plenty), so aggregate throughput scales near-linearly with pairs, with a
  small contention loss;
- reported latency distributions add container-tail jitter calibrated to
  the paper's Table V shape (P99/mean ≈ 2, cv ≈ 0.2): a tight gamma body
  with occasional ~2× stalls (cgroup throttling / scheduling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional
from repro.k8s import Cluster
from repro.kernel.sockets import tcp_rr_server
from repro.measure.stats import Summary, summarize
from repro.netsim.addresses import ipv4
from repro.netsim.packet import IPPROTO_TCP, IPv4, TCP

PAIR_SCALING_LOSS = 0.012  # per-extra-pair efficiency loss
BODY_SHAPE = 40.0
TAIL_PROB = 0.02
TAIL_MULT = 2.2

# Containerized netperf RR (cgroups, CFS wakeups, softirq chains, TCP over
# loopback-like paths) costs ~3 orders of magnitude more per crossing than
# raw packet forwarding — the paper's pod RTTs are milliseconds. We scale
# every processing cost uniformly by this factor for the k8s experiments;
# uniform scaling leaves every Linux-vs-LinuxFP ratio invariant while
# matching the paper's absolute scale (Linux intra ≈ 9.7 ms).
CONTAINER_PATH_SCALE = 1900.0
_UNSCALED_FIELDS = {
    "line_rate_gbps",
    "framing_overhead_bytes",
    "wire_latency_ns",
    "app_rr_turnaround_ns",
    "vpp_vector_size",
}


def container_cost_model():
    """The uniformly-scaled cost model used for pod-to-pod experiments."""
    from repro.netsim.cost import CostModel

    costs = CostModel()
    for field_name, value in vars(costs).items():
        if field_name in _UNSCALED_FIELDS or not isinstance(value, float):
            continue
        setattr(costs, field_name, value * CONTAINER_PATH_SCALE)
    return costs


@dataclass
class PodRRResult:
    rtt_summary: Summary  # nanoseconds
    transactions_per_s: float
    pairs: int
    intra: bool
    accelerated: bool

    @property
    def avg_ms(self) -> float:
        return self.rtt_summary.mean / 1e6

    @property
    def p99_ms(self) -> float:
        return self.rtt_summary.p99 / 1e6

    @property
    def std_ms(self) -> float:
        return self.rtt_summary.std / 1e6


def measure_pod_rr(
    intra: bool,
    accelerated: bool,
    pairs: int = 1,
    transactions: int = 2000,
    seed: int = 1,
    app_turnaround_ns: Optional[float] = None,
) -> PodRRResult:
    """Build a cluster, run the RR workload, report latency + throughput."""
    cluster = Cluster(workers=2, costs=container_cost_model())
    client, server = cluster.pod_pair(intra=intra)
    if accelerated:
        cluster.accelerate()
    tcp_rr_server(server.kernel, 5201)

    responses: List[int] = []
    client.kernel.sockets.bind(IPPROTO_TCP, 40000, lambda k, skb: responses.append(k.clock.now_ns))

    def one_transaction() -> Optional[int]:
        t0 = cluster.clock.now_ns
        client.kernel.send_ip(
            IPv4(src=ipv4(client.ip), dst=ipv4(server.ip), proto=IPPROTO_TCP),
            TCP(sport=40000, dport=5201, flags=TCP.ACK | TCP.PSH),
            b"\x01",
        )
        if len(responses) > one_transaction.count:
            one_transaction.count = len(responses)
            return cluster.clock.now_ns - t0
        return None

    one_transaction.count = 0
    # warm-up: ARP resolution, FDB learning, fast-path first-pass
    for __ in range(3):
        one_transaction()
    samples = [one_transaction() for __ in range(8)]
    measured = [s for s in samples if s is not None]
    if not measured:
        raise RuntimeError("pod RR transactions were lost; cluster broken?")
    network_rtt_ns = sum(measured) / len(measured)

    turnaround = (
        app_turnaround_ns if app_turnaround_ns is not None else cluster.costs.app_rr_turnaround_ns
    )
    base_rtt = network_rtt_ns + turnaround

    # container-tail jitter, calibrated to Table V's distribution shape
    rng = random.Random(seed)
    rtts = []
    for __ in range(transactions):
        value = base_rtt * rng.gammavariate(BODY_SHAPE, 1.0 / BODY_SHAPE)
        if rng.random() < TAIL_PROB:
            value *= TAIL_MULT
        rtts.append(value)
    summary = summarize(rtts)

    per_pair_tps = 1e9 / summary.mean
    efficiency = max(0.0, 1.0 - PAIR_SCALING_LOSS * (pairs - 1))
    aggregate = pairs * per_pair_tps * efficiency
    return PodRRResult(
        rtt_summary=summary,
        transactions_per_s=aggregate,
        pairs=pairs,
        intra=intra,
        accelerated=accelerated,
    )
