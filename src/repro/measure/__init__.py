"""Measurement harness: topologies, traffic generators, stats, flame graphs.

This package plays the role of the paper's CloudLab testbed + DPDK Pktgen +
netperf: it builds the evaluation topologies, drives traffic through the
simulated kernels, and converts accumulated simulated nanoseconds into the
throughput/latency numbers the benchmark suite reports.
"""

from repro.measure.topology import LineTopology
from repro.measure.pktgen import Pktgen, ThroughputResult
from repro.measure.netperf import Netperf, LatencyResult
from repro.measure.stats import summarize
from repro.measure.storm import StormConfig, StormReport, run_storm, write_report

__all__ = [
    "LineTopology",
    "Pktgen",
    "ThroughputResult",
    "Netperf",
    "LatencyResult",
    "summarize",
    "StormConfig",
    "StormReport",
    "run_storm",
    "write_report",
]
