"""netperf-style TCP_RR latency measurement.

The paper loads each network function with 128 parallel netperf TCP_RR
sessions on a single DUT core and reports mean / P99 / stddev RTT. We model
that as a *closed-loop single-server queue*:

- the DUT core is the server; each transaction occupies it twice (request
  and response crossing), with per-service jitter drawn from a seeded gamma
  distribution (hardware service times are right-skewed);
- each session re-submits as soon as its previous transaction finishes plus
  the un-contended endpoint time (client/server stacks + wire), which is
  measured by running one real transaction through the simulated kernels.

With one session the mean RTT collapses to the measured base RTT; with 128
sessions the DUT saturates and RTT ≈ sessions × 2 × service — which is the
regime the paper's Tables III/IV sit in.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List
import random

from repro.measure.stats import summarize

# Service-time jitter calibration. A gamma body with occasional long stalls
# (softirq storms / scheduler preemption) reproduces the paper's tails:
# P99/mean ≈ 1.5, stddev/mean ≈ 0.2-0.3 under 128-session saturation.
JITTER_SHAPE = 2.0
TAIL_PROB = 0.02
TAIL_MULT = 20.0


@dataclass
class LatencyResult:
    avg_us: float
    p99_us: float
    std_us: float
    transactions_per_s: float
    sessions: int

    def row(self) -> str:
        return f"{self.avg_us:10.3f} {self.p99_us:10.3f} {self.std_us:10.3f}"


class Netperf:
    """Closed-loop TCP_RR simulation over a measured service/base time."""

    def __init__(
        self,
        dut_service_ns: float,
        base_rtt_ns: float,
        sessions: int = 128,
        seed: int = 1,
        jitter_shape: float = JITTER_SHAPE,
    ) -> None:
        if sessions < 1:
            raise ValueError("need at least one session")
        if dut_service_ns < 0 or base_rtt_ns < 0:
            raise ValueError("times must be non-negative")
        self.dut_service_ns = dut_service_ns
        self.base_rtt_ns = base_rtt_ns
        self.sessions = sessions
        self.seed = seed
        self.jitter_shape = jitter_shape

    def run(self, transactions: int = 4000) -> LatencyResult:
        rng = random.Random(self.seed)
        shape = self.jitter_shape
        scale = 1.0 / shape
        # Each transaction crosses the DUT twice (request + response).
        per_transaction_service = 2.0 * self.dut_service_ns
        # Endpoint time: the un-contended remainder of the base RTT.
        endpoint_ns = max(0.0, self.base_rtt_ns - per_transaction_service)

        # session heap: (ready_time, session_id)
        ready: List = [(0.0, s) for s in range(self.sessions)]
        heapq.heapify(ready)
        server_free = 0.0
        rtts: List[float] = []
        last_done = 0.0
        for __ in range(transactions):
            arrival, session = heapq.heappop(ready)
            service = per_transaction_service * rng.gammavariate(shape, scale)
            if rng.random() < TAIL_PROB:
                service *= TAIL_MULT
            start = max(arrival, server_free)
            done = start + service
            server_free = done
            rtt = (done - arrival) + endpoint_ns
            rtts.append(rtt)
            heapq.heappush(ready, (done + endpoint_ns, session))
            last_done = done

        summary = summarize(rtts)
        elapsed_s = max(last_done, 1.0) / 1e9
        return LatencyResult(
            avg_us=summary.mean / 1e3,
            p99_us=summary.p99 / 1e3,
            std_us=summary.std / 1e3,
            transactions_per_s=len(rtts) / elapsed_s,
            sessions=self.sessions,
        )


def measure_base_rtt_ns(topo, port: int = 5201, probes: int = 32) -> float:
    """Measure one un-contended TCP_RR transaction through the real stack.

    Binds a netperf-style responder on the sink and a client socket on the
    source, then times full request→response round trips on the simulated
    clock (including both endpoints, as real netperf RTTs do).
    """
    from repro.kernel.sockets import tcp_rr_server
    from repro.netsim.packet import IPPROTO_TCP, IPv4, TCP
    from repro.netsim.addresses import ipv4

    tcp_rr_server(topo.sink, port)
    responses: List[int] = []
    topo.source.sockets.bind(IPPROTO_TCP, 45000, lambda k, skb: responses.append(k.clock.now_ns))
    topo.prewarm_neighbors()

    samples = []
    for i in range(probes):
        t0 = topo.clock.now_ns
        topo.source.send_ip(
            IPv4(src=ipv4("10.0.1.2"), dst=ipv4("10.0.2.2"), proto=IPPROTO_TCP),
            TCP(sport=45000, dport=port, flags=TCP.ACK | TCP.PSH),
            b"\x01",
        )
        if len(responses) == i + 1:
            samples.append(responses[-1] - t0)
    topo.source.sockets.unbind(IPPROTO_TCP, 45000)
    topo.sink.sockets.unbind(IPPROTO_TCP, port)
    if not samples:
        raise RuntimeError("RR probe produced no responses; topology broken?")
    # add wire propagation both ways (4 hops total)
    return sum(samples) / len(samples) + 4 * topo.costs.wire_latency_ns
