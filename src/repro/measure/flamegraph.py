"""Flame-graph generation from kernel profiler samples (paper Fig 1).

The simulated kernel's pipeline records frames named after the real Linux
functions (``__netif_receive_skb_core``, ``ip_rcv``, ``fib_table_lookup``,
…). This module drives a forwarding workload with profiling enabled and
renders the collapsed stacks plus a small ASCII flame view.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.measure.pktgen import Pktgen
from repro.measure.topology import LineTopology


def profile_forwarding(packets: int = 500, rules: int = 0) -> "FlameGraph":
    """Profile the Linux slow path forwarding the paper's router workload."""
    topo = LineTopology()
    topo.install_prefixes(50)
    if rules:
        from repro.kernel.netfilter import Rule
        from repro.netsim.addresses import IPv4Prefix

        for i in range(rules):
            topo.dut.ipt_append(
                "FORWARD", Rule(target="DROP", src=IPv4Prefix.parse(f"172.16.{i % 256}.0/24"))
            )
    generator = Pktgen(topo)
    topo.dut.profiler.enabled = True
    generator.measure_per_packet_ns(packets=packets, warmup=50)
    return FlameGraph(topo.dut.profiler.samples, topo.dut.profiler.self_weights())


class FlameGraph:
    """Collapsed-stack container with simple rendering."""

    def __init__(self, samples: Dict[Tuple[str, ...], int], self_weights: Dict[Tuple[str, ...], int]) -> None:
        self.samples = samples
        self.self_weights = self_weights

    def collapsed(self) -> List[str]:
        lines = [(";".join(stack), w) for stack, w in self.self_weights.items() if w > 0]
        lines.sort(key=lambda item: (-item[1], item[0]))
        return [f"{stack} {weight}" for stack, weight in lines]

    def total_ns(self) -> int:
        return sum(w for w in self.self_weights.values())

    def hottest(self, top: int = 5) -> List[Tuple[str, float]]:
        """Leaf functions by share of total self time."""
        total = self.total_ns() or 1
        leaf: Dict[str, int] = {}
        for stack, weight in self.self_weights.items():
            leaf[stack[-1]] = leaf.get(stack[-1], 0) + weight
        ranked = sorted(leaf.items(), key=lambda kv: -kv[1])[:top]
        return [(name, weight / total) for name, weight in ranked]

    def render_ascii(self, width: int = 72) -> str:
        """A one-level-per-line flame view, widths proportional to time."""
        total = max((w for w in self.samples.values()), default=1)
        out = []
        for stack in sorted(self.samples, key=lambda s: (len(s), s)):
            weight = self.samples[stack]
            bar = max(1, int(width * weight / total))
            out.append(f"{'  ' * (len(stack) - 1)}{stack[-1]:<34} {'█' * bar}")
        return "\n".join(out)
