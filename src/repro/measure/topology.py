"""Evaluation topologies.

:class:`LineTopology` is the paper's three-node line — a traffic source and a
traffic sink each connected to the device under test (DUT) by a separate
25 Gbps link. The DUT is configured per-scenario (virtual router, virtual
gateway) *only through standard kernel APIs* so that Linux, LinuxFP, and the
baseline platforms all run the same configuration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel import Kernel
from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel
from repro.netsim.nic import Wire


class LineTopology:
    """source ── dut ── sink, with addressing the paper's experiments use.

    - source eth0: 10.0.1.2/24, default route via 10.0.1.1
    - dut eth0:    10.0.1.1/24 (ingress), eth1: 10.0.2.1/24 (egress)
    - sink eth0:   10.0.2.2/24, default route via 10.0.2.1
    """

    def __init__(
        self,
        num_queues: int = 1,
        clock: Optional[Clock] = None,
        costs: Optional[CostModel] = None,
        dut_forwarding: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.costs = costs if costs is not None else CostModel()
        self.source = Kernel("source", clock=self.clock, costs=self.costs)
        self.dut = Kernel("dut", clock=self.clock, costs=self.costs, num_cores=num_queues)
        self.sink = Kernel("sink", clock=self.clock, costs=self.costs)

        self.src_eth = self.source.add_physical("eth0", num_queues=num_queues)
        self.dut_in = self.dut.add_physical("eth0", num_queues=num_queues)
        self.dut_out = self.dut.add_physical("eth1", num_queues=num_queues)
        self.sink_eth = self.sink.add_physical("eth0", num_queues=num_queues)
        for kernel, names in ((self.source, ["eth0"]), (self.dut, ["eth0", "eth1"]), (self.sink, ["eth0"])):
            for name in names:
                kernel.set_link(name, True)

        Wire(self.src_eth.nic, self.dut_in.nic)
        Wire(self.dut_out.nic, self.sink_eth.nic)

        self.source.add_address("eth0", "10.0.1.2/24")
        self.dut.add_address("eth0", "10.0.1.1/24")
        self.dut.add_address("eth1", "10.0.2.1/24")
        self.sink.add_address("eth0", "10.0.2.2/24")
        self.source.route_add("0.0.0.0/0", via="10.0.1.1")
        self.sink.route_add("0.0.0.0/0", via="10.0.2.1")
        if dut_forwarding:
            self.dut.sysctl_set("net.ipv4.ip_forward", "1")

    def install_prefixes(self, count: int = 50) -> List[str]:
        """The paper's router workload: ``count`` prefixes via iproute2.

        Prefix i covers 10.(100+i).0.0/16 and routes toward the sink.
        """
        prefixes = []
        for i in range(count):
            prefix = f"10.{100 + i}.0.0/16"
            self.dut.route_add(prefix, via="10.0.2.2")
            prefixes.append(prefix)
        return prefixes

    def prewarm_neighbors(self) -> None:
        """Resolve the DUT's neighbors up front (as a warmed-up testbed is)."""
        self.dut.neigh_add("eth0", "10.0.1.2", self.src_eth.mac)
        self.dut.neigh_add("eth1", "10.0.2.2", self.sink_eth.mac)
        self.source.neigh_add("eth0", "10.0.1.1", self.dut_in.mac)
        self.sink.neigh_add("eth0", "10.0.2.1", self.dut_out.mac)

    def flow_destination(self, flow: int, num_prefixes: int = 50) -> str:
        """A destination IP inside one of the installed prefixes."""
        return f"10.{100 + (flow % num_prefixes)}.0.{(flow % 250) + 1}"
