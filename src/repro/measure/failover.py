"""Multi-router failover scorecard.

Measures what the anycast fleet promises: when a router dies, drains, or
gets partitioned away, how many *established* flows (flows a sink had
already attributed to a router before the event) end up served by a
different router afterwards?

- ``kill`` + resilient hashing: only the victim's own flows move —
  disrupted fraction ≈ 1/N (threshold: ≤ 1/N + 10 %).
- ``kill`` + mod-N hashing: removing one active member renumbers almost
  every bucket — the baseline must disrupt ≥ 50 % to prove the point.
- ``drain`` + resilient hashing: zero disruption. Draining members keep
  every bucket that is still carrying traffic; flows finish where they
  started, and the monitor reports ``router-drained`` once the last one
  went idle.
- ``partition`` + resilient hashing: probes are lost but the data plane
  keeps forwarding; after detection the victim is weighted out like a
  dead router (same ≤ 1/N + 10 % bound) without a single lost packet.

Traffic keeps flowing *through* the detection window — packets sprayed at
a dead router in the BFD blind spot vanish on the wire (and are counted),
exactly as in production. Every kernel's conservation ledger must settle
regardless.

Chaos mode arms ``probe_flap`` noise on top (the detect-multiplier
debounce must absorb isolated misses) and routes the kill itself through
the ``router_kill`` fault site so the event shows up in the chaos ledger.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import AnycastFleet, HealthMonitor
from repro.kernel.fib import POLICY_MODN, POLICY_RESILIENT
from repro.testing import faults

EVENTS = ("kill", "drain", "partition")

#: Per-round clock advance while traffic is flowing.
ROUND_NS = 25_000_000  # 25 ms
#: Detection must land within this many rounds (40 × 25 ms = 1 s).
DETECT_ROUNDS_CAP = 40
#: Idle rounds allowed for a drain to complete (buckets idle out at 200 ms).
DRAIN_ROUNDS_CAP = 40
#: probe_flap noise probability in chaos mode — low enough that three
#: *consecutive* misses (a spurious detection) is vanishingly unlikely.
CHAOS_FLAP_PROBABILITY = 0.05


@dataclass
class FailoverConfig:
    seed: int = 42
    num_routers: int = 4
    policy: str = POLICY_RESILIENT
    event: str = "kill"
    num_flows: int = 128
    warmup_rounds: int = 4
    post_rounds: int = 6
    chaos: bool = False
    platform: str = "linuxfp"

    def __post_init__(self) -> None:
        if self.event not in EVENTS:
            raise ValueError(f"event must be one of {EVENTS}, got {self.event!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "num_routers": self.num_routers,
            "policy": self.policy,
            "event": self.event,
            "num_flows": self.num_flows,
            "warmup_rounds": self.warmup_rounds,
            "post_rounds": self.post_rounds,
            "chaos": self.chaos,
            "platform": self.platform,
        }


@dataclass
class FailoverReport:
    """One event, one policy, one seed."""

    config: FailoverConfig
    victim: int = -1
    established: int = 0
    disrupted: int = 0
    disrupted_fraction: float = 0.0
    threshold: float = 0.0
    detection_ns: Optional[int] = None
    detected: bool = False
    drained: bool = False
    blackholed: int = 0
    delivered: int = 0
    incidents_by_kind: Dict[str, int] = field(default_factory=dict)
    faults_fired: Dict[str, int] = field(default_factory=dict)
    probes: Dict[str, object] = field(default_factory=dict)
    conservation: Dict[str, Dict[str, object]] = field(default_factory=dict)
    conserved: bool = False

    @property
    def ok(self) -> bool:
        """The run's own pass/fail against the scorecard thresholds."""
        if not self.conserved:
            return False
        if self.config.event == "drain":
            return self.disrupted == 0 and self.drained
        if not self.detected:
            return False
        if self.config.policy == POLICY_MODN:
            # the baseline must demonstrate the churn it is famous for
            return self.disrupted_fraction >= self.threshold
        return self.disrupted_fraction <= self.threshold

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "ok": self.ok,
            "victim": self.victim,
            "established": self.established,
            "disrupted": self.disrupted,
            "disrupted_fraction": round(self.disrupted_fraction, 4),
            "threshold": round(self.threshold, 4),
            "detection_ns": self.detection_ns,
            "detected": self.detected,
            "drained": self.drained,
            "blackholed": self.blackholed,
            "delivered": self.delivered,
            "incidents_by_kind": dict(self.incidents_by_kind),
            "faults_fired": dict(self.faults_fired),
            "probes": dict(self.probes),
            "conservation": dict(self.conservation),
            "conserved": self.conserved,
        }


def _threshold_for(config: FailoverConfig) -> float:
    if config.event == "drain":
        return 0.0
    if config.policy == POLICY_MODN:
        return 0.5  # the baseline must disrupt at least half
    return 1.0 / config.num_routers + 0.10


def run_failover(config: FailoverConfig) -> FailoverReport:
    """One seeded failover experiment, deterministic end to end."""
    rng = random.Random(config.seed)
    report = FailoverReport(config=config, threshold=_threshold_for(config))
    fleet = AnycastFleet(
        num_routers=config.num_routers,
        policy=config.policy,
        platform=config.platform,
    )
    monitor = HealthMonitor(fleet)
    flows = list(range(config.num_flows))
    victim = rng.randrange(config.num_routers)
    report.victim = victim
    victim_name = fleet.members[victim].name

    injector: Optional[faults.FaultInjector] = None
    if config.chaos or config.event == "partition":
        injector = faults.FaultInjector(config.seed)
        if config.chaos:
            injector.arm("probe_flap", probability=CHAOS_FLAP_PROBABILITY)
            if config.event == "kill":
                # the kill flows through the chaos ledger
                injector.arm("router_kill", count=1, match=victim_name)
        faults.install(injector)

    def round_trip(inject: bool = True) -> None:
        if inject:
            fleet.inject(flows, advance_ns=0)
        fleet.tick(advance_ns=ROUND_NS)
        monitor.tick(fleet.clock.now_ns)

    try:
        # -- establish -------------------------------------------------
        for _ in range(config.warmup_rounds):
            round_trip()
        before = fleet.snapshot_serving()
        report.established = len(before)

        # -- the event -------------------------------------------------
        event_ns = fleet.clock.now_ns
        if config.event == "kill":
            fleet.kill_router(victim)
        elif config.event == "drain":
            fleet.drain_router(victim)
        elif config.event == "partition":
            # from here on, every probe toward the victim is lost while
            # its data plane keeps forwarding
            assert injector is not None
            injector.arm("partition", match=victim_name)

        # -- detection window (traffic keeps flowing) ------------------
        if config.event in ("kill", "partition"):
            for _ in range(DETECT_ROUNDS_CAP):
                if not monitor.up[victim]:
                    break
                round_trip()
            report.detected = not monitor.up[victim]
            if report.detected:
                report.detection_ns = fleet.clock.now_ns - event_ns

        # -- post-event traffic ----------------------------------------
        for _ in range(config.post_rounds):
            round_trip()
        after = fleet.snapshot_serving()

        report.disrupted = sum(1 for f in before if before[f] != after.get(f, -1))
        report.disrupted_fraction = (
            report.disrupted / report.established if report.established else 0.0
        )

        # -- drain completion: traffic stops, buckets idle out ---------
        if config.event == "drain":
            for _ in range(DRAIN_ROUNDS_CAP):
                if fleet.group.is_drained(fleet.members[victim].ip):
                    break
                round_trip(inject=False)
            report.drained = fleet.group.is_drained(fleet.members[victim].ip)
    finally:
        if injector is not None:
            faults.uninstall()

    report.blackholed = sum(fleet.blackholed)
    report.delivered = fleet.delivered
    observer = fleet.observer_controller()
    if observer is not None:
        from repro.observability.metrics import _incidents_by_kind

        report.incidents_by_kind = _incidents_by_kind(observer)
    if injector is not None:
        from collections import Counter

        report.faults_fired = dict(Counter(site for site, _, _ in injector.fired))
    report.probes = monitor.to_dict()
    report.conservation = fleet.conservation()
    report.conserved = all(entry["conserved"] for entry in report.conservation.values())
    return report


def run_scorecard(
    seeds: List[int],
    num_routers: int = 4,
    num_flows: int = 128,
    chaos: bool = True,
) -> Dict[str, object]:
    """The full comparison: kill/resilient vs kill/mod-N vs drain vs
    partition, for every seed. Returns the BENCH_failover payload."""
    runs: List[FailoverReport] = []
    for seed in seeds:
        for event, policy in (
            ("kill", POLICY_RESILIENT),
            ("kill", POLICY_MODN),
            ("drain", POLICY_RESILIENT),
            ("partition", POLICY_RESILIENT),
        ):
            runs.append(
                run_failover(
                    FailoverConfig(
                        seed=seed,
                        num_routers=num_routers,
                        policy=policy,
                        event=event,
                        num_flows=num_flows,
                        chaos=chaos,
                    )
                )
            )

    def fractions(event: str, policy: str) -> List[float]:
        return [
            r.disrupted_fraction
            for r in runs
            if r.config.event == event and r.config.policy == policy
        ]

    resilient_kill = fractions("kill", POLICY_RESILIENT)
    modn_kill = fractions("kill", POLICY_MODN)
    drain = fractions("drain", POLICY_RESILIENT)
    summary = {
        "num_routers": num_routers,
        "seeds": list(seeds),
        "resilient_kill_max_fraction": max(resilient_kill) if resilient_kill else None,
        "resilient_threshold": 1.0 / num_routers + 0.10,
        "modn_kill_min_fraction": min(modn_kill) if modn_kill else None,
        "modn_threshold": 0.5,
        "drain_max_fraction": max(drain) if drain else None,
        "all_conserved": all(r.conserved for r in runs),
    }
    return {
        "benchmark": "failover",
        "runs": [r.to_dict() for r in runs],
        "summary": summary,
        "all_ok": all(r.ok for r in runs),
    }


def write_report(payload: Dict[str, object], path: str) -> Dict[str, object]:
    """Write the BENCH_failover.json artifact."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return payload
