"""Statistics helpers for benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class Summary:
    mean: float
    p99: float
    std: float
    count: int

    def __repr__(self) -> str:
        return f"Summary(mean={self.mean:.3f}, p99={self.p99:.3f}, std={self.std:.3f}, n={self.count})"


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> Summary:
    """Mean / P99 / population standard deviation, as netperf reports."""
    if not values:
        raise ValueError("no values")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Summary(mean=mean, p99=percentile(values, 99.0), std=math.sqrt(variance), count=n)
