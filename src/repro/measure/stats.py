"""Statistics helpers for benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass
class Summary:
    mean: float
    p99: float
    std: float
    count: int

    def __repr__(self) -> str:
        return f"Summary(mean={self.mean:.3f}, p99={self.p99:.3f}, std={self.std:.3f}, n={self.count})"


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Sequence[float]) -> Summary:
    """Mean / P99 / population standard deviation, as netperf reports."""
    if not values:
        raise ValueError("no values")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Summary(mean=mean, p99=percentile(values, 99.0), std=math.sqrt(variance), count=n)


def flow_cache_summary(stats) -> Dict[str, object]:
    """Flatten :class:`repro.fastpath.FlowCacheStats` for reporting.

    A hook with no lookups at all (present only in ``records``) has no hit
    rate — it is omitted, and the overall rate is ``None``, rather than a
    misleading 0.00%.
    """
    data = stats.as_dict()
    saw_traffic = any(stats.hits.values()) or any(stats.misses.values())
    data["hit_rate"] = stats.hit_rate() if saw_traffic else None
    for hook in ("xdp", "tc"):
        if stats.hits[hook] or stats.misses[hook]:
            data[f"hit_rate_{hook}"] = stats.hit_rate(hook)
    return data


def format_flow_cache(stats) -> List[str]:
    """Human-readable report lines for the flow cache counters."""
    saw_traffic = any(stats.hits.values()) or any(stats.misses.values())
    overall = f"{stats.hit_rate() * 100:6.2f}%" if saw_traffic else "   n/a"
    lines = [
        f"hit rate        {overall}  "
        f"(hits={sum(stats.hits.values())}, misses={sum(stats.misses.values())}, "
        f"bypasses={sum(stats.bypasses.values())})",
    ]
    for hook in sorted(set(stats.hits) | set(stats.misses) | set(stats.records)):
        if stats.hits[hook] or stats.misses[hook]:
            rate = f"{stats.hit_rate(hook) * 100:.2f}%"
        else:
            rate = "n/a"  # records exist but no lookups yet: no rate to report
        lines.append(
            f"  {hook:<4} hits={stats.hits[hook]} misses={stats.misses[hook]} "
            f"records={stats.records[hook]} rate={rate}"
        )
    for fpm, count in sorted(stats.fpm_hits.items()):
        lines.append(f"  fpm {fpm:<8} runs avoided: {count}")
    for reason, count in sorted(stats.invalidations.items()):
        lines.append(f"  invalidated [{reason}]: {count}")
    lines.append(
        f"evictions={stats.evictions} flushes={stats.flushes} "
        f"(entries={stats.flushed_entries})"
    )
    lines.append(
        f"avoided {stats.insns_avoided} eBPF insns, saved {stats.ns_saved:.0f} simulated ns"
    )
    return lines
