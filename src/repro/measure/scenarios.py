"""Evaluation scenarios: virtual router and virtual gateway on every platform.

Each ``setup_*`` function configures the DUT of a :class:`LineTopology` for
one (platform, scenario) cell of the paper's Figs 5–8 / Tables III–IV:

- **linux** — standard kernel tools only (iproute2/iptables/ipset);
- **linuxfp** — identical standard-tool configuration, plus the LinuxFP
  controller watching netlink (that's the whole point);
- **polycube** — the custom ``pcn-*`` CLIs (its own state; note the
  duplicated next-hop/MAC knowledge the operator must provide);
- **vpp** — ``vppctl`` over bypassed NICs with dedicated worker cores.

The traffic matrix is the paper's: 50 prefixes for routing, a 100-address
blacklist for the gateway.
"""

from __future__ import annotations

from typing import Optional

from repro.core import Controller
from repro.measure.netperf import Netperf, measure_base_rtt_ns
from repro.measure.pktgen import Pktgen, ThroughputResult
from repro.measure.topology import LineTopology
from repro.platforms import Polycube, Vpp
from repro.tools import ip, ipset, iptables
NUM_PREFIXES = 50
NUM_RULES = 100
PLATFORMS = ("linux", "linuxfp", "polycube", "vpp")


def blacklist_address(index: int) -> str:
    return f"172.16.{index // 250}.{(index % 250) + 1}"


# ------------------------------------------------------------------- router

def setup_router(
    platform: str,
    num_prefixes: int = NUM_PREFIXES,
    num_queues: int = 1,
    hook: str = "xdp",
    optimize: Optional[bool] = None,
    jit: Optional[bool] = None,
) -> LineTopology:
    """Build the virtual-router DUT for one platform.

    ``optimize`` enables the equivalence-checked superoptimizer on the
    linuxfp controller (None defers to ``LINUXFP_OPT``); ``jit`` enables
    the bytecode→Python JIT (None defers to ``LINUXFP_JIT``).
    """
    topo = LineTopology(num_queues=num_queues, dut_forwarding=platform in ("linux", "linuxfp"))
    if platform in ("linux", "linuxfp"):
        for i in range(num_prefixes):
            ip(topo.dut, f"route add 10.{100 + i}.0.0/16 via 10.0.2.2")
        if platform == "linuxfp":
            topo.controller = Controller(topo.dut, hook=hook, optimize=optimize, jit=jit)
            topo.controller.start()
    elif platform == "polycube":
        pcn = Polycube(topo.dut)
        pcn.attach_port("eth0")
        pcn.attach_port("eth1")
        sink_mac = topo.sink_eth.mac
        src_mac = topo.src_eth.mac
        for i in range(num_prefixes):
            pcn.pcn_router(f"add route 10.{100 + i}.0.0/16 10.0.2.2 {sink_mac} eth1")
        pcn.pcn_router(f"add route 10.0.1.0/24 10.0.1.2 {src_mac} eth0")
        pcn.pcn_router(f"add route 10.0.2.0/24 10.0.2.2 {sink_mac} eth1")
        topo.polycube = pcn
    elif platform == "vpp":
        vpp = Vpp(topo.dut, workers=num_queues)
        vpp.take_over("eth0")
        vpp.take_over("eth1")
        vpp.vppctl("set interface state eth0 up")
        vpp.vppctl("set interface state eth1 up")
        sink_mac = topo.sink_eth.mac
        src_mac = topo.src_eth.mac
        for i in range(num_prefixes):
            vpp.vppctl(f"ip route add 10.{100 + i}.0.0/16 via 10.0.2.2 eth1 mac {sink_mac}")
        vpp.vppctl(f"ip route add 10.0.1.0/24 via 10.0.1.2 eth0 mac {src_mac}")
        vpp.vppctl(f"ip route add 10.0.2.0/24 via 10.0.2.2 eth1 mac {sink_mac}")
        topo.vpp = vpp
    else:
        raise ValueError(f"unknown platform {platform!r}")
    topo.prewarm_neighbors()
    return topo


# ------------------------------------------------------------------ gateway

def setup_gateway(
    platform: str,
    num_rules: int = NUM_RULES,
    use_ipset: bool = False,
    num_prefixes: int = NUM_PREFIXES,
    num_queues: int = 1,
    hook: str = "xdp",
    optimize: Optional[bool] = None,
    jit: Optional[bool] = None,
) -> LineTopology:
    """Router + IP-blacklist filtering (the virtual-gateway scenario)."""
    topo = setup_router(
        platform,
        num_prefixes=num_prefixes,
        num_queues=num_queues,
        hook=hook,
        optimize=optimize,
        jit=jit,
    )
    if platform in ("linux", "linuxfp"):
        if use_ipset:
            ipset(topo.dut, "create blacklist hash:ip")
            for i in range(num_rules):
                ipset(topo.dut, f"add blacklist {blacklist_address(i)}")
            iptables(topo.dut, "-A FORWARD -m set --match-set blacklist src -j DROP")
        else:
            for i in range(num_rules):
                iptables(topo.dut, f"-A FORWARD -s {blacklist_address(i)}/32 -j DROP")
    elif platform == "polycube":
        for i in range(num_rules):
            topo.polycube.pcn_iptables(f"-A FORWARD -s {blacklist_address(i)}/32 -j DROP")
    elif platform == "vpp":
        for i in range(num_rules):
            topo.vpp.vppctl(f"acl add deny src {blacklist_address(i)}/32")
    return topo


# --------------------------------------------------------------- measuring

def measure_throughput(
    topo: LineTopology,
    cores: int = 1,
    packet_size: int = 64,
    packets: int = 2000,
    num_prefixes: int = NUM_PREFIXES,
) -> ThroughputResult:
    generator = Pktgen(topo, packet_size=packet_size, num_prefixes=num_prefixes)
    return generator.throughput(cores=cores, packets=packets)


def measure_scaling(
    platform: str = "linuxfp",
    core_counts=(1, 2, 4, 8),
    num_flows: int = 256,
    packets: int = 1500,
    warmup: int = 150,
):
    """Measured throughput-vs-cores for the in-kernel platforms.

    One fresh router topology per core count, each driven through the
    RSS/RPS multi-core data plane (:meth:`Pktgen.measure_multicore`) — the
    reported rate comes from the bottleneck CPU's busy time, not from the
    modeled ``CORE_SCALING_LOSS`` extrapolation. Returns ``(topo, result)``
    pairs so callers can audit the per-CPU conservation ledger.
    """
    if platform not in ("linux", "linuxfp"):
        raise ValueError("measured scaling needs the kernel data plane")
    runs = []
    for cores in core_counts:
        topo = setup_router(platform, num_queues=cores)
        generator = Pktgen(topo, num_flows=num_flows)
        runs.append((topo, generator.measure_multicore(packets=packets, warmup=warmup)))
    return runs


def measure_latency(
    topo: LineTopology,
    sessions: int = 128,
    transactions: int = 4000,
    seed: int = 1,
    num_prefixes: int = NUM_PREFIXES,
):
    """128-session netperf TCP_RR against the DUT (Tables III/IV)."""
    platform_vpp = getattr(topo, "vpp", None)
    probe = Pktgen(topo, num_prefixes=num_prefixes).measure_per_packet_ns(packets=600, warmup=100)
    # the probe black-holed the sink; restore its stack for the RR probe
    topo.sink_eth.nic.attach(topo.sink_eth._on_nic_rx)
    if platform_vpp is not None:
        # VPP terminates nothing: RR endpoints stay on source/sink kernels,
        # but the DUT contribution is VPP's service time.
        base_rtt = 2 * probe.per_packet_ns + 30000.0  # endpoints + wire
    else:
        base_rtt = measure_base_rtt_ns(topo)
    return Netperf(
        dut_service_ns=probe.per_packet_ns,
        base_rtt_ns=base_rtt,
        sessions=sessions,
        seed=seed,
    ).run(transactions)
