"""A DPDK-Pktgen-style throughput workload generator.

Frames are injected at the DUT's ingress NIC exactly as the wire would
deliver them; the sink is replaced by a black-hole counter so the shared
simulated clock only accumulates DUT work. Throughput is derived from the
measured per-packet simulated cost, scaled by core count and capped at line
rate — matching how the paper reports Mpps for 64 B…1500 B packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.measure.topology import LineTopology
from repro.netsim.packet import make_udp

MIN_FRAME = 64
# Per-extra-core efficiency loss (cache/NUMA contention); Fig 5 shows
# near-linear but not perfect scaling.
CORE_SCALING_LOSS = 0.015


@dataclass
class ThroughputResult:
    pps: float
    gbps: float
    per_packet_ns: float
    sent: int
    delivered: int
    cores: int
    frame_len: int
    #: Per-CPU busy nanoseconds over the measurement window (multi-core
    #: measurements only; the bottleneck CPU sets the rate).
    busy_ns: Optional[List[float]] = None
    #: max/mean busy ratio across CPUs; 1.0 = perfectly balanced.
    imbalance: float = 1.0

    @property
    def mpps(self) -> float:
        return self.pps / 1e6

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


class Pktgen:
    """Generates uniform flows toward the DUT's installed prefixes."""

    def __init__(
        self,
        topo: LineTopology,
        packet_size: int = MIN_FRAME,
        num_flows: int = 64,
        num_prefixes: int = 50,
        frames: Optional[List[bytes]] = None,
    ) -> None:
        self.topo = topo
        self.packet_size = max(packet_size, MIN_FRAME)
        self.num_flows = num_flows
        self.num_prefixes = num_prefixes
        self._frames: Optional[List[bytes]] = list(frames) if frames else None
        self.delivered = 0

    def _build_frames(self) -> List[bytes]:
        topo = self.topo
        payload_len = max(0, self.packet_size - 14 - 20 - 8)
        frames = []
        for flow in range(self.num_flows):
            pkt = make_udp(
                topo.src_eth.mac,
                topo.dut_in.mac,
                "10.0.1.2",
                topo.flow_destination(flow, self.num_prefixes),
                sport=1024 + flow,
                dport=9,
                payload=b"\x00" * payload_len,
            )
            frames.append(pkt.to_bytes())
        return frames

    def blackhole_sink(self) -> None:
        """Replace the sink's stack with a delivery counter."""

        def count(frame: bytes, queue: int) -> None:
            self.delivered += 1

        self.topo.sink_eth.nic.attach(count)

    def measure_per_packet_ns(self, packets: int = 2000, warmup: int = 200) -> ThroughputResult:
        """Run the workload and measure the DUT's per-packet simulated cost."""
        topo = self.topo
        topo.prewarm_neighbors()
        self.blackhole_sink()
        if self._frames is None:
            self._frames = self._build_frames()
        frames = self._frames

        nic = topo.dut_in.nic
        for i in range(warmup):  # paper: 10 s Pktgen warm-up
            nic.receive_from_wire(frames[i % len(frames)])

        self.delivered = 0
        start_ns = topo.clock.now_ns
        for i in range(packets):
            nic.receive_from_wire(frames[i % len(frames)])
        elapsed = topo.clock.now_ns - start_ns
        per_packet = elapsed / packets
        frame_len = len(frames[0])
        return ThroughputResult(
            pps=1e9 / per_packet if per_packet else float("inf"),
            gbps=0.0,
            per_packet_ns=per_packet,
            sent=packets,
            delivered=self.delivered,
            cores=1,
            frame_len=frame_len,
        )

    def measure_multicore(self, packets: int = 2000, warmup: int = 200) -> ThroughputResult:
        """Measured multi-core throughput from per-CPU busy time.

        Unlike :meth:`throughput`, which extrapolates a single-core probe
        with a modeled efficiency factor, this *measures* parallelism: the
        RSS/RPS data plane spreads the flows over the DUT's CPUs, every
        charged cost lands in the executing CPU's busy counter, and the
        sustainable rate is ``packets / max(per-CPU busy)`` — the bottleneck
        CPU sets the ceiling, exactly as on real multi-queue hardware. All
        steering overheads (rps_steer, the IPI for cross-steered frames,
        cross-CPU lock charges on shared maps) are part of what is measured.
        """
        topo = self.topo
        topo.prewarm_neighbors()
        self.blackhole_sink()
        if self._frames is None:
            self._frames = self._build_frames()
        frames = self._frames

        nic = topo.dut_in.nic
        cpus = topo.dut.cpus
        for i in range(warmup):
            nic.receive_from_wire(frames[i % len(frames)])

        self.delivered = 0
        cpus.reset_busy()
        for i in range(packets):
            nic.receive_from_wire(frames[i % len(frames)])
        bottleneck_ns = cpus.max_busy_ns
        per_packet = bottleneck_ns / packets if packets else 0.0
        frame_len = len(frames[0])
        pps = 1e9 / per_packet if per_packet else float("inf")
        line_rate = topo.costs.line_rate_pps(frame_len)
        pps = min(pps, line_rate)
        gbps = pps * (frame_len + topo.costs.framing_overhead_bytes) * 8 / 1e9
        return ThroughputResult(
            pps=pps,
            gbps=gbps,
            per_packet_ns=per_packet,
            sent=packets,
            delivered=self.delivered,
            cores=cpus.num_cpus,
            frame_len=frame_len,
            busy_ns=list(cpus.busy_ns),
            imbalance=cpus.imbalance(),
        )

    def throughput(self, cores: int = 1, packets: int = 2000, warmup: int = 200) -> ThroughputResult:
        """Multi-core throughput: per-core rate × cores, capped at line rate."""
        probe = self.measure_per_packet_ns(packets=packets, warmup=warmup)
        efficiency = max(0.0, 1.0 - CORE_SCALING_LOSS * (cores - 1))
        pps = cores * (1e9 / probe.per_packet_ns) * efficiency
        line_rate = self.topo.costs.line_rate_pps(probe.frame_len)
        pps = min(pps, line_rate)
        gbps = pps * (probe.frame_len + self.topo.costs.framing_overhead_bytes) * 8 / 1e9
        return ThroughputResult(
            pps=pps,
            gbps=gbps,
            per_packet_ns=probe.per_packet_ns,
            sent=probe.sent,
            delivered=probe.delivered,
            cores=cores,
            frame_len=probe.frame_len,
        )
