"""Storm harness: trace-driven overload + chaos for the reliability story.

Where :mod:`repro.measure.pktgen` asks "how fast", this module asks "does
anything break": it replays a seeded, heavy-tailed traffic storm — flash
crowd bursts, rolling kube-proxy/Flannel-style reconfiguration mid-storm,
every fault site armed, a CPU hot-unplugged and replugged while frames are
in flight — against a multi-core LinuxFP gateway, and scores the run on the
invariants the stack promises rather than on throughput:

- **conservation** — ``rx + tx_local == settled + pending`` must hold at the
  end of the storm no matter what was dropped, flapped, or unplugged;
- **no unhandled exception** — every failure surfaces as a counted drop, a
  controller incident, or a degradation, never a traceback;
- **recovery** — once faults stop, bounded simulated time brings
  ``Controller.health()`` back to ok (or an honest quarantine).

Every run is fully determined by ``StormConfig.seed``; the report
(:class:`StormReport`) is JSON-serializable and becomes the
``BENCH_reliability.json`` artifact.
"""

from __future__ import annotations

import json
import os
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.measure.scenarios import blacklist_address, setup_gateway
from repro.measure.topology import LineTopology
from repro.netsim.packet import TCP, make_tcp, make_udp
from repro.testing import faults
from repro.tools import ip, iptables

#: Advance applied between storm phases so timeouts/backoffs are reachable.
PHASE_ADVANCE_NS = 2_000_000
#: Reconvergence budget after the storm: 12 rounds of 6 simulated seconds.
RECONVERGE_ROUNDS = 12
RECONVERGE_STEP_NS = 6_000_000_000


@dataclass
class StormConfig:
    """One seeded storm. Every knob is deterministic given ``seed``."""

    seed: int = 0
    num_cpus: int = 8
    hook: str = "xdp"
    num_prefixes: int = 50
    num_rules: int = 60
    num_flows: int = 192
    #: total frames injected (bursts draw from this budget)
    packets: int = 4000
    #: Pareto shape for flow sizes — ~1.3 gives the heavy tail where a few
    #: elephant flows carry most bytes while most flows are mice
    pareto_alpha: float = 1.3
    #: flash-crowd burst sizing (frames per coalesced NIC burst)
    burst_min: int = 16
    burst_max: int = 384
    #: ``net.core.netdev_max_backlog`` for the run — tightened from the
    #: Linux default so flash crowds genuinely overflow
    max_backlog: int = 48
    #: every N bursts, apply one rolling reconfiguration step
    reconfigure_every: int = 6
    #: (burst_index_fraction, action, cpu): mid-storm hotplug schedule
    hotplug: Tuple[Tuple[float, str, int], ...] = ((0.3, "offline", 1), (0.7, "online", 1))
    #: arm every fault site (including the data plane) at this probability
    fault_probability: float = 0.02
    #: cap on chaos-initiated hotplug events (the scheduled ones above are
    #: separate); keeps the storm from grinding every CPU away
    cpu_offline_faults: int = 2
    #: fraction of flows sourced from blacklisted addresses (guaranteed
    #: nf_forward drops, exercising the drop ledger under pressure)
    blacklisted_fraction: float = 0.1
    arm_faults: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "num_cpus": self.num_cpus,
            "hook": self.hook,
            "num_prefixes": self.num_prefixes,
            "num_rules": self.num_rules,
            "num_flows": self.num_flows,
            "packets": self.packets,
            "pareto_alpha": self.pareto_alpha,
            "burst_min": self.burst_min,
            "burst_max": self.burst_max,
            "max_backlog": self.max_backlog,
            "reconfigure_every": self.reconfigure_every,
            "hotplug": [list(h) for h in self.hotplug],
            "fault_probability": self.fault_probability,
            "cpu_offline_faults": self.cpu_offline_faults,
            "blacklisted_fraction": self.blacklisted_fraction,
            "arm_faults": self.arm_faults,
        }


@dataclass
class StormReport:
    """The reliability scorecard for one storm run."""

    config: StormConfig
    injected: int = 0
    bursts: int = 0
    reconfigurations: int = 0
    hotplug_events: List[str] = field(default_factory=list)
    # conservation ledger at end of run
    rx_packets: int = 0
    tx_local_packets: int = 0
    settled: int = 0
    pending: int = 0
    conserved: bool = False
    # breakdowns
    drops_by_reason: Dict[str, int] = field(default_factory=dict)
    incidents_by_kind: Dict[str, int] = field(default_factory=dict)
    backlog_high_water: List[int] = field(default_factory=list)
    backlog_drops: List[int] = field(default_factory=list)
    faults_fired: Dict[str, int] = field(default_factory=dict)
    # recovery: simulated ns from each health-not-ok onset back to ok
    recovery_ns: List[int] = field(default_factory=list)
    recovered: bool = False
    quarantined: bool = False
    final_health_ok: bool = False
    offline_cpus: List[int] = field(default_factory=list)
    unhandled_exceptions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The headline verdict: conserved, exception-free, and ended in an
        honest state (healthy or explicitly quarantined — never wedged)."""
        return (
            self.conserved
            and not self.unhandled_exceptions
            and (self.final_health_ok or self.quarantined)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "ok": self.ok,
            "injected": self.injected,
            "bursts": self.bursts,
            "reconfigurations": self.reconfigurations,
            "hotplug_events": list(self.hotplug_events),
            "conservation": {
                "rx_packets": self.rx_packets,
                "tx_local_packets": self.tx_local_packets,
                "settled": self.settled,
                "pending": self.pending,
                "conserved": self.conserved,
            },
            "drops_by_reason": dict(self.drops_by_reason),
            "incidents_by_kind": dict(self.incidents_by_kind),
            "backlog_high_water": list(self.backlog_high_water),
            "backlog_drops": list(self.backlog_drops),
            "faults_fired": dict(self.faults_fired),
            "recovery_ns": list(self.recovery_ns),
            "recovered": self.recovered,
            "quarantined": self.quarantined,
            "final_health_ok": self.final_health_ok,
            "offline_cpus": list(self.offline_cpus),
            "unhandled_exceptions": list(self.unhandled_exceptions),
        }


class _HealthTracker:
    """Measures not-ok → ok windows on the simulated clock."""

    def __init__(self, topo: LineTopology) -> None:
        self.topo = topo
        self.down_since_ns: Optional[int] = None
        self.recovery_ns: List[int] = []

    def observe(self) -> None:
        health = self.topo.controller.health()
        now = self.topo.clock.now_ns
        if health["ok"]:
            if self.down_since_ns is not None:
                self.recovery_ns.append(now - self.down_since_ns)
                self.down_since_ns = None
        elif self.down_since_ns is None:
            self.down_since_ns = now


def _build_flows(topo: LineTopology, config: StormConfig, rng: random.Random) -> List[List[bytes]]:
    """Per-flow frame lists with Pareto-tailed sizes; a slice of flows comes
    from blacklisted sources so the storm exercises netfilter drops too."""
    flows: List[List[bytes]] = []
    blacklisted = max(0, int(config.num_flows * config.blacklisted_fraction))
    for flow in range(config.num_flows):
        size = max(1, int(rng.paretovariate(config.pareto_alpha)))
        if flow < blacklisted:
            src = blacklist_address(flow % config.num_rules)
        else:
            src = f"10.0.1.{(flow % 200) + 2}"
        dst = topo.flow_destination(flow, config.num_prefixes)
        sport = 1024 + (flow % 40000)
        dport = 9 if flow % 3 else 80
        if flow % 4 == 0:
            frame = make_tcp(
                topo.src_eth.mac, topo.dut_in.mac, src, dst,
                sport=sport, dport=dport, flags=TCP.ACK, payload=b"\x00" * 8,
            ).to_bytes()
        else:
            frame = make_udp(
                topo.src_eth.mac, topo.dut_in.mac, src, dst,
                sport=sport, dport=dport, payload=b"\x00" * 8,
            ).to_bytes()
        flows.append([frame] * size)
    return flows


def _trace(config: StormConfig, flows: List[List[bytes]], rng: random.Random) -> List[List[bytes]]:
    """Interleave the flows into flash-crowd bursts totalling ``packets``."""
    pool: List[bytes] = []
    flow_order = list(range(len(flows)))
    while len(pool) < config.packets:
        rng.shuffle(flow_order)
        for flow in flow_order:
            pool.extend(flows[flow])
            if len(pool) >= config.packets:
                break
    pool = pool[: config.packets]
    bursts: List[List[bytes]] = []
    i = 0
    while i < len(pool):
        n = rng.randint(config.burst_min, config.burst_max)
        bursts.append(pool[i : i + n])
        i += n
    return bursts


def _reconfigure(topo: LineTopology, config: StormConfig, rng: random.Random, step: int) -> None:
    """One rolling-update step, kube-proxy/Flannel style: rules and routes
    are churned in place while traffic flows."""
    dut = topo.dut
    choice = step % 3
    if choice == 0:
        # rotate a blacklist rule (delete one, append a fresh equivalent)
        rules = dut.netfilter.chain("FORWARD").rules
        if rules:
            victim = rules[rng.randrange(len(rules))]
            iptables(dut, f"-D FORWARD {victim.handle}")
        addr = blacklist_address(rng.randrange(config.num_rules))
        iptables(dut, f"-A FORWARD -s {addr}/32 -j DROP")
    elif choice == 1:
        # shadow then restore a prefix with a more specific route
        prefix_index = rng.randrange(config.num_prefixes)
        shadow = f"10.{100 + prefix_index}.128.0/17"
        try:
            ip(dut, f"route add {shadow} via 10.0.2.2")
        except Exception:
            pass  # already shadowed by an earlier step: fine
        if step % 6 == 4:
            try:
                ip(dut, f"route del {shadow}")
            except Exception:
                pass
    else:
        # sysctl churn: wobble the backlog bound (stays >= burst floor)
        wobble = config.max_backlog + rng.choice((-8, 0, 8, 16))
        dut.sysctl_set("net.core.netdev_max_backlog", str(max(16, wobble)))


def run_storm(config: StormConfig) -> StormReport:
    """Run one seeded storm; never raises — failures land in the report."""
    rng = random.Random(config.seed)
    topo = setup_gateway(
        "linuxfp",
        num_rules=config.num_rules,
        num_prefixes=config.num_prefixes,
        num_queues=config.num_cpus,
        hook=config.hook,
    )
    dut = topo.dut
    dut.sysctl_set("net.core.netdev_max_backlog", str(config.max_backlog))
    report = StormReport(config=config)
    tracker = _HealthTracker(topo)

    flows = _build_flows(topo, config, rng)
    bursts = _trace(config, flows, rng)
    hotplug_at = {
        max(0, min(len(bursts) - 1, int(fraction * len(bursts)))): (action, cpu)
        for fraction, action, cpu in config.hotplug
    }

    injector = faults.FaultInjector(seed=config.seed)
    if config.arm_faults:
        injector.arm_everything(config.fault_probability, include_data_plane=False)
        injector.arm("link_flap", probability=config.fault_probability)
        injector.arm("backlog_overflow", probability=config.fault_probability)
        injector.arm("cpu_offline", probability=config.fault_probability / 4,
                     count=config.cpu_offline_faults)
        injector.arm("netlink_deliver", probability=config.fault_probability / 2, action="dup")

    with faults.injected(injector=injector):
        for index, burst in enumerate(bursts):
            event = hotplug_at.get(index)
            if event is not None:
                action, cpu = event
                try:
                    if action == "offline":
                        dut.cpu_offline(cpu)
                    else:
                        dut.cpu_online(cpu)
                    report.hotplug_events.append(f"{action}:cpu{cpu}@burst{index}")
                except ValueError as exc:
                    # e.g. a chaos fault already unplugged it, or it is the
                    # last CPU standing — an honest refusal, not a failure
                    report.hotplug_events.append(f"{action}:cpu{cpu}@burst{index}:refused({exc})")
            if config.reconfigure_every and index and index % config.reconfigure_every == 0:
                try:
                    _reconfigure(topo, config, rng, step=index // config.reconfigure_every)
                    report.reconfigurations += 1
                except faults.InjectedFault:
                    pass  # a config tool losing to chaos is part of the storm
                except Exception as exc:  # noqa: BLE001 — score it, don't die
                    report.unhandled_exceptions.append(f"reconfigure: {type(exc).__name__}: {exc}")
            try:
                topo.dut_in.nic.receive_burst(burst)
                report.injected += len(burst)
                report.bursts += 1
            except Exception as exc:  # noqa: BLE001 — the invariant under test
                report.unhandled_exceptions.append(f"burst{index}: {type(exc).__name__}: {exc}")
            topo.clock.advance(PHASE_ADVANCE_NS)
            try:
                topo.controller.tick()
            except Exception as exc:  # noqa: BLE001
                report.unhandled_exceptions.append(f"tick: {type(exc).__name__}: {exc}")
            tracker.observe()
            if index % 16 == 0:
                dut.run_housekeeping()

    # storm over, faults disarmed: reconverge
    for _ in range(RECONVERGE_ROUNDS):
        topo.clock.advance(RECONVERGE_STEP_NS)
        try:
            topo.controller.tick()
        except Exception as exc:  # noqa: BLE001
            report.unhandled_exceptions.append(f"reconverge-tick: {type(exc).__name__}: {exc}")
        tracker.observe()
        if topo.controller.health()["ok"]:
            break

    health = topo.controller.health()
    report.rx_packets = dut.stack.rx_packets
    report.tx_local_packets = dut.stack.tx_local_packets
    report.settled = dut.stack.settled
    report.pending = dut.stack.pending_packets()
    report.conserved = (
        report.rx_packets + report.tx_local_packets == report.settled + report.pending
    )
    report.drops_by_reason = dict(dut.stack.drops)
    from repro.observability.metrics import _incidents_by_kind

    report.incidents_by_kind = _incidents_by_kind(topo.controller)
    report.backlog_high_water = list(dut.softirq.backlog_high_water)
    report.backlog_drops = list(dut.softirq.backlog_drops)
    report.faults_fired = dict(Counter(site for site, _, _ in injector.fired))
    report.recovery_ns = tracker.recovery_ns
    report.final_health_ok = bool(health["ok"])
    report.quarantined = bool(health["quarantined"])
    report.recovered = report.final_health_ok or report.quarantined
    report.offline_cpus = list(health["offline_cpus"])
    return report


def write_report(reports: List[StormReport], path: str) -> Dict[str, object]:
    """Write the BENCH_reliability.json artifact (one entry per seed)."""
    payload = {
        "benchmark": "reliability",
        "runs": [r.to_dict() for r in reports],
        "all_ok": all(r.ok for r in reports),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return payload
