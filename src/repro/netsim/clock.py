"""The simulated nanosecond clock.

All performance results in this reproduction derive from simulated time:
every code path (the Linux slow path, the eBPF VM, the baseline platforms)
charges nanoseconds to a :class:`Clock`. Wall-clock time is only used for the
controller reaction-time experiment (Table VI), which measures our actual
synthesis/compile/load pipeline.
"""

from __future__ import annotations


class Clock:
    """Monotonic simulated clock with nanosecond resolution."""

    def __init__(self) -> None:
        self._now = 0.0  # float: sub-nanosecond charges must accumulate

    @property
    def now_ns(self) -> int:
        return int(self._now)

    @property
    def now_us(self) -> float:
        return self._now / 1e3

    @property
    def now_s(self) -> float:
        return self._now / 1e9

    def advance(self, ns: float) -> None:
        """Advance simulated time; fractional nanoseconds accumulate."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self._now += ns

    def advance_to(self, ns: float) -> None:
        """Jump forward to an absolute timestamp (no-op if already past it)."""
        if ns > self._now:
            self._now = float(ns)

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.1f}ns)"
