"""Simulated NICs and point-to-point wires.

A :class:`NIC` models a multi-queue network interface card. Frames arriving
from the wire are hashed onto an RX queue (RSS) and handed to whatever
*driver handler* is attached — normally the kernel's receive path, or a
kernel-bypass poller for the VPP baseline. Transmitted frames are forwarded
over the attached :class:`Wire` to the peer NIC.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.netsim.rss import IndirectionTable

# A driver handler receives (frame_bytes, rx_queue_index).
DriverHandler = Callable[[bytes, int], None]
# A burst handler receives a coalesced [(frame_bytes, rx_queue_index), ...].
BurstHandler = Callable[[List[tuple]], None]


class NIC:
    """A simulated multi-queue NIC."""

    def __init__(self, name: str, num_queues: int = 1) -> None:
        if num_queues < 1:
            raise ValueError("NIC needs at least one queue")
        self.name = name
        self.num_queues = num_queues
        self.indirection = IndirectionTable(num_queues)
        self.wire: Optional["Wire"] = None
        self._handler: Optional[DriverHandler] = None
        self._burst_handler: Optional[BurstHandler] = None
        self.rx_queues: List[Deque[bytes]] = [deque() for _ in range(num_queues)]
        self.stats = NICStats()
        # Kernel-bypass mode: frames are queued for polling instead of pushed.
        self.bypass = False
        # Frames still to drop because the driver is resetting its rings
        # (e.g. a native-mode XDP program replacement).
        self._reset_drops_remaining = 0

    def driver_reset(self, dropped_frames: int) -> None:
        """Simulate a driver ring reset: the next N arriving frames are lost."""
        self._reset_drops_remaining += dropped_frames

    def attach(self, handler: DriverHandler) -> None:
        """Install the driver handler invoked for each received frame.

        Clears any burst handler: swapping in a new per-frame handler (test
        blackholes, pktgen sinks) must not leave a stale burst path behind.
        """
        self._handler = handler
        self._burst_handler = None

    def attach_burst(self, handler: BurstHandler) -> None:
        """Install a handler for interrupt-coalesced bursts
        (:meth:`receive_burst`); per-frame delivery still uses the plain
        handler."""
        self._burst_handler = handler

    def set_bypass(self, enabled: bool) -> None:
        """Toggle kernel-bypass (DPDK-style) mode: frames queue for polling."""
        self.bypass = enabled

    def rss_queue(self, frame: bytes) -> int:
        """Pick an RX queue: Toeplitz-hash the 4-tuple, index the 128-entry
        indirection table with the hash's low-order bits."""
        if self.num_queues == 1:
            return 0
        return self.indirection.queue_for_frame(frame)

    def receive_from_wire(self, frame: bytes) -> None:
        """Called by the wire when a frame arrives at this NIC."""
        self.stats.rx_packets += 1
        self.stats.rx_bytes += len(frame)
        if self._reset_drops_remaining > 0:
            self._reset_drops_remaining -= 1
            self.stats.rx_reset_dropped += 1
            return
        queue = self.rss_queue(frame)
        if self.bypass or self._handler is None:
            self.rx_queues[queue].append(frame)
        else:
            self._handler(frame, queue)

    def receive_burst(self, frames: List[bytes]) -> None:
        """One interrupt-coalesced arrival: the whole batch is RSS-hashed and
        handed to the driver in a single NAPI-style poll, so downstream
        backlog bounds see the burst's full depth at once. Falls back to
        per-frame delivery when no burst handler is attached."""
        if self._burst_handler is None or self.bypass:
            for frame in frames:
                self.receive_from_wire(frame)
            return
        # Batched stats: one pair of counter updates for the whole burst.
        self.stats.rx_packets += len(frames)
        self.stats.rx_bytes += sum(len(frame) for frame in frames)
        if self._reset_drops_remaining > 0:
            kept = []
            for frame in frames:
                if self._reset_drops_remaining > 0:
                    self._reset_drops_remaining -= 1
                    self.stats.rx_reset_dropped += 1
                else:
                    kept.append(frame)
            frames = kept
        batch = [(frame, self.rss_queue(frame)) for frame in frames]
        if batch:
            self._burst_handler(batch)

    def poll(self, queue: int = 0, budget: int = 64) -> List[bytes]:
        """Drain up to ``budget`` frames from an RX queue (bypass mode)."""
        out: List[bytes] = []
        rx = self.rx_queues[queue]
        while rx and len(out) < budget:
            out.append(rx.popleft())
        return out

    def transmit(self, frame: bytes) -> None:
        """Send a frame out over the wire (dropped if unplugged)."""
        self.stats.tx_packets += 1
        self.stats.tx_bytes += len(frame)
        if self.wire is not None:
            self.wire.carry(self, frame)
        else:
            self.stats.tx_dropped += 1

    def __repr__(self) -> str:
        return f"NIC({self.name!r}, queues={self.num_queues})"


class NICStats:
    """Simple packet/byte counters for a NIC."""

    def __init__(self) -> None:
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_dropped = 0
        self.rx_reset_dropped = 0

    def __repr__(self) -> str:
        return (
            f"NICStats(rx={self.rx_packets}/{self.rx_bytes}B, "
            f"tx={self.tx_packets}/{self.tx_bytes}B, drop={self.tx_dropped})"
        )


class Wire:
    """A full-duplex point-to-point link between two NICs."""

    def __init__(self, a: NIC, b: NIC) -> None:
        if a.wire is not None or b.wire is not None:
            raise ValueError("NIC already wired")
        self.a = a
        self.b = b
        a.wire = self
        b.wire = self

    def carry(self, sender: NIC, frame: bytes) -> None:
        peer = self.b if sender is self.a else self.a
        peer.receive_from_wire(frame)

    def unplug(self) -> None:
        self.a.wire = None
        self.b.wire = None
