"""Simulated logical CPUs.

Multi-core throughput in this reproduction is *measured*, not modeled: every
cost charged while a CPU context is active (``CpuSet.on``) accumulates in
that CPU's busy-time counter, and a multi-core run's throughput is the
packet count divided by the *bottleneck* CPU's busy time. The shared
:class:`~repro.netsim.clock.Clock` still advances for every charge — it
orders timeouts and expiry globally — but per-CPU busy time is what scales
with parallelism.

The simulation is single-threaded, so "which CPU is executing right now" is
a simple context stack. The stack is simulation-global (module level): a
frame processed on DUT CPU 2 may synchronously cross a wire into the sink
kernel, whose own softirq context then pushes (sink, 0) on top — each
kernel's charges land on that kernel's innermost active CPU. Per-CPU map
flavours (:mod:`repro.ebpf.maps`) consult the *innermost* context of the
whole stack, matching "the CPU this helper call is executing on".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

#: The active (cpuset, cpu) contexts, innermost last. Single-threaded
#: simulation ⇒ a plain module-level stack is exact.
_ACTIVE: List[Tuple["CpuSet", int]] = []


def current_cpu() -> Optional[int]:
    """The CPU id of the innermost active context, or None (host/control
    context: the control plane, test setup, netlink handlers)."""
    return _ACTIVE[-1][1] if _ACTIVE else None


class CpuSet:
    """The logical CPUs of one simulated kernel.

    Tracks per-CPU busy nanoseconds and processed-packet counts. A
    ``num_cpus == 1`` CpuSet behaves exactly like the pre-multicore
    simulation: everything lands on CPU 0.
    """

    def __init__(self, num_cpus: int = 1) -> None:
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        self.num_cpus = num_cpus
        self.busy_ns: List[float] = [0.0] * num_cpus
        self.packets: List[int] = [0] * num_cpus
        # Hotplug state: a possible CPU that is offline keeps its counters
        # (busy time already spent is history) but must not execute anything
        # new — ``on()`` refuses it, so stray steering to a dead CPU is a
        # loud bug rather than silent misaccounting.
        self._online: List[bool] = [True] * num_cpus

    # ------------------------------------------------------------- hotplug

    def is_online(self, cpu: int) -> bool:
        return 0 <= cpu < self.num_cpus and self._online[cpu]

    def online_cpus(self) -> List[int]:
        """The online CPU ids, ascending (the dispatchable set)."""
        return [c for c in range(self.num_cpus) if self._online[c]]

    def offline_cpus(self) -> List[int]:
        return [c for c in range(self.num_cpus) if not self._online[c]]

    @property
    def num_online(self) -> int:
        return sum(self._online)

    def offline(self, cpu: int) -> None:
        """Mark ``cpu`` offline (``echo 0 > .../cpuN/online``).

        The caller (:meth:`repro.kernel.kernel.Kernel.cpu_offline`) is
        responsible for draining per-CPU work first; at this layer the only
        invariants are that the id exists, is not currently executing, and
        at least one CPU stays online.
        """
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"no CPU {cpu} in a {self.num_cpus}-CPU set")
        if not self._online[cpu]:
            return
        if self.num_online <= 1:
            raise ValueError("cannot offline the last online CPU")
        if any(owner is self and active == cpu for owner, active in _ACTIVE):
            raise ValueError(f"CPU {cpu} is currently executing")
        self._online[cpu] = False

    def online(self, cpu: int) -> None:
        """Bring a possible CPU back online."""
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"no CPU {cpu} in a {self.num_cpus}-CPU set")
        self._online[cpu] = True

    @contextmanager
    def on(self, cpu: int):
        """Execute the body on ``cpu``: charges to the owning kernel land in
        ``busy_ns[cpu]`` until the context exits (contexts nest)."""
        if not 0 <= cpu < self.num_cpus:
            raise ValueError(f"no CPU {cpu} in a {self.num_cpus}-CPU set")
        if not self._online[cpu]:
            raise ValueError(f"CPU {cpu} is offline")
        _ACTIVE.append((self, cpu))
        try:
            yield cpu
        finally:
            _ACTIVE.pop()

    @property
    def current_cpu(self) -> Optional[int]:
        """The innermost active CPU owned by *this* set (None when this
        kernel is running in host/control context)."""
        for owner, cpu in reversed(_ACTIVE):
            if owner is self:
                return cpu
        return None

    def charge(self, ns: float) -> None:
        """Account ``ns`` of work to this set's innermost active CPU.

        Charges outside any context are control-plane work and scale with
        none of the data-plane CPUs, so they are not accumulated here.
        """
        cpu = self.current_cpu
        if cpu is not None:
            self.busy_ns[cpu] += ns

    def reset_busy(self) -> None:
        """Zero the busy/packet counters (benchmark measurement windows)."""
        self.busy_ns = [0.0] * self.num_cpus
        self.packets = [0] * self.num_cpus

    @property
    def max_busy_ns(self) -> float:
        """The bottleneck CPU's busy time — the multi-core elapsed time."""
        return max(self.busy_ns)

    @property
    def total_busy_ns(self) -> float:
        return sum(self.busy_ns)

    def imbalance(self) -> float:
        """max/mean busy ratio (1.0 = perfectly balanced); 0 when idle.

        The mean is taken over *online* CPUs: after a hotplug offline the
        dead CPU stops accumulating busy time, and counting it in the mean
        would report phantom imbalance.
        """
        total = self.total_busy_ns
        if total <= 0:
            return 0.0
        return self.max_busy_ns / (total / max(1, self.num_online))

    def __repr__(self) -> str:
        return f"CpuSet(n={self.num_cpus}, busy={[int(b) for b in self.busy_ns]})"
