"""Flow-key extraction for the megaflow-style fast-path cache.

A flow key is the classic 5-tuple plus the ingress ifindex. Extraction is
deliberately conservative: anything the synthesized fast paths treat
specially per-packet (VLAN frames, fragments, non-TCP/UDP protocols, IP
options, truncated or corrupt headers) yields ``None`` and bypasses the
cache entirely — those packets always take the full FPM run, so a hostile
frame can never seed a cached verdict that later well-formed packets of the
"same" flow would inherit.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.netsim.checksum import internet_checksum

ETH_P_IP = 0x0800
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# eth(14) + ipv4 without options(20) + the 4 L4 bytes holding the ports
MIN_KEYABLE_LEN = 38


class FlowKey(NamedTuple):
    """(ingress ifindex, src, dst, proto, sport, dport) — dict-hashable."""

    ifindex: int
    src: int
    dst: int
    proto: int
    sport: int
    dport: int


def extract_flow_key(frame: bytes, ifindex: int) -> Optional[FlowKey]:
    """Extract a cacheable flow key, or ``None`` when the frame must bypass.

    Bypass conditions (each mirrors a per-packet decision in the FPM
    templates or a malformed-input hazard):

    - short frames (< eth + ip + ports);
    - non-IPv4 ethertype, including 802.1Q-tagged frames;
    - IHL != 5 (IP options change header offsets);
    - corrupt IPv4 header checksum (the slow path drops these as malformed;
      caching by a key derived from corrupt bytes would poison the flow);
    - fragments (MF flag or nonzero offset: later fragments share the first
      fragment's 5-tuple but lack L4 headers, and the router FPM punts all
      fragments to the slow path);
    - protocols other than TCP/UDP (ICMP etc. have no ports).
    """
    if len(frame) < MIN_KEYABLE_LEN:
        return None
    if frame[12] != 0x08 or frame[13] != 0x00:
        return None  # non-IPv4 (ARP, 802.1Q, garbage): always full run
    if frame[14] != 0x45:
        return None  # not IPv4, or IP options present
    if internet_checksum(frame[14:34]) != 0:
        return None  # corrupt header: slow path drops, never cache
    if ((frame[20] << 8) | frame[21]) & 0x3FFF:
        return None  # MF flag or fragment offset set
    proto = frame[23]
    if proto != IPPROTO_TCP and proto != IPPROTO_UDP:
        return None
    return FlowKey(
        ifindex,
        int.from_bytes(frame[26:30], "big"),
        int.from_bytes(frame[30:34], "big"),
        proto,
        (frame[34] << 8) | frame[35],
        (frame[36] << 8) | frame[37],
    )
