"""Call-frame profiler for flame graphs (paper Fig 1).

The simulated kernel pipeline wraps each processing stage in
``profiler.frame(name)``. When enabled, the profiler records one *sample* per
completed packet: the multiset of stacks that were active while the packet
was processed, weighted by the simulated nanoseconds spent in each frame.
``collapsed()`` emits Brendan-Gregg-style collapsed stack lines suitable for
flame graph rendering.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.netsim.clock import Clock


class _NullFrame:
    """A reusable no-op context manager: the profiler's fast path.

    Entering a generator-based ``@contextmanager`` costs a generator frame
    per call; on the batched fast path every packet crosses several
    profiler frames, so the disabled case returns this shared singleton
    instead.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_FRAME = _NullFrame()


class Profiler:
    """Records weighted call stacks against a simulated clock."""

    def __init__(self, clock: Clock, enabled: bool = False) -> None:
        self.clock = clock
        self.enabled = enabled
        self._stack: List[str] = []
        self._samples: Counter = Counter()  # tuple(stack) -> weight_ns
        # Observability taps, wired by the kernel: the packet tracer records
        # stage names on traced packets; the stage observer feeds the per-stage
        # latency histograms. Both run regardless of `enabled` (flame-graph
        # sampling stays opt-in; histograms/tracing have their own switches).
        self.tracer = None
        self.stage_observer: Optional[Callable[[str, int], None]] = None

    def frame(self, name: str):
        """Push ``name`` for the duration of the block, charging elapsed ns.

        When sampling is off, no stage observer is wired, and no trace is
        recording, this is a shared no-op context — zero bookkeeping on the
        fast path.
        """
        tracer = self.tracer
        if (
            not self.enabled
            and self.stage_observer is None
            and (tracer is None or not tracer.recording)
        ):
            return _NULL_FRAME
        return self._frame(name)

    @contextmanager
    def _frame(self, name: str) -> Iterator[None]:
        tracer = self.tracer
        if tracer is not None and tracer.recording:
            tracer.event("stage", name)
        observer = self.stage_observer
        if not self.enabled and observer is None:
            yield
            return
        if self.enabled:
            self._stack.append(name)
        start = self.clock.now_ns
        try:
            yield
        finally:
            elapsed = self.clock.now_ns - start
            if elapsed > 0:
                if self.enabled and self._stack and self._stack[-1] == name:
                    self._samples[tuple(self._stack)] += elapsed
                if observer is not None:
                    observer(name, elapsed)
            if self.enabled and self._stack and self._stack[-1] == name:
                self._stack.pop()

    def reset(self) -> None:
        """Drop recorded samples. Safe mid-packet: the live frame chain is
        preserved so in-flight ``frame()`` exits still pop their own entry."""
        self._samples.clear()

    @property
    def samples(self) -> Dict[Tuple[str, ...], int]:
        return dict(self._samples)

    def self_weights(self) -> Dict[Tuple[str, ...], int]:
        """Per-stack *self* time: frame time minus time attributed to children.

        One pass over the samples builds a parent → summed-child-time index,
        so this is O(n) in the number of distinct stacks rather than the
        O(n²) all-pairs prefix scan it replaces.
        """
        child_totals: Dict[Tuple[str, ...], int] = {}
        for stack, total in self._samples.items():
            if len(stack) > 1:
                parent = stack[:-1]
                child_totals[parent] = child_totals.get(parent, 0) + total
        return {
            stack: max(0, total - child_totals.get(stack, 0))
            for stack, total in self._samples.items()
        }

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines: ``a;b;c <self_ns>`` sorted by weight desc."""
        lines = [
            (";".join(stack), weight)
            for stack, weight in self.self_weights().items()
            if weight > 0
        ]
        lines.sort(key=lambda item: (-item[1], item[0]))
        return [f"{stack} {weight}" for stack, weight in lines]

    def hottest(self, top: int = 5) -> List[Tuple[str, int]]:
        """The ``top`` hottest leaf frames by self time."""
        leaf_weights: Counter = Counter()
        for stack, weight in self.self_weights().items():
            leaf_weights[stack[-1]] += weight
        return leaf_weights.most_common(top)

    def total_ns(self) -> int:
        """Total self time across all recorded stacks."""
        return sum(self.self_weights().values())
