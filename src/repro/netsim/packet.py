"""Byte-accurate packet headers: Ethernet, 802.1Q, ARP, IPv4, TCP, UDP, ICMP.

Each header is a dataclass with ``pack()`` → bytes and ``parse(data)`` →
(header, remainder). :class:`Packet` is the convenience container used by the
simulator: it assembles a full frame from stacked headers and can re-parse a
frame from raw bytes, which is what the eBPF fast path operates on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

from repro.netsim.addresses import IPv4Addr, MacAddr, ipv4, mac
from repro.netsim.checksum import internet_checksum, pseudo_header

# EtherTypes
ETH_P_IP = 0x0800
ETH_P_ARP = 0x0806
ETH_P_8021Q = 0x8100

# IP protocol numbers
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# ARP opcodes
ARP_REQUEST = 1
ARP_REPLY = 2

# ICMP types
ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11


class PacketError(ValueError):
    """Raised when a frame cannot be parsed."""


@dataclass
class Ethernet:
    """Ethernet II header (14 bytes)."""

    dst: MacAddr
    src: MacAddr
    ethertype: int = ETH_P_IP

    HDR_LEN = 14

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def parse(cls, data: bytes) -> Tuple["Ethernet", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated Ethernet header")
        dst = MacAddr.from_bytes(data[0:6])
        src = MacAddr.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst, src, ethertype), data[14:]


@dataclass
class VlanTag:
    """An 802.1Q VLAN tag (4 bytes, follows the Ethernet src/dst)."""

    vid: int
    pcp: int = 0
    ethertype: int = ETH_P_IP  # encapsulated ethertype

    HDR_LEN = 4

    def __post_init__(self) -> None:
        if not 0 <= self.vid <= 4095:
            raise PacketError(f"bad VLAN id {self.vid}")
        if not 0 <= self.pcp <= 7:
            raise PacketError(f"bad VLAN priority {self.pcp}")

    def pack(self) -> bytes:
        tci = (self.pcp << 13) | self.vid
        return struct.pack("!HH", tci, self.ethertype)

    @classmethod
    def parse(cls, data: bytes) -> Tuple["VlanTag", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated VLAN tag")
        tci, ethertype = struct.unpack("!HH", data[0:4])
        return cls(vid=tci & 0x0FFF, pcp=tci >> 13, ethertype=ethertype), data[4:]


@dataclass
class ARP:
    """ARP header for IPv4 over Ethernet (28 bytes)."""

    opcode: int
    sender_mac: MacAddr
    sender_ip: IPv4Addr
    target_mac: MacAddr
    target_ip: IPv4Addr

    HDR_LEN = 28

    def pack(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, ETH_P_IP, 6, 4, self.opcode)
            + self.sender_mac.to_bytes()
            + self.sender_ip.to_bytes()
            + self.target_mac.to_bytes()
            + self.target_ip.to_bytes()
        )

    @classmethod
    def parse(cls, data: bytes) -> Tuple["ARP", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated ARP header")
        htype, ptype, hlen, plen, opcode = struct.unpack("!HHBBH", data[0:8])
        if (htype, ptype, hlen, plen) != (1, ETH_P_IP, 6, 4):
            raise PacketError("unsupported ARP header")
        return (
            cls(
                opcode=opcode,
                sender_mac=MacAddr.from_bytes(data[8:14]),
                sender_ip=IPv4Addr.from_bytes(data[14:18]),
                target_mac=MacAddr.from_bytes(data[18:24]),
                target_ip=IPv4Addr.from_bytes(data[24:28]),
            ),
            data[28:],
        )


@dataclass
class IPv4:
    """IPv4 header (20 bytes; options unsupported by the simulator)."""

    src: IPv4Addr
    dst: IPv4Addr
    proto: int = IPPROTO_UDP
    ttl: int = 64
    tos: int = 0
    ident: int = 0
    flags: int = 0  # bit 1 = DF, bit 0 (of the 3-bit field LSB) = MF
    frag_offset: int = 0
    total_length: int = 0  # filled in by pack() when zero

    HDR_LEN = 20

    def pack(self, payload_len: int = 0) -> bytes:
        total = self.total_length or (self.HDR_LEN + payload_len)
        flags_frag = (self.flags << 13) | self.frag_offset
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.tos,
            total,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes) -> Tuple["IPv4", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated IPv4 header")
        ver_ihl = data[0]
        version, ihl = ver_ihl >> 4, (ver_ihl & 0x0F) * 4
        if version != 4:
            raise PacketError(f"not IPv4 (version={version})")
        if ihl < cls.HDR_LEN or len(data) < ihl:
            raise PacketError("bad IPv4 IHL")
        (
            __,
            tos,
            total,
            ident,
            flags_frag,
            ttl,
            proto,
            __,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[0:20])
        if internet_checksum(data[:ihl]) != 0:
            raise PacketError("bad IPv4 checksum")
        hdr = cls(
            src=IPv4Addr.from_bytes(src),
            dst=IPv4Addr.from_bytes(dst),
            proto=proto,
            ttl=ttl,
            tos=tos,
            ident=ident,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            total_length=total,
        )
        return hdr, data[ihl:]

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & 0x1)

    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.frag_offset != 0

    def decrement_ttl(self) -> "IPv4":
        return replace(self, ttl=self.ttl - 1)


@dataclass
class UDP:
    """UDP header (8 bytes)."""

    sport: int
    dport: int
    length: int = 0  # filled in by pack() when zero

    HDR_LEN = 8

    def pack(self, payload: bytes = b"", src: Optional[IPv4Addr] = None, dst: Optional[IPv4Addr] = None) -> bytes:
        length = self.length or (self.HDR_LEN + len(payload))
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        checksum = 0
        if src is not None and dst is not None:
            pseudo = pseudo_header(src.to_bytes(), dst.to_bytes(), IPPROTO_UDP, length)
            checksum = internet_checksum(pseudo + header + payload) or 0xFFFF
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def parse(cls, data: bytes) -> Tuple["UDP", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated UDP header")
        sport, dport, length, __ = struct.unpack("!HHHH", data[0:8])
        return cls(sport, dport, length), data[8:]


@dataclass
class TCP:
    """TCP header (20 bytes; options unsupported by the simulator)."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    HDR_LEN = 20

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    def pack(self, payload: bytes = b"", src: Optional[IPv4Addr] = None, dst: Optional[IPv4Addr] = None) -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            5 << 4,
            self.flags,
            self.window,
            0,
            0,
        )
        checksum = 0
        if src is not None and dst is not None:
            pseudo = pseudo_header(src.to_bytes(), dst.to_bytes(), IPPROTO_TCP, len(header) + len(payload))
            checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def parse(cls, data: bytes) -> Tuple["TCP", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated TCP header")
        sport, dport, seq, ack, offset_byte, flags, window, __, __ = struct.unpack(
            "!HHIIBBHHH", data[0:20]
        )
        data_offset = (offset_byte >> 4) * 4
        if data_offset < cls.HDR_LEN or len(data) < data_offset:
            raise PacketError("bad TCP data offset")
        return cls(sport, dport, seq, ack, flags, window), data[data_offset:]

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)


@dataclass
class ICMP:
    """ICMP header (8 bytes: type, code, checksum, rest-of-header)."""

    icmp_type: int
    code: int = 0
    ident: int = 0
    seq: int = 0

    HDR_LEN = 8

    def pack(self, payload: bytes = b"") -> bytes:
        header = struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.ident, self.seq)
        checksum = internet_checksum(header + payload)
        return header[:2] + struct.pack("!H", checksum) + header[4:]

    @classmethod
    def parse(cls, data: bytes) -> Tuple["ICMP", bytes]:
        if len(data) < cls.HDR_LEN:
            raise PacketError("truncated ICMP header")
        icmp_type, code, __, ident, seq = struct.unpack("!BBHHH", data[0:8])
        return cls(icmp_type, code, ident, seq), data[8:]


L3Header = Union[ARP, IPv4]
L4Header = Union[TCP, UDP, ICMP]


@dataclass
class Packet:
    """A fully-parsed frame: stacked headers plus opaque payload bytes.

    ``Packet`` is the view used by the slow path (analogous to parsed
    ``sk_buff`` fields); the raw frame from :meth:`to_bytes` is what XDP-level
    code sees.
    """

    eth: Ethernet
    vlan: Optional[VlanTag] = None
    ip: Optional[IPv4] = None
    arp: Optional[ARP] = None
    l4: Optional[L4Header] = None
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize the frame, recomputing lengths and checksums."""
        parts: List[bytes] = []
        l4_bytes = b""
        if self.l4 is not None:
            if self.ip is None:
                raise PacketError("L4 header without IPv4 header")
            if isinstance(self.l4, UDP):
                l4_bytes = self.l4.pack(self.payload, self.ip.src, self.ip.dst)
            elif isinstance(self.l4, TCP):
                l4_bytes = self.l4.pack(self.payload, self.ip.src, self.ip.dst)
            else:
                l4_bytes = self.l4.pack(self.payload)
        body = l4_bytes + self.payload

        if self.arp is not None:
            parts.append(self.arp.pack())
        elif self.ip is not None:
            parts.append(self.ip.pack(payload_len=len(body)))
            parts.append(body)
        else:
            parts.append(self.payload)

        inner = b"".join(parts)
        # Derive the payload ethertype from content so that adding/stripping
        # a VLAN tag after parsing still serializes correctly.
        inner_type = self.eth.ethertype
        if self.arp is not None:
            inner_type = ETH_P_ARP
        elif self.ip is not None:
            inner_type = ETH_P_IP
        elif inner_type == ETH_P_8021Q and self.vlan is not None:
            inner_type = self.vlan.ethertype
        if self.vlan is not None:
            eth = Ethernet(self.eth.dst, self.eth.src, ETH_P_8021Q)
            tag = replace(self.vlan, ethertype=inner_type)
            return eth.pack() + tag.pack() + inner
        return Ethernet(self.eth.dst, self.eth.src, inner_type).pack() + inner

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        """Parse a raw frame into stacked headers.

        Parsing runs over a ``memoryview`` so the remainder handed from
        layer to layer is an O(1) slice instead of a copy of the frame's
        tail at every header boundary; only the final payload is
        materialized as ``bytes``.
        """
        view = memoryview(data)
        eth, rest = Ethernet.parse(view)
        vlan: Optional[VlanTag] = None
        ethertype = eth.ethertype
        if ethertype == ETH_P_8021Q:
            vlan, rest = VlanTag.parse(rest)
            ethertype = vlan.ethertype

        pkt = cls(eth=eth, vlan=vlan)
        if ethertype == ETH_P_ARP:
            pkt.arp, rest = ARP.parse(rest)
            pkt.payload = bytes(rest)
            return pkt
        if ethertype != ETH_P_IP:
            pkt.payload = bytes(rest)
            return pkt

        pkt.ip, rest = IPv4.parse(rest)
        # Trim any Ethernet padding beyond the IP total length.
        body_len = pkt.ip.total_length - IPv4.HDR_LEN
        rest = rest[:body_len]
        if pkt.ip.is_fragment and pkt.ip.frag_offset != 0:
            pkt.payload = bytes(rest)
            return pkt
        if pkt.ip.proto == IPPROTO_UDP:
            pkt.l4, tail = UDP.parse(rest)
            pkt.payload = bytes(tail)
        elif pkt.ip.proto == IPPROTO_TCP:
            pkt.l4, tail = TCP.parse(rest)
            pkt.payload = bytes(tail)
        elif pkt.ip.proto == IPPROTO_ICMP:
            pkt.l4, tail = ICMP.parse(rest)
            pkt.payload = bytes(tail)
        else:
            pkt.payload = bytes(rest)
        return pkt

    @property
    def frame_len(self) -> int:
        return len(self.to_bytes())

    def clone(self) -> "Packet":
        return Packet.from_bytes(self.to_bytes())


def make_udp(
    src_mac: Union[str, MacAddr],
    dst_mac: Union[str, MacAddr],
    src_ip: Union[str, IPv4Addr],
    dst_ip: Union[str, IPv4Addr],
    sport: int = 1234,
    dport: int = 5678,
    payload: bytes = b"",
    ttl: int = 64,
    vlan: Optional[int] = None,
) -> Packet:
    """Convenience constructor for a UDP-over-IPv4 Ethernet frame."""
    return Packet(
        eth=Ethernet(dst=mac(dst_mac), src=mac(src_mac), ethertype=ETH_P_IP),
        vlan=VlanTag(vid=vlan) if vlan is not None else None,
        ip=IPv4(src=ipv4(src_ip), dst=ipv4(dst_ip), proto=IPPROTO_UDP, ttl=ttl),
        l4=UDP(sport=sport, dport=dport),
        payload=payload,
    )


def make_tcp(
    src_mac: Union[str, MacAddr],
    dst_mac: Union[str, MacAddr],
    src_ip: Union[str, IPv4Addr],
    dst_ip: Union[str, IPv4Addr],
    sport: int = 1234,
    dport: int = 5678,
    flags: int = TCP.ACK,
    payload: bytes = b"",
    ttl: int = 64,
) -> Packet:
    """Convenience constructor for a TCP-over-IPv4 Ethernet frame."""
    return Packet(
        eth=Ethernet(dst=mac(dst_mac), src=mac(src_mac), ethertype=ETH_P_IP),
        ip=IPv4(src=ipv4(src_ip), dst=ipv4(dst_ip), proto=IPPROTO_TCP, ttl=ttl),
        l4=TCP(sport=sport, dport=dport, flags=flags),
        payload=payload,
    )


def make_arp_request(
    sender_mac: Union[str, MacAddr],
    sender_ip: Union[str, IPv4Addr],
    target_ip: Union[str, IPv4Addr],
) -> Packet:
    """An ARP who-has broadcast frame."""
    smac = mac(sender_mac)
    return Packet(
        eth=Ethernet(dst=MacAddr.broadcast(), src=smac, ethertype=ETH_P_ARP),
        arp=ARP(
            opcode=ARP_REQUEST,
            sender_mac=smac,
            sender_ip=ipv4(sender_ip),
            target_mac=MacAddr(0),
            target_ip=ipv4(target_ip),
        ),
    )


def make_arp_reply(
    sender_mac: Union[str, MacAddr],
    sender_ip: Union[str, IPv4Addr],
    target_mac: Union[str, MacAddr],
    target_ip: Union[str, IPv4Addr],
) -> Packet:
    """A unicast ARP is-at reply frame."""
    smac, tmac = mac(sender_mac), mac(target_mac)
    return Packet(
        eth=Ethernet(dst=tmac, src=smac, ethertype=ETH_P_ARP),
        arp=ARP(
            opcode=ARP_REPLY,
            sender_mac=smac,
            sender_ip=ipv4(sender_ip),
            target_mac=tmac,
            target_ip=ipv4(target_ip),
        ),
    )
