"""Network simulation substrate: addresses, packets, NICs, time and cost model.

This package provides the low-level building blocks shared by the simulated
Linux kernel (:mod:`repro.kernel`), the eBPF runtime (:mod:`repro.ebpf`) and
the measurement harness (:mod:`repro.measure`):

- :mod:`repro.netsim.addresses` — MAC/IPv4 address and prefix types.
- :mod:`repro.netsim.packet` — byte-accurate Ethernet/VLAN/ARP/IPv4/TCP/UDP/
  ICMP headers with pack/parse round-tripping.
- :mod:`repro.netsim.skbuff` — the ``sk_buff``-like packet descriptor.
- :mod:`repro.netsim.nic` — simulated NICs, queues, and wires between hosts.
- :mod:`repro.netsim.clock` / :mod:`repro.netsim.cost` — the simulated
  nanosecond clock and the calibrated per-operation cost model that all
  throughput/latency results derive from.
- :mod:`repro.netsim.profiler` — call-frame recording for flame graphs.
"""

from repro.netsim.addresses import MacAddr, IPv4Addr, IPv4Prefix
from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel
from repro.netsim.packet import (
    ARP,
    ICMP,
    IPv4,
    TCP,
    UDP,
    Ethernet,
    Packet,
    VlanTag,
)
from repro.netsim.skbuff import SKBuff
from repro.netsim.nic import NIC, Wire
from repro.netsim.profiler import Profiler

__all__ = [
    "MacAddr",
    "IPv4Addr",
    "IPv4Prefix",
    "Clock",
    "CostModel",
    "Ethernet",
    "VlanTag",
    "ARP",
    "IPv4",
    "TCP",
    "UDP",
    "ICMP",
    "Packet",
    "SKBuff",
    "NIC",
    "Wire",
    "Profiler",
]
