"""The calibrated per-operation cost model.

Each constant is the simulated cost in nanoseconds of one operation on one
core. The calibration targets the *shapes* reported in the LinuxFP paper
(ICDCS 2024) on CloudLab c6525-25g hosts:

- Linux kernel forwarding ≈ 1.0 Mpps/core (sum of the slow-path stage costs);
- the synthesized XDP fast path ≈ 1.77 Mpps/core (77 % faster, Fig 5 /
  Table VII);
- TC-hook fast paths pay sk_buff allocation and early-stack costs on top
  (Table VII);
- iptables evaluation is linear in the rule count (Fig 8), ipset is O(1);
- tail calls cost ~1 % of a typical fast path per call (Fig 10);
- VPP amortizes per-packet overhead over a vector of packets (Fig 5/6/7).

All values are plain attributes so experiments and tests can override them on
an instance without monkey-patching the module.
"""

from __future__ import annotations

from dataclasses import dataclass

@dataclass
class CostModel:
    """Per-operation simulated costs (nanoseconds unless noted)."""

    # --- NIC / driver ---
    driver_rx: float = 150.0          # DMA + descriptor handling, per packet
    driver_tx: float = 90.0           # TX descriptor + doorbell
    byte_touch: float = 0.012         # per-byte cost of copying/checksumming

    # --- Linux slow path stages ---
    # Calibrated so the full forwarding path (incl. one netfilter hook) sums
    # to ~1000 ns → 1.0 Mpps/core, giving the paper's 1.77x fast-path ratio.
    skb_alloc: float = 180.0          # allocate + populate sk_buff
    skb_free: float = 40.0
    netif_receive: float = 40.0       # __netif_receive_skb_core dispatch
    ip_rcv: float = 70.0              # validation, checksum, pskb_may_pull
    ip_forward: float = 60.0          # TTL, dst handling
    fib_lookup: float = 120.0         # fib_table_lookup (LPM)
    neigh_lookup: float = 50.0        # neighbor table hit
    ip_output: float = 50.0           # ip_output/ip_finish_output
    dev_queue_xmit: float = 140.0     # qdisc + driver handoff
    local_deliver: float = 150.0      # ip_local_deliver + socket demux
    socket_wakeup: float = 350.0      # scheduling a blocked reader
    bridge_rx: float = 350.0          # br_handle_frame + br_netfilter hooks
    bridge_fdb_lookup: float = 200.0  # hash lookup under the bridge lock
    bridge_fdb_learn: float = 150.0   # learning/refresh (cache-line dirtying)
    bridge_vlan_filter: float = 30.0
    bridge_stp_check: float = 15.0
    nf_hook_overhead: float = 50.0    # per traversed netfilter hook
    nf_rule_cost: float = 2.0         # per linearly-scanned iptables rule
    ipset_lookup: float = 20.0        # hash set membership test
    conntrack_lookup: float = 120.0
    conntrack_create: float = 300.0
    ipvs_schedule: float = 180.0
    vxlan_encap: float = 220.0        # encap/decap for overlay networking
    veth_xmit: float = 120.0          # veth pair crossing (incl. softirq)

    # --- eBPF runtime ---
    ebpf_insn: float = 0.2            # per executed instruction: JITed eBPF
                                      # on a 4-wide ~3 GHz core retires
                                      # several insns/cycle, and our naive
                                      # codegen's spill/reload traffic is
                                      # store-forwarded (~free) on real CPUs
    ebpf_prog_entry: float = 25.0     # dispatch into a loaded program
    ebpf_tail_call: float = 6.0       # prog_array tail call (Fig 10)
    ebpf_map_lookup: float = 35.0     # generic hash map lookup
    ebpf_map_update: float = 55.0
    ebpf_lpm_lookup: float = 70.0     # LPM trie map walk
    helper_fib_lookup: float = 150.0  # bpf_fib_lookup (kernel FIB + neigh)
    helper_fdb_lookup: float = 65.0   # bpf_fdb_lookup (paper's new helper;
                                      # called twice per frame: src + dst)
    helper_ipt_base: float = 45.0     # bpf_ipt_lookup fixed cost
    helper_ipt_per_rule: float = 2.0  # + linear scan, same as the kernel
    helper_ipset_lookup: float = 40.0  # bpf_ipt_lookup hitting an ipset rule
    helper_conntrack: float = 110.0
    xdp_redirect: float = 100.0       # ndo_xdp_xmit path
    xdp_pass_to_stack: float = 90.0   # convert xdp_buff → sk_buff (extra)
    tc_redirect: float = 160.0        # tc egress redirect

    # --- batched fast path ---
    # NAPI-budget batching and the bytecode→Python JIT amortize *host*
    # interpreter overhead (wall clock), not simulated work: every packet
    # still charges its full per-packet costs above, so batched and
    # per-frame runs read identical simulated clocks. That cost parity is
    # a tested invariant (tests/ebpf/test_jit_differential.py), which is
    # why there is deliberately no "batched driver_rx discount" here.

    # --- multi-core data plane (Documentation/networking/scaling.rst) ---
    rss_hash: float = 0.0             # Toeplitz is computed by NIC hardware
    rps_steer: float = 30.0           # get_rps_cpu: flow hash + table lookup
    rps_ipi: float = 120.0            # cross-CPU backlog enqueue + IPI wakeup
    cross_cpu_lock: float = 90.0      # contended cacheline bounce on a shared
                                      # (non-per-CPU) map mutation

    # --- megaflow-style flow cache (extension beyond the paper) ---
    flow_cache_lookup: float = 40.0   # hash + gen revalidation + replay
    flow_cache_insert: float = 25.0   # record an entry after a full run

    # --- Polycube-style platform (custom maps, tail-call chaining) ---
    polycube_map_ctrl_sync: float = 30.0  # per-packet cost of custom map state
    polycube_classifier: float = 95.0     # bitvector classification (rule-count ~flat)
    polycube_classifier_per_rule: float = 0.06

    # --- VPP-style platform (userspace, DPDK-like, vector processing) ---
    vpp_vector_size: int = 256            # packets per vector (not ns)
    vpp_per_vector_overhead: float = 9000.0  # poll + graph dispatch per vector
    vpp_per_packet: float = 240.0         # per-packet work inside nodes
    vpp_per_rule: float = 0.35            # ACL plugin per-rule cost

    # --- Link model ---
    line_rate_gbps: float = 25.0
    framing_overhead_bytes: int = 20      # preamble + IFG + FCS per frame
    wire_latency_ns: float = 300.0        # one-way propagation per hop

    # --- Containers ---
    container_netns_switch: float = 180.0
    app_rr_turnaround_ns: float = 18000.0  # netperf-style app think time per RR

    def line_rate_pps(self, frame_len: int) -> float:
        """Maximum packets/s at line rate for a given frame length."""
        bits = (frame_len + self.framing_overhead_bytes) * 8
        return self.line_rate_gbps * 1e9 / bits

    def copy(self) -> "CostModel":
        return CostModel(**vars(self))


DEFAULT_COSTS = CostModel()
