"""Receive-side scaling: Toeplitz hashing and the RSS indirection table.

Models the hardware half of ``Documentation/networking/scaling.rst``: the
NIC computes a Toeplitz hash over the packet's 4-tuple (source address,
destination address, source port, destination port, in network byte order),
masks the low-order seven bits, and uses them as an index into a 128-entry
indirection table whose entries store RX queue numbers.

The kernel half (RPS-style flow steering onto CPUs) lives in
:mod:`repro.kernel.softirq`; it uses the *symmetric* variant below so both
directions of a flow steer to the same CPU — which the sharded conntrack
relies on (an IDS-style symmetric-RSS configuration, per scaling.rst).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

#: The Microsoft RSS verification-suite key (the de-facto standard default).
TOEPLITZ_KEY = bytes(
    (
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    )
)

INDIRECTION_TABLE_SIZE = 128  # "the most common hardware implementation"

# Frame offsets for option-less IPv4 over untagged Ethernet.
_ETH_P_IP = 0x0800
_IPPROTO_TCP = 6
_IPPROTO_UDP = 17


@lru_cache(maxsize=65536)
def toeplitz_hash(data: bytes, key: bytes = TOEPLITZ_KEY) -> int:
    """The 32-bit Toeplitz hash of ``data`` under ``key``.

    For each set bit of the input (MSB first), XOR in the 32-bit window of
    the key starting at that bit position. Matches the Microsoft RSS
    verification suite (e.g. src 66.9.149.187:2794 → dst 161.142.100.80:1766
    hashes to 0x51ccc178 with ports, 0x323e8fc2 without).
    """
    need = len(data) + 4
    reps = (need + len(key) - 1) // len(key)
    key_int = int.from_bytes((key * reps)[:need], "big")
    total_bits = need * 8
    result = 0
    for i, byte in enumerate(data):
        if not byte:
            continue
        base = i * 8
        for bit in range(8):
            if byte & (0x80 >> bit):
                result ^= (key_int >> (total_bits - 32 - base - bit)) & 0xFFFFFFFF
    return result


def rss_input(frame: bytes) -> Optional[bytes]:
    """The NIC's hash input for a frame: src ip | dst ip | sport | dport.

    Returns None for frames RSS cannot classify (non-IPv4, IP options,
    fragments, non-TCP/UDP) — hardware falls back to a 2-tuple or a single
    queue; we fall back to hashing the addressing bytes (:func:`l2_input`).
    """
    if len(frame) < 38:
        return None
    if frame[12] != 0x08 or frame[13] != 0x00:
        return None
    if frame[14] != 0x45:
        return None  # options shift the L4 offsets
    if ((frame[20] << 8) | frame[21]) & 0x3FFF:
        return None  # fragments lack L4 headers past the first
    proto = frame[23]
    if proto != _IPPROTO_TCP and proto != _IPPROTO_UDP:
        return None
    return bytes(frame[26:34]) + bytes(frame[34:38])


def l2_input(frame: bytes) -> bytes:
    """Fallback hash input: destination + source MAC."""
    return bytes(frame[0:12]) if len(frame) >= 12 else bytes(frame)


def symmetric_flow_hash(src: int, dst: int, proto: int, sport: int, dport: int) -> int:
    """A direction-insensitive flow hash for RPS steering and shard choice.

    Canonicalizes the (addr, port) endpoint pair by sorting before hashing,
    so a flow and its reply traffic produce the same value — both directions
    of a connection are processed on one CPU and land in one conntrack
    shard.
    """
    a = (src & 0xFFFFFFFF, sport & 0xFFFF)
    b = (dst & 0xFFFFFFFF, dport & 0xFFFF)
    lo, hi = (a, b) if a <= b else (b, a)
    data = (
        lo[0].to_bytes(4, "big") + hi[0].to_bytes(4, "big")
        + lo[1].to_bytes(2, "big") + hi[1].to_bytes(2, "big")
        + bytes((proto & 0xFF,))
    )
    return toeplitz_hash(data)


class IndirectionTable:
    """The 128-entry RSS indirection table of one NIC.

    Entries hold RX queue numbers; the default population spreads queues
    round-robin, which is how drivers initialize the table (``ethtool -x``).
    """

    def __init__(self, num_queues: int, size: int = INDIRECTION_TABLE_SIZE) -> None:
        if num_queues < 1 or size < 1:
            raise ValueError("indirection table needs >= 1 queue and entry")
        self.num_queues = num_queues
        self.table: List[int] = [i % num_queues for i in range(size)]

    def set_entry(self, index: int, queue: int) -> None:
        """Repoint one entry (``ethtool -X weight``-style reconfiguration)."""
        if not 0 <= queue < self.num_queues:
            raise ValueError(f"queue {queue} out of range")
        self.table[index % len(self.table)] = queue

    def retarget(self, dead_queues, live_queues) -> int:
        """Repoint every entry on a dead queue round-robin over the live
        ones (the ``ethtool -X`` an operator — or the hotplug path — issues
        when a queue's CPU goes away). Returns entries repointed."""
        dead = set(dead_queues)
        live = [q for q in live_queues if q not in dead]
        if not live:
            raise ValueError("indirection retarget needs at least one live queue")
        moved = 0
        for index, queue in enumerate(self.table):
            if queue in dead:
                self.table[index] = live[moved % len(live)]
                moved += 1
        return moved

    def reset(self) -> None:
        """Restore the default round-robin spread over every queue."""
        self.table = [i % self.num_queues for i in range(len(self.table))]

    def queue_for(self, hash32: int) -> int:
        """Mask the low-order bits of the hash and read the entry."""
        return self.table[hash32 & (len(self.table) - 1)]

    def queue_for_frame(self, frame: bytes) -> int:
        tuple_input = rss_input(frame)
        data = tuple_input if tuple_input is not None else l2_input(frame)
        return self.queue_for(toeplitz_hash(data))
