"""MAC and IPv4 address types used throughout the simulator.

Addresses are small immutable value objects wrapping an integer. They are
hashable (usable as FIB/FDB keys), render in the conventional textual forms,
and convert to/from wire bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


class AddressError(ValueError):
    """Raised for malformed address or prefix input."""


@dataclass(frozen=True, order=True)
class MacAddr:
    """A 48-bit Ethernet MAC address."""

    value: int

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __post_init__(self) -> None:
        if not 0 <= self.value <= self.BROADCAST_VALUE:
            raise AddressError(f"MAC value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddr":
        """Parse ``aa:bb:cc:dd:ee:ff`` notation."""
        parts = text.split(":")
        if len(parts) != 6:
            raise AddressError(f"bad MAC address: {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError:
            raise AddressError(f"bad MAC address: {text!r}") from None
        if any(not 0 <= o <= 0xFF for o in octets):
            raise AddressError(f"bad MAC address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddr":
        if len(data) != 6:
            raise AddressError(f"MAC needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def broadcast(cls) -> "MacAddr":
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_index(cls, index: int, oui: int = 0x02_00_00) -> "MacAddr":
        """Deterministically derive a locally-administered MAC from an index."""
        if not 0 <= index <= 0xFFFFFF:
            raise AddressError(f"MAC index out of range: {index}")
        return cls((oui << 24) | index)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit of the first octet is set (includes broadcast)."""
        return bool((self.value >> 40) & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"MacAddr({str(self)!r})"


@dataclass(frozen=True, order=True)
class IPv4Addr:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"IPv4 value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Addr":
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"bad IPv4 address: {text!r}")
        try:
            octets = [int(p, 10) for p in parts]
        except ValueError:
            raise AddressError(f"bad IPv4 address: {text!r}") from None
        if any(not 0 <= o <= 255 for o in octets):
            raise AddressError(f"bad IPv4 address: {text!r}")
        return cls((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3])

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Addr":
        if len(data) != 4:
            raise AddressError(f"IPv4 needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == 0xFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        return 0xE0000000 <= self.value <= 0xEFFFFFFF

    @property
    def is_loopback(self) -> bool:
        return (self.value >> 24) == 127

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"IPv4Addr({str(self)!r})"


AddrLike = Union[str, int, IPv4Addr]


def ipv4(value: AddrLike) -> IPv4Addr:
    """Coerce a string, int, or IPv4Addr into an IPv4Addr."""
    if isinstance(value, IPv4Addr):
        return value
    if isinstance(value, int):
        return IPv4Addr(value)
    return IPv4Addr.parse(value)


def mac(value: Union[str, int, MacAddr]) -> MacAddr:
    """Coerce a string, int, or MacAddr into a MacAddr."""
    if isinstance(value, MacAddr):
        return value
    if isinstance(value, int):
        return MacAddr(value)
    return MacAddr.parse(value)


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """An IPv4 network prefix (CIDR), normalized to its network address."""

    address: IPv4Addr
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"bad prefix length: {self.length}")
        masked = self.address.value & self.mask_value()
        if masked != self.address.value:
            object.__setattr__(self, "address", IPv4Addr(masked))

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len``; a bare address parses as a /32."""
        if "/" in text:
            addr_text, __, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError(f"bad prefix: {text!r}") from None
        else:
            addr_text, length = text, 32
        return cls(IPv4Addr.parse(addr_text), length)

    def mask_value(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def netmask(self) -> IPv4Addr:
        return IPv4Addr(self.mask_value())

    @property
    def broadcast(self) -> IPv4Addr:
        return IPv4Addr(self.address.value | (~self.mask_value() & 0xFFFFFFFF))

    def contains(self, addr: AddrLike) -> bool:
        return (ipv4(addr).value & self.mask_value()) == self.address.value

    def overlaps(self, other: "IPv4Prefix") -> bool:
        shorter = self if self.length <= other.length else other
        longer = other if shorter is self else self
        return shorter.contains(longer.address)

    def hosts(self) -> Iterator[IPv4Addr]:
        """Iterate usable host addresses (excludes network/broadcast for len<31)."""
        first = self.address.value
        last = self.broadcast.value
        if self.length < 31:
            first += 1
            last -= 1
        for value in range(first, last + 1):
            yield IPv4Addr(value)

    def host(self, index: int) -> IPv4Addr:
        """The index-th host address (1-based within the subnet)."""
        value = self.address.value + index
        if value > self.broadcast.value:
            raise AddressError(f"host index {index} outside {self}")
        return IPv4Addr(value)

    def __str__(self) -> str:
        return f"{self.address}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"


def prefix(value: Union[str, IPv4Prefix]) -> IPv4Prefix:
    """Coerce a string or IPv4Prefix into an IPv4Prefix."""
    if isinstance(value, IPv4Prefix):
        return value
    return IPv4Prefix.parse(value)


@dataclass(frozen=True, order=True)
class IfAddr:
    """An interface address: a host address *plus* its prefix length.

    Unlike :class:`IPv4Prefix` this is NOT normalized — ``10.0.0.1/24``
    keeps the host part (the interface's own address) while ``network``
    yields the covering ``10.0.0.0/24`` prefix.
    """

    address: IPv4Addr
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"bad prefix length: {self.length}")

    @classmethod
    def parse(cls, text: str) -> "IfAddr":
        if "/" in text:
            addr_text, __, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError(f"bad interface address: {text!r}") from None
        else:
            addr_text, length = text, 32
        return cls(IPv4Addr.parse(addr_text), length)

    @property
    def network(self) -> IPv4Prefix:
        return IPv4Prefix(self.address, self.length)

    @property
    def broadcast(self) -> IPv4Addr:
        return self.network.broadcast

    def __str__(self) -> str:
        return f"{self.address}/{self.length}"


def ifaddr(value: Union[str, "IfAddr"]) -> "IfAddr":
    """Coerce a string or IfAddr into an IfAddr."""
    if isinstance(value, IfAddr):
        return value
    return IfAddr.parse(value)
