"""The ``sk_buff``-like packet descriptor used by the simulated kernel.

An :class:`SKBuff` wraps a parsed :class:`~repro.netsim.packet.Packet`
together with the metadata the Linux stack tracks per packet (input
interface, bridge/VLAN context, conntrack pointer, etc.). XDP programs run
*before* an SKBuff exists and see only the raw frame bytes; TC programs see
the SKBuff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.netsim.packet import Packet


@dataclass
class SKBuff:
    """Kernel packet descriptor."""

    pkt: Packet
    ifindex: int = 0                  # receiving interface index
    rx_queue: int = 0
    vlan_tci: Optional[int] = None    # VLAN tag stripped by the "hardware"
    bridge_port: Optional[int] = None  # set while traversing a bridge
    conntrack: Optional[object] = None
    mark: int = 0
    priority: int = 0
    # Free-form scratch space (mirrors skb->cb) used by encapsulation layers.
    cb: Dict[str, Any] = field(default_factory=dict)
    # Set when the packet reached its terminal in the stack's ledger; a
    # settled skb re-entering a terminal (drained neighbor queue, fragment
    # piece) must not be counted twice.
    accounted: bool = False
    # Memoized wire image of `pkt` (the skb_linearize analogue): TC hooks,
    # the MTU check, and dev_queue_xmit all need the serialized frame, and
    # without the memo each re-serializes the same unmodified packet. Always
    # equal to pkt.to_bytes(); every pkt mutation must invalidate_wire().
    _wire: Optional[bytes] = field(default=None, repr=False, compare=False)

    @property
    def frame_len(self) -> int:
        if self._wire is not None:
            return len(self._wire)
        return self.pkt.frame_len

    def wire_frame(self) -> bytes:
        """``pkt.to_bytes()``, memoized until the packet is next mutated."""
        if self._wire is None:
            self._wire = self.pkt.to_bytes()
        return self._wire

    def invalidate_wire(self) -> None:
        """Drop the memoized wire image (call after any ``pkt`` mutation)."""
        self._wire = None

    def clone(self) -> "SKBuff":
        return SKBuff(
            pkt=self.pkt.clone(),
            ifindex=self.ifindex,
            rx_queue=self.rx_queue,
            vlan_tci=self.vlan_tci,
            bridge_port=self.bridge_port,
            conntrack=self.conntrack,
            mark=self.mark,
            priority=self.priority,
            cb=dict(self.cb),
        )
