"""Seeded, deterministic fault injection for the LinuxFP control plane.

The controller's reliability story ("the slow path is always there to fall
back on") is only credible if every failure mode of the deploy pipeline is
exercised. This module provides kernel-style *fail points*: named injection
sites compiled into the production modules, plus an injector that decides —
deterministically, from a seed — whether a given site fires.

Sites
-----

========================  ====================================================
``compile``               :func:`repro.ebpf.minic.compile_c` (synthesis and
                          dispatcher builds)
``verify``                :func:`repro.ebpf.verifier.verify` (every load
                          re-verifies, as in Linux)
``optimize``              :func:`repro.ebpf.analysis.opt.engine.
                          optimize_program`: the superoptimizer pass fails
                          mid-flight. The engine is fail-closed — the
                          interface still deploys, serving the unoptimized
                          bytecode (no degradation, only a lost win)
``load``                  :meth:`repro.ebpf.loader.Loader.load` (the
                          ``bpf(BPF_PROG_LOAD)`` step)
``prog_array``            :meth:`~repro.ebpf.maps.ProgArray.set_prog` (the
                          atomic slot update; clearing a slot never fails,
                          matching real prog-array delete semantics)
``map_update``            hash/array/LPM map updates
``netlink_deliver``       multicast notification delivery; actions are
                          ``drop`` (the message is lost and the socket's
                          overrun flag is raised — real netlink ENOBUFS
                          semantics: there is no *silent* loss) and ``dup``
                          (the message is delivered twice)
``link_flap``             device transmit (veth/physical): the frame is lost
                          as if the carrier dropped for an instant; the
                          device records a ``dev_link_down`` drop reason, so
                          the loss is visible, never silent
``backlog_overflow``      softirq enqueue (:meth:`repro.kernel.softirq.
                          SoftirqSet.enqueue`): the frame is refused as if
                          the target CPU's backlog were at
                          ``netdev_max_backlog``; accounted as a
                          ``backlog_overflow`` drop (action ``drop``)
``cpu_offline``           softirq dispatch: the frame's target CPU is
                          hot-unplugged mid-traffic
                          (:meth:`repro.kernel.kernel.Kernel.cpu_offline`);
                          never fires on the last online CPU (action
                          ``offline``)
``router_kill``           cluster: a fleet gateway loses power
                          (:meth:`repro.cluster.fleet.AnycastFleet.
                          kill_router` consults this site); its NICs stop
                          delivering received frames (action ``kill``)
``partition``             cluster: asymmetric partition — health probes
                          toward the matched router are lost while its data
                          plane keeps forwarding (action ``drop``)
``probe_flap``            cluster: one BFD-style health probe is lost
                          without any underlying failure, exercising the
                          detect-multiplier debounce (action ``miss``)
========================  ====================================================

``link_flap``/``backlog_overflow``/``cpu_offline`` (the :data:`DATA_SITES`)
perturb the *data plane*, so :meth:`FaultInjector.arm_everything` skips them
by default — control-plane chaos must not silently turn into packet loss in
differential suites that assert fast-vs-slow output equivalence. Arm them
explicitly (or pass ``include_data_plane=True``) in suites that assert the
conservation ledger instead of per-packet equality.

Usage::

    from repro.testing import faults

    with faults.injected(seed=42) as inj:
        inj.arm("verify", count=1)          # next verify raises InjectedFault
        inj.arm("netlink_deliver", probability=0.2, action="drop")
        ...exercise the controller...
    assert inj.fired_at("verify")

The injector is process-global while installed (like kernel fail points);
the context manager guarantees removal. All randomness flows from the seed,
so a chaos run replays exactly.
"""

from __future__ import annotations

import random
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

SITES = (
    "compile",
    "verify",
    "optimize",
    "load",
    "prog_array",
    "map_update",
    "netlink_deliver",
    "link_flap",
    "backlog_overflow",
    "cpu_offline",
    "router_kill",
    "partition",
    "probe_flap",
)

#: Data-plane sites: firing one loses/perturbs *packets*, not control-plane
#: work. Excluded from :meth:`FaultInjector.arm_everything` unless asked for.
DATA_SITES = frozenset({"link_flap", "backlog_overflow", "cpu_offline"})

#: Cluster sites: fleet-level chaos (dead routers, partitions, probe loss).
#: They only make sense on a multi-router topology, so the failover harness
#: arms them explicitly; :meth:`FaultInjector.arm_everything` always skips
#: them (a single-gateway chaos run has no routers to kill).
CLUSTER_SITES = frozenset({"router_kill", "partition", "probe_flap"})

#: Valid actions per cluster site.
CLUSTER_SITE_ACTIONS = {
    "router_kill": ("kill",),
    "partition": ("drop",),
    "probe_flap": ("miss",),
}

#: Sites whose armed action is raising :class:`InjectedFault` at the caller.
RAISE_SITES = frozenset(
    s for s in SITES if s != "netlink_deliver" and s not in DATA_SITES and s not in CLUSTER_SITES
)

#: Valid actions for the ``netlink_deliver`` site.
NETLINK_ACTIONS = ("drop", "dup")

#: Valid actions per data-plane site.
DATA_SITE_ACTIONS = {
    "link_flap": ("drop",),
    "backlog_overflow": ("drop",),
    "cpu_offline": ("offline",),
}

#: Valid actions for the ``link_flap`` site (kept for suites that import it).
LINK_FLAP_ACTIONS = DATA_SITE_ACTIONS["link_flap"]


class InjectedFault(RuntimeError):
    """The failure an armed raising site produces."""

    def __init__(self, site: str, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"injected fault at {site}{suffix}")
        self.site = site
        self.detail = detail


@dataclass
class _Arm:
    site: str
    probability: float
    remaining: Optional[int]  # None = unlimited fires
    match: Optional[str]  # substring filter on the site detail
    action: str


class FaultInjector:
    """Decides, deterministically from a seed, which site evaluations fail."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._arms: List[_Arm] = []
        self.fired: List[Tuple[str, str, str]] = []  # (site, detail, action)
        self.evaluated: Counter = Counter()  # site -> times consulted

    # ----------------------------------------------------------------- arming

    def arm(
        self,
        site: str,
        *,
        probability: float = 1.0,
        count: Optional[int] = None,
        match: Optional[str] = None,
        action: Optional[str] = None,
    ) -> _Arm:
        """Arm ``site``: each evaluation fails with ``probability``, at most
        ``count`` times (None = forever), only when ``match`` (a substring)
        appears in the site detail. ``action`` is meaningful only for
        ``netlink_deliver`` (``drop``/``dup``; default ``drop``)."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r} (sites: {', '.join(SITES)})")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if site in RAISE_SITES:
            if action not in (None, "raise"):
                raise ValueError(f"site {site!r} only supports action 'raise'")
            action = "raise"
        elif site in DATA_SITES:
            valid = DATA_SITE_ACTIONS[site]
            action = action or valid[0]
            if action not in valid:
                raise ValueError(f"{site} action must be one of {valid}")
        elif site in CLUSTER_SITES:
            valid = CLUSTER_SITE_ACTIONS[site]
            action = action or valid[0]
            if action not in valid:
                raise ValueError(f"{site} action must be one of {valid}")
        else:
            action = action or "drop"
            if action not in NETLINK_ACTIONS:
                raise ValueError(f"netlink_deliver action must be one of {NETLINK_ACTIONS}")
        arm = _Arm(site=site, probability=probability, remaining=count, match=match, action=action)
        self._arms.append(arm)
        return arm

    def arm_everything(
        self,
        probability: float,
        count: Optional[int] = None,
        include_data_plane: bool = False,
    ) -> None:
        """Chaos mode: every control-plane site armed at the same probability.

        Data-plane sites (``link_flap``, ``backlog_overflow``,
        ``cpu_offline``) drop packets or unplug CPUs, which would make the
        chaos suites' fast-vs-slow equivalence assertions diverge for reasons
        unrelated to the control plane — opt in with ``include_data_plane``.
        Cluster sites (``router_kill``, ``partition``, ``probe_flap``) are
        always skipped: they only exist on multi-router fleets, which arm
        them explicitly.
        """
        for site in SITES:
            if site in CLUSTER_SITES:
                continue
            if site in DATA_SITES and not include_data_plane:
                continue
            self.arm(site, probability=probability, count=count)

    def disarm(self, site: Optional[str] = None) -> None:
        """Remove arms for ``site``, or every arm when ``site`` is None."""
        if site is None:
            self._arms = []
        else:
            self._arms = [a for a in self._arms if a.site != site]

    # --------------------------------------------------------------- deciding

    def decide(self, site: str, detail: str = "") -> Optional[str]:
        """The action for this evaluation (``None`` = proceed normally)."""
        self.evaluated[site] += 1
        for arm in self._arms:
            if arm.site != site:
                continue
            if arm.match is not None and arm.match not in detail:
                continue
            if arm.remaining is not None and arm.remaining <= 0:
                continue
            if arm.probability < 1.0 and self.rng.random() >= arm.probability:
                continue
            if arm.remaining is not None:
                arm.remaining -= 1
            self.fired.append((site, detail, arm.action))
            return arm.action
        return None

    def fired_at(self, site: str) -> List[Tuple[str, str, str]]:
        return [f for f in self.fired if f[0] == site]


# The installed injector. Module-global (like kernel fail points): sites are
# scattered across subsystems and must not need plumbing to reach it.
_active: Optional[FaultInjector] = None


def active() -> bool:
    return _active is not None


def current() -> Optional[FaultInjector]:
    return _active


def install(injector: FaultInjector) -> FaultInjector:
    global _active
    _active = injector
    return injector


def uninstall() -> None:
    global _active
    _active = None


@contextmanager
def injected(seed: int = 0, injector: Optional[FaultInjector] = None) -> Iterator[FaultInjector]:
    """Install an injector for the duration of the block."""
    inj = injector if injector is not None else FaultInjector(seed)
    install(inj)
    try:
        yield inj
    finally:
        uninstall()


def decide(site: str, detail: str = "") -> Optional[str]:
    """Site hook for non-raising sites (netlink delivery)."""
    if _active is None:
        return None
    return _active.decide(site, detail)


def fire(site: str, detail: str = "") -> None:
    """Site hook for raising sites: raises :class:`InjectedFault` when armed."""
    if _active is None:
        return
    if _active.decide(site, detail) is not None:
        raise InjectedFault(site, detail)
