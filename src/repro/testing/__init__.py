"""Test-support machinery shipped with the package.

:mod:`repro.testing.faults` is the seeded fault-injection framework the
robustness and chaos suites drive. It lives under ``src`` (not ``tests``)
because the injection *sites* are compiled into the production modules —
exactly like the kernel's own fail-points — and because operators can use
it for game-day drills against a running simulation.
"""
