"""XDP and TC attachment wrappers.

These adapt a verified :class:`~repro.ebpf.program.Program` to the kernel's
hook contract (:mod:`repro.kernel.hooks_api`). Entry ABI (a documented
simplification of the real ctx structs): R1 = packet pointer, R2 = packet
length, R3 = ingress ifindex. Programs may rewrite the packet in place;
aborts (memory violations and the like) become drops, as with
``XDP_ABORTED``, flagged on the result so drop accounting can tell a fault
from a policy verdict.

When the kernel carries an enabled :class:`~repro.ebpf.jit.JitEngine`,
invocations route through it instead of a fresh interpreter: compiled
programs run specialized, everything else falls back to the interpreter
with identical observable behavior. Programs whose whole tail-call chain
is compiled *and* provably never writes the packet additionally run
zero-copy: the hook wraps the wire frame in a read-only region instead of
copying it into a ``bytearray``, and hands the original frame object
onward (the XDP_TX/REDIRECT "frame recycling" analogue).
"""

from __future__ import annotations


from repro.ebpf.memory import Pointer, Region
from repro.ebpf.program import HOOK_TC, HOOK_XDP, Program
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel.hooks_api import (
    TC_ACT_REDIRECT,
    TC_ACT_SHOT,
    TcResult,
    XDP_ABORTED,
    XDP_REDIRECT,
    XdpResult,
)
from repro.testing import faults


def _observe_fpm(kernel, name: str, elapsed_ns: int) -> None:
    obs = getattr(kernel, "observability", None)
    if obs is None:
        return
    obs.record_fpm(name, elapsed_ns)
    if obs.tracer.recording:
        obs.tracer.event("fpm", name)


def _jit_engine(kernel):
    """The kernel's JIT engine when present and enabled, else None."""
    engine = getattr(kernel, "jit", None)
    if engine is not None and engine.enabled:
        return engine
    return None


class XdpAttachment:
    """An XDP-hook driver program (runs on the raw frame, pre-sk_buff)."""

    def __init__(self, program: Program) -> None:
        if program.hook != HOOK_XDP:
            raise ValueError(f"{program.name} is not an XDP program")
        self.program = program
        self.invocations = 0
        self.aborts = 0

    def run_xdp(self, kernel, dev, frame: bytes, env: "Env" = None) -> XdpResult:
        engine = _jit_engine(kernel)
        zero_copy = engine is not None and engine.zero_copy_ok(self.program)
        return self._invoke(kernel, dev, frame, env, engine, zero_copy)

    def run_xdp_burst(self, kernel, dev, frames, queue: int = 0) -> list:
        """Run the program over a burst of frames (GRO/XDP-bulk analogue).

        The per-invocation setup that is loop-invariant — engine lookup and
        the zero-copy chain fact — is resolved once for the whole burst.
        """
        engine = _jit_engine(kernel)
        zero_copy = engine is not None and engine.zero_copy_ok(self.program)
        return [
            self._invoke(kernel, dev, frame, None, engine, zero_copy)
            for frame in frames
        ]

    def _invoke(self, kernel, dev, frame, env, engine, zero_copy) -> XdpResult:
        self.invocations += 1
        if zero_copy:
            # Whole reachable chain is compiled and read-only: run straight
            # over the wire bytes, no defensive copy in or out.
            region = Region("pkt", frame, writable=False)
            engine.stats["zero_copy_frames"] += 1
        else:
            region = Region("pkt", bytearray(frame))
        if env is None:
            env = Env(kernel, redirect_verdict=XDP_REDIRECT)
        args = [Pointer(region, 0), len(frame), dev.ifindex]
        t0 = kernel.clock.now_ns
        try:
            if engine is not None:
                verdict, executed = engine.execute(self.program, args, env)
            else:
                vm = VM(kernel)
                verdict = vm.run(self.program, args, env)
                executed = vm.insns_executed
        except (VMError, faults.InjectedFault):
            # InjectedFault: a fault site fired inside a map op that the
            # helper layer doesn't absorb; treated exactly like a runtime
            # abort so nothing ever escapes the hook.
            self.aborts += 1
            env.aborted = True
            _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
            return XdpResult(XDP_ABORTED, frame, aborted=True)
        _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
        env.insns_executed = executed
        from repro.ebpf.af_xdp import XDP_REDIRECT_XSK
        from repro.kernel.hooks_api import XDP_CONSUMED

        out = frame if zero_copy else bytes(region.data)
        if verdict == XDP_REDIRECT_XSK and env.xsk_socket is not None:
            env.xsk_socket.push_rx(out)
            return XdpResult(XDP_CONSUMED, out)
        return XdpResult(int(verdict), out, env.redirect_ifindex)


class TcAttachment:
    """A TC-hook program (runs with sk_buff context)."""

    def __init__(self, program: Program) -> None:
        if program.hook != HOOK_TC:
            raise ValueError(f"{program.name} is not a TC program")
        self.program = program
        self.invocations = 0
        self.aborts = 0

    def run_tc(self, kernel, dev, skb, env: "Env" = None) -> TcResult:
        self.invocations += 1
        wire = getattr(skb, "wire_frame", None)
        frame = wire() if wire is not None else skb.pkt.to_bytes()
        engine = _jit_engine(kernel)
        zero_copy = engine is not None and engine.zero_copy_ok(self.program)
        if zero_copy:
            # to_bytes() already produced fresh bytes; skip the bytearray
            # copy in and the bytes() copy out.
            region = Region("pkt", frame, writable=False)
            engine.stats["zero_copy_frames"] += 1
        else:
            region = Region("pkt", bytearray(frame))
        if env is None:
            env = Env(kernel, redirect_verdict=TC_ACT_REDIRECT)
        args = [Pointer(region, 0), len(frame), skb.ifindex]
        t0 = kernel.clock.now_ns
        try:
            if engine is not None:
                verdict, executed = engine.execute(self.program, args, env)
            else:
                vm = VM(kernel)
                verdict = vm.run(self.program, args, env)
                executed = vm.insns_executed
        except (VMError, faults.InjectedFault):
            self.aborts += 1
            env.aborted = True
            _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
            return TcResult(TC_ACT_SHOT, frame, aborted=True)
        _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
        env.insns_executed = executed
        out = frame if zero_copy else bytes(region.data)
        return TcResult(int(verdict), out, env.redirect_ifindex)
