"""XDP and TC attachment wrappers.

These adapt a verified :class:`~repro.ebpf.program.Program` to the kernel's
hook contract (:mod:`repro.kernel.hooks_api`). Entry ABI (a documented
simplification of the real ctx structs): R1 = packet pointer, R2 = packet
length, R3 = ingress ifindex. Programs may rewrite the packet in place;
aborts (memory violations and the like) become drops, as with
``XDP_ABORTED``, flagged on the result so drop accounting can tell a fault
from a policy verdict.
"""

from __future__ import annotations


from repro.ebpf.memory import Pointer, Region
from repro.ebpf.program import HOOK_TC, HOOK_XDP, Program
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel.hooks_api import (
    TC_ACT_REDIRECT,
    TC_ACT_SHOT,
    TcResult,
    XDP_ABORTED,
    XDP_REDIRECT,
    XdpResult,
)
from repro.testing import faults


def _observe_fpm(kernel, name: str, elapsed_ns: int) -> None:
    obs = getattr(kernel, "observability", None)
    if obs is None:
        return
    obs.record_fpm(name, elapsed_ns)
    if obs.tracer.recording:
        obs.tracer.event("fpm", name)


class XdpAttachment:
    """An XDP-hook driver program (runs on the raw frame, pre-sk_buff)."""

    def __init__(self, program: Program) -> None:
        if program.hook != HOOK_XDP:
            raise ValueError(f"{program.name} is not an XDP program")
        self.program = program
        self.invocations = 0
        self.aborts = 0

    def run_xdp(self, kernel, dev, frame: bytes, env: "Env" = None) -> XdpResult:
        self.invocations += 1
        region = Region("pkt", bytearray(frame))
        if env is None:
            env = Env(kernel, redirect_verdict=XDP_REDIRECT)
        vm = VM(kernel)
        t0 = kernel.clock.now_ns
        try:
            verdict = vm.run(self.program, [Pointer(region, 0), len(frame), dev.ifindex], env)
        except (VMError, faults.InjectedFault):
            # InjectedFault: a fault site fired inside a map op that the
            # helper layer doesn't absorb; treated exactly like a runtime
            # abort so nothing ever escapes the hook.
            self.aborts += 1
            env.aborted = True
            _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
            return XdpResult(XDP_ABORTED, frame, aborted=True)
        _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
        env.insns_executed = vm.insns_executed
        from repro.ebpf.af_xdp import XDP_REDIRECT_XSK
        from repro.kernel.hooks_api import XDP_CONSUMED

        if verdict == XDP_REDIRECT_XSK and env.xsk_socket is not None:
            env.xsk_socket.push_rx(bytes(region.data))
            return XdpResult(XDP_CONSUMED, bytes(region.data))
        return XdpResult(int(verdict), bytes(region.data), env.redirect_ifindex)


class TcAttachment:
    """A TC-hook program (runs with sk_buff context)."""

    def __init__(self, program: Program) -> None:
        if program.hook != HOOK_TC:
            raise ValueError(f"{program.name} is not a TC program")
        self.program = program
        self.invocations = 0
        self.aborts = 0

    def run_tc(self, kernel, dev, skb, env: "Env" = None) -> TcResult:
        self.invocations += 1
        frame = skb.pkt.to_bytes()
        region = Region("pkt", bytearray(frame))
        if env is None:
            env = Env(kernel, redirect_verdict=TC_ACT_REDIRECT)
        vm = VM(kernel)
        t0 = kernel.clock.now_ns
        try:
            verdict = vm.run(self.program, [Pointer(region, 0), len(frame), skb.ifindex], env)
        except (VMError, faults.InjectedFault):
            self.aborts += 1
            env.aborted = True
            _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
            return TcResult(TC_ACT_SHOT, frame, aborted=True)
        _observe_fpm(kernel, self.program.name, kernel.clock.now_ns - t0)
        env.insns_executed = vm.insns_executed
        return TcResult(int(verdict), bytes(region.data), env.redirect_ifindex)
