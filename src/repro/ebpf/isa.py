"""The eBPF-like instruction set.

Eleven registers (R0…R10) as in real eBPF: R0 holds return values, R1–R5
carry call arguments, R6–R9 are callee-preserved scratch, and R10 is the
read-only frame pointer. Instructions are a fixed 5-field record
``(op, dst, src, off, imm)``. The opcode set is a cleaned-up analogue of
eBPF's: ALU64 ops, sized loads/stores, conditional jumps, helper calls,
tail calls, and exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
NUM_REGS = 11
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(NUM_REGS)

MASK64 = (1 << 64) - 1


class Op(enum.Enum):
    # moves
    MOV_IMM = "mov_imm"      # dst = imm
    MOV_REG = "mov_reg"      # dst = src
    # ALU (64-bit, immediate and register forms)
    ADD_IMM = "add_imm"
    ADD_REG = "add_reg"
    SUB_IMM = "sub_imm"
    SUB_REG = "sub_reg"
    MUL_IMM = "mul_imm"
    MUL_REG = "mul_reg"
    DIV_IMM = "div_imm"      # unsigned; div by zero yields 0 (eBPF semantics)
    DIV_REG = "div_reg"
    MOD_IMM = "mod_imm"
    MOD_REG = "mod_reg"
    AND_IMM = "and_imm"
    AND_REG = "and_reg"
    OR_IMM = "or_imm"
    OR_REG = "or_reg"
    XOR_IMM = "xor_imm"
    XOR_REG = "xor_reg"
    LSH_IMM = "lsh_imm"
    LSH_REG = "lsh_reg"
    RSH_IMM = "rsh_imm"
    RSH_REG = "rsh_reg"
    NEG = "neg"
    # memory: size in imm (1, 2, 4, 8); big-endian (network order) accessors
    LDX = "ldx"              # dst = *(size*)(src + off)
    STX = "stx"              # *(size*)(dst + off) = src
    ST_IMM = "st_imm"        # *(size*)(dst + off) = imm  (size in src field)
    # jumps: relative offset in off (target = pc + 1 + off)
    JA = "ja"
    JEQ_IMM = "jeq_imm"
    JEQ_REG = "jeq_reg"
    JNE_IMM = "jne_imm"
    JNE_REG = "jne_reg"
    JGT_IMM = "jgt_imm"
    JGT_REG = "jgt_reg"
    JGE_IMM = "jge_imm"
    JGE_REG = "jge_reg"
    JLT_IMM = "jlt_imm"
    JLT_REG = "jlt_reg"
    JLE_IMM = "jle_imm"
    JLE_REG = "jle_reg"
    JSET_IMM = "jset_imm"    # jump if dst & imm
    # map reference (like LD_IMM64 with a map-fd relocation)
    LD_MAP = "ld_map"        # dst = program.maps[imm]
    # calls
    CALL = "call"            # helper id in imm
    TAIL_CALL = "tail_call"  # prog array fd in src-reg convention: r1=ctx, r2=map, r3=index
    EXIT = "exit"


ALU_IMM_OPS = {
    Op.ADD_IMM, Op.SUB_IMM, Op.MUL_IMM, Op.DIV_IMM, Op.MOD_IMM, Op.AND_IMM,
    Op.OR_IMM, Op.XOR_IMM, Op.LSH_IMM, Op.RSH_IMM,
}
ALU_REG_OPS = {
    Op.ADD_REG, Op.SUB_REG, Op.MUL_REG, Op.DIV_REG, Op.MOD_REG, Op.AND_REG,
    Op.OR_REG, Op.XOR_REG, Op.LSH_REG, Op.RSH_REG,
}
JMP_IMM_OPS = {Op.JEQ_IMM, Op.JNE_IMM, Op.JGT_IMM, Op.JGE_IMM, Op.JLT_IMM, Op.JLE_IMM, Op.JSET_IMM}
JMP_REG_OPS = {Op.JEQ_REG, Op.JNE_REG, Op.JGT_REG, Op.JGE_REG, Op.JLT_REG, Op.JLE_REG}
JUMP_OPS = JMP_IMM_OPS | JMP_REG_OPS | {Op.JA}
MEM_SIZES = (1, 2, 4, 8)


@dataclass
class Insn:
    """One instruction: ``(op, dst, src, off, imm)``."""

    op: Op
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0
    # populated by the assembler/compiler for diagnostics
    comment: str = ""

    def __repr__(self) -> str:
        parts = [self.op.value, f"dst=r{self.dst}"]
        if self.op in ALU_REG_OPS or self.op in JMP_REG_OPS or self.op in (Op.MOV_REG, Op.LDX, Op.STX):
            parts.append(f"src=r{self.src}")
        if self.off:
            parts.append(f"off={self.off}")
        if self.imm:
            parts.append(f"imm={self.imm:#x}" if abs(self.imm) > 9 else f"imm={self.imm}")
        text = " ".join(parts)
        if self.comment:
            text += f"  ; {self.comment}"
        return f"<{text}>"


def mov_imm(dst: int, imm: int, comment: str = "") -> Insn:
    return Insn(Op.MOV_IMM, dst=dst, imm=imm, comment=comment)


def mov_reg(dst: int, src: int, comment: str = "") -> Insn:
    return Insn(Op.MOV_REG, dst=dst, src=src, comment=comment)


def exit_(comment: str = "") -> Insn:
    return Insn(Op.EXIT, comment=comment)


def call(helper_id: int, comment: str = "") -> Insn:
    return Insn(Op.CALL, imm=helper_id, comment=comment)


def ldx(dst: int, src: int, off: int, size: int, comment: str = "") -> Insn:
    return Insn(Op.LDX, dst=dst, src=src, off=off, imm=size, comment=comment)


def stx(dst: int, src: int, off: int, size: int, comment: str = "") -> Insn:
    return Insn(Op.STX, dst=dst, src=src, off=off, imm=size, comment=comment)
