"""The JIT engine: per-kernel unit cache and the chained executor.

One :class:`JitEngine` hangs off each kernel (``kernel.jit``). It owns

- the compiled-unit cache (keyed by program identity, LRU-bounded, with
  strong references so ``id()`` reuse cannot alias two programs);
- the run loop that chains compiled units across tail calls, resuming in
  the interpreter mid-chain when a tail target failed to compile (state
  hands over losslessly because compiled code operates on the same
  ``Region``/``Pointer`` values the interpreter uses);
- the *chain facts* the zero-copy path needs: whether any program
  reachable through a prog array may write the packet, cached against
  :class:`ProgArray` version counters so fast-path swaps invalidate it.

The engine is fail-closed at every decision point: compilation failure,
an unexpected entry ABI, or an uncompilable tail target all land back on
the interpreter with observationally identical results.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.ebpf.jit.compiler import CompiledUnit, JitReport, _JitHalt, compile_program
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.vm import STACK_SIZE, TAIL_CALL_LIMIT, VM, VMError

__all__ = ["JitEngine", "jit_env_default"]


def jit_env_default() -> bool:
    """The ``LINUXFP_JIT`` opt-in, mirroring ``LINUXFP_OPT``'s idiom."""
    return os.environ.get("LINUXFP_JIT", "").lower() in ("1", "true", "on")


def _noop_charge(ns: float) -> None:
    return None


class JitEngine:
    """Compiles and runs FPM programs; one instance per kernel."""

    MAX_UNITS = 256

    def __init__(self, kernel, enabled: Optional[bool] = None) -> None:
        self.kernel = kernel
        self.enabled = jit_env_default() if enabled is None else enabled
        # id(program) -> (program, unit|None, report); strong program refs
        self._units: "OrderedDict[int, Tuple[object, Optional[CompiledUnit], JitReport]]" = OrderedDict()
        # id(program) -> (program, [(ProgArray, version)], writes_packet)
        self._chain_facts: Dict[int, Tuple[object, List[Tuple[ProgArray, int]], bool]] = {}
        self.stats = {
            "compiled": 0,
            "fallbacks": 0,
            "jit_runs": 0,
            "interp_runs": 0,
            "zero_copy_frames": 0,
        }

    # -------------------------------------------------------------- cache

    def _record(self, program) -> Tuple[Optional[CompiledUnit], JitReport]:
        key = id(program)
        rec = self._units.get(key)
        if rec is not None and rec[0] is program:
            self._units.move_to_end(key)
            return rec[1], rec[2]
        unit, report = compile_program(program)
        if unit is None:
            self.stats["fallbacks"] += 1
        else:
            self.stats["compiled"] += 1
        self._units[key] = (program, unit, report)
        self._chain_facts.pop(key, None)
        while len(self._units) > self.MAX_UNITS:
            old_key, _ = self._units.popitem(last=False)
            self._chain_facts.pop(old_key, None)
        return unit, report

    def unit_for(self, program) -> Optional[CompiledUnit]:
        """The compiled unit, compiling on first sight; None on fallback."""
        return self._record(program)[0]

    def report_for(self, program) -> JitReport:
        return self._record(program)[1]

    # -------------------------------------------------------- chain facts

    def writes_packet(self, program) -> bool:
        """Whether ``program`` itself may write the packet (conservative)."""
        unit = self.unit_for(program)
        return True if unit is None else unit.writes_packet

    def chain_writes_packet(self, program) -> bool:
        """Whether the packet may be written by ``program`` or anything
        reachable from it through prog-array tail calls. Cached against
        prog-array versions: a fast-path swap invalidates the fact."""
        key = id(program)
        cached = self._chain_facts.get(key)
        if cached is not None:
            prog, deps, result = cached
            if prog is program and all(pa.version == v for pa, v in deps):
                return result
        deps: List[Tuple[ProgArray, int]] = []
        result = self._walk_chain(program, deps)
        self._chain_facts[key] = (program, deps, result)
        return result

    def _walk_chain(self, program, deps: List[Tuple[ProgArray, int]]) -> bool:
        seen = set()
        stack = [program]
        while stack:
            prog = stack.pop()
            if id(prog) in seen:
                continue
            seen.add(id(prog))
            unit = self.unit_for(prog)
            if unit is None or unit.writes_packet:
                return True
            for m in getattr(prog, "maps", None) or ():
                if isinstance(m, ProgArray):
                    deps.append((m, m.version))
                    for target in m.slots().values():
                        stack.append(
                            target.program if hasattr(target, "program") else target
                        )
        return False

    def zero_copy_ok(self, program) -> bool:
        """True when the whole reachable chain is compiled and read-only:
        the hook may then run over the wire frame without copying it."""
        if not self.enabled:
            return False
        if self.unit_for(program) is None:
            return False
        return not self.chain_writes_packet(program)

    # ----------------------------------------------------------- executor

    def _abi_ok(self, args) -> bool:
        # The verifier's proof (and thus every dropped bounds check)
        # assumes the hook ABI: r1 = base packet pointer, r2 = its length.
        return (
            len(args) == 3
            and isinstance(args[0], Pointer)
            and args[0].offset == 0
            and type(args[1]) is int
            and type(args[2]) is int
            and args[1] == len(args[0].region.data)
        )

    def execute(self, program, args, env, charge_costs: bool = True) -> Tuple[int, int]:
        """Run ``program`` like ``VM.run`` would; returns (verdict, executed).

        Falls back to a fresh interpreter when disabled, uncompiled, or
        handed an ABI the compiled code was not specialized for; resumes
        in the interpreter mid-chain on an uncompilable tail target.
        Raises exactly what the interpreter would raise.
        """
        kernel = self.kernel
        unit = self.unit_for(program) if self.enabled else None
        if unit is None or not self._abi_ok(args):
            self.stats["interp_runs"] += 1
            vm = VM(kernel, charge_costs=charge_costs)
            verdict = vm.run(program, args, env)
            return verdict, vm.insns_executed

        self.stats["jit_runs"] += 1
        costs = kernel.costs
        if charge_costs:
            kernel.charge_ns(costs.ebpf_prog_entry)
            charge = kernel.charge_ns
            insn_cost = costs.ebpf_insn
        else:
            charge = _noop_charge
            insn_cost = 0.0
        stack = Region("stack", bytearray(STACK_SIZE), allow_pointers=True)
        args5 = list(args) + [None] * (5 - len(args))
        executed = 0
        tail_calls = 0
        current = unit
        while True:
            try:
                tag, value, n, tail_msg = current.fn(env, args5, stack, charge, insn_cost)
            except _JitHalt as halt:
                raise halt.error
            executed += n
            if tag == CompiledUnit.TAG_EXIT:
                return value, executed
            # tail call: replicate the interpreter's depth/charge sequence
            tail_calls += 1
            if tail_calls > TAIL_CALL_LIMIT:
                raise VMError(tail_msg)
            if charge_costs:
                kernel.charge_ns(costs.ebpf_tail_call)
            target = value.program if hasattr(value, "program") else value
            nxt = self.unit_for(target)
            if nxt is not None:
                current = nxt
                continue
            # uncompilable target: the interpreter resumes the chain on the
            # same stack region with the accumulated counters
            self.stats["interp_runs"] += 1
            vm = VM(kernel, charge_costs=charge_costs)
            verdict = vm.run(
                target,
                args,
                env,
                _stack=stack,
                _executed=executed,
                _tail_calls=tail_calls,
                _entry_charged=True,
            )
            return verdict, vm.insns_executed

    # ------------------------------------------------------------- status

    def summary(self) -> Dict[str, object]:
        """A metrics-friendly snapshot of engine state."""
        return {
            "enabled": self.enabled,
            "units": len(self._units),
            "compiled": self.stats["compiled"],
            "fallbacks": self.stats["fallbacks"],
            "jit_runs": self.stats["jit_runs"],
            "interp_runs": self.stats["interp_runs"],
            "zero_copy_frames": self.stats["zero_copy_frames"],
        }
