"""Bytecode → Python translation for verified FPM programs.

The translator runs a single forward abstract-interpretation pass over
the program (legal because the verifier rejects backward jumps, so the
CFG is a DAG and every branch edge points forward) tracking a *kind*
per register and a *spill state* per stack slot:

``i``  a 64-bit scalar (a plain masked Python int at runtime)
``p``  a packet pointer (a real :class:`Pointer` into the frame region)
``s``  a stack pointer, with its byte offset tracked statically when
       derivable (minic derives stack addresses from r10 with constant
       immediates, so it always is in practice)
``m``  a map object materialized by ``LD_MAP``, index tracked
``u``  uninitialized (``None`` at runtime)
``g``  generic — emit interpreter-equivalent code for this operand

minic spills everything through the stack — including the packet
pointer parameter — so the spill state is what makes the output fast:
a slot that provably holds a spilled packet pointer reloads as a plain
dict lookup, and a slot that provably holds scalar bytes loads as an
inline ``int.from_bytes`` with no spill bookkeeping at all.

Runtime values are kept bit-identical to the interpreter's (the same
``Pointer`` objects, the same shared stack ``Region`` with its real
``_spilled`` dict), which is what lets a tail call into a program the
JIT cannot compile resume in the interpreter mid-chain with zero state
translation.

Instruction counts and cost charges are batched into ``_n`` and
flushed — ``charge_ns((_n - _c) * insn_cost)`` — before every helper
call, tail call, exit, and abort, so helpers that read the clock
(``ktime_get_ns``, conntrack expiry) observe exactly the interpreter's
timeline and aborted runs charge exactly what the interpreter charged.
The interpreter counts an instruction *before* executing it, so the
generated code syncs ``_n`` ahead of every statement that can raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ebpf import helpers as helpers_mod
from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.analysis.interp import interpret
from repro.ebpf.isa import ALU_IMM_OPS, ALU_REG_OPS, JMP_IMM_OPS, JMP_REG_OPS, MASK64, Op
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import MemoryError_, Pointer
from repro.ebpf.program import Program
from repro.ebpf.verifier import check_structure
from repro.ebpf.vm import STACK_SIZE, VMError

__all__ = ["CompiledUnit", "JitError", "JitReport", "compile_program"]

_SIGN_BIT = 1 << 63
_TWO64 = 1 << 64

#: Hook-ABI entry kinds: r1 = packet pointer, r2 = length, r3 = ifindex.
_ENTRY_KINDS = (
    ("u",),  # r0
    ("p",),  # r1
    ("i",),  # r2
    ("i",),  # r3
    ("u",),  # r4
    ("u",),  # r5
    ("u",),  # r6
    ("u",),  # r7
    ("u",),  # r8
    ("u",),  # r9
    ("s", STACK_SIZE),  # r10
)

_CMP_TOKENS = {
    Op.JEQ_IMM: "eq", Op.JEQ_REG: "eq",
    Op.JNE_IMM: "ne", Op.JNE_REG: "ne",
    Op.JGT_IMM: "gt", Op.JGT_REG: "gt",
    Op.JGE_IMM: "ge", Op.JGE_REG: "ge",
    Op.JLT_IMM: "lt", Op.JLT_REG: "lt",
    Op.JLE_IMM: "le", Op.JLE_REG: "le",
    Op.JSET_IMM: "set",
}
_CMP_PY = {"eq": "==", "ne": "!=", "gt": ">", "ge": ">=", "lt": "<", "le": "<="}


class JitError(Exception):
    """Compilation declined: the engine falls back to the interpreter."""


class _JitHalt(Exception):
    """Internal: carries a program abort plus the executed-insn count out
    of a compiled function (the engine re-raises the wrapped error)."""

    def __init__(self, error: BaseException, executed: int) -> None:
        super().__init__(str(error))
        self.error = error
        self.executed = executed


@dataclass
class JitReport:
    """What compilation did — ``fallback`` means the interpreter serves."""

    status: str  # "compiled" | "fallback"
    error: Optional[str] = None
    insns: int = 0
    blocks: int = 0
    inline_mem_ops: int = 0  # packet/stack accesses emitted as direct slices
    generic_ops: int = 0  # ops kept in interpreter-equivalent form
    folded_null_checks: int = 0
    writes_packet: bool = True  # conservative until proven otherwise


@dataclass
class CompiledUnit:
    """One program's compiled executor plus its static facts.

    ``fn(env, args5, stack, charge_ns, insn_cost)`` returns a 4-tuple
    ``(tag, value, executed, tail_msg)``: ``TAG_EXIT`` with the r0
    verdict, or ``TAG_TAIL`` with the prog-array slot to chain into
    (``tail_msg`` is the pre-baked limit-exceeded message for that call
    site). Aborts raise :class:`_JitHalt` wrapping the real error.
    """

    program: Program
    fn: Callable
    writes_packet: bool
    source: str  # the generated Python, for debugging and tests

    TAG_EXIT = 0
    TAG_TAIL = 1


def _signed(imm: int) -> int:
    value = imm & MASK64
    return value - _TWO64 if value >= _SIGN_BIT else value


def _merge_kind(a: Tuple, b: Tuple) -> Tuple:
    if a == b:
        return a
    if a[0] == "u":
        return b  # the verifier proves the uninit path never reads it
    if b[0] == "u":
        return a
    if a[0] == b[0] and a[0] in ("s", "m"):
        return (a[0], None)
    return ("g",)


def _merge_spill(a, b):
    if a == b:
        return a
    return "U"  # definite-spill vs definite-clean → unknown


class _State:
    """Abstract machine state at one pc: register kinds + spill map."""

    __slots__ = ("regs", "sp", "sp_other")

    def __init__(self, regs, sp, sp_other) -> None:
        self.regs = regs  # tuple of 11 kind tuples
        self.sp = sp  # {offset: kind-tuple | "C" | "U"}
        self.sp_other = sp_other  # "C" | "U" for offsets not listed in sp

    def copy(self) -> "_State":
        return _State(self.regs, dict(self.sp), self.sp_other)

    def spill_at(self, off: int):
        return self.sp.get(off, self.sp_other)

    def merge(self, other: "_State") -> "_State":
        regs = tuple(_merge_kind(a, b) for a, b in zip(self.regs, other.regs))
        sp: Dict[int, object] = {}
        for off in set(self.sp) | set(other.sp):
            sp[off] = _merge_spill(self.spill_at(off), other.spill_at(off))
        sp_other = "C" if self.sp_other == other.sp_other == "C" else "U"
        return _State(regs, sp, sp_other)


class _Compiler:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.insns = program.insns
        self.report = JitReport(status="compiled", insns=len(program.insns))
        self.lines: List[str] = []
        self.used: Dict[str, bool] = {}
        self.ns: Dict[str, object] = {}
        self.writes_packet = False
        self.pend = 0  # insns executed since the last emitted _n update
        self._tmp = 0

    # ------------------------------------------------------------- helpers

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("        " + "    " * indent + text)

    def use(self, name: str) -> None:
        self.used[name] = True

    def tmp(self) -> str:
        self._tmp += 1
        return "_t%d" % self._tmp

    def _sync(self) -> None:
        """Bring the runtime ``_n`` counter up to date with this pc."""
        if self.pend:
            self.emit(1, "_n += %d" % self.pend)
            self.pend = 0

    def _flush(self) -> None:
        """Sync the counter and charge everything accrued since the last
        flush — the clock a helper observes must match the interpreter's."""
        self._sync()
        self.emit(1, "_chg((_n - _c) * _ci)")
        self.emit(1, "_c = _n")

    def _raise(self, msg: str) -> bool:
        """Emit a constant abort (counter synced first); returns dead."""
        self._sync()
        self.emit(1, "raise _VMError(%r)" % (msg,))
        return True

    def _uninit(self, reg: int, insn) -> bool:
        return self._raise(
            "%s: read of uninitialized r%d (%r)" % (self.program.name, reg, insn)
        )

    # ------------------------------------------------------------ pipeline

    def compile(self) -> Tuple[CompiledUnit, JitReport]:
        program = self.program
        # The same proof the deployer relies on, minus verify()'s fault
        # site: compile-time verification must not trip armed chaos faults.
        try:
            check_structure(program)
            interpret(program, (1, 2, 3), None)
        except VerifierError as exc:
            raise JitError("verification failed: %s" % (exc,)) from exc
        if not self.insns:
            raise JitError("empty program")

        leaders = self._leaders()
        self._translate(leaders)
        source = self._assemble()
        self.report.blocks = len(leaders)
        self.report.writes_packet = self.writes_packet
        namespace = dict(self.ns)
        namespace.update(
            _Ptr=Pointer,
            _VMError=VMError,
            _Mem=MemoryError_,
            _HErr=helpers_mod.HelperError,
            _Halt=_JitHalt,
            _galu=_galu,
            _gcmp=_gcmp,
            _PArr=ProgArray,
        )
        from repro.testing import faults

        namespace["_Fault"] = faults.InjectedFault
        try:
            code = compile(source, "<jit:%s>" % program.name, "exec")
            exec(code, namespace)
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise JitError("generated source failed to compile: %s" % (exc,)) from exc
        unit = CompiledUnit(
            program=program,
            fn=namespace["_fpm"],
            writes_packet=self.writes_packet,
            source=source,
        )
        return unit, self.report

    def _leaders(self) -> List[int]:
        leaders = {0}
        for pc, insn in enumerate(self.insns):
            if insn.op is Op.JA or insn.op in JMP_IMM_OPS or insn.op in JMP_REG_OPS:
                leaders.add(pc + insn.off + 1)
                leaders.add(pc + 1)
        return sorted(pc for pc in leaders if pc < len(self.insns))

    def _assemble(self) -> str:
        prologue = [
            "def _fpm(env, _a, _stk, _chg, _ci):",
            "    r1 = _a[0]; r2 = _a[1]; r3 = _a[2]; r4 = _a[3]; r5 = _a[4]",
            "    r0 = r6 = r7 = r8 = r9 = None",
            "    r10 = _Ptr(_stk, %d)" % STACK_SIZE,
        ]
        if self.used.get("_pkr") or self.used.get("_pkd"):
            prologue.append("    _pkr = _a[0].region")
        if self.used.get("_pkd"):
            prologue.append("    _pkd = _pkr.data")
        if self.used.get("_skd"):
            prologue.append("    _skd = _stk.data")
        if self.used.get("_spd"):
            prologue.append("    _spd = _stk._spilled")
        if self.used.get("_sinv"):
            prologue.append("    _sinv = _stk._invalidate")
        prologue += [
            "    _n = 0",
            "    _c = 0",
            "    _g = 0",
            "    try:",
        ]
        epilogue = [
            "        raise _VMError(%r)"
            % ("%s: pc %d out of range" % (self.program.name, len(self.insns)),),
            "    except (_VMError, _Fault) as _e:",
            "        _chg((_n - _c) * _ci)",
            "        raise _Halt(_e, _n) from None",
        ]
        return "\n".join(prologue + self.lines + epilogue) + "\n"

    # ----------------------------------------------------------- translate

    def _translate(self, leaders: List[int]) -> None:
        leader_set = set(leaders)
        states: Dict[int, _State] = {0: _State(tuple(_ENTRY_KINDS), {}, "C")}
        cur: Optional[_State] = None
        dead = True

        def propagate(target: int, state: _State) -> None:
            prev = states.get(target)
            states[target] = state.copy() if prev is None else prev.merge(state)

        for pc, insn in enumerate(self.insns):
            if pc in leader_set:
                self._sync()
                cur = states.get(pc)
                dead = cur is None
                if not dead:
                    self.emit(0, "if _g <= %d:" % pc)
            if dead:
                continue
            self.pend += 1
            dead = self._insn(pc, insn, cur, leader_set, propagate)
        self._sync()

    # Each handler returns True when nothing can fall through (the rest of
    # the block is unreachable). ``propagate`` merges state into forward
    # leaders; fall-through mutates ``st`` in place.
    def _insn(self, pc, insn, st, leaders, propagate) -> bool:
        op = insn.op
        name = self.program.name

        def setreg(i, kind):
            regs = list(st.regs)
            regs[i] = kind
            st.regs = tuple(regs)

        def fall():
            if pc + 1 in leaders:
                propagate(pc + 1, st)

        if op is Op.MOV_IMM:
            self.emit(1, "r%d = %d" % (insn.dst, insn.imm & MASK64))
            setreg(insn.dst, ("i",))
            fall()
            return False

        if op is Op.MOV_REG:
            kind = st.regs[insn.src]
            if kind[0] == "u":
                return self._uninit(insn.src, insn)
            self.emit(1, "r%d = r%d" % (insn.dst, insn.src))
            setreg(insn.dst, kind)
            fall()
            return False

        if op is Op.LD_MAP:
            if insn.imm >= len(self.program.maps):
                return self._raise(
                    "%s: LD_MAP index %d out of range" % (name, insn.imm))
            mname = "_m%d" % insn.imm
            self.ns[mname] = self.program.maps[insn.imm]
            self.emit(1, "r%d = %s" % (insn.dst, mname))
            setreg(insn.dst, ("m", insn.imm))
            fall()
            return False

        if op in ALU_IMM_OPS or op in ALU_REG_OPS or op is Op.NEG:
            dead = self._alu(pc, insn, st, setreg)
            if not dead:
                fall()
            return dead

        if op is Op.LDX:
            dead = self._ldx(pc, insn, st, setreg)
            if not dead:
                fall()
            return dead

        if op in (Op.STX, Op.ST_IMM):
            dead = self._store(pc, insn, st)
            if not dead:
                fall()
            return dead

        if op is Op.JA:
            target = pc + insn.off + 1
            self._sync()
            self.emit(1, "_g = %d" % target)
            propagate(target, st)
            return True

        if op in JMP_IMM_OPS or op in JMP_REG_OPS:
            return self._jump(pc, insn, st, propagate, fall)

        if op is Op.CALL:
            dead = self._call(pc, insn, st, setreg)
            if not dead:
                fall()
            return dead

        if op is Op.TAIL_CALL:
            dead = self._tail_call(pc, insn, st)
            if not dead:
                fall()
            return dead

        if op is Op.EXIT:
            self._flush()
            kind = st.regs[0]
            if kind[0] == "u":
                return self._raise(
                    "%s@%d: exit with uninitialized r0" % (name, pc))
            if kind[0] in ("p", "s"):
                return self._raise(
                    "%s@%d: exit with pointer in r0" % (name, pc))
            if kind[0] in ("i", "m"):
                self.emit(1, "return (0, r0, _n, None)")
                return True
            # generic: replicate the interpreter's dynamic checks
            self.report.generic_ops += 1
            self.emit(1, "if r0 is None:")
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: exit with uninitialized r0" % (name, pc),))
            self.emit(1, "if isinstance(r0, _Ptr):")
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: exit with pointer in r0" % (name, pc),))
            self.emit(1, "return (0, r0, _n, None)")
            return True

        raise JitError("unhandled op %s at pc %d" % (op, pc))

    # ------------------------------------------------------------- ALU ops

    def _alu(self, pc, insn, st, setreg) -> bool:
        name = self.program.name
        op = insn.op
        if op is Op.NEG:
            kind = st.regs[insn.dst]
            if kind[0] == "u":
                return self._uninit(insn.dst, insn)
            if kind[0] in ("p", "s"):
                return self._raise("%s@%d: NEG on pointer" % (name, pc))
            if kind[0] == "i":
                self.emit(1, "r%d = (-r%d) & %d" % (insn.dst, insn.dst, MASK64))
            else:
                self.report.generic_ops += 1
                self._sync()
                self.emit(1, "if isinstance(r%d, _Ptr):" % insn.dst)
                self.emit(2, "raise _VMError(%r)"
                          % ("%s@%d: NEG on pointer" % (name, pc),))
                self.emit(1, "r%d = (-r%d) & %d" % (insn.dst, insn.dst, MASK64))
            setreg(insn.dst, ("i",))
            return False

        imm_form = op in ALU_IMM_OPS
        op_name = op.value[:-4]
        dst, src = insn.dst, insn.src
        lk = st.regs[dst]
        rk = ("i",) if imm_form else st.regs[src]
        if lk[0] == "u":
            return self._uninit(dst, insn)
        if not imm_form and rk[0] == "u":
            return self._uninit(src, insn)
        rhs = str(insn.imm & MASK64) if imm_form else "r%d" % src

        # pointer ± scalar → pointer arithmetic on the tracked region
        if lk[0] in ("p", "s") and rk[0] == "i":
            if op_name not in ("add", "sub"):
                return self._raise("%s: %s on pointer (%r)" % (name, op_name, insn))
            regvar = "_pkr" if lk[0] == "p" else "_stk"
            if lk[0] == "p":
                self.use("_pkr")
            if imm_form:
                delta = _signed(insn.imm)
                if op_name == "sub":
                    delta = -delta
                self.emit(1, "r%d = _Ptr(%s, r%d.offset + %d)"
                          % (dst, regvar, dst, delta))
                if lk[0] == "s" and lk[1] is not None:
                    setreg(dst, ("s", lk[1] + delta))
                else:
                    setreg(dst, ("p",) if lk[0] == "p" else ("s", None))
            else:
                sx = ("(r%d - %d if r%d >= %d else r%d)"
                      % (src, _TWO64, src, _SIGN_BIT, src))
                sign = "-" if op_name == "sub" else "+"
                self.emit(1, "r%d = _Ptr(%s, r%d.offset %s %s)"
                          % (dst, regvar, dst, sign, sx))
                setreg(dst, ("p",) if lk[0] == "p" else ("s", None))
            return False

        # scalar + pointer → pointer (add only)
        if lk[0] == "i" and rk[0] in ("p", "s"):
            if op_name != "add":
                return self._raise(
                    "%s: scalar %s pointer (%r)" % (name, op_name, insn))
            regvar = "_pkr" if rk[0] == "p" else "_stk"
            if rk[0] == "p":
                self.use("_pkr")
            sx = ("(r%d - %d if r%d >= %d else r%d)"
                  % (dst, _TWO64, dst, _SIGN_BIT, dst))
            self.emit(1, "r%d = _Ptr(%s, r%d.offset + %s)" % (dst, regvar, src, sx))
            setreg(dst, ("p",) if rk[0] == "p" else ("s", None))
            return False

        if lk[0] in ("p", "s") and rk[0] in ("p", "s"):
            return self._raise("%s: pointer-pointer arithmetic (%r)" % (name, insn))

        if lk[0] == "i" and rk[0] == "i":
            self._scalar_alu(op_name, dst, rhs, imm_form, insn)
            setreg(dst, ("i",))
            return False

        # m/g operands: byte-for-byte interpreter port at runtime
        self.report.generic_ops += 1
        self._sync()
        self.emit(1, "r%d = _galu(%r, r%d, %s, %r, %r)"
                  % (dst, op_name, dst, rhs, name, repr(insn)))
        setreg(dst, ("g",))
        return False

    def _scalar_alu(self, op_name, dst, rhs, imm_form, insn) -> None:
        d = "r%d" % dst
        imm = insn.imm & MASK64
        if op_name == "add":
            self.emit(1, "%s = (%s + %s) & %d" % (d, d, rhs, MASK64))
        elif op_name == "sub":
            self.emit(1, "%s = (%s - %s) & %d" % (d, d, rhs, MASK64))
        elif op_name == "mul":
            self.emit(1, "%s = (%s * %s) & %d" % (d, d, rhs, MASK64))
        elif op_name == "div":
            if imm_form:
                self.emit(1, "%s = %s // %d" % (d, d, imm) if imm else "%s = 0" % d)
            else:
                self.emit(1, "%s = %s // %s if %s else 0" % (d, d, rhs, rhs))
        elif op_name == "mod":
            if imm_form:
                if imm:  # mod by zero leaves dst unchanged: emit nothing
                    self.emit(1, "%s = %s %% %d" % (d, d, imm))
            else:
                self.emit(1, "%s = %s %% %s if %s else %s" % (d, d, rhs, rhs, d))
        elif op_name == "and":
            self.emit(1, "%s = %s & %s" % (d, d, rhs))
        elif op_name == "or":
            self.emit(1, "%s = %s | %s" % (d, d, rhs))
        elif op_name == "xor":
            self.emit(1, "%s = %s ^ %s" % (d, d, rhs))
        elif op_name == "lsh":
            if imm_form:
                self.emit(1, "%s = (%s << %d) & %d" % (d, d, imm & 63, MASK64))
            else:
                self.emit(1, "%s = (%s << (%s & 63)) & %d" % (d, d, rhs, MASK64))
        elif op_name == "rsh":
            if imm_form:
                self.emit(1, "%s = %s >> %d" % (d, d, imm & 63))
            else:
                self.emit(1, "%s = %s >> (%s & 63)" % (d, d, rhs))
        else:  # pragma: no cover - exhaustive over ALU ops
            raise JitError("unknown ALU op %s" % op_name)

    # ------------------------------------------------------------- memory

    def _ldx(self, pc, insn, st, setreg) -> bool:
        name = self.program.name
        kind = st.regs[insn.src]
        size = insn.imm
        dst = insn.dst
        if kind[0] == "u":
            return self._uninit(insn.src, insn)
        if kind[0] in ("i", "m"):
            return self._raise(
                "%s@%d: load via non-pointer r%d" % (name, pc, insn.src))
        if kind[0] == "p":
            # The verifier proved this access within the length argument the
            # hook passes (always len(frame)); the packet region never holds
            # spills, so the slice read needs no checks at all.
            self.report.inline_mem_ops += 1
            self.use("_pkd")
            t = self.tmp()
            self.emit(1, "%s = r%d.offset + %d" % (t, insn.src, insn.off))
            self.emit(1, 'r%d = int.from_bytes(_pkd[%s:%s + %d], "big")'
                      % (dst, t, t, size))
            setreg(dst, ("i",))
            return False
        if kind[0] == "s" and kind[1] is not None:
            off = kind[1] + insn.off
            if 0 <= off and off + size <= STACK_SIZE:
                if size < 8:
                    # load_word never consults spills below 8 bytes
                    self.report.inline_mem_ops += 1
                    self.use("_skd")
                    self.emit(1, 'r%d = int.from_bytes(_skd[%d:%d], "big")'
                              % (dst, off, off + size))
                    setreg(dst, ("i",))
                    return False
                spill = st.spill_at(off)
                if spill == "C":
                    self.report.inline_mem_ops += 1
                    self.use("_skd")
                    self.emit(1, 'r%d = int.from_bytes(_skd[%d:%d], "big")'
                              % (dst, off, off + 8))
                    setreg(dst, ("i",))
                    return False
                if isinstance(spill, tuple):
                    # provably spilled on every path: a plain dict lookup
                    self.report.inline_mem_ops += 1
                    self.use("_spd")
                    self.emit(1, "r%d = _spd[%d]" % (dst, off))
                    setreg(dst, spill)
                    return False
                # unknown spill state, bounds still proven: full load_word
                self.report.generic_ops += 1
                self.emit(1, "r%d = _stk.load_word(%d, 8)" % (dst, off))
                setreg(dst, ("g",))
                return False
        # unknown stack offset or generic pointer: interpreter-equivalent
        self.report.generic_ops += 1
        self._sync()
        if kind[0] == "g":
            self.emit(1, "if not isinstance(r%d, _Ptr):" % insn.src)
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: load via non-pointer r%d" % (name, pc, insn.src),))
        self.emit(1, "try:")
        self.emit(2, "r%d = r%d.load(%d, %d)" % (dst, insn.src, insn.off, size))
        self.emit(1, "except _Mem as _e:")
        self.emit(2, 'raise _VMError("%s@%d: " + str(_e)) from _e' % (name, pc))
        setreg(dst, ("g",))
        return False

    def _store(self, pc, insn, st) -> bool:
        name = self.program.name
        is_stx = insn.op is Op.STX
        size = insn.imm if is_stx else insn.src
        dst_kind = st.regs[insn.dst]
        if dst_kind[0] == "u":
            return self._uninit(insn.dst, insn)
        if is_stx:
            val_kind = st.regs[insn.src]
            if val_kind[0] == "u":
                return self._uninit(insn.src, insn)
            val = "r%d" % insn.src
        else:
            val_kind = ("i",)
            val = str(insn.imm)  # ptr.store masks; precomputed where inlined
        if dst_kind[0] in ("i", "m"):
            return self._raise(
                "%s@%d: store via non-pointer r%d" % (name, pc, insn.dst))

        if dst_kind[0] in ("p", "g"):
            self.writes_packet = True

        if dst_kind[0] == "p":
            if val_kind[0] in ("p", "s"):
                # spilling a pointer into the packet always aborts
                return self._raise(
                    "%s@%d: pkt: cannot spill pointer here" % (name, pc))
            if val_kind[0] != "i":
                self.report.generic_ops += 1
                self._sync()
                self.emit(1, "try:")
                self.emit(2, "r%d.store(%d, %d, %s)"
                          % (insn.dst, insn.off, size, val))
                self.emit(1, "except _Mem as _e:")
                self.emit(2, 'raise _VMError("%s@%d: " + str(_e)) from _e'
                          % (name, pc))
                return False
            self.report.inline_mem_ops += 1
            self.use("_pkd")
            t = self.tmp()
            self.emit(1, "%s = r%d.offset + %d" % (t, insn.dst, insn.off))
            if is_stx:
                expr = val if size == 8 else "(%s & %d)" % (val, (1 << (8 * size)) - 1)
                self.emit(1, '_pkd[%s:%s + %d] = (%s).to_bytes(%d, "big")'
                          % (t, t, size, expr, size))
            else:
                payload = (insn.imm & ((1 << (8 * size)) - 1)).to_bytes(size, "big")
                self.emit(1, "_pkd[%s:%s + %d] = %r" % (t, t, size, payload))
            return False

        if dst_kind[0] == "s" and dst_kind[1] is not None:
            off = dst_kind[1] + insn.off
            if 0 <= off and off + size <= STACK_SIZE:
                if val_kind[0] == "i":
                    self.report.inline_mem_ops += 1
                    self.use("_skd")
                    if self._needs_invalidate(st, off, size):
                        self.use("_sinv")
                        self.emit(1, "_sinv(%d, %d)" % (off, size))
                    if is_stx:
                        expr = val if size == 8 else "(%s & %d)" % (
                            val, (1 << (8 * size)) - 1)
                        self.emit(1, '_skd[%d:%d] = (%s).to_bytes(%d, "big")'
                                  % (off, off + size, expr, size))
                    else:
                        payload = (insn.imm & ((1 << (8 * size)) - 1)).to_bytes(
                            size, "big")
                        self.emit(1, "_skd[%d:%d] = %r" % (off, off + size, payload))
                    self._spill_clean(st, off, size)
                    return False
                if val_kind[0] in ("p", "s") and size == 8:
                    # a real spill: registers in the shared stack's spill dict
                    self.report.inline_mem_ops += 1
                    self.emit(1, "_stk.store_word(%d, 8, %s)" % (off, val))
                    self._spill_set(st, off, val_kind)
                    return False
                # pointer with wrong size, maps, generics: full store_word
                self.report.generic_ops += 1
                self._sync()
                self.emit(1, "try:")
                self.emit(2, "_stk.store_word(%d, %d, %s)" % (off, size, val))
                self.emit(1, "except _Mem as _e:")
                self.emit(2, 'raise _VMError("%s@%d: " + str(_e)) from _e'
                          % (name, pc))
                self._spill_unknown_at(st, off, size)
                return False
        # unknown stack offset or generic pointer: interpreter-equivalent
        self.report.generic_ops += 1
        self._sync()
        if dst_kind[0] == "g":
            self.emit(1, "if not isinstance(r%d, _Ptr):" % insn.dst)
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: store via non-pointer r%d" % (name, pc, insn.dst),))
        self.emit(1, "try:")
        self.emit(2, "r%d.store(%d, %d, %s)" % (insn.dst, insn.off, size, val))
        self.emit(1, "except _Mem as _e:")
        self.emit(2, 'raise _VMError("%s@%d: " + str(_e)) from _e' % (name, pc))
        # an untracked store may have rewritten any slot's spill state
        st.sp = {}
        st.sp_other = "U"
        return False

    def _needs_invalidate(self, st: _State, off: int, size: int) -> bool:
        if st.sp_other != "C":
            return True
        for o in range(off - 7, off + size):
            if st.sp.get(o, "C") != "C":
                return True
        return False

    def _spill_clean(self, st: _State, off: int, size: int) -> None:
        for o in range(off - 7, off + size):
            if st.sp_other == "C":
                st.sp.pop(o, None)
            else:
                st.sp[o] = "C"

    def _spill_set(self, st: _State, off: int, kind: Tuple) -> None:
        self._spill_clean(st, off, 8)
        st.sp[off] = kind

    def _spill_unknown_at(self, st: _State, off: int, size: int) -> None:
        for o in range(off - 7, off + size):
            st.sp[o] = "U"

    # -------------------------------------------------------------- jumps

    def _jump(self, pc, insn, st, propagate, fall) -> bool:
        name = self.program.name
        op = insn.op
        target = pc + insn.off + 1
        imm_form = op in JMP_IMM_OPS
        tok = _CMP_TOKENS[op]
        lk = st.regs[insn.dst]
        rk = ("i",) if imm_form else st.regs[insn.src]
        if lk[0] == "u":
            return self._uninit(insn.dst, insn)
        if not imm_form and rk[0] == "u":
            return self._uninit(insn.src, insn)
        rhs = str(insn.imm & MASK64) if imm_form else "r%d" % insn.src

        # pointer null checks fold away: live pointers are never null
        if lk[0] in ("p", "s") and imm_form and (insn.imm & MASK64) == 0 \
                and op in (Op.JEQ_IMM, Op.JNE_IMM):
            self.report.folded_null_checks += 1
            if op is Op.JNE_IMM:  # always taken: an unconditional jump
                self._sync()
                self.emit(1, "_g = %d" % target)
                propagate(target, st)
                return True
            # JEQ_IMM 0 never taken: a pure fall-through, zero code
            fall()
            return False

        if lk[0] == "i" and rk[0] == "i":
            self._sync()
            if tok == "set":
                cond = "r%d & %s" % (insn.dst, rhs)
            else:
                cond = "r%d %s %s" % (insn.dst, _CMP_PY[tok], rhs)
            self.emit(1, "if %s:" % cond)
            self.emit(2, "_g = %d" % target)
            propagate(target, st)
            fall()
            return False

        # anything with a pointer or map operand: interpreter-equivalent
        self.report.generic_ops += 1
        self._sync()
        self.emit(1, "if _gcmp(%r, %r, r%d, %s, %r, %r):"
                  % (tok, imm_form, insn.dst, rhs, name, repr(insn)))
        self.emit(2, "_g = %d" % target)
        propagate(target, st)
        fall()
        return False

    # -------------------------------------------------------------- calls

    def _call(self, pc, insn, st, setreg) -> bool:
        name = self.program.name
        helper_id = insn.imm
        sig = helpers_mod.HELPER_SIGS.get(helper_id)
        if sig is None:
            # unknown signature: any pointer argument may be written through
            for i in range(1, 6):
                if st.regs[i][0] in ("p", "g", "u"):
                    self.writes_packet = True
        else:
            for i, spec in enumerate(sig.args):
                if spec.writes and st.regs[1 + i][0] in ("p", "g", "u"):
                    self.writes_packet = True
        # the clock the helper observes must match the interpreter's exactly
        self._flush()
        entry = helpers_mod.HELPERS.get(helper_id)
        if entry is None:
            # late-registered helpers (redirect_xsk) resolve at runtime,
            # exactly like the interpreter's per-call dict lookup
            self.report.generic_ops += 1
            self.ns["_HELPERS"] = helpers_mod.HELPERS
            e = self.tmp()
            self.emit(1, "%s = _HELPERS.get(%d)" % (e, helper_id))
            self.emit(1, "if %s is None:" % e)
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: unknown helper %d" % (name, pc, helper_id),))
            callee = "%s[1]" % e
        else:
            hname = "_h%d" % helper_id
            self.ns[hname] = entry[1]
            callee = hname
        self.emit(1, "try:")
        self.emit(2, "r0 = %s(env, [r1, r2, r3, r4, r5])" % callee)
        self.emit(1, "except (_HErr, _Mem) as _e:")
        self.emit(2, 'raise _VMError("%s@%d: " + str(_e)) from _e' % (name, pc))
        # helper calls clobber the caller-saved argument registers
        self.emit(1, "r1 = r2 = r3 = r4 = r5 = None")
        setreg(0, ("i",))
        for i in range(1, 6):
            setreg(i, ("u",))
        return False

    def _tail_call(self, pc, insn, st) -> bool:
        name = self.program.name
        limit_msg = "%s@%d: tail call limit exceeded" % (name, pc)
        r2k, r3k = st.regs[2], st.regs[3]
        # the interpreter reads the index (r3) before checking the array
        if r3k[0] == "u":
            return self._uninit(3, insn)
        self._flush()
        t = self.tmp()
        static_array = (
            r2k[0] == "m"
            and r2k[1] is not None
            and isinstance(self.program.maps[r2k[1]], ProgArray)
            and r3k[0] == "i"
        )
        if static_array:
            mname = "_m%d" % r2k[1]
            self.ns[mname] = self.program.maps[r2k[1]]
            self.emit(1, "%s = %s.get_prog(r3)" % (t, mname))
        else:
            self.report.generic_ops += 1
            if r3k[0] != "i":
                self.emit(1, "if r3 is None:")
                self.emit(2, "raise _VMError(%r)"
                          % ("%s: read of uninitialized r3 (%r)" % (name, insn),))
            self.emit(1, "if not isinstance(r2, _PArr):")
            self.emit(2, "raise _VMError(%r)"
                      % ("%s@%d: tail call needs a prog array in r2" % (name, pc),))
            if r3k[0] != "i":
                self.emit(1, "if isinstance(r3, _Ptr):")
                self.emit(2, "raise _VMError(%r)"
                          % ("%s@%d: tail call index is a pointer" % (name, pc),))
            self.emit(1, "%s = r2.get_prog(r3)" % t)
        self.emit(1, "if %s is not None:" % t)
        self.emit(2, "return (1, %s, _n, %r)" % (t, limit_msg))
        # empty slot: fall through to the next instruction, as in real eBPF
        return False


# ------------------------------------------------------ runtime fallbacks

def _galu(op_name, left, right, name, irep):
    """Byte-for-byte port of ``VM._alu`` for generically-typed operands."""
    if isinstance(left, Pointer):
        if isinstance(right, Pointer):
            raise VMError("%s: pointer-pointer arithmetic (%s)" % (name, irep))
        if op_name == "add":
            return left.advanced(_signed(right))
        if op_name == "sub":
            return left.advanced(-_signed(right))
        raise VMError("%s: %s on pointer (%s)" % (name, op_name, irep))
    if isinstance(right, Pointer):
        if op_name == "add":
            return right.advanced(_signed(left))
        raise VMError("%s: scalar %s pointer (%s)" % (name, op_name, irep))
    left &= MASK64
    right &= MASK64
    if op_name == "add":
        return (left + right) & MASK64
    if op_name == "sub":
        return (left - right) & MASK64
    if op_name == "mul":
        return (left * right) & MASK64
    if op_name == "div":
        return (left // right) & MASK64 if right else 0
    if op_name == "mod":
        return (left % right) & MASK64 if right else left
    if op_name == "and":
        return left & right
    if op_name == "or":
        return left | right
    if op_name == "xor":
        return left ^ right
    if op_name == "lsh":
        return (left << (right & 63)) & MASK64
    if op_name == "rsh":
        return left >> (right & 63)
    raise VMError("%s: unknown ALU op %s" % (name, op_name))  # pragma: no cover


def _gcmp(tok, imm_form, left, right, name, irep):
    """Byte-for-byte port of ``VM._compare`` for generic operands."""
    if isinstance(left, Pointer) or isinstance(right, Pointer):
        # only null-checks are meaningful on pointers
        if imm_form and tok in ("eq", "ne") and isinstance(right, int) and right == 0:
            return tok == "ne"  # live pointers are never null
        raise VMError("%s: pointer comparison (%s)" % (name, irep))
    if tok == "eq":
        return left == right
    if tok == "ne":
        return left != right
    if tok == "gt":
        return left > right
    if tok == "ge":
        return left >= right
    if tok == "lt":
        return left < right
    if tok == "le":
        return left <= right
    if tok == "set":
        return bool(left & right)
    raise VMError("%s: unknown jump %s" % (name, tok))  # pragma: no cover


# -------------------------------------------------------------- interface

def compile_program(program: Program) -> Tuple[Optional[CompiledUnit], JitReport]:
    """Verify and compile ``program``; fail-closed.

    Returns ``(unit, report)``; on any analysis or codegen failure the
    unit is ``None`` and ``report.status == "fallback"`` — the caller
    keeps interpreting, nothing is ever half-compiled.
    """
    try:
        return _Compiler(program).compile()
    except JitError as exc:
        return None, JitReport(
            status="fallback", error=str(exc), insns=len(program.insns)
        )
    except Exception as exc:  # fail-closed: a compiler bug must never escape
        return None, JitReport(
            status="fallback",
            error="%s: %s" % (type(exc).__name__, exc),
            insns=len(program.insns),
        )
