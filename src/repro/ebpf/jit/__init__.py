"""Verified-bytecode → Python JIT for the FPM fast path (ROADMAP item #1).

The interpreter (:mod:`repro.ebpf.vm`) pays per-instruction dispatch,
dynamic pointer-provenance checks, and a ``charge_ns`` call per executed
instruction. All of that is static for a *verified* program: the PR 3
range-tracking verifier already proved every packet/stack access in
bounds and every register initialized on live paths, so a specialized
executor can drop the checks the proof made redundant.

:func:`compile_program` translates verified bytecode into one Python
function per program (a guarded-block ladder over the forward-only CFG)
that

- inlines packet loads/stores as direct ``int.from_bytes`` slices with
  no bounds or provenance checks;
- tracks stack-slot spill state statically (minic spills everything,
  including the packet pointer, through r10) so scalar slot traffic
  bypasses the spill bookkeeping and pointer reloads become a dict
  lookup;
- folds the per-instruction cost charges into one batched charge per
  basic block, flushed before every helper call so helpers observe the
  exact same simulated clock as under the interpreter (cost parity is a
  tested invariant, not an approximation);
- keeps runtime values bit-identical to the interpreter's (real
  :class:`~repro.ebpf.memory.Pointer` objects, the real shared stack
  region), so a tail call into a program the JIT cannot compile resumes
  cleanly in the interpreter mid-chain.

Everything is fail-closed: any analysis or codegen surprise produces a
``fallback`` :class:`JitReport` and the interpreter keeps serving, with
a ``jit-fallback`` incident surfaced by the controller — exactly the
contract PR 8's superoptimizer established. Opt-in via ``LINUXFP_JIT``
or ``Synthesizer(jit=True)`` / ``Controller(jit=True)``.
"""

from repro.ebpf.jit.compiler import CompiledUnit, JitError, JitReport, compile_program
from repro.ebpf.jit.engine import JitEngine

__all__ = [
    "CompiledUnit",
    "JitEngine",
    "JitError",
    "JitReport",
    "compile_program",
]
