"""Program container and disassembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ebpf.isa import Insn
from repro.ebpf.maps import BpfMap

HOOK_XDP = "xdp"
HOOK_TC = "tc"
VALID_HOOKS = (HOOK_XDP, HOOK_TC)


class ProgramError(ValueError):
    """Raised for malformed program containers."""


@dataclass
class Program:
    """A verified-loadable unit: instructions plus referenced maps.

    ``maps[i]`` is the object an ``LD_MAP imm=i`` instruction resolves to,
    mirroring libbpf's map-fd relocation.
    """

    name: str
    insns: List[Insn]
    hook: str = HOOK_XDP
    maps: List[BpfMap] = field(default_factory=list)
    source: Optional[str] = None  # the mini-C the program was compiled from

    def __post_init__(self) -> None:
        if self.hook not in VALID_HOOKS:
            raise ProgramError(f"bad hook {self.hook!r}")
        if not self.insns:
            raise ProgramError("empty program")

    def __len__(self) -> int:
        return len(self.insns)

    def disassemble(self) -> str:
        lines = [f"; program {self.name} ({self.hook}, {len(self.insns)} insns)"]
        for i, insn in enumerate(self.insns):
            lines.append(f"{i:4d}: {insn!r}")
        return "\n".join(lines)
