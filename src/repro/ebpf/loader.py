"""The libbpf-like loader: verify, wrap, attach, detach.

Loading always verifies (there is no way to attach unverified code, exactly
as in Linux). ``attach_*`` installs the wrapper on the device's hook slot;
re-attaching replaces whatever was there — LinuxFP's deployer avoids the
loss window this implies by swapping through a prog-array tail call instead
(see :mod:`repro.core.deployer`).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.ebpf.hooks import TcAttachment, XdpAttachment
from repro.ebpf.program import HOOK_XDP, Program
from repro.ebpf.verifier import verify
from repro.testing import faults

# Replacing a native-mode XDP program reconfigures the driver rings; the
# paper (§IV-A2) observes seconds of loss. We model a ring's worth of
# in-flight frames lost per replacement.
XDP_REPLACE_RESET_FRAMES = 256


class LoaderError(Exception):
    """Attach/detach misuse."""


class Loader:
    """Per-kernel program loading and hook attachment.

    ``model_reset_loss=True`` simulates the driver-ring reset a native-mode
    XDP program replacement causes (in-flight frames lost). It is opt-in:
    meaningful only when traffic is flowing *during* the replacement, which
    is what the atomic-swap ablation measures.
    """

    def __init__(self, kernel, model_reset_loss: bool = False) -> None:
        self.kernel = kernel
        self.model_reset_loss = model_reset_loss
        self.loaded: Dict[str, Union[XdpAttachment, TcAttachment]] = {}

    def load(self, program: Program) -> Union[XdpAttachment, TcAttachment]:
        """Verify and wrap a program; returns the attachable handle."""
        faults.fire("load", program.name)
        verify(program)
        attachment = XdpAttachment(program) if program.hook == HOOK_XDP else TcAttachment(program)
        self.loaded[program.name] = attachment
        return attachment

    def attach_xdp(self, dev_name: str, attachment: XdpAttachment) -> None:
        if not isinstance(attachment, XdpAttachment):
            raise LoaderError("attach_xdp needs an XDP attachment")
        dev = self.kernel.devices.by_name(dev_name)
        if self.model_reset_loss and dev.xdp_prog is not None and dev.xdp_prog is not attachment:
            # naive program replacement: the driver resets its rings and
            # in-flight traffic is lost (LinuxFP's dispatcher exists to
            # avoid exactly this — it attaches once and swaps via tail call)
            nic = getattr(dev, "nic", None)
            if nic is not None:
                nic.driver_reset(XDP_REPLACE_RESET_FRAMES)
        dev.xdp_prog = attachment

    def attach_tc(self, dev_name: str, attachment: TcAttachment, egress: bool = False) -> None:
        if not isinstance(attachment, TcAttachment):
            raise LoaderError("attach_tc needs a TC attachment")
        dev = self.kernel.devices.by_name(dev_name)
        if egress:
            dev.tc_egress_prog = attachment
        else:
            dev.tc_ingress_prog = attachment

    def detach_xdp(self, dev_name: str) -> None:
        self.kernel.devices.by_name(dev_name).xdp_prog = None

    def detach_tc(self, dev_name: str, egress: bool = False) -> None:
        dev = self.kernel.devices.by_name(dev_name)
        if egress:
            dev.tc_egress_prog = None
        else:
            dev.tc_ingress_prog = None
