"""The eBPF substrate: bytecode VM, verifier, maps, helpers, hooks, mini-C.

LinuxFP's fast paths are synthesized C programs compiled to eBPF and loaded
at the XDP or TC hook. This package reproduces that whole chain:

- :mod:`repro.ebpf.isa` — the register-machine instruction set.
- :mod:`repro.ebpf.program` — program containers and disassembly.
- :mod:`repro.ebpf.maps` — hash/array/LPM-trie/prog-array/dev maps.
- :mod:`repro.ebpf.helpers` — the kernel helper registry, including the
  paper's ``bpf_fib_lookup`` plus its two new helpers ``bpf_fdb_lookup``
  and ``bpf_ipt_lookup``.
- :mod:`repro.ebpf.verifier` — static safety checks (bounded size, no back
  edges, initialized registers, valid stack/jump/call usage).
- :mod:`repro.ebpf.vm` — the interpreter, with per-instruction cost
  accounting (this is what makes "less code ⇒ faster" measurable) and
  tail-call support.
- :mod:`repro.ebpf.hooks` — XDP/TC attachment wrappers honoring the kernel's
  hook contract (:mod:`repro.kernel.hooks_api`).
- :mod:`repro.ebpf.loader` — the libbpf-like load/verify/attach façade.
- :mod:`repro.ebpf.minic` — a mini-C compiler (lexer → parser → codegen)
  for the synthesized FPM sources.
"""

from repro.ebpf.isa import Insn, Op
from repro.ebpf.program import Program
from repro.ebpf.maps import ArrayMap, DevMap, HashMap, LpmTrieMap, ProgArray
from repro.ebpf.vm import VM, VMError
from repro.ebpf.verifier import VerifierError, verify
from repro.ebpf.loader import Loader

__all__ = [
    "Insn",
    "Op",
    "Program",
    "ArrayMap",
    "DevMap",
    "HashMap",
    "LpmTrieMap",
    "ProgArray",
    "VM",
    "VMError",
    "VerifierError",
    "verify",
    "Loader",
]
