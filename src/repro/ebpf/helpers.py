"""The kernel helper registry.

Helpers are the LinuxFP state-unification mechanism: instead of mirroring
kernel state into maps, fast paths call into the kernel's own tables.
``bpf_fib_lookup`` exists in mainline Linux; ``bpf_fdb_lookup`` and
``bpf_ipt_lookup`` are the ~260 LoC of new helpers the paper adds (§V).

Each helper charges its calibrated cost to the kernel clock, receives the
VM's :class:`~repro.ebpf.vm.Env` plus up to five argument words, and returns
one word.

Return conventions (documented per helper) use 0 for success-with-output or
"handled", and small positive codes for "let the slow path handle it" — the
composition rule the paper's Table I encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.ebpf.maps import BpfMap, DevMap, MapError
from repro.ebpf.memory import MemoryError_, Pointer
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.packet import Packet, PacketError
from repro.netsim.skbuff import SKBuff
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover
    from repro.ebpf.vm import Env

HelperFn = Callable[["Env", List[object]], int]

# fib_lookup / conntrack output buffer sizes
FIB_OUT_SIZE = 16  # oif u32 | smac 6 | dmac 6
CT_OUT_SIZE = 8  # dnat ip u32 | dnat port u16 | pad u16

# fib_lookup return codes (subset of BPF_FIB_LKUP_RET_*)
FIB_LKUP_RET_SUCCESS = 0
FIB_LKUP_RET_NOT_FWDED = 1  # no route: slow path decides
FIB_LKUP_RET_NO_NEIGH = 2  # route but unresolved neighbor: slow path ARPs

# ipt_lookup verdicts
IPT_ACCEPT = 0
IPT_DROP = 1
IPT_UNSUPPORTED = 2  # rule features beyond the fast path: go slow


class HelperError(Exception):
    """Raised when a helper is called with invalid arguments."""


def _as_int(value: object, what: str) -> int:
    if not isinstance(value, int):
        raise HelperError(f"{what}: expected scalar, got {value!r}")
    return value


def _as_ptr(value: object, what: str) -> Pointer:
    if not isinstance(value, Pointer):
        raise HelperError(f"{what}: expected pointer, got {value!r}")
    return value


def _as_map(value: object, what: str) -> BpfMap:
    if not isinstance(value, BpfMap):
        raise HelperError(f"{what}: expected map reference, got {value!r}")
    return value


# --------------------------------------------------------------- map helpers

def _charge_shared_map_write(env: "Env", bpf_map: BpfMap) -> None:
    """The contention model: mutating a *shared* (non-per-CPU) map from a
    multi-core data path bounces the bucket's cacheline/lock between CPUs,
    so each such write is charged ``cross_cpu_lock`` on the executing CPU.
    Per-CPU flavours write an unshared slot and pay nothing, and reads stay
    free under RCU — which is exactly why the synthesizer upgrades per-flow
    counter maps to per-CPU on multi-core kernels.
    """
    kernel = env.kernel
    if bpf_map.percpu:
        return
    if kernel.cpus.num_cpus > 1 and kernel.cpus.current_cpu is not None:
        kernel.costs_charge("cross_cpu_lock")


def bpf_map_lookup_elem(env: "Env", args: List[object]) -> int:
    """(map, key_ptr) → 1 if present else 0; value copied to env scratch.

    Divergence note: real eBPF returns a value pointer; our mini-C uses the
    companion ``bpf_map_read`` convention instead (copy into a buffer), so
    this predicate form is what synthesized code needs.
    """
    env.kernel.costs_charge("ebpf_map_lookup")
    env.mark_uncacheable()  # map state can change per packet
    bpf_map = _as_map(args[0], "map_lookup")
    key = _as_ptr(args[1], "map_lookup key").region.read_bytes(args[1].offset, bpf_map.key_size)
    try:
        return 1 if bpf_map.lookup(key) is not None else 0
    except (MapError, NotImplementedError):
        return 0  # bad key shape / non-readable map type: report a miss


def bpf_map_read(env: "Env", args: List[object]) -> int:
    """(map, key_ptr, out_ptr) → 1 and copy value to out, or 0 on miss."""
    env.mark_uncacheable()  # map state can change per packet
    bpf_map = _as_map(args[0], "map_read")
    env.kernel.costs_charge("ebpf_lpm_lookup" if bpf_map.map_type == "lpm_trie" else "ebpf_map_lookup")
    key_ptr = _as_ptr(args[1], "map_read key")
    out_ptr = _as_ptr(args[2], "map_read out")
    key = key_ptr.region.read_bytes(key_ptr.offset, bpf_map.key_size)
    try:
        value = bpf_map.lookup(key)
    except (MapError, NotImplementedError):
        value = None  # bad key shape / non-readable map type: a miss
    if value is None:
        return 0
    out_ptr.region.write_bytes(out_ptr.offset, value)
    return 1


def bpf_map_update_elem(env: "Env", args: List[object]) -> int:
    """(map, key_ptr, value_ptr) → 0 on success, 1 on a rejected update.

    A full map, a malformed key (bad LPM prefix length, out-of-range array
    index) or a control-plane-only map type is an *error code*, not a
    program abort — the verifier cannot see map contents, so the runtime
    must keep these failure modes total for verified programs.
    """
    env.kernel.costs_charge("ebpf_map_update")
    env.mark_uncacheable()  # mutates map state
    bpf_map = _as_map(args[0], "map_update")
    _charge_shared_map_write(env, bpf_map)
    key_ptr = _as_ptr(args[1], "map_update key")
    value_ptr = _as_ptr(args[2], "map_update value")
    key = key_ptr.region.read_bytes(key_ptr.offset, bpf_map.key_size)
    value = value_ptr.region.read_bytes(value_ptr.offset, bpf_map.value_size)
    try:
        bpf_map.update(key, value)
    except (MapError, NotImplementedError, faults.InjectedFault):
        # Totality: a full map, an injected fault, or a bad key is an error
        # *code* for the program (it typically falls back to PASS), never an
        # exception escaping the hook. The failure stays visible through the
        # map's pressure counter.
        bpf_map.update_errors += 1
        return 1
    return 0


def bpf_map_delete_elem(env: "Env", args: List[object]) -> int:
    """(map, key_ptr) → 0 on success, 1 on a rejected delete."""
    env.kernel.costs_charge("ebpf_map_update")
    env.mark_uncacheable()  # mutates map state
    bpf_map = _as_map(args[0], "map_delete")
    _charge_shared_map_write(env, bpf_map)
    key_ptr = _as_ptr(args[1], "map_delete key")
    try:
        bpf_map.delete(key_ptr.region.read_bytes(key_ptr.offset, bpf_map.key_size))
    except (MapError, NotImplementedError, faults.InjectedFault):
        bpf_map.update_errors += 1
        return 1
    return 0


def bpf_ktime_get_ns(env: "Env", args: List[object]) -> int:
    """() → simulated clock ns."""
    env.mark_uncacheable()  # time-dependent result
    return env.kernel.clock.now_ns


# ----------------------------------------------------------- kernel helpers

def bpf_fib_lookup(env: "Env", args: List[object]) -> int:
    """(dst_ip, out_ptr) → FIB_LKUP_RET_*.

    On SUCCESS writes 16 bytes to out: oif u32 | src mac 6B | dst mac 6B —
    the rewrite data mainline's ``bpf_fib_lookup`` produces by consulting the
    kernel FIB *and* neighbor table.
    """
    kernel = env.kernel
    kernel.costs_charge("helper_fib_lookup")
    # Result depends on the FIB, the neighbor table, and device addressing.
    env.note_dep("fib")
    env.note_dep("neighbor")
    env.note_dep("devices")
    dst = IPv4Addr(_as_int(args[0], "fib dst") & 0xFFFFFFFF)
    out = _as_ptr(args[1], "fib out")
    # Locally-addressed packets are not forwarded (mainline returns
    # BPF_FIB_LKUP_RET_NOT_FWDED for local/host routes).
    for dev in kernel.devices.all():
        if dev.has_address(dst):
            return FIB_LKUP_RET_NOT_FWDED
    route = kernel.fib.lookup(dst)
    if route is None:
        return FIB_LKUP_RET_NOT_FWDED
    if route.is_multipath:
        # ECMP routes need the per-flow bucket-table selection (and its
        # idle-bucket bookkeeping), which lives in the slow path; the helper
        # only sees the destination, not the 5-tuple. Punt — mainline's
        # helper similarly leaves multipath selection to fib_select_path.
        return FIB_LKUP_RET_NOT_FWDED
    next_hop = route.next_hop or dst
    mac = kernel.neighbors.resolved(route.oif, next_hop)
    if mac is None:
        return FIB_LKUP_RET_NO_NEIGH
    out_dev = kernel.devices.by_index(route.oif)
    payload = route.oif.to_bytes(4, "big") + out_dev.mac.to_bytes() + mac.to_bytes()
    out.region.write_bytes(out.offset, payload)
    return FIB_LKUP_RET_SUCCESS


def bpf_fdb_lookup(env: "Env", args: List[object]) -> int:
    """(bridge_ifindex, ingress_ifindex, vlan, mac48, is_src) → egress ifindex.

    The paper's new bridge helper. Returns the learned egress port ifindex,
    or 0 when the slow path must take over: FDB miss (flooding), aged entry,
    entry pointing at a non-forwarding (STP) port, the bridge's own MAC
    (local delivery), or — for ``is_src=1`` checks — a source MAC that still
    needs learning/refresh, or an ingress port that may not forward.
    """
    kernel = env.kernel
    kernel.costs_charge("helper_fdb_lookup")
    env.note_dep("bridge")
    env.note_dep("devices")
    from repro.kernel.interfaces import BridgeDevice

    bridge_ifindex = _as_int(args[0], "fdb bridge")
    ingress_ifindex = _as_int(args[1], "fdb ingress")
    vlan = _as_int(args[2], "fdb vlan")
    mac = MacAddr(_as_int(args[3], "fdb mac") & ((1 << 48) - 1))
    is_src = bool(_as_int(args[4], "fdb is_src"))
    try:
        bridge_dev = kernel.devices.by_index(bridge_ifindex)
    except Exception:
        return 0
    if not isinstance(bridge_dev, BridgeDevice):
        return 0
    bridge = bridge_dev.bridge

    ingress_port = bridge.ports.get(ingress_ifindex)
    if ingress_port is None or (bridge.stp_enabled and not ingress_port.forwarding):
        return 0
    if bridge.vlan_filtering and vlan not in ingress_port.allowed_vlans and vlan != ingress_port.pvid:
        return 0

    entry = bridge.fdb.get((mac, vlan))
    if entry is None:
        return 0
    if not entry.is_local and not entry.is_static:
        if kernel.clock.now_ns - entry.updated_ns > bridge.ageing_time_ns:
            return 0  # aged: slow path re-learns
        # a cached verdict built on this entry goes stale when it ages out
        env.note_expiry(entry.updated_ns + bridge.ageing_time_ns)

    if is_src:
        # Fresh source entry on the right port: no learning work needed.
        return entry.port_ifindex if entry.port_ifindex == ingress_ifindex else 0

    if entry.is_local:
        return 0  # to the bridge itself: local delivery in the slow path
    egress_port = bridge.ports.get(entry.port_ifindex)
    if egress_port is None or not egress_port.forwarding:
        return 0
    if bridge.vlan_filtering and not bridge.egress_allowed(egress_port, vlan):
        return 0
    if entry.port_ifindex == ingress_ifindex:
        return 0  # hairpin: let the slow path decide (it drops)
    return entry.port_ifindex


def bpf_ipt_lookup(env: "Env", args: List[object]) -> int:
    """(chain_id, pkt_ptr, pkt_len, in_ifindex, out_ifindex) → IPT_*.

    The paper's new iptables helper: evaluates the filter chain against the
    packet using the kernel's own rule list (linear scan — the fast path
    inherits iptables' scaling, Fig 8) including ipset-aggregated rules.
    """
    kernel = env.kernel
    kernel.costs_charge("helper_ipt_base")
    env.note_dep("netfilter")
    env.note_dep("devices")
    chain_names = {0: "INPUT", 1: "FORWARD", 2: "OUTPUT"}
    chain_name = chain_names.get(_as_int(args[0], "ipt chain"))
    if chain_name is None:
        return IPT_UNSUPPORTED
    pkt_ptr = _as_ptr(args[1], "ipt pkt")
    pkt_len = _as_int(args[2], "ipt len")
    try:
        pkt = Packet.from_bytes(pkt_ptr.region.read_bytes(pkt_ptr.offset, pkt_len))
    except (PacketError, MemoryError_):
        return IPT_UNSUPPORTED
    if pkt.ip is None:
        return IPT_ACCEPT

    def name_of(ifindex: int):
        if ifindex == 0:
            return None
        try:
            return kernel.devices.by_index(ifindex).name
        except Exception:
            return None

    in_name = name_of(_as_int(args[3], "ipt in"))
    out_name = name_of(_as_int(args[4], "ipt out"))
    skb = SKBuff(pkt=pkt)
    chain = kernel.netfilter.chain(chain_name)
    for rule in chain.rules:
        kernel.costs_charge("helper_ipt_per_rule")
        if rule.ct_state is not None:
            # stateful rules need conntrack context the helper does not
            # carry (the paper's helper matches addresses/protocol only):
            # punt to the slow path, which tracks and evaluates correctly
            return IPT_UNSUPPORTED
        if rule.match_set is not None:
            kernel.costs_charge("helper_ipset_lookup")
            env.note_dep("ipset")
        if rule.matches(pkt.ip, skb, in_name, out_name, kernel.ipsets):
            rule.packets += 1
            env.matched_rules.append(rule)
            if rule.target == "ACCEPT":
                return IPT_ACCEPT
            if rule.target == "DROP":
                return IPT_DROP
            return IPT_UNSUPPORTED  # RETURN or exotic targets: slow path
    return IPT_ACCEPT if chain.policy == "ACCEPT" else IPT_DROP


def bpf_conntrack_lookup(env: "Env", args: List[object]) -> int:
    """(src_ip, dst_ip, proto, ports(sport<<16|dport), out_ptr) → 1 hit / 0.

    Supports the prototype ipvs FPM: a hit writes the pinned DNAT target
    (ip u32 | port u16 | pad) into out.
    """
    kernel = env.kernel
    kernel.costs_charge("helper_conntrack")
    env.note_dep("conntrack")
    from repro.kernel.conntrack import ConnTuple

    ports = _as_int(args[3], "ct ports")
    tup = ConnTuple(
        IPv4Addr(_as_int(args[0], "ct src") & 0xFFFFFFFF),
        IPv4Addr(_as_int(args[1], "ct dst") & 0xFFFFFFFF),
        _as_int(args[2], "ct proto"),
        (ports >> 16) & 0xFFFF,
        ports & 0xFFFF,
    )
    entry = kernel.conntrack.lookup(tup)
    if entry is None or entry.dnat_to is None:
        return 0
    out = _as_ptr(args[4], "ct out")
    ip, port = entry.dnat_to
    out.region.write_bytes(out.offset, ip.to_bytes() + port.to_bytes(2, "big") + b"\x00\x00")
    entry.packets += 1
    env.ct_entries.append(entry)
    env.note_expiry(entry.updated_ns + entry.timeout_ns())
    return 1


def bpf_redirect(env: "Env", args: List[object]) -> int:
    """(ifindex, flags) → the hook's REDIRECT verdict; records the target."""
    env.redirect_ifindex = _as_int(args[0], "redirect ifindex")
    return env.redirect_verdict


def bpf_redirect_map(env: "Env", args: List[object]) -> int:
    """(devmap, slot, flags) → REDIRECT verdict, or flags on empty slot."""
    env.mark_uncacheable()  # devmap slots can be repopulated per packet
    devmap = _as_map(args[0], "redirect_map")
    if not isinstance(devmap, DevMap):
        raise HelperError("redirect_map needs a devmap")
    ifindex = devmap.get_dev(_as_int(args[1], "redirect_map slot"))
    if ifindex is None:
        return _as_int(args[2], "redirect_map flags")
    env.redirect_ifindex = ifindex
    return env.redirect_verdict


def pcn_classify(env: "Env", args: List[object]) -> int:
    """(classifier_map, pkt_ptr, pkt_len) → 0 ACCEPT / 1 DROP.

    The Polycube baseline's bitvector classifier step. Cost is nearly flat
    in rule count (the platform's answer to iptables' linear scan, Fig 8).
    """
    kernel = env.kernel
    env.mark_uncacheable()  # baseline-platform state outside the kernel tables
    classifier_map = _as_map(args[0], "pcn_classify")
    classifier = getattr(classifier_map, "classifier", None)
    if classifier is None:
        raise HelperError("pcn_classify needs a ClassifierMap")
    kernel.charge_ns(
        kernel.costs.polycube_classifier + len(classifier) * kernel.costs.polycube_classifier_per_rule
    )
    pkt_ptr = _as_ptr(args[1], "pcn_classify pkt")
    pkt_len = _as_int(args[2], "pcn_classify len")
    return classifier.classify_frame(pkt_ptr.region.read_bytes(pkt_ptr.offset, pkt_len))


def bpf_trace_printk(env: "Env", args: List[object]) -> int:
    """(a, b, c) → 0; records a trace tuple for debugging/tests."""
    env.mark_uncacheable()  # per-packet side effect (the trace itself)
    env.trace.append(tuple(_as_int(a, "trace") if isinstance(a, int) else repr(a) for a in args[:3]))
    return 0


# ------------------------------------------------------------ signatures

U64_MAX = (1 << 64) - 1


@dataclass(frozen=True)
class ArgSpec:
    """One declared helper argument, as the static verifier checks it.

    ``kind`` is ``scalar`` / ``map`` / ``ptr`` / ``any`` (``any`` accepts
    anything, including uninitialized — only ``trace_printk`` uses it).
    For ``map`` arguments, ``map_types`` restricts the accepted
    ``map_type`` strings and ``byte_addressable`` additionally requires the
    map's keys/values to be readable as raw bytes (prog arrays and
    classifier handles are not). For ``ptr`` arguments the pointed-to size
    is a fixed byte count (``size``), the key/value size of the map passed
    in argument ``map_from`` (``size="map_key"``/``"map_value"``), or the
    value of another argument (``size_from``, 0-based); ``writes`` marks
    output buffers the helper fills.
    """

    kind: str
    map_types: Tuple[str, ...] = ()
    byte_addressable: bool = False
    size: Optional[Union[int, str]] = None
    size_from: Optional[int] = None
    map_from: int = 0
    writes: bool = False


@dataclass(frozen=True)
class HelperSig:
    """A helper's declared signature: argument specs plus return range.

    ``ret`` is either an inclusive u64 ``(lo, hi)`` interval — it must be a
    sound over-approximation of every value the helper can return, since the
    verifier prunes branches with it — or the string ``"map_value_or_null"``
    for lookup-style helpers that return a maybe-NULL value pointer.
    """

    name: str
    args: Tuple[ArgSpec, ...]
    ret: Union[Tuple[int, int], str] = (0, U64_MAX)


_SCALAR = ArgSpec("scalar")
_BYTE_MAP = ArgSpec("map", byte_addressable=True)
_KEY_PTR = ArgSpec("ptr", size="map_key")

HELPER_SIGS: Dict[int, HelperSig] = {
    1: HelperSig("map_lookup", (_BYTE_MAP, _KEY_PTR), ret=(0, 1)),
    2: HelperSig("map_read", (_BYTE_MAP, _KEY_PTR, ArgSpec("ptr", size="map_value", writes=True)), ret=(0, 1)),
    3: HelperSig("map_update", (_BYTE_MAP, _KEY_PTR, ArgSpec("ptr", size="map_value")), ret=(0, 1)),
    4: HelperSig("map_delete", (_BYTE_MAP, _KEY_PTR), ret=(0, 1)),
    5: HelperSig("ktime_get_ns", ()),
    6: HelperSig("fib_lookup", (_SCALAR, ArgSpec("ptr", size=FIB_OUT_SIZE, writes=True)), ret=(0, 2)),
    7: HelperSig("fdb_lookup", (_SCALAR,) * 5),
    8: HelperSig("ipt_lookup", (_SCALAR, ArgSpec("ptr", size_from=2), _SCALAR, _SCALAR, _SCALAR), ret=(0, 2)),
    9: HelperSig("conntrack_lookup", (_SCALAR,) * 4 + (ArgSpec("ptr", size=CT_OUT_SIZE, writes=True),), ret=(0, 1)),
    10: HelperSig("redirect", (_SCALAR, _SCALAR)),
    11: HelperSig("redirect_map", (ArgSpec("map", map_types=("devmap",)), _SCALAR, _SCALAR)),
    12: HelperSig("trace_printk", (ArgSpec("any"),) * 3, ret=(0, 0)),
    13: HelperSig("pcn_classify", (ArgSpec("map", map_types=("pcn_classifier",)), ArgSpec("ptr", size_from=2), _SCALAR)),
}


# ------------------------------------------------------------------ registry

HELPERS: Dict[int, Tuple[str, HelperFn]] = {
    1: ("map_lookup", bpf_map_lookup_elem),
    2: ("map_read", bpf_map_read),
    3: ("map_update", bpf_map_update_elem),
    4: ("map_delete", bpf_map_delete_elem),
    5: ("ktime_get_ns", bpf_ktime_get_ns),
    6: ("fib_lookup", bpf_fib_lookup),
    7: ("fdb_lookup", bpf_fdb_lookup),
    8: ("ipt_lookup", bpf_ipt_lookup),
    9: ("conntrack_lookup", bpf_conntrack_lookup),
    10: ("redirect", bpf_redirect),
    11: ("redirect_map", bpf_redirect_map),
    12: ("trace_printk", bpf_trace_printk),
    13: ("pcn_classify", pcn_classify),
}


def _register_af_xdp() -> None:
    # late-bound to avoid a module cycle (af_xdp imports helper utilities)
    from repro.ebpf.af_xdp import bpf_redirect_xsk

    HELPERS[14] = ("redirect_xsk", bpf_redirect_xsk)
    HELPER_IDS["redirect_xsk"] = 14
    HELPER_SIGS[14] = HelperSig(
        "redirect_xsk", (ArgSpec("map", map_types=("xskmap",)), _SCALAR, _SCALAR)
    )
    MAINLINE_HELPERS.add("redirect_xsk")  # AF_XDP redirect exists in mainline

HELPER_IDS: Dict[str, int] = {name: hid for hid, (name, __) in HELPERS.items()}

# Helpers present in mainline Linux vs the ones the paper adds; the LinuxFP
# Capability Manager consults this split (§V "Helper Functions"). Every
# registered helper belongs to exactly one of these sets (a unit-tested
# invariant); ``BASELINE_HELPERS`` holds the Polycube-baseline machinery that
# models platform code rather than a kernel helper.
MAINLINE_HELPERS = {"map_lookup", "map_read", "map_update", "map_delete",
                    "ktime_get_ns", "fib_lookup", "redirect", "redirect_map",
                    "trace_printk"}
LINUXFP_HELPERS = {"fdb_lookup", "ipt_lookup", "conntrack_lookup"}
BASELINE_HELPERS = {"pcn_classify"}

_register_af_xdp()
