"""The VM's memory model: regions and fat pointers.

eBPF programs manipulate *typed pointers* (packet, stack, map values, ctx);
the real verifier tracks their provenance statically. Our VM carries the
provenance at runtime in :class:`Pointer` values and enforces bounds on
every access — out-of-bounds access aborts the program, which the hook
layer converts into a packet drop (``XDP_ABORTED`` semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

MASK64 = (1 << 64) - 1


class MemoryError_(Exception):
    """Raised on out-of-bounds or misdirected memory access."""


class Region:
    """A bounded, optionally writable byte region.

    Stack regions (``allow_pointers=True``) additionally support *pointer
    spilling*: storing a fat pointer into an 8-byte slot and loading it back,
    mirroring how the real eBPF verifier tracks spilled pointers. Scalar
    writes overlapping a spilled pointer invalidate it.
    """

    def __init__(self, kind: str, data: bytearray, writable: bool = True, allow_pointers: bool = False) -> None:
        self.kind = kind
        self.data = data
        self.writable = writable
        self.allow_pointers = allow_pointers
        self._spilled: dict = {}  # offset -> Pointer

    def __len__(self) -> int:
        return len(self.data)

    def store_word(self, offset: int, size: int, value: "Word") -> None:
        """Store a scalar or (8-byte, stack-only) pointer word."""
        if isinstance(value, Pointer):
            if not self.allow_pointers or size != 8:
                raise MemoryError_(f"{self.kind}: cannot spill pointer here")
            if offset < 0 or offset + 8 > len(self.data):
                raise MemoryError_(f"{self.kind}: spill at {offset} out of bounds")
            self._invalidate(offset, 8)
            self._spilled[offset] = value
            self.data[offset : offset + 8] = b"\x00" * 8
            return
        self._invalidate(offset, size)
        self.store(offset, size, value)

    def load_word(self, offset: int, size: int) -> "Word":
        """Load a scalar, or a previously spilled pointer (exact 8-byte slot)."""
        if size == 8 and offset in self._spilled:
            return self._spilled[offset]
        return self.load(offset, size)

    def _invalidate(self, offset: int, size: int) -> None:
        if not self._spilled:
            return
        for spill_off in [o for o in self._spilled if o < offset + size and offset < o + 8]:
            del self._spilled[spill_off]

    def load(self, offset: int, size: int) -> int:
        if offset < 0 or offset + size > len(self.data):
            raise MemoryError_(f"{self.kind}: load [{offset}:{offset + size}] out of bounds (len {len(self.data)})")
        return int.from_bytes(self.data[offset : offset + size], "big")

    def store(self, offset: int, size: int, value: int) -> None:
        if not self.writable:
            raise MemoryError_(f"{self.kind}: region is read-only")
        if offset < 0 or offset + size > len(self.data):
            raise MemoryError_(f"{self.kind}: store [{offset}:{offset + size}] out of bounds (len {len(self.data)})")
        self.data[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")

    def read_bytes(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self.data):
            raise MemoryError_(f"{self.kind}: read [{offset}:{offset + size}] out of bounds")
        return bytes(self.data[offset : offset + size])

    def write_bytes(self, offset: int, payload: bytes) -> None:
        if not self.writable:
            raise MemoryError_(f"{self.kind}: region is read-only")
        if offset < 0 or offset + len(payload) > len(self.data):
            raise MemoryError_(f"{self.kind}: write [{offset}:{offset + len(payload)}] out of bounds")
        self.data[offset : offset + len(payload)] = payload


@dataclass(frozen=True)
class Pointer:
    """A region-tagged pointer; arithmetic only adjusts the offset."""

    region: Region
    offset: int

    def advanced(self, delta: int) -> "Pointer":
        return Pointer(self.region, self.offset + delta)

    def load(self, off: int, size: int) -> "Word":
        return self.region.load_word(self.offset + off, size)

    def store(self, off: int, size: int, value: "Word") -> None:
        self.region.store_word(self.offset + off, size, value)

    def __repr__(self) -> str:
        return f"Pointer({self.region.kind}+{self.offset})"


Word = Union[int, Pointer]
