"""minic recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.ebpf.minic import ast_nodes as ast
from repro.ebpf.minic.lexer import Token, tokenize

TYPE_KEYWORDS = {"u8", "u16", "u32", "u64", "void"}


class ParseError(SyntaxError):
    """Malformed minic source."""


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # --- token plumbing ---

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(f"line {token.line}: expected {want!r}, got {token.text!r}")
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def at_type(self) -> bool:
        return self.peek().kind == "kw" and self.peek().text in TYPE_KEYWORDS

    # --- top level ---

    def parse_unit(self) -> ast.Unit:
        funcs: List[ast.Func] = []
        maps: List[ast.MapDecl] = []
        while self.peek().kind != "eof":
            if self.accept("kw", "extern"):
                self.expect("kw", "map")
                name = self.expect("ident").text
                self.expect("punct", ";")
                maps.append(ast.MapDecl(name))
                continue
            funcs.append(self.parse_func())
        if not any(fn.name == "main" for fn in funcs):
            raise ParseError("no main() function")
        return ast.Unit(funcs=funcs, maps=maps)

    def parse_func(self) -> ast.Func:
        static = bool(self.accept("kw", "static"))
        self.parse_type()
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: List[ast.Param] = []
        if not self.accept("punct", ")"):
            while True:
                self.parse_type()
                params.append(ast.Param(self.expect("ident").text))
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        body = self.parse_block()
        return ast.Func(name=name, params=params, body=body, static=static)

    def parse_type(self) -> str:
        token = self.peek()
        if not self.at_type():
            raise ParseError(f"line {token.line}: expected a type, got {token.text!r}")
        self.advance()
        text = token.text
        while self.accept("punct", "*"):
            text += "*"
        return text

    # --- statements ---

    def parse_block(self) -> List[ast.Stmt]:
        self.expect("punct", "{")
        stmts: List[ast.Stmt] = []
        while not self.accept("punct", "}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "kw" and token.text == "if":
            return self.parse_if()
        if token.kind == "kw" and token.text == "return":
            self.advance()
            value = None
            if not (self.peek().kind == "punct" and self.peek().text == ";"):
                value = self.parse_expr()
            self.expect("punct", ";")
            return ast.Return(value)
        if self.at_type():
            self.parse_type()
            name = self.expect("ident").text
            array_size = None
            if self.accept("punct", "["):
                array_size = self.parse_int_literal()
                self.expect("punct", "]")
            init = None
            if self.accept("punct", "="):
                init = self.parse_expr()
            self.expect("punct", ";")
            return ast.VarDecl(name=name, array_size=array_size, init=init)
        # assignment or expression statement ("==" lexes as one token, so a
        # bare "=" after an identifier is unambiguous)
        next_token = self.tokens[self.pos + 1]
        if token.kind == "ident" and next_token.kind == "punct" and next_token.text == "=":
            name = self.advance().text
            self.expect("punct", "=")
            value = self.parse_expr()
            self.expect("punct", ";")
            return ast.Assign(name=name, value=value)
        expr = self.parse_expr()
        self.expect("punct", ";")
        return ast.ExprStmt(expr)

    def parse_if(self) -> ast.If:
        self.expect("kw", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.peek().kind == "kw" and self.peek().text == "if":
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body)

    def parse_int_literal(self) -> int:
        token = self.expect("num")
        return int(token.text, 0)

    # --- expressions (precedence climbing) ---

    PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expr(self) -> ast.Expr:
        return self.parse_binary(0)

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self.PRECEDENCE):
            return self.parse_unary()
        ops = self.PRECEDENCE[level]
        left = self.parse_binary(level + 1)
        while self.peek().kind == "punct" and self.peek().text in ops:
            op = self.advance().text
            right = self.parse_binary(level + 1)
            left = ast.Binary(op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "punct" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(op=token.text, operand=self.parse_unary())
        if token.kind == "punct" and token.text == "&":
            self.advance()
            name = self.expect("ident").text
            return ast.AddrOf(name)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            return ast.Num(int(token.text, 0))
        if token.kind == "punct" and token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if token.kind == "ident":
            name = self.advance().text
            if self.accept("punct", "("):
                args: List[ast.Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("punct", ")"):
                            break
                        self.expect("punct", ",")
                return ast.Call(name=name, args=args)
            return ast.Var(name)
        if token.kind == "kw" and token.text == "else":
            raise ParseError(f"line {token.line}: 'else' without matching 'if'")
        raise ParseError(f"line {token.line}: unexpected token {token.text!r}")


def parse(source: str) -> ast.Unit:
    return Parser(tokenize(source)).parse_unit()
