"""minic AST node definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# --- expressions ---

@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class AddrOf:
    name: str


@dataclass
class Unary:
    op: str  # '-', '!', '~'
    operand: "Expr"


@dataclass
class Binary:
    op: str  # + - * / % & | ^ << >> == != < <= > >= && ||
    left: "Expr"
    right: "Expr"


@dataclass
class Call:
    name: str
    args: List["Expr"]


Expr = object  # union of the above


# --- statements ---

@dataclass
class VarDecl:
    name: str
    array_size: Optional[int] = None  # u64 elements when an array
    init: Optional[Expr] = None


@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class If:
    cond: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class Return:
    value: Optional[Expr] = None


@dataclass
class ExprStmt:
    expr: Expr


Stmt = object  # union of the above


# --- top level ---

@dataclass
class Param:
    name: str


@dataclass
class Func:
    name: str
    params: List[Param]
    body: List[Stmt]
    static: bool = False


@dataclass
class MapDecl:
    name: str


@dataclass
class Unit:
    funcs: List[Func]
    maps: List[MapDecl]

    def func(self, name: str) -> Optional[Func]:
        for fn in self.funcs:
            if fn.name == name:
                return fn
        return None
