"""minic code generation.

A deliberately simple, obviously-correct lowering: expression results live
in R6 with intermediates spilled to stack temp slots (R6–R9 survive helper
calls; R1–R5 do not). Static functions are inlined at their call sites —
the cheap "function call" FPM chaining of Fig 10 — while ``tail_call``
lowers to the TAIL_CALL instruction whose per-call cost the same figure
measures.

Big-endian accessors ``ldN``/``stN`` lower to sized LDX/STX (48-bit MAC
accessors compose 16+32-bit halves). All named kernel helpers lower to CALL
with their registry id.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ebpf import helpers as helpers_mod
from repro.ebpf.analysis.opt.dce import eliminate_unreachable
from repro.ebpf.isa import Insn, Op
from repro.testing import faults
from repro.ebpf.maps import BpfMap
from repro.ebpf.minic import ast_nodes as ast
from repro.ebpf.minic.parser import parse
from repro.ebpf.program import Program
from repro.ebpf.vm import STACK_SIZE

WORK = 6  # primary working register (callee-preserved)
AUX = 7  # secondary working register
AUX2 = 8
FP = 10

NUM_TEMPS = 20

LOAD_BUILTINS = {"ld8": 1, "ld16": 2, "ld32": 4, "ld64": 8}
STORE_BUILTINS = {"st8": 1, "st16": 2, "st32": 4, "st64": 8}

CMP_OPS = {
    "==": Op.JEQ_REG,
    "!=": Op.JNE_REG,
    "<": Op.JLT_REG,
    "<=": Op.JLE_REG,
    ">": Op.JGT_REG,
    ">=": Op.JGE_REG,
}

ARITH_OPS = {
    "+": Op.ADD_REG,
    "-": Op.SUB_REG,
    "*": Op.MUL_REG,
    "/": Op.DIV_REG,
    "%": Op.MOD_REG,
    "&": Op.AND_REG,
    "|": Op.OR_REG,
    "^": Op.XOR_REG,
    "<<": Op.LSH_REG,
    ">>": Op.RSH_REG,
}

ARITH_IMM_OPS = {
    "+": Op.ADD_IMM,
    "-": Op.SUB_IMM,
    "*": Op.MUL_IMM,
    "/": Op.DIV_IMM,
    "%": Op.MOD_IMM,
    "&": Op.AND_IMM,
    "|": Op.OR_IMM,
    "^": Op.XOR_IMM,
    "<<": Op.LSH_IMM,
    ">>": Op.RSH_IMM,
}

CMP_IMM_OPS = {
    "==": Op.JEQ_IMM,
    "!=": Op.JNE_IMM,
    "<": Op.JLT_IMM,
    "<=": Op.JLE_IMM,
    ">": Op.JGT_IMM,
    ">=": Op.JGE_IMM,
}


class CodegenError(Exception):
    """Source is valid minic but cannot be lowered."""


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, tuple] = {}  # name -> (offset, is_array)

    def define(self, name: str, offset: int, is_array: bool) -> None:
        if name in self.vars:
            raise CodegenError(f"redefinition of {name!r}")
        self.vars[name] = (offset, is_array)

    def resolve(self, name: str) -> Optional[tuple]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class _InlineFrame:
    def __init__(self, ret_slot: int) -> None:
        self.ret_slot = ret_slot
        self.ret_jumps: List[int] = []


class Codegen:
    def __init__(self, unit: ast.Unit, maps: Dict[str, BpfMap]) -> None:
        self.unit = unit
        self.insns: List[Insn] = []
        self.map_order: List[BpfMap] = []
        self.map_index: Dict[str, int] = {}
        for decl in unit.maps:
            if decl.name not in maps:
                raise CodegenError(f"extern map {decl.name!r} not provided to the compiler")
            self.map_index[decl.name] = len(self.map_order)
            self.map_order.append(maps[decl.name])
        self.sp = 0  # grows downward; offsets are negative from FP
        self.scope = _Scope()
        self.temps: List[int] = []
        self.temp_depth = 0
        self.inline_stack: List[str] = []
        self.inline_frames: List[_InlineFrame] = []

    # ------------------------------------------------------------ utilities

    def emit(self, insn: Insn) -> int:
        self.insns.append(insn)
        return len(self.insns) - 1

    def here(self) -> int:
        return len(self.insns)

    def patch_jump(self, index: int, target: Optional[int] = None) -> None:
        """Point the jump at ``index`` to ``target`` (default: next insn)."""
        target = self.here() if target is None else target
        off = target - index - 1
        if off < 0:
            raise CodegenError("backward jump generated (loops are not supported)")
        self.insns[index].off = off

    def alloc(self, size_bytes: int) -> int:
        size_bytes = (size_bytes + 7) & ~7
        self.sp -= size_bytes
        if -self.sp > STACK_SIZE:
            raise CodegenError(f"stack frame exceeds {STACK_SIZE} bytes")
        return self.sp

    def temp_slot(self, depth: int) -> int:
        while len(self.temps) <= depth:
            self.temps.append(self.alloc(8))
        return self.temps[depth]

    def push_work(self) -> int:
        """Spill R6 to the next temp slot; returns the slot offset."""
        slot = self.temp_slot(self.temp_depth)
        self.temp_depth += 1
        self.emit(Insn(Op.STX, dst=FP, src=WORK, off=slot, imm=8))
        return slot

    def pop_to(self, reg: int) -> None:
        self.temp_depth -= 1
        slot = self.temps[self.temp_depth]
        self.emit(Insn(Op.LDX, dst=reg, src=FP, off=slot, imm=8))

    # ------------------------------------------------------------ statements

    def gen_main(self, hook_args: int = 3) -> None:
        main = self.unit.func("main")
        if len(main.params) > hook_args:
            raise CodegenError(f"main() takes at most {hook_args} parameters (pkt, len, ifindex)")
        for i, param in enumerate(main.params):
            slot = self.alloc(8)
            self.scope.define(param.name, slot, is_array=False)
            self.emit(Insn(Op.STX, dst=FP, src=1 + i, off=slot, imm=8, comment=f"param {param.name}"))
        self.gen_body(main.body)
        # implicit return 0 (programs should return explicitly; the verifier
        # requires the final EXIT regardless)
        self.emit(Insn(Op.MOV_IMM, dst=0, imm=0))
        self.emit(Insn(Op.EXIT))

    def gen_body(self, body: List[ast.Stmt]) -> None:
        self.scope = _Scope(self.scope)
        for stmt in body:
            self.gen_stmt(stmt)
        self.scope = self.scope.parent

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.array_size is not None:
                if stmt.init is not None:
                    raise CodegenError(f"array {stmt.name!r} cannot have an initializer")
                offset = self.alloc(8 * stmt.array_size)
                self.scope.define(stmt.name, offset, is_array=True)
                return
            slot = self.alloc(8)
            self.scope.define(stmt.name, slot, is_array=False)
            if stmt.init is not None:
                self.gen_expr(stmt.init)
                self.emit(Insn(Op.STX, dst=FP, src=WORK, off=slot, imm=8, comment=f"{stmt.name} ="))
            return
        if isinstance(stmt, ast.Assign):
            info = self.scope.resolve(stmt.name)
            if info is None:
                raise CodegenError(f"assignment to undefined variable {stmt.name!r}")
            offset, is_array = info
            if is_array:
                raise CodegenError(f"cannot assign to array {stmt.name!r}")
            self.gen_expr(stmt.value)
            self.emit(Insn(Op.STX, dst=FP, src=WORK, off=offset, imm=8, comment=f"{stmt.name} ="))
            return
        if isinstance(stmt, ast.If):
            jump_false = self.gen_branch_if_false(stmt.cond)
            self.gen_body(stmt.then_body)
            if stmt.else_body:
                jump_end = self.emit(Insn(Op.JA, comment="skip else"))
                self.patch_jump(jump_false)
                self.gen_body(stmt.else_body)
                self.patch_jump(jump_end)
            else:
                self.patch_jump(jump_false)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.gen_expr(stmt.value)
            else:
                self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
            if self.inline_frames:
                frame = self.inline_frames[-1]
                self.emit(Insn(Op.STX, dst=FP, src=WORK, off=frame.ret_slot, imm=8, comment="inline ret"))
                frame.ret_jumps.append(self.emit(Insn(Op.JA, comment="inline return")))
            else:
                self.emit(Insn(Op.MOV_REG, dst=0, src=WORK))
                self.emit(Insn(Op.EXIT))
            return
        if isinstance(stmt, ast.ExprStmt):
            self.gen_expr(stmt.expr)
            return
        raise CodegenError(f"unsupported statement {stmt!r}")  # pragma: no cover

    INVERTED_CMP_IMM = {
        "==": Op.JNE_IMM,
        "!=": Op.JEQ_IMM,
        "<": Op.JGE_IMM,
        "<=": Op.JGT_IMM,
        ">": Op.JLE_IMM,
        ">=": Op.JLT_IMM,
    }
    INVERTED_CMP_REG = {
        "==": Op.JNE_REG,
        "!=": Op.JEQ_REG,
        "<": Op.JGE_REG,
        "<=": Op.JGT_REG,
        ">": Op.JLE_REG,
        ">=": Op.JLT_REG,
    }

    def gen_branch_if_false(self, cond: ast.Expr) -> int:
        """Emit a fused compare-and-branch when the condition is a comparison;
        returns the index of the jump-if-false instruction to patch."""
        if isinstance(cond, ast.Binary) and cond.op in self.INVERTED_CMP_IMM:
            if isinstance(cond.right, ast.Num):
                self.gen_expr(cond.left)
                return self.emit(
                    Insn(self.INVERTED_CMP_IMM[cond.op], dst=WORK, imm=cond.right.value, comment="if-false")
                )
            self.gen_expr(cond.left)
            self.push_work()
            self.gen_expr(cond.right)
            self.pop_to(AUX)
            return self.emit(Insn(self.INVERTED_CMP_REG[cond.op], dst=AUX, src=WORK, comment="if-false"))
        self.gen_expr(cond)
        return self.emit(Insn(Op.JEQ_IMM, dst=WORK, imm=0, comment="if-false"))

    # ----------------------------------------------------------- expressions

    def gen_expr(self, expr: ast.Expr) -> None:
        """Generate code leaving the expression value in R6."""
        if isinstance(expr, ast.Num):
            self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=expr.value))
            return
        if isinstance(expr, ast.Var):
            info = self.scope.resolve(expr.name)
            if info is None:
                raise CodegenError(f"undefined variable {expr.name!r}")
            offset, is_array = info
            if is_array:
                self.emit(Insn(Op.MOV_REG, dst=WORK, src=FP))
                self.emit(Insn(Op.ADD_IMM, dst=WORK, imm=offset, comment=f"&{expr.name}"))
            else:
                self.emit(Insn(Op.LDX, dst=WORK, src=FP, off=offset, imm=8, comment=expr.name))
            return
        if isinstance(expr, ast.AddrOf):
            info = self.scope.resolve(expr.name)
            if info is None:
                raise CodegenError(f"&{expr.name}: undefined variable")
            offset, __ = info
            self.emit(Insn(Op.MOV_REG, dst=WORK, src=FP))
            self.emit(Insn(Op.ADD_IMM, dst=WORK, imm=offset, comment=f"&{expr.name}"))
            return
        if isinstance(expr, ast.Unary):
            self.gen_expr(expr.operand)
            if expr.op == "-":
                self.emit(Insn(Op.NEG, dst=WORK))
            elif expr.op == "~":
                self.emit(Insn(Op.XOR_IMM, dst=WORK, imm=(1 << 64) - 1))
            elif expr.op == "!":
                jump = self.emit(Insn(Op.JEQ_IMM, dst=WORK, imm=0, off=2))
                self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
                self.emit(Insn(Op.JA, off=1))
                self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=1))
                del jump
            else:  # pragma: no cover
                raise CodegenError(f"unsupported unary {expr.op!r}")
            return
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                self.gen_shortcircuit(expr)
                return
            # constant right operand: use immediate forms, no spill
            if isinstance(expr.right, ast.Num):
                self.gen_expr(expr.left)
                imm = expr.right.value
                if expr.op in ARITH_IMM_OPS:
                    self.emit(Insn(ARITH_IMM_OPS[expr.op], dst=WORK, imm=imm))
                    return
                if expr.op in CMP_IMM_OPS:
                    self.emit(Insn(CMP_IMM_OPS[expr.op], dst=WORK, imm=imm, off=2))
                    self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
                    self.emit(Insn(Op.JA, off=1))
                    self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=1))
                    return
            self.gen_expr(expr.left)
            self.push_work()
            self.gen_expr(expr.right)
            self.pop_to(AUX)  # left in AUX, right in WORK
            if expr.op in ARITH_OPS:
                self.emit(Insn(ARITH_OPS[expr.op], dst=AUX, src=WORK))
                self.emit(Insn(Op.MOV_REG, dst=WORK, src=AUX))
            elif expr.op in CMP_OPS:
                self.emit(Insn(CMP_OPS[expr.op], dst=AUX, src=WORK, off=2))
                self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
                self.emit(Insn(Op.JA, off=1))
                self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=1))
            else:  # pragma: no cover
                raise CodegenError(f"unsupported operator {expr.op!r}")
            return
        if isinstance(expr, ast.Call):
            self.gen_call(expr)
            return
        raise CodegenError(f"unsupported expression {expr!r}")  # pragma: no cover

    def gen_shortcircuit(self, expr: ast.Binary) -> None:
        self.gen_expr(expr.left)
        if expr.op == "&&":
            jump_short = self.emit(Insn(Op.JEQ_IMM, dst=WORK, imm=0, comment="&& short"))
            self.gen_expr(expr.right)
            jump_rhs = self.emit(Insn(Op.JEQ_IMM, dst=WORK, imm=0, comment="&& rhs false"))
            self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=1))
            jump_end = self.emit(Insn(Op.JA))
            self.patch_jump(jump_short)
            self.patch_jump(jump_rhs, self.here())
            self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
            self.patch_jump(jump_end)
        else:  # ||
            jump_short = self.emit(Insn(Op.JNE_IMM, dst=WORK, imm=0, comment="|| short"))
            self.gen_expr(expr.right)
            jump_rhs = self.emit(Insn(Op.JNE_IMM, dst=WORK, imm=0, comment="|| rhs true"))
            self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
            jump_end = self.emit(Insn(Op.JA))
            self.patch_jump(jump_short)
            self.patch_jump(jump_rhs, self.here())
            self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=1))
            self.patch_jump(jump_end)

    # ----------------------------------------------------------------- calls

    def gen_call(self, call: ast.Call) -> None:
        name = call.name

        if name in LOAD_BUILTINS or name == "ld48":
            self.gen_load_builtin(call)
            return
        if name in STORE_BUILTINS or name == "st48":
            self.gen_store_builtin(call)
            return
        if name == "tail_call":
            self.gen_tail_call(call)
            return
        if name in helpers_mod.HELPER_IDS:
            self.gen_helper_call(name, call.args)
            return
        user = self.unit.func(name)
        if user is not None:
            self.gen_inline_call(user, call.args)
            return
        raise CodegenError(f"unknown function {name!r}")

    def gen_helper_call(self, name: str, args: List[ast.Expr]) -> None:
        if len(args) > 5:
            raise CodegenError(f"{name}: helpers take at most 5 arguments")
        slots = []
        for arg in args:
            if isinstance(arg, ast.Var) and arg.name in self.map_index:
                # map reference argument: loaded right before the call
                slots.append(("map", self.map_index[arg.name]))
                continue
            if isinstance(arg, ast.Num):
                slots.append(("imm", arg.value))
                continue
            if isinstance(arg, ast.Var):
                info = self.scope.resolve(arg.name)
                if info is not None and not info[1]:
                    slots.append(("var", info[0]))  # plain local: load directly
                    continue
            self.gen_expr(arg)
            slots.append(("slot", self.push_work()))
        for i, (kind, value) in enumerate(slots):
            if kind == "map":
                self.emit(Insn(Op.LD_MAP, dst=1 + i, imm=value))
            elif kind == "imm":
                self.emit(Insn(Op.MOV_IMM, dst=1 + i, imm=value))
            else:  # "slot" or "var": both are frame offsets
                self.emit(Insn(Op.LDX, dst=1 + i, src=FP, off=value, imm=8))
        self.temp_depth -= sum(1 for kind, __ in slots if kind == "slot")
        self.emit(Insn(Op.CALL, imm=helpers_mod.HELPER_IDS[name], comment=name))
        self.emit(Insn(Op.MOV_REG, dst=WORK, src=0))

    def gen_tail_call(self, call: ast.Call) -> None:
        if len(call.args) != 3:
            raise CodegenError("tail_call(ctx, prog_array, index)")
        ctx_expr, map_expr, index_expr = call.args
        if not isinstance(map_expr, ast.Var) or map_expr.name not in self.map_index:
            raise CodegenError("tail_call: second argument must be an extern map")
        self.gen_expr(ctx_expr)
        ctx_slot = self.push_work()
        self.gen_expr(index_expr)
        index_slot = self.push_work()
        self.emit(Insn(Op.LDX, dst=1, src=FP, off=ctx_slot, imm=8))
        self.emit(Insn(Op.LD_MAP, dst=2, imm=self.map_index[map_expr.name]))
        self.emit(Insn(Op.LDX, dst=3, src=FP, off=index_slot, imm=8))
        self.temp_depth -= 2
        self.emit(Insn(Op.TAIL_CALL, comment="tail_call"))
        # falls through when the slot is empty
        self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))

    def gen_load_builtin(self, call: ast.Call) -> None:
        if len(call.args) != 2:
            raise CodegenError(f"{call.name}(ptr, offset)")
        ptr_expr, off_expr = call.args
        if isinstance(off_expr, ast.Num):
            self.gen_expr(ptr_expr)
            base_off = off_expr.value
        else:
            self.gen_expr(ptr_expr)
            self.push_work()
            self.gen_expr(off_expr)
            self.pop_to(AUX)
            self.emit(Insn(Op.ADD_REG, dst=AUX, src=WORK))
            self.emit(Insn(Op.MOV_REG, dst=WORK, src=AUX))
            base_off = 0
        if call.name == "ld48":
            self.emit(Insn(Op.LDX, dst=AUX2, src=WORK, off=base_off, imm=2, comment="ld48 hi"))
            self.emit(Insn(Op.LSH_IMM, dst=AUX2, imm=32))
            self.emit(Insn(Op.LDX, dst=AUX, src=WORK, off=base_off + 2, imm=4, comment="ld48 lo"))
            self.emit(Insn(Op.OR_REG, dst=AUX2, src=AUX))
            self.emit(Insn(Op.MOV_REG, dst=WORK, src=AUX2))
        else:
            self.emit(Insn(Op.LDX, dst=WORK, src=WORK, off=base_off, imm=LOAD_BUILTINS[call.name], comment=call.name))

    def gen_store_builtin(self, call: ast.Call) -> None:
        if len(call.args) != 3:
            raise CodegenError(f"{call.name}(ptr, offset, value)")
        ptr_expr, off_expr, value_expr = call.args
        const_off = off_expr.value if isinstance(off_expr, ast.Num) else None
        # pointer (+ dynamic offset) into AUX
        self.gen_expr(ptr_expr)
        if const_off is None:
            self.push_work()
            self.gen_expr(off_expr)
            self.pop_to(AUX)
            self.emit(Insn(Op.ADD_REG, dst=AUX, src=WORK))
            self.emit(Insn(Op.MOV_REG, dst=WORK, src=AUX))
            const_off = 0
        ptr_slot = self.push_work()
        self.gen_expr(value_expr)
        self.emit(Insn(Op.LDX, dst=AUX, src=FP, off=ptr_slot, imm=8))
        self.temp_depth -= 1
        if call.name == "st48":
            self.emit(Insn(Op.MOV_REG, dst=AUX2, src=WORK))
            self.emit(Insn(Op.RSH_IMM, dst=AUX2, imm=32))
            self.emit(Insn(Op.STX, dst=AUX, src=AUX2, off=const_off, imm=2, comment="st48 hi"))
            self.emit(Insn(Op.AND_IMM, dst=WORK, imm=0xFFFFFFFF))
            self.emit(Insn(Op.STX, dst=AUX, src=WORK, off=const_off + 2, imm=4, comment="st48 lo"))
        else:
            self.emit(Insn(Op.STX, dst=AUX, src=WORK, off=const_off, imm=STORE_BUILTINS[call.name], comment=call.name))

    def gen_inline_call(self, func: ast.Func, args: List[ast.Expr]) -> None:
        if func.name in self.inline_stack:
            raise CodegenError(f"recursive call to {func.name!r} (recursion is not supported)")
        if len(args) != len(func.params):
            raise CodegenError(f"{func.name}: expected {len(func.params)} arguments, got {len(args)}")
        # lexical scoping: the inlined callee sees ONLY its own parameters
        # and locals, never the caller's variables
        call_scope = _Scope(None)
        # evaluate arguments in the caller scope (before the recursion guard:
        # f(f(x)) is nesting, not recursion), bind in the callee scope
        bindings = []
        for arg in args:
            self.gen_expr(arg)
            slot = self.alloc(8)
            self.emit(Insn(Op.STX, dst=FP, src=WORK, off=slot, imm=8))
            bindings.append(slot)
        self.inline_stack.append(func.name)
        outer_scope = self.scope
        self.scope = call_scope
        for param, slot in zip(func.params, bindings):
            self.scope.define(param.name, slot, is_array=False)
        frame = _InlineFrame(ret_slot=self.alloc(8))
        self.inline_frames.append(frame)
        self.gen_body(func.body)
        # fall-through: return 0
        self.emit(Insn(Op.MOV_IMM, dst=WORK, imm=0))
        self.emit(Insn(Op.STX, dst=FP, src=WORK, off=frame.ret_slot, imm=8))
        for jump in frame.ret_jumps:
            self.patch_jump(jump)
        self.emit(Insn(Op.LDX, dst=WORK, src=FP, off=frame.ret_slot, imm=8, comment=f"{func.name} result"))
        self.inline_frames.pop()
        self.scope = outer_scope
        self.inline_stack.pop()


def compile_c(
    source: str,
    name: str = "prog",
    hook: str = "xdp",
    maps: Optional[Dict[str, BpfMap]] = None,
) -> Program:
    """Compile minic ``source`` into a loadable :class:`Program`."""
    faults.fire("compile", name)
    unit = parse(source)
    generator = Codegen(unit, maps or {})
    generator.gen_main()
    return Program(
        name=name,
        insns=eliminate_unreachable(generator.insns),
        hook=hook,
        maps=generator.map_order,
        source=source,
    )
