"""minic lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {"u8", "u16", "u32", "u64", "void", "if", "else", "return", "static", "extern", "map"}

TWO_CHAR = {"==", "!=", "<=", ">=", "<<", ">>", "&&", "||"}
ONE_CHAR = set("()[]{};,=<>+-*/%&|^!~")


class LexError(SyntaxError):
    """Bad token in minic source."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'kw' | 'punct' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}:{self.text!r}@{self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise LexError(f"line {line}: bad hex literal")
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(Token("kw" if text in KEYWORDS else "ident", text, line))
            i = j
            continue
        if source[i : i + 2] in TWO_CHAR:
            tokens.append(Token("punct", source[i : i + 2], line))
            i += 2
            continue
        if ch in ONE_CHAR:
            tokens.append(Token("punct", ch, line))
            i += 1
            continue
        raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
