"""minic: the restricted-C compiler for synthesized fast-path sources.

The LinuxFP synthesizer emits C from templates (§IV-B3); this package
compiles that C down to the eBPF bytecode the loader verifies and attaches.
The language is the loop-free subset real FPMs need:

- types ``u8 u16 u32 u64 void`` plus pointers (all values are 64-bit words
  at runtime, as in eBPF registers);
- functions; ``static`` functions are **inlined at the call site** — this is
  the "function call" FPM chaining the paper compares against tail calls
  (Fig 10);
- ``if``/``else``, local variables, u64 stack arrays, full C expression
  operators with short-circuit ``&&``/``||``;
- **no loops** (classic eBPF's termination rule; iteration lives inside
  helpers, as with ``bpf_ipt_lookup``);
- builtins: big-endian accessors ``ld8/ld16/ld32/ld48/ld64`` and
  ``st8/st16/st32/st48/st64``, every kernel helper by name
  (``fib_lookup(dst, buf)``, ``fdb_lookup(...)``, ``ipt_lookup(...)``, …),
  and ``tail_call(ctx, prog_array, index)``;
- ``extern map NAME;`` declares a map slot resolved at compile time.

Entry point::

    program = compile_c(source, name="router", hook="xdp", maps={...})
"""

from repro.ebpf.minic.lexer import LexError, tokenize
from repro.ebpf.minic.parser import ParseError, parse
from repro.ebpf.minic.codegen import CodegenError, compile_c

__all__ = ["tokenize", "parse", "compile_c", "LexError", "ParseError", "CodegenError"]
