"""eBPF maps: hash, LRU hash, array, LPM trie, prog array, and devmap.

Keys and values are fixed-size byte strings, as in real eBPF. The LinuxFP
design deliberately avoids using maps for *kernel state* (state is reached
through helpers); maps remain for the dispatch machinery (prog arrays for
atomic fast-path swaps and tail-call chains, devmaps for redirects), for
custom FPM state, and for the Polycube baseline, which keeps its own
map-based state.

Maps carry a ``schema`` (type + key/value size + ``schema_version``) that
the deployer uses to decide whether accumulated state can migrate into a
redeployed program's maps, and pressure counters (``update_errors``,
``evictions``) so overload is visible as a metric rather than silent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Addr
from repro.netsim.cpu import current_cpu
from repro.testing import faults


class MapError(ValueError):
    """Raised for invalid map operations."""


class BpfMap:
    """Base class: fixed key/value sizes, bounded entry count."""

    map_type = "generic"
    #: Whether the generic byte-oriented map helpers (``map_lookup`` /
    #: ``map_read`` / ``map_update`` / ``map_delete``) may touch this map.
    #: Prog arrays and classifier handles hold control-plane objects, not
    #: byte values — the verifier rejects generic access to them statically.
    byte_addressable = True
    #: Per-CPU flavours keep one value slot per logical CPU: fast-path
    #: access is uncontended (no cross-CPU cacheline bounce is charged),
    #: and the control plane aggregates on read.
    percpu = False

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int,
        schema_version: int = 1,
    ) -> None:
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("map dimensions must be positive")
        self.name = name
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        #: Bumped by an operator when the *meaning* of the bytes changes even
        #: though the sizes did not; the deployer refuses to migrate state
        #: across differing versions.
        self.schema_version = schema_version
        #: Set by the deployer while the map's state is being migrated into a
        #: successor program's map: writes are refused so the snapshot cannot
        #: tear mid-copy.
        self.frozen = False
        #: Rejected updates (full map, bad key shape, injected fault) —
        #: every fast-path update failure is counted, never silent.
        self.update_errors = 0
        #: Entries displaced to make room (LRU maps only, but kept on the
        #: base class so metrics can walk any map uniformly).
        self.evictions = 0

    def schema(self) -> Tuple[str, int, int, int]:
        """The compatibility tuple the deployer matches for live migration."""
        return (self.map_type, self.key_size, self.value_size, self.schema_version)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise MapError(f"{self.name}: key must be {self.key_size} bytes, got {len(key)}")

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.value_size:
            raise MapError(f"{self.name}: value must be {self.value_size} bytes, got {len(value)}")

    def _check_frozen(self) -> None:
        if self.frozen:
            raise MapError(f"{self.name}: frozen for state migration")

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def items(self) -> List[Tuple[bytes, bytes]]:
        """(key, value) pairs for state migration; [] for stateless maps."""
        return []

    def clone_empty(self) -> "BpfMap":
        """A fresh map with the same schema and no entries (a new program's
        map before the deployer migrates state into it)."""
        raise NotImplementedError


class HashMap(BpfMap):
    map_type = "hash"

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int = 1024,
        schema_version: int = 1,
    ) -> None:
        super().__init__(name, key_size, value_size, max_entries, schema_version)
        self._data: Dict[bytes, bytes] = {}

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        return self._data.get(key)

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        if key not in self._data and len(self._data) >= self.max_entries:
            self._make_room(key)
        self._data[key] = value

    def _make_room(self, key: bytes) -> None:
        """Plain hash maps reject inserts at capacity (``-E2BIG``)."""
        raise MapError(f"{self.name}: map full ({self.max_entries})")

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        self._check_key(key)
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[bytes]:
        return list(self._data)

    def items(self) -> List[Tuple[bytes, bytes]]:
        return list(self._data.items())

    def clone_empty(self) -> "HashMap":
        return type(self)(
            self.name, self.key_size, self.value_size, self.max_entries, self.schema_version
        )


class LruHashMap(HashMap):
    """``BPF_MAP_TYPE_LRU_HASH``: inserting into a full map evicts the
    least-recently-used entry instead of failing.

    Recency follows the kernel's semantics closely enough for the
    simulation: lookups and updates both refresh an entry. This is the map
    type the synthesizer picks for *flow-keyed* state — flow arrival is
    unbounded, so a plain hash map would wedge at ``max_entries`` and every
    later flow's update would fail forever; an LRU map degrades instead
    (old flows age out, the hot set stays resident) and the displacement is
    counted in :attr:`~BpfMap.evictions`.
    """

    map_type = "lru_hash"

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int = 1024,
        schema_version: int = 1,
    ) -> None:
        super().__init__(name, key_size, value_size, max_entries, schema_version)
        self._data: "OrderedDict[bytes, bytes]" = OrderedDict()

    @classmethod
    def from_hash(cls, source: HashMap) -> "LruHashMap":
        """Upgrade a plain hash map in place-of: same schema sizes and
        contents, LRU insert semantics (the synthesizer's choice for
        flow-keyed custom state)."""
        lru = cls(
            source.name, source.key_size, source.value_size, source.max_entries,
            source.schema_version,
        )
        for key, value in source.items():
            lru._data[key] = value
        return lru

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def update(self, key: bytes, value: bytes) -> None:
        super().update(key, value)
        self._data.move_to_end(key)

    def _make_room(self, key: bytes) -> None:
        self._data.popitem(last=False)  # evict the least recently used
        self.evictions += 1


class PercpuHashMap(BpfMap):
    """``BPF_MAP_TYPE_PERCPU_HASH``: one value slot per logical CPU.

    Fast-path access (inside a :meth:`~repro.netsim.cpu.CpuSet.on` context)
    touches only the executing CPU's slot, so concurrent flows on different
    CPUs never contend. From the control plane (no CPU context):

    - ``lookup`` *aggregates on read*: the per-CPU values are summed as
      big-endian unsigned integers of ``value_size`` bytes (the counter
      convention of the custom-FPM templates, ``read_flow_counter``), which
      is what ``bpf_map_lookup_elem`` + a userspace per-CPU sum does for
      counter maps;
    - ``update`` writes the value to CPU 0's slot and clears the key on all
      other CPUs, so a subsequent aggregate read returns exactly the value
      written;
    - ``delete`` removes the key from every CPU.

    ``max_entries`` bounds *distinct keys* across all CPUs, matching the
    kernel's accounting for per-CPU hash maps.
    """

    map_type = "percpu_hash"
    percpu = True

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int = 1024,
        schema_version: int = 1,
        num_cpus: int = 1,
    ) -> None:
        super().__init__(name, key_size, value_size, max_entries, schema_version)
        if num_cpus < 1:
            raise MapError("per-CPU map needs at least one CPU")
        self.num_cpus = num_cpus
        self._cpu_data: List[Dict[bytes, bytes]] = [self._empty_slot() for _ in range(num_cpus)]

    def _empty_slot(self) -> Dict[bytes, bytes]:
        return {}

    @classmethod
    def from_hash(cls, source: HashMap, num_cpus: int) -> "PercpuHashMap":
        """Upgrade a plain hash map: same schema sizes, accumulated contents
        land on CPU 0 (so aggregate reads preserve every value)."""
        out = cls(
            source.name, source.key_size, source.value_size, source.max_entries,
            source.schema_version, num_cpus=num_cpus,
        )
        for key, value in source.items():
            out._cpu_data[0][key] = value
        return out

    # --- capacity (distinct keys across the union of CPU slots) ---

    def _known_keys(self) -> set:
        keys: set = set()
        for slot in self._cpu_data:
            keys.update(slot)
        return keys

    def __len__(self) -> int:
        return len(self._known_keys())

    def keys(self) -> List[bytes]:
        return sorted(self._known_keys())

    def _make_room(self, cpu: int, key: bytes) -> None:
        raise MapError(f"{self.name}: map full ({self.max_entries})")

    # --- data path ---

    def _this_cpu(self) -> Optional[int]:
        cpu = current_cpu()
        if cpu is None:
            return None
        # A kernel may run with fewer CPUs than a neighbour that is
        # currently mid-softirq; clamp rather than crash.
        return cpu % self.num_cpus

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        cpu = self._this_cpu()
        if cpu is not None:
            return self._cpu_data[cpu].get(key)
        return self._aggregate(key)

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        cpu = self._this_cpu()
        if cpu is not None:
            slot = self._cpu_data[cpu]
            if key not in self._known_keys() and len(self) >= self.max_entries:
                self._make_room(cpu, key)
            slot[key] = value
            self._touch(cpu, key)
            return
        # Control plane: the written value becomes the aggregate.
        if key not in self._known_keys() and len(self) >= self.max_entries:
            self._make_room(0, key)
        for cpu_index, slot in enumerate(self._cpu_data):
            if cpu_index == 0:
                slot[key] = value
                self._touch(0, key)
            else:
                slot.pop(key, None)

    def delete(self, key: bytes) -> None:
        # Kernel percpu-hash delete removes the whole entry (all CPUs);
        # there is no per-CPU partial delete.
        self._check_frozen()
        self._check_key(key)
        for slot in self._cpu_data:
            slot.pop(key, None)

    def _touch(self, cpu: int, key: bytes) -> None:
        """Recency hook for the LRU subclass; plain maps do nothing."""

    # --- control plane / migration ---

    def _aggregate(self, key: bytes) -> Optional[bytes]:
        total = 0
        found = False
        for slot in self._cpu_data:
            value = slot.get(key)
            if value is not None:
                found = True
                total += int.from_bytes(value, "big")
        if not found:
            return None
        mask = (1 << (8 * self.value_size)) - 1
        return (total & mask).to_bytes(self.value_size, "big")

    def items(self) -> List[Tuple[bytes, bytes]]:
        """(key, aggregated value) pairs — the control-plane view."""
        out = []
        for key in self.keys():
            value = self._aggregate(key)
            if value is not None:
                out.append((key, value))
        return out

    def percpu_items(self) -> List[Tuple[bytes, List[Optional[bytes]]]]:
        """(key, per-CPU slot values) — exact state for live migration."""
        return [
            (key, [slot.get(key) for slot in self._cpu_data])
            for key in self.keys()
        ]

    def update_cpu(self, cpu: int, key: bytes, value: bytes) -> None:
        """Write one CPU's slot directly (deployer migration path)."""
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        if key not in self._known_keys() and len(self) >= self.max_entries:
            self._make_room(cpu % self.num_cpus, key)
        self._cpu_data[cpu % self.num_cpus][key] = value
        self._touch(cpu % self.num_cpus, key)

    def lookup_cpu(self, cpu: int, key: bytes) -> Optional[bytes]:
        """Read one CPU's slot directly (tests / migration verification)."""
        self._check_key(key)
        return self._cpu_data[cpu % self.num_cpus].get(key)

    def drain_cpu(self, dead: int, target: int) -> int:
        """CPU hotplug: rehome the ``dead`` CPU's slot values onto ``target``.

        A value moves only when the target CPU has no value for that key;
        otherwise it stays where it is — control-plane reads aggregate
        across *all* slots, so totals are preserved either way, and moving
        would clobber live state. (The kernel has no analogue: per-CPU map
        slots simply persist across hotplug. We move what we safely can so
        single-CPU probes from the new owner see the flow's state.)
        Returns values moved.
        """
        self._check_frozen()
        dead %= self.num_cpus
        target %= self.num_cpus
        if dead == target:
            return 0
        dead_slot = self._cpu_data[dead]
        target_slot = self._cpu_data[target]
        moved = 0
        for key in list(dead_slot):
            if key in target_slot or not self._slot_has_room(target_slot):
                continue
            target_slot[key] = dead_slot.pop(key)
            self._touch(target, key)
            moved += 1
        return moved

    def _slot_has_room(self, slot: Dict[bytes, bytes]) -> bool:
        """Whether a drain move may add a key to ``slot`` (distinct-key
        capacity is global for plain per-CPU hashes, so a move never grows
        it; the LRU subclass enforces its per-CPU shard budget instead)."""
        return True

    def clone_empty(self) -> "PercpuHashMap":
        return type(self)(
            self.name, self.key_size, self.value_size, self.max_entries,
            self.schema_version, num_cpus=self.num_cpus,
        )


class PercpuLruHashMap(PercpuHashMap):
    """``BPF_MAP_TYPE_LRU_PERCPU_HASH``: per-CPU slots with per-CPU LRU
    lists — each CPU evicts from its own shard of the entry budget
    (``max_entries // num_cpus``), like the kernel's per-CPU LRU free
    lists. The synthesizer's choice for flow-keyed custom state on
    multi-core kernels.
    """

    map_type = "percpu_lru_hash"

    def _empty_slot(self) -> "OrderedDict[bytes, bytes]":
        return OrderedDict()

    @property
    def shard_budget(self) -> int:
        return max(1, self.max_entries // self.num_cpus)

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        cpu = self._this_cpu()
        if cpu is not None:
            slot = self._cpu_data[cpu]
            if key not in slot and len(slot) >= self.shard_budget:
                self._make_room(cpu, key)
            slot[key] = value
            self._touch(cpu, key)
            return
        for cpu_index, slot in enumerate(self._cpu_data):
            if cpu_index == 0:
                if key not in slot and len(slot) >= self.shard_budget:
                    self._make_room(0, key)
                slot[key] = value
                self._touch(0, key)
            else:
                slot.pop(key, None)

    def update_cpu(self, cpu: int, key: bytes, value: bytes) -> None:
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        slot = self._cpu_data[cpu % self.num_cpus]
        if key not in slot and len(slot) >= self.shard_budget:
            self._make_room(cpu % self.num_cpus, key)
        slot[key] = value
        self._touch(cpu % self.num_cpus, key)

    def lookup(self, key: bytes) -> Optional[bytes]:
        value = super().lookup(key)
        cpu = self._this_cpu()
        if value is not None and cpu is not None:
            self._touch(cpu, key)
        return value

    def _make_room(self, cpu: int, key: bytes) -> None:
        slot = self._cpu_data[cpu]
        if slot:
            slot.popitem(last=False)  # evict this CPU's least recently used
            self.evictions += 1

    def _touch(self, cpu: int, key: bytes) -> None:
        slot = self._cpu_data[cpu]
        if key in slot:
            slot.move_to_end(key)

    def _slot_has_room(self, slot: Dict[bytes, bytes]) -> bool:
        # Never evict the target CPU's live entries to make room for a
        # hotplug drain; stranded values still aggregate correctly.
        return len(slot) < self.shard_budget

    @classmethod
    def from_lru(cls, source: LruHashMap, num_cpus: int) -> "PercpuLruHashMap":
        """Upgrade a (single-core) LRU hash map: contents land on CPU 0."""
        out = cls(
            source.name, source.key_size, source.value_size, source.max_entries,
            source.schema_version, num_cpus=num_cpus,
        )
        for key, value in source.items():
            out.update_cpu(0, key, value)
        return out


class PercpuArrayMap(BpfMap):
    """``BPF_MAP_TYPE_PERCPU_ARRAY``: fixed slots, one value per CPU each.

    Same access rules as :class:`PercpuHashMap`: in-context access hits the
    executing CPU's copy; control-plane reads aggregate (big-endian sum);
    control-plane writes set CPU 0 and zero the rest.
    """

    map_type = "percpu_array"
    percpu = True

    def __init__(
        self,
        name: str,
        value_size: int,
        max_entries: int,
        schema_version: int = 1,
        num_cpus: int = 1,
    ) -> None:
        super().__init__(name, 4, value_size, max_entries, schema_version)
        if num_cpus < 1:
            raise MapError("per-CPU map needs at least one CPU")
        self.num_cpus = num_cpus
        self._zero = b"\x00" * value_size
        self._cpu_slots: List[List[bytes]] = [
            [self._zero] * max_entries for _ in range(num_cpus)
        ]

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def _this_cpu(self) -> Optional[int]:
        cpu = current_cpu()
        return None if cpu is None else cpu % self.num_cpus

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None  # array OOB read is NULL, not an error
        cpu = self._this_cpu()
        if cpu is not None:
            return self._cpu_slots[cpu][index]
        total = sum(int.from_bytes(slots[index], "big") for slots in self._cpu_slots)
        mask = (1 << (8 * self.value_size)) - 1
        return (total & mask).to_bytes(self.value_size, "big")

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_value(value)
        index = self._index(key)
        cpu = self._this_cpu()
        if cpu is not None:
            self._cpu_slots[cpu][index] = value
            return
        for cpu_index, slots in enumerate(self._cpu_slots):
            slots[index] = value if cpu_index == 0 else self._zero

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        index = self._index(key)
        for slots in self._cpu_slots:
            slots[index] = self._zero

    def items(self) -> List[Tuple[bytes, bytes]]:
        out = []
        mask = (1 << (8 * self.value_size)) - 1
        for index in range(self.max_entries):
            total = sum(int.from_bytes(slots[index], "big") for slots in self._cpu_slots)
            if total:
                out.append((index.to_bytes(4, "little"), (total & mask).to_bytes(self.value_size, "big")))
        return out

    def percpu_items(self) -> List[Tuple[bytes, List[Optional[bytes]]]]:
        out: List[Tuple[bytes, List[Optional[bytes]]]] = []
        for index in range(self.max_entries):
            values = [slots[index] for slots in self._cpu_slots]
            if any(v != self._zero for v in values):
                out.append((index.to_bytes(4, "little"), list(values)))
        return out

    def update_cpu(self, cpu: int, key: bytes, value: bytes) -> None:
        self._check_frozen()
        self._check_value(value)
        self._cpu_slots[cpu % self.num_cpus][self._index(key)] = value

    def lookup_cpu(self, cpu: int, key: bytes) -> Optional[bytes]:
        return self._cpu_slots[cpu % self.num_cpus][self._index(key)]

    def drain_cpu(self, dead: int, target: int) -> int:
        """CPU hotplug: move the dead CPU's non-zero slots onto ``target``
        where the target's slot is still zero (aggregate reads preserve the
        totals either way). Returns values moved."""
        self._check_frozen()
        dead %= self.num_cpus
        target %= self.num_cpus
        if dead == target:
            return 0
        dead_slots = self._cpu_slots[dead]
        target_slots = self._cpu_slots[target]
        moved = 0
        for index in range(self.max_entries):
            if dead_slots[index] == self._zero or target_slots[index] != self._zero:
                continue
            target_slots[index] = dead_slots[index]
            dead_slots[index] = self._zero
            moved += 1
        return moved

    def clone_empty(self) -> "PercpuArrayMap":
        return PercpuArrayMap(
            self.name, self.value_size, self.max_entries, self.schema_version,
            num_cpus=self.num_cpus,
        )


class ArrayMap(BpfMap):
    map_type = "array"

    def __init__(self, name: str, value_size: int, max_entries: int, schema_version: int = 1) -> None:
        super().__init__(name, 4, value_size, max_entries, schema_version)
        self._slots: List[bytes] = [b"\x00" * value_size for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes) -> Optional[bytes]:
        # Real BPF array lookup with an out-of-range index returns NULL,
        # not an error — only *writes* reject with -E2BIG.
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None
        return self._slots[index]

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_value(value)
        self._slots[self._index(key)] = value

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        self._slots[self._index(key)] = b"\x00" * self.value_size

    def items(self) -> List[Tuple[bytes, bytes]]:
        return [
            (i.to_bytes(4, "little"), value)
            for i, value in enumerate(self._slots)
            if value != b"\x00" * self.value_size
        ]

    def clone_empty(self) -> "ArrayMap":
        return ArrayMap(self.name, self.value_size, self.max_entries, self.schema_version)


class LpmTrieMap(BpfMap):
    """Longest-prefix-match trie keyed like ``BPF_MAP_TYPE_LPM_TRIE``:
    key = u32 little-endian prefix length + big-endian address bytes."""

    map_type = "lpm_trie"

    def __init__(self, name: str, value_size: int, max_entries: int = 1024, schema_version: int = 1) -> None:
        super().__init__(name, 8, value_size, max_entries, schema_version)
        self._by_len: Dict[int, Dict[int, bytes]] = {}
        self._count = 0

    @staticmethod
    def make_key(prefix_len: int, addr: IPv4Addr) -> bytes:
        return prefix_len.to_bytes(4, "little") + addr.to_bytes()

    def _parse_key(self, key: bytes):
        self._check_key(key)
        prefix_len = int.from_bytes(key[:4], "little")
        if prefix_len > 32:
            raise MapError(f"{self.name}: bad prefix length {prefix_len}")
        addr = int.from_bytes(key[4:8], "big")
        return prefix_len, addr

    @staticmethod
    def _mask(length: int) -> int:
        return 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_value(value)
        length, addr = self._parse_key(key)
        bucket = self._by_len.setdefault(length, {})
        masked = addr & self._mask(length)
        if masked not in bucket:
            if self._count >= self.max_entries:
                raise MapError(f"{self.name}: map full")
            self._count += 1
        bucket[masked] = value

    def lookup(self, key: bytes) -> Optional[bytes]:
        """Lookup uses the address portion; returns the longest match."""
        __, addr = self._parse_key(key)
        for length in sorted(self._by_len, reverse=True):
            masked = addr & self._mask(length)
            value = self._by_len[length].get(masked)
            if value is not None:
                return value
        return None

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        length, addr = self._parse_key(key)
        bucket = self._by_len.get(length)
        if bucket is not None and bucket.pop(addr & self._mask(length), None) is not None:
            self._count -= 1

    def items(self) -> List[Tuple[bytes, bytes]]:
        return [
            (length.to_bytes(4, "little") + masked.to_bytes(4, "big"), value)
            for length in sorted(self._by_len)
            for masked, value in sorted(self._by_len[length].items())
        ]

    def clone_empty(self) -> "LpmTrieMap":
        return LpmTrieMap(self.name, self.value_size, self.max_entries, self.schema_version)


class ProgArray(BpfMap):
    """Program array for tail calls and atomic fast-path swapping.

    Values are program objects (the loader's handle), not bytes.
    """

    map_type = "prog_array"
    byte_addressable = False

    def __init__(self, name: str, max_entries: int = 16) -> None:
        super().__init__(name, 4, 8, max_entries)
        self._progs: Dict[int, object] = {}
        # bumped on every slot mutation so the JIT engine can cache facts
        # derived from the reachable tail-call chain (e.g. packet writes)
        self.version = 0

    def set_prog(self, index: int, prog: object) -> None:
        # Clearing a slot (``clear``) never fails, matching real prog-array
        # delete semantics; only installs are a fault site.
        faults.fire("prog_array", self.name)
        if not 0 <= index < self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        self._progs[index] = prog
        self.version += 1

    def get_prog(self, index: int) -> Optional[object]:
        return self._progs.get(index)

    def slots(self) -> Dict[int, object]:
        """A snapshot of occupied slots (for chain-fact walks)."""
        return dict(self._progs)

    def clear(self, index: int) -> None:
        self._progs.pop(index, None)
        self.version += 1

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise MapError("prog arrays are not directly readable")

    def update(self, key: bytes, value: bytes) -> None:
        raise MapError("use set_prog() for prog arrays")

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self.clear(int.from_bytes(key, "little"))


class DevMap(BpfMap):
    """Redirect map: slot index → ifindex."""

    map_type = "devmap"

    def __init__(self, name: str, max_entries: int = 64) -> None:
        super().__init__(name, 4, 4, max_entries)
        self._slots: Dict[int, int] = {}

    def set_dev(self, index: int, ifindex: int) -> None:
        if not 0 <= index < self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        self._slots[index] = ifindex

    def get_dev(self, index: int) -> Optional[int]:
        return self._slots.get(index)

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        ifindex = self._slots.get(int.from_bytes(key, "little"))
        return None if ifindex is None else ifindex.to_bytes(4, "little")

    def update(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        self._check_value(value)
        self.set_dev(int.from_bytes(key, "little"), int.from_bytes(value, "little"))

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self._slots.pop(int.from_bytes(key, "little"), None)
