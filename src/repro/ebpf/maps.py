"""eBPF maps: hash, LRU hash, array, LPM trie, prog array, and devmap.

Keys and values are fixed-size byte strings, as in real eBPF. The LinuxFP
design deliberately avoids using maps for *kernel state* (state is reached
through helpers); maps remain for the dispatch machinery (prog arrays for
atomic fast-path swaps and tail-call chains, devmaps for redirects), for
custom FPM state, and for the Polycube baseline, which keeps its own
map-based state.

Maps carry a ``schema`` (type + key/value size + ``schema_version``) that
the deployer uses to decide whether accumulated state can migrate into a
redeployed program's maps, and pressure counters (``update_errors``,
``evictions``) so overload is visible as a metric rather than silent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Addr
from repro.testing import faults


class MapError(ValueError):
    """Raised for invalid map operations."""


class BpfMap:
    """Base class: fixed key/value sizes, bounded entry count."""

    map_type = "generic"
    #: Whether the generic byte-oriented map helpers (``map_lookup`` /
    #: ``map_read`` / ``map_update`` / ``map_delete``) may touch this map.
    #: Prog arrays and classifier handles hold control-plane objects, not
    #: byte values — the verifier rejects generic access to them statically.
    byte_addressable = True

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int,
        schema_version: int = 1,
    ) -> None:
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("map dimensions must be positive")
        self.name = name
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        #: Bumped by an operator when the *meaning* of the bytes changes even
        #: though the sizes did not; the deployer refuses to migrate state
        #: across differing versions.
        self.schema_version = schema_version
        #: Set by the deployer while the map's state is being migrated into a
        #: successor program's map: writes are refused so the snapshot cannot
        #: tear mid-copy.
        self.frozen = False
        #: Rejected updates (full map, bad key shape, injected fault) —
        #: every fast-path update failure is counted, never silent.
        self.update_errors = 0
        #: Entries displaced to make room (LRU maps only, but kept on the
        #: base class so metrics can walk any map uniformly).
        self.evictions = 0

    def schema(self) -> Tuple[str, int, int, int]:
        """The compatibility tuple the deployer matches for live migration."""
        return (self.map_type, self.key_size, self.value_size, self.schema_version)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise MapError(f"{self.name}: key must be {self.key_size} bytes, got {len(key)}")

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.value_size:
            raise MapError(f"{self.name}: value must be {self.value_size} bytes, got {len(value)}")

    def _check_frozen(self) -> None:
        if self.frozen:
            raise MapError(f"{self.name}: frozen for state migration")

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def items(self) -> List[Tuple[bytes, bytes]]:
        """(key, value) pairs for state migration; [] for stateless maps."""
        return []

    def clone_empty(self) -> "BpfMap":
        """A fresh map with the same schema and no entries (a new program's
        map before the deployer migrates state into it)."""
        raise NotImplementedError


class HashMap(BpfMap):
    map_type = "hash"

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int = 1024,
        schema_version: int = 1,
    ) -> None:
        super().__init__(name, key_size, value_size, max_entries, schema_version)
        self._data: Dict[bytes, bytes] = {}

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        return self._data.get(key)

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_key(key)
        self._check_value(value)
        if key not in self._data and len(self._data) >= self.max_entries:
            self._make_room(key)
        self._data[key] = value

    def _make_room(self, key: bytes) -> None:
        """Plain hash maps reject inserts at capacity (``-E2BIG``)."""
        raise MapError(f"{self.name}: map full ({self.max_entries})")

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        self._check_key(key)
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[bytes]:
        return list(self._data)

    def items(self) -> List[Tuple[bytes, bytes]]:
        return list(self._data.items())

    def clone_empty(self) -> "HashMap":
        return type(self)(
            self.name, self.key_size, self.value_size, self.max_entries, self.schema_version
        )


class LruHashMap(HashMap):
    """``BPF_MAP_TYPE_LRU_HASH``: inserting into a full map evicts the
    least-recently-used entry instead of failing.

    Recency follows the kernel's semantics closely enough for the
    simulation: lookups and updates both refresh an entry. This is the map
    type the synthesizer picks for *flow-keyed* state — flow arrival is
    unbounded, so a plain hash map would wedge at ``max_entries`` and every
    later flow's update would fail forever; an LRU map degrades instead
    (old flows age out, the hot set stays resident) and the displacement is
    counted in :attr:`~BpfMap.evictions`.
    """

    map_type = "lru_hash"

    def __init__(
        self,
        name: str,
        key_size: int,
        value_size: int,
        max_entries: int = 1024,
        schema_version: int = 1,
    ) -> None:
        super().__init__(name, key_size, value_size, max_entries, schema_version)
        self._data: "OrderedDict[bytes, bytes]" = OrderedDict()

    @classmethod
    def from_hash(cls, source: HashMap) -> "LruHashMap":
        """Upgrade a plain hash map in place-of: same schema sizes and
        contents, LRU insert semantics (the synthesizer's choice for
        flow-keyed custom state)."""
        lru = cls(
            source.name, source.key_size, source.value_size, source.max_entries,
            source.schema_version,
        )
        for key, value in source.items():
            lru._data[key] = value
        return lru

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def update(self, key: bytes, value: bytes) -> None:
        super().update(key, value)
        self._data.move_to_end(key)

    def _make_room(self, key: bytes) -> None:
        self._data.popitem(last=False)  # evict the least recently used
        self.evictions += 1


class ArrayMap(BpfMap):
    map_type = "array"

    def __init__(self, name: str, value_size: int, max_entries: int, schema_version: int = 1) -> None:
        super().__init__(name, 4, value_size, max_entries, schema_version)
        self._slots: List[bytes] = [b"\x00" * value_size for _ in range(max_entries)]

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        return index

    def lookup(self, key: bytes) -> Optional[bytes]:
        # Real BPF array lookup with an out-of-range index returns NULL,
        # not an error — only *writes* reject with -E2BIG.
        self._check_key(key)
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None
        return self._slots[index]

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_value(value)
        self._slots[self._index(key)] = value

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        self._slots[self._index(key)] = b"\x00" * self.value_size

    def items(self) -> List[Tuple[bytes, bytes]]:
        return [
            (i.to_bytes(4, "little"), value)
            for i, value in enumerate(self._slots)
            if value != b"\x00" * self.value_size
        ]

    def clone_empty(self) -> "ArrayMap":
        return ArrayMap(self.name, self.value_size, self.max_entries, self.schema_version)


class LpmTrieMap(BpfMap):
    """Longest-prefix-match trie keyed like ``BPF_MAP_TYPE_LPM_TRIE``:
    key = u32 little-endian prefix length + big-endian address bytes."""

    map_type = "lpm_trie"

    def __init__(self, name: str, value_size: int, max_entries: int = 1024, schema_version: int = 1) -> None:
        super().__init__(name, 8, value_size, max_entries, schema_version)
        self._by_len: Dict[int, Dict[int, bytes]] = {}
        self._count = 0

    @staticmethod
    def make_key(prefix_len: int, addr: IPv4Addr) -> bytes:
        return prefix_len.to_bytes(4, "little") + addr.to_bytes()

    def _parse_key(self, key: bytes):
        self._check_key(key)
        prefix_len = int.from_bytes(key[:4], "little")
        if prefix_len > 32:
            raise MapError(f"{self.name}: bad prefix length {prefix_len}")
        addr = int.from_bytes(key[4:8], "big")
        return prefix_len, addr

    @staticmethod
    def _mask(length: int) -> int:
        return 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    def update(self, key: bytes, value: bytes) -> None:
        faults.fire("map_update", self.name)
        self._check_frozen()
        self._check_value(value)
        length, addr = self._parse_key(key)
        bucket = self._by_len.setdefault(length, {})
        masked = addr & self._mask(length)
        if masked not in bucket:
            if self._count >= self.max_entries:
                raise MapError(f"{self.name}: map full")
            self._count += 1
        bucket[masked] = value

    def lookup(self, key: bytes) -> Optional[bytes]:
        """Lookup uses the address portion; returns the longest match."""
        __, addr = self._parse_key(key)
        for length in sorted(self._by_len, reverse=True):
            masked = addr & self._mask(length)
            value = self._by_len[length].get(masked)
            if value is not None:
                return value
        return None

    def delete(self, key: bytes) -> None:
        self._check_frozen()
        length, addr = self._parse_key(key)
        bucket = self._by_len.get(length)
        if bucket is not None and bucket.pop(addr & self._mask(length), None) is not None:
            self._count -= 1

    def items(self) -> List[Tuple[bytes, bytes]]:
        return [
            (length.to_bytes(4, "little") + masked.to_bytes(4, "big"), value)
            for length in sorted(self._by_len)
            for masked, value in sorted(self._by_len[length].items())
        ]

    def clone_empty(self) -> "LpmTrieMap":
        return LpmTrieMap(self.name, self.value_size, self.max_entries, self.schema_version)


class ProgArray(BpfMap):
    """Program array for tail calls and atomic fast-path swapping.

    Values are program objects (the loader's handle), not bytes.
    """

    map_type = "prog_array"
    byte_addressable = False

    def __init__(self, name: str, max_entries: int = 16) -> None:
        super().__init__(name, 4, 8, max_entries)
        self._progs: Dict[int, object] = {}

    def set_prog(self, index: int, prog: object) -> None:
        # Clearing a slot (``clear``) never fails, matching real prog-array
        # delete semantics; only installs are a fault site.
        faults.fire("prog_array", self.name)
        if not 0 <= index < self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        self._progs[index] = prog

    def get_prog(self, index: int) -> Optional[object]:
        return self._progs.get(index)

    def clear(self, index: int) -> None:
        self._progs.pop(index, None)

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise MapError("prog arrays are not directly readable")

    def update(self, key: bytes, value: bytes) -> None:
        raise MapError("use set_prog() for prog arrays")

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self.clear(int.from_bytes(key, "little"))


class DevMap(BpfMap):
    """Redirect map: slot index → ifindex."""

    map_type = "devmap"

    def __init__(self, name: str, max_entries: int = 64) -> None:
        super().__init__(name, 4, 4, max_entries)
        self._slots: Dict[int, int] = {}

    def set_dev(self, index: int, ifindex: int) -> None:
        if not 0 <= index < self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        self._slots[index] = ifindex

    def get_dev(self, index: int) -> Optional[int]:
        return self._slots.get(index)

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        ifindex = self._slots.get(int.from_bytes(key, "little"))
        return None if ifindex is None else ifindex.to_bytes(4, "little")

    def update(self, key: bytes, value: bytes) -> None:
        self._check_key(key)
        self._check_value(value)
        self.set_dev(int.from_bytes(key, "little"), int.from_bytes(value, "little"))

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self._slots.pop(int.from_bytes(key, "little"), None)
