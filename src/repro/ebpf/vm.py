"""The eBPF virtual machine.

Executes :class:`~repro.ebpf.program.Program` instructions with:

- per-instruction cost accounting against the kernel clock — the mechanism
  that turns LinuxFP's "synthesize only what the configuration needs" into
  measurable speedups;
- runtime memory safety via fat pointers (:mod:`repro.ebpf.memory`);
- eBPF semantics for the sharp edges: division by zero yields 0, tail calls
  are depth-limited jumps through a prog array, and any safety violation
  aborts the program (the hook layer drops the packet).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ebpf import helpers as helpers_mod
from repro.ebpf.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    MASK64,
    NUM_REGS,
    Insn,
    Op,
    R0,
    R1,
    R10,
)
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import MemoryError_, Pointer, Region, Word
from repro.ebpf.program import Program

STACK_SIZE = 512
TAIL_CALL_LIMIT = 33
DEFAULT_INSN_LIMIT = 1_000_000


class VMError(Exception):
    """Program aborted: memory violation, bad ALU on pointers, runaway, …"""


def _signed64(value: int) -> int:
    """Interpret a 64-bit word as signed (pointer offsets may be negative)."""
    return value - (1 << 64) if value >= (1 << 63) else value


class Env:
    """Per-invocation environment shared with helpers.

    Besides redirect plumbing, the Env collects the *dependency record* the
    flow cache (:mod:`repro.fastpath.flowcache`) needs: which kernel tables
    helpers consulted, which netfilter rules / conntrack entries decided the
    verdict, the earliest time-based expiry involved, and whether the run
    touched per-packet state that makes its verdict uncacheable.
    """

    def __init__(self, kernel, redirect_verdict: int) -> None:
        self.kernel = kernel
        self.redirect_verdict = redirect_verdict
        self.redirect_ifindex: Optional[int] = None
        self.xsk_socket = None  # set by the redirect_xsk helper
        self.trace: List[tuple] = []
        self.deps: set = set()  # kernel tables consulted ("fib", "bridge", …)
        self.matched_rules: List[object] = []  # netfilter Rules that decided
        self.ct_entries: List[object] = []  # conntrack entries consulted
        self.expires_ns: Optional[int] = None  # earliest time-based staleness
        self.uncacheable = False
        self.aborted = False
        self.insns_executed = 0

    def note_dep(self, name: str) -> None:
        self.deps.add(name)

    def note_expiry(self, deadline_ns: int) -> None:
        if self.expires_ns is None or deadline_ns < self.expires_ns:
            self.expires_ns = deadline_ns

    def mark_uncacheable(self) -> None:
        self.uncacheable = True


class VM:
    """Interprets programs; one instance is reusable across invocations."""

    def __init__(self, kernel, insn_limit: int = DEFAULT_INSN_LIMIT, charge_costs: bool = True) -> None:
        self.kernel = kernel
        self.insn_limit = insn_limit
        self.charge_costs = charge_costs
        self.insns_executed = 0

    def run(
        self,
        program: Program,
        args: List[Word],
        env: Env,
        _stack: Optional[Region] = None,
        _executed: int = 0,
        _tail_calls: int = 0,
        _entry_charged: bool = False,
    ) -> int:
        """Execute ``program`` with entry arguments in R1..R5; returns R0.

        The underscore-prefixed keywords are the JIT engine's resume
        protocol: when a compiled tail-call chain reaches a program the
        JIT could not compile, the interpreter picks up mid-chain on the
        same stack region with the accumulated instruction and tail-call
        counters (entry cost already charged).
        """
        if len(args) > 5:
            raise VMError("at most 5 entry arguments")
        kernel = self.kernel
        costs = kernel.costs
        entry_args = list(args)

        if self.charge_costs and not _entry_charged:
            kernel.charge_ns(costs.ebpf_prog_entry)

        stack = _stack if _stack is not None else Region(
            "stack", bytearray(STACK_SIZE), allow_pointers=True
        )
        regs: List[Optional[Word]] = [None] * NUM_REGS
        for i, arg in enumerate(entry_args):
            regs[R1 + i] = arg
        regs[R10] = Pointer(stack, STACK_SIZE)

        insns = program.insns
        maps = program.maps
        pc = 0
        executed = _executed
        tail_calls = _tail_calls
        insn_cost = costs.ebpf_insn if self.charge_costs else 0.0
        budget = self.insn_limit

        # Instruction costs accrue and flush in groups — one
        # ``charge_ns(k * insn_cost)`` before every helper call, tail call,
        # exit, and abort (the ``finally`` catches every abort path). The
        # JIT batches its charges at exactly these boundaries, so
        # partitioning identically here keeps the two float clock sums
        # bit-identical (and saves a charge_ns call per insn).
        charged = executed

        try:
            while True:
                if pc < 0 or pc >= len(insns):
                    raise VMError(f"{program.name}: pc {pc} out of range")
                executed += 1
                if executed > budget:
                    raise VMError(f"{program.name}: instruction budget exceeded")
                insn = insns[pc]
                op = insn.op

                if op is Op.MOV_IMM:
                    regs[insn.dst] = insn.imm & MASK64
                elif op is Op.MOV_REG:
                    regs[insn.dst] = self._read(regs, insn.src, insn, program)
                elif op is Op.LD_MAP:
                    if insn.imm >= len(maps):
                        raise VMError(f"{program.name}: LD_MAP index {insn.imm} out of range")
                    regs[insn.dst] = maps[insn.imm]
                elif op in ALU_IMM_OPS:
                    regs[insn.dst] = self._alu(
                        op.value[:-4], self._read(regs, insn.dst, insn, program), insn.imm & MASK64, insn, program
                    )
                elif op in ALU_REG_OPS:
                    regs[insn.dst] = self._alu(
                        op.value[:-4],
                        self._read(regs, insn.dst, insn, program),
                        self._read(regs, insn.src, insn, program),
                        insn,
                        program,
                    )
                elif op is Op.NEG:
                    value = self._read(regs, insn.dst, insn, program)
                    if isinstance(value, Pointer):
                        raise VMError(f"{program.name}@{pc}: NEG on pointer")
                    regs[insn.dst] = (-value) & MASK64
                elif op is Op.LDX:
                    ptr = self._read(regs, insn.src, insn, program)
                    if not isinstance(ptr, Pointer):
                        raise VMError(f"{program.name}@{pc}: load via non-pointer r{insn.src}")
                    try:
                        regs[insn.dst] = ptr.load(insn.off, insn.imm)
                    except MemoryError_ as exc:
                        raise VMError(f"{program.name}@{pc}: {exc}") from exc
                elif op is Op.STX:
                    ptr = self._read(regs, insn.dst, insn, program)
                    value = self._read(regs, insn.src, insn, program)
                    if not isinstance(ptr, Pointer):
                        raise VMError(f"{program.name}@{pc}: store via non-pointer r{insn.dst}")
                    try:
                        ptr.store(insn.off, insn.imm, value)
                    except MemoryError_ as exc:
                        raise VMError(f"{program.name}@{pc}: {exc}") from exc
                elif op is Op.ST_IMM:
                    ptr = self._read(regs, insn.dst, insn, program)
                    if not isinstance(ptr, Pointer):
                        raise VMError(f"{program.name}@{pc}: store via non-pointer r{insn.dst}")
                    try:
                        ptr.store(insn.off, insn.src, insn.imm)
                    except MemoryError_ as exc:
                        raise VMError(f"{program.name}@{pc}: {exc}") from exc
                elif op is Op.JA:
                    pc += insn.off
                elif op in JMP_IMM_OPS:
                    left = self._read(regs, insn.dst, insn, program)
                    if self._compare(op, left, insn.imm & MASK64, insn, program):
                        pc += insn.off
                elif op in JMP_REG_OPS:
                    left = self._read(regs, insn.dst, insn, program)
                    right = self._read(regs, insn.src, insn, program)
                    if self._compare(op, left, right, insn, program):
                        pc += insn.off
                elif op is Op.CALL:
                    entry = helpers_mod.HELPERS.get(insn.imm)
                    if entry is None:
                        raise VMError(f"{program.name}@{pc}: unknown helper {insn.imm}")
                    __, fn = entry
                    call_args = [regs[R1 + i] for i in range(5)]
                    if insn_cost and executed > charged:
                        # flush before the helper runs: helpers read the clock
                        kernel.charge_ns((executed - charged) * insn_cost)
                        charged = executed
                    try:
                        regs[R0] = fn(env, call_args)
                    except (helpers_mod.HelperError, MemoryError_) as exc:
                        raise VMError(f"{program.name}@{pc}: {exc}") from exc
                    # helper calls clobber the caller-saved argument registers
                    for i in range(1, 6):
                        regs[i] = None
                elif op is Op.TAIL_CALL:
                    if insn_cost and executed > charged:
                        kernel.charge_ns((executed - charged) * insn_cost)
                        charged = executed
                    prog_array = regs[2]
                    index = self._read(regs, 3, insn, program)
                    if not isinstance(prog_array, ProgArray):
                        raise VMError(f"{program.name}@{pc}: tail call needs a prog array in r2")
                    if isinstance(index, Pointer):
                        raise VMError(f"{program.name}@{pc}: tail call index is a pointer")
                    target = prog_array.get_prog(index)
                    if target is None:
                        pc += 1  # empty slot: fall through, as in real eBPF
                        continue
                    tail_calls += 1
                    if tail_calls > TAIL_CALL_LIMIT:
                        raise VMError(f"{program.name}@{pc}: tail call limit exceeded")
                    if self.charge_costs:
                        kernel.charge_ns(costs.ebpf_tail_call)
                    target_prog = target.program if hasattr(target, "program") else target
                    program = target_prog
                    insns = program.insns
                    maps = program.maps
                    regs = [None] * NUM_REGS
                    for i, arg in enumerate(entry_args):
                        regs[R1 + i] = arg
                    regs[R10] = Pointer(stack, STACK_SIZE)
                    pc = 0
                    continue
                elif op is Op.EXIT:
                    if insn_cost and executed > charged:
                        kernel.charge_ns((executed - charged) * insn_cost)
                        charged = executed
                    result = regs[R0]
                    if result is None:
                        raise VMError(f"{program.name}@{pc}: exit with uninitialized r0")
                    if isinstance(result, Pointer):
                        raise VMError(f"{program.name}@{pc}: exit with pointer in r0")
                    self.insns_executed = executed
                    return result
                else:  # pragma: no cover - exhaustive
                    raise VMError(f"{program.name}@{pc}: unimplemented op {op}")
                pc += 1
        finally:
            # abort paths land here with accrued, unflushed instructions
            if insn_cost and executed > charged:
                kernel.charge_ns((executed - charged) * insn_cost)

    # ------------------------------------------------------------- internals

    def _read(self, regs: List[Optional[Word]], reg: int, insn: Insn, program: Program) -> Word:
        value = regs[reg]
        if value is None:
            raise VMError(f"{program.name}: read of uninitialized r{reg} ({insn!r})")
        return value

    def _alu(self, op_name: str, left: Word, right: Word, insn: Insn, program: Program) -> Word:
        if isinstance(left, Pointer):
            if isinstance(right, Pointer):
                raise VMError(f"{program.name}: pointer-pointer arithmetic ({insn!r})")
            if op_name == "add":
                return left.advanced(_signed64(right))
            if op_name == "sub":
                return left.advanced(-_signed64(right))
            raise VMError(f"{program.name}: {op_name} on pointer ({insn!r})")
        if isinstance(right, Pointer):
            if op_name == "add":
                return right.advanced(_signed64(left))
            raise VMError(f"{program.name}: scalar {op_name} pointer ({insn!r})")
        left &= MASK64
        right &= MASK64
        if op_name == "add":
            return (left + right) & MASK64
        if op_name == "sub":
            return (left - right) & MASK64
        if op_name == "mul":
            return (left * right) & MASK64
        if op_name == "div":
            return (left // right) & MASK64 if right else 0
        if op_name == "mod":
            return (left % right) & MASK64 if right else left
        if op_name == "and":
            return left & right
        if op_name == "or":
            return left | right
        if op_name == "xor":
            return left ^ right
        if op_name == "lsh":
            return (left << (right & 63)) & MASK64
        if op_name == "rsh":
            return left >> (right & 63)
        raise VMError(f"{program.name}: unknown ALU op {op_name}")  # pragma: no cover

    def _compare(self, op: Op, left: Word, right: Word, insn: Insn, program: Program) -> bool:
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            # only null-checks are meaningful on pointers
            if op in (Op.JEQ_IMM, Op.JNE_IMM) and isinstance(right, int) and right == 0:
                is_null = False  # live pointers are never null
                return is_null if op is Op.JEQ_IMM else not is_null
            raise VMError(f"{program.name}: pointer comparison ({insn!r})")
        if op in (Op.JEQ_IMM, Op.JEQ_REG):
            return left == right
        if op in (Op.JNE_IMM, Op.JNE_REG):
            return left != right
        if op in (Op.JGT_IMM, Op.JGT_REG):
            return left > right
        if op in (Op.JGE_IMM, Op.JGE_REG):
            return left >= right
        if op in (Op.JLT_IMM, Op.JLT_REG):
            return left < right
        if op in (Op.JLE_IMM, Op.JLE_REG):
            return left <= right
        if op is Op.JSET_IMM:
            return bool(left & right)
        raise VMError(f"{program.name}: unknown jump {op}")  # pragma: no cover
