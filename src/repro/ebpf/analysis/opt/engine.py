"""The optimization pipeline: propose → prove → re-verify, fail-closed.

:func:`optimize_program` drives four equivalence-preserving passes over a
*verifier-accepted* program:

1. **Branch folding** — the path-sensitive interpreter's
   ``branch_outcomes`` record which edges of each conditional are feasible;
   a conditional with a single feasible outcome is a bounds check (or other
   test) the range domain has already discharged, so it degrades to an
   unconditional hop and its dead arm unreaches. This is the "bounds-check
   elision where the range domain already proves safety" rule: the domain's
   path facts are the proof, no differential check needed — an infeasible
   abstract edge is infeasible concretely (domain soundness).
2. **Peephole rewriting** — candidates mined by the
   :mod:`~repro.ebpf.analysis.opt.rules` catalog, each applied only after
   :func:`~repro.ebpf.analysis.opt.equiv.check_window` returns ``proven``.
   Refuted candidates are recorded as counterexamples (a catalog bug);
   unproven ones are skipped and counted.
3. **Dead-write elimination** — backward register liveness over the CFG;
   side-effect-free writes (mov/alu/load) whose destination is dead are
   removed. Helper calls read r1–r5 and clobber r0–r5; tail calls read
   r1–r5; exit reads r0.
4. **Dead stack-store elimination** — backward byte-level liveness over the
   frame, with a forward may-hold-stack-pointer taint analysis so loads via
   derived pointers and helper calls conservatively keep everything alive.

The result is re-verified by the full range-tracking verifier. Any failure
anywhere — an injected fault, a verifier rejection of the optimized body, a
bug in a pass — falls back to the unoptimized program (fail-closed,
mirroring the Deployer's degradation ladder); the report says why.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ebpf.analysis.interp import Analysis, interpret
from repro.ebpf.analysis.opt.dce import eliminate_unreachable, remove_insns
from repro.ebpf.analysis.opt.equiv import (
    PROVEN,
    REFUTED,
    Counterexample,
    check_window,
)
from repro.ebpf.analysis.opt.rules import Rule, default_rules
from repro.ebpf.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    JUMP_OPS,
    R10,
    Insn,
    Op,
)
from repro.ebpf.program import Program
from repro.ebpf.verifier import check_structure, verify
from repro.ebpf.vm import STACK_SIZE
from repro.testing import faults

#: Pipeline iterations: each rewrite can expose work for the next pass.
_MAX_ROUNDS = 4

#: Ops whose only effect is writing ``dst`` — removable when ``dst`` is dead.
_PURE_WRITES = {Op.MOV_IMM, Op.MOV_REG, Op.NEG, Op.LDX, Op.LD_MAP} | ALU_IMM_OPS | ALU_REG_OPS

#: Cross-program cache of equivalence verdicts: the 14 template configs
#: share most of their emission patterns, so verdicts repeat heavily.
_CHECK_CACHE: Dict[Tuple, Tuple[str, Optional[Counterexample]]] = {}


@dataclass
class OptimizationReport:
    """What the optimizer did to one program (serializable for CI audits)."""

    program: str
    status: str = "unchanged"  # unchanged | optimized | fallback
    insns_before: int = 0
    insns_after: int = 0
    folded_branches: int = 0
    dead_writes: int = 0
    dead_stores: int = 0
    applied: Dict[str, int] = field(default_factory=dict)  # rule -> count
    rejected: List[Counterexample] = field(default_factory=list)
    unproven: int = 0
    error: Optional[str] = None

    @property
    def insns_removed(self) -> int:
        return self.insns_before - self.insns_after

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "status": self.status,
            "insns_before": self.insns_before,
            "insns_after": self.insns_after,
            "insns_removed": self.insns_removed,
            "folded_branches": self.folded_branches,
            "dead_writes": self.dead_writes,
            "dead_stores": self.dead_stores,
            "applied": dict(self.applied),
            "rejected": [c.to_dict() for c in self.rejected],
            "unproven": self.unproven,
            "error": self.error,
        }


# ----------------------------------------------------------- CFG utilities --


def _successors(insns: Sequence[Insn], pc: int) -> Tuple[int, ...]:
    op = insns[pc].op
    if op is Op.EXIT:
        return ()
    if op is Op.JA:
        return (pc + 1 + insns[pc].off,)
    if op in JMP_IMM_OPS or op in JMP_REG_OPS:
        return (pc + 1, pc + 1 + insns[pc].off)
    return (pc + 1,)


def _reads_writes(insn: Insn) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    op = insn.op
    if op is Op.MOV_IMM or op is Op.LD_MAP:
        return (), (insn.dst,)
    if op is Op.MOV_REG:
        return (insn.src,), (insn.dst,)
    if op in ALU_IMM_OPS or op is Op.NEG:
        return (insn.dst,), (insn.dst,)
    if op in ALU_REG_OPS:
        return (insn.dst, insn.src), (insn.dst,)
    if op is Op.LDX:
        return (insn.src,), (insn.dst,)
    if op is Op.STX:
        return (insn.dst, insn.src), ()
    if op is Op.ST_IMM:
        return (insn.dst,), ()
    if op in JMP_IMM_OPS:
        return (insn.dst,), ()
    if op in JMP_REG_OPS:
        return (insn.dst, insn.src), ()
    if op is Op.CALL:
        return (1, 2, 3, 4, 5), (0, 1, 2, 3, 4, 5)
    if op is Op.TAIL_CALL:
        return (1, 2, 3, 4, 5), ()
    if op is Op.EXIT:
        return (0,), ()
    return (), ()  # JA


def _jump_targets(insns: Sequence[Insn]) -> Set[int]:
    return {
        pc + 1 + insn.off for pc, insn in enumerate(insns) if insn.op in JUMP_OPS
    }


# ---------------------------------------------------------- branch folding --


def _fold_branches(insns: List[Insn], analysis: Analysis, report: OptimizationReport) -> List[Insn]:
    """Conditionals with one feasible outcome become unconditional hops."""
    out = list(insns)
    for pc, outcomes in analysis.branch_outcomes.items():
        if len(outcomes) != 1:
            continue
        insn = out[pc]
        if insn.op not in JMP_IMM_OPS and insn.op not in JMP_REG_OPS:
            continue
        taken = True in outcomes
        comment = f"folded {insn.op.value} (always {'taken' if taken else 'fall-through'})"
        out[pc] = Insn(Op.JA, off=insn.off if taken else 0, comment=comment)
        report.folded_branches += 1
    return out


def _drop_noop_hops(insns: List[Insn]) -> List[Insn]:
    noops = {pc for pc, insn in enumerate(insns) if insn.op is Op.JA and insn.off == 0}
    if not noops:
        return insns
    return remove_insns(insns, noops)


# -------------------------------------------------------------- peepholing --


def _check_cached(
    rule: str, window: Sequence[Insn], replacement: Sequence[Insn], pc: int, seed: int
) -> Tuple[str, Optional[Counterexample]]:
    key = (
        rule,
        seed,
        tuple((i.op, i.dst, i.src, i.off, i.imm) for i in window),
        tuple((i.op, i.dst, i.src, i.off, i.imm) for i in replacement),
    )
    hit = _CHECK_CACHE.get(key)
    if hit is None:
        result = check_window(window, replacement, rule=rule, pc=pc, seed=seed)
        hit = (result.verdict, result.counterexample)
        _CHECK_CACHE[key] = hit
    verdict, cex = hit
    if cex is not None and cex.pc != pc:
        cex = dataclasses.replace(cex, pc=pc)
    return verdict, cex


def _splice(insns: List[Insn], start: int, end: int, replacement: Sequence[Insn]) -> List[Insn]:
    """Replace ``insns[start:end]``, shifting jump offsets across the seam."""
    delta = len(replacement) - (end - start)
    out: List[Insn] = []
    for pc in range(start):
        insn = insns[pc]
        if insn.op in JUMP_OPS:
            target = pc + 1 + insn.off
            if target >= end:
                insn = dataclasses.replace(insn, off=insn.off + delta)
            elif target > start:
                raise ValueError("jump into rewrite window")
        out.append(insn)
    out.extend(replacement)
    out.extend(insns[end:])
    return out


def _peephole(
    insns: List[Insn],
    rules: Sequence[Rule],
    seed: int,
    report: OptimizationReport,
) -> List[Insn]:
    targets = _jump_targets(insns)
    seen_rejections = {(c.rule, c.pc) for c in report.rejected}
    pc = 0
    while pc < len(insns):
        applied = False
        for rule in rules:
            match = rule.match(insns, pc)
            if match is None:
                continue
            length, replacement = match
            if any(t in targets for t in range(pc + 1, pc + length)):
                continue  # a jump lands mid-window: not a straight-line unit
            window = insns[pc : pc + length]
            verdict, cex = _check_cached(rule.name, window, replacement, pc, seed)
            if verdict == REFUTED:
                if (rule.name, pc) not in seen_rejections:
                    seen_rejections.add((rule.name, pc))
                    report.rejected.append(cex)
                continue
            if verdict != PROVEN:
                report.unproven += 1
                continue
            insns = _splice(insns, pc, pc + length, replacement)
            report.applied[rule.name] = report.applied.get(rule.name, 0) + 1
            targets = _jump_targets(insns)
            applied = True
            break
        if not applied:
            pc += 1
    return insns


# ------------------------------------------------- dead-write elimination --


def _liveness(insns: Sequence[Insn]) -> List[Set[int]]:
    """Backward register liveness; converges fast on the loop-free CFG."""
    n = len(insns)
    live_in: List[Set[int]] = [set() for _ in range(n)]
    live_out: List[Set[int]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for pc in range(n - 1, -1, -1):
            reads, writes = _reads_writes(insns[pc])
            out: Set[int] = set()
            for succ in _successors(insns, pc):
                if succ < n:
                    out |= live_in[succ]
            inn = (out - set(writes)) | set(reads)
            if out != live_out[pc] or inn != live_in[pc]:
                live_out[pc], live_in[pc] = out, inn
                changed = True
    return live_out


def _eliminate_dead_writes(insns: List[Insn], report: OptimizationReport) -> List[Insn]:
    """Remove pure writes to registers that are never read afterwards."""
    while True:
        live_out = _liveness(insns)
        dead = {
            pc
            for pc, insn in enumerate(insns)
            if insn.op in _PURE_WRITES and insn.dst not in live_out[pc]
        }
        if not dead:
            return insns
        report.dead_writes += len(dead)
        insns = remove_insns(insns, dead)


# ------------------------------------------------- dead-store elimination --


def _stack_taint(insns: Sequence[Insn]) -> List[Set[int]]:
    """Forward may-analysis: registers possibly holding a stack pointer.

    Loads from the frame may fill a previously spilled stack pointer, so
    they propagate taint; packet/map regions cannot hold pointers, and
    helpers return scalars or map-value pointers, never stack pointers.
    """
    n = len(insns)
    taint_in: List[Optional[Set[int]]] = [None] * n
    taint_in[0] = {R10}
    work = [0]
    while work:
        pc = work.pop()
        t = set(taint_in[pc])
        insn = insns[pc]
        op = insn.op
        if op is Op.MOV_IMM or op is Op.LD_MAP:
            t.discard(insn.dst)
        elif op is Op.MOV_REG:
            if insn.src in t:
                t.add(insn.dst)
            else:
                t.discard(insn.dst)
        elif op in ALU_REG_OPS:
            if insn.src in t:
                t.add(insn.dst)
        elif op is Op.LDX:
            if insn.src in t or insn.src == R10:
                t.add(insn.dst)
            else:
                t.discard(insn.dst)
        elif op is Op.CALL:
            for r in range(6):
                t.discard(r)
        for succ in _successors(insns, pc):
            if succ >= n:
                continue
            if taint_in[succ] is None:
                taint_in[succ] = set(t)
                work.append(succ)
            elif not t <= taint_in[succ]:
                taint_in[succ] |= t
                work.append(succ)
    return [t if t is not None else set() for t in taint_in]


def _eliminate_dead_stores(insns: List[Insn], report: OptimizationReport) -> List[Insn]:
    """Remove frame stores whose bytes are never read before overwrite.

    Byte-level backward liveness over the 512-byte frame. Anything that
    might read the stack through a derived pointer — a helper call, a tail
    call, a load via a maybe-stack register — keeps every byte alive.
    """
    n = len(insns)
    taint = _stack_taint(insns)
    every_byte = frozenset(range(STACK_SIZE))

    def span(off: int, size: int) -> Set[int]:
        base = STACK_SIZE + off
        return set(range(max(0, base), min(STACK_SIZE, base + size)))

    live_in: List[Set[int]] = [set() for _ in range(n)]
    live_out: List[Set[int]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for pc in range(n - 1, -1, -1):
            insn = insns[pc]
            op = insn.op
            out: Set[int] = set()
            for succ in _successors(insns, pc):
                if succ < n:
                    out |= live_in[succ]
            if op is Op.CALL or op is Op.TAIL_CALL:
                inn = set(every_byte)
            elif op is Op.LDX:
                if insn.src == R10:
                    inn = out | span(insn.off, insn.imm)
                elif insn.src in taint[pc]:
                    inn = set(every_byte)
                else:
                    inn = out
            elif op in (Op.STX, Op.ST_IMM):
                size = insn.imm if op is Op.STX else insn.src
                if insn.dst == R10:
                    inn = out - span(insn.off, size)
                else:
                    inn = out  # unknown target: kills nothing, reads nothing
            else:
                inn = out
            if out != live_out[pc] or inn != live_in[pc]:
                live_out[pc], live_in[pc] = out, inn
                changed = True

    dead = set()
    for pc, insn in enumerate(insns):
        if insn.op in (Op.STX, Op.ST_IMM) and insn.dst == R10:
            size = insn.imm if insn.op is Op.STX else insn.src
            if not (span(insn.off, size) & live_out[pc]):
                dead.add(pc)
    if not dead:
        return insns
    report.dead_stores += len(dead)
    return remove_insns(insns, dead)


# ---------------------------------------------------------------- pipeline --


def optimize_program(
    program: Program,
    entry_regs: Tuple[int, ...] = (1, 2, 3),
    entry_kinds: Optional[Tuple[str, ...]] = None,
    seed: int = 0,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[Program, OptimizationReport]:
    """Optimize ``program``; never degrades it.

    Returns ``(program', report)``. On success ``program'`` carries the same
    name/hook/maps/source with a provably equivalent, re-verified
    instruction body. On *any* failure — injected fault, a pass raising, or
    the optimized body failing re-verification — the original program comes
    back untouched with ``report.status == "fallback"``.
    """
    report = OptimizationReport(
        program=program.name,
        insns_before=len(program.insns),
        insns_after=len(program.insns),
    )
    rule_set = list(rules) if rules is not None else default_rules()
    try:
        faults.fire("optimize", program.name)
        check_structure(program)
        analysis = interpret(program, entry_regs, entry_kinds)
        insns = _fold_branches(list(program.insns), analysis, report)
        insns = eliminate_unreachable(insns)
        insns = _drop_noop_hops(insns)
        for _ in range(_MAX_ROUNDS):
            before = [
                (i.op, i.dst, i.src, i.off, i.imm) for i in insns
            ]
            insns = _peephole(insns, rule_set, seed, report)
            insns = _eliminate_dead_writes(insns, report)
            insns = _eliminate_dead_stores(insns, report)
            insns = eliminate_unreachable(insns)
            if [(i.op, i.dst, i.src, i.off, i.imm) for i in insns] == before:
                break
        changed = (
            report.folded_branches
            or report.dead_writes
            or report.dead_stores
            or report.applied
            or len(insns) != len(program.insns)
        )
        if not changed:
            return program, report
        optimized = Program(
            name=program.name,
            insns=insns,
            hook=program.hook,
            maps=program.maps,
            source=program.source,
        )
        verify(optimized, entry_regs, entry_kinds)  # fail-closed gate
        report.status = "optimized"
        report.insns_after = len(insns)
        return optimized, report
    except Exception as exc:  # noqa: BLE001 — fail-closed by design
        report.status = "fallback"
        report.insns_after = report.insns_before
        report.error = f"{type(exc).__name__}: {exc}"
        return program, report
