"""Window equivalence: the optimizer's proof obligation.

A candidate rewrite replaces a straight-line *window* of instructions with a
shorter (or equal-length) sequence. Before the engine applies it, the two
sequences must be shown to compute the same state transformer. Two layers:

**Symbolic + interval abstract semantics** (:func:`abstract_eval_window`) —
every register carries a pair *(value id, range)*. Value ids are canonical
expression trees over the entry registers and stack slots; the
:mod:`repro.ebpf.analysis.domain` interval arithmetic rides along and feeds
the canonicalizer: an ALU result whose range collapses to a single constant
*is* that constant (this is how ``x & 0 → 0`` or ``x % 1 → 0`` are proven),
and the algebraic identities of the VM's ``_alu`` (``x + 0 = x``,
``x * 2^k = x << k``, commutativity of add/mul/and/or/xor) are folded into
the canonical form, so equal canonical states imply equal concrete states.
If both sides produce identical canonical final states on every probe, the
rewrite is **proven**. If some probe yields two *different constants* for
the same register or slot, the domain itself has refuted the rewrite — a
counterexample. Anything in between is **unproven** and the rewrite is
skipped (fail-closed).

**Differential VM execution** (:func:`concrete_eval_window`) — the soundness
backstop demanded by the issue: both sequences run under the real VM ALU
(`VM._alu`) against a seeded corpus of edge-case and random register values,
including fat-pointer-valued registers and randomized stack contents. Any
divergence in final registers, stack bytes, spilled pointers, or
abort-vs-complete verdict refutes the rewrite with a concrete
counterexample, *even if the abstract layer proved it* — a disagreement
between the layers means the rule catalog or the domain has a bug, and the
rewrite is rejected.

Scope: windows are drawn from verifier-accepted programs, so operands of
non-add/sub ALU ops are provably scalar at runtime and pointer words only
flow through MOV/LDX/STX/ADD/SUB — the checker's scalar probes plus
explicit stack-pointer probes cover exactly the states such programs can
reach. Windows using ops outside the supported fragment (calls, jumps,
non-frame-pointer memory) are never proven, hence never rewritten.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ebpf.analysis.domain import Range, alu_range
from repro.ebpf.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    MASK64,
    R10,
    Insn,
    Op,
)
from repro.ebpf.memory import MemoryError_, Pointer, Region
from repro.ebpf.program import Program
from repro.ebpf.vm import STACK_SIZE, VM, VMError

PROVEN = "proven"
UNPROVEN = "unproven"
REFUTED = "refuted"

#: ALU ops that commute in the VM (used to canonicalize symbolic values).
_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})

#: Ops a window may contain and still be checkable. Memory access is
#: restricted to direct frame-pointer addressing — exactly what the
#: catalog's spill/fill rules need.
_SUPPORTED = (
    {Op.MOV_IMM, Op.MOV_REG, Op.NEG, Op.LDX, Op.STX, Op.ST_IMM}
    | ALU_IMM_OPS
    | ALU_REG_OPS
)

# VM._alu/_compare only consult the program for error messages; a shared
# throwaway instance gives the checker the production ALU semantics.
_VM = VM.__new__(VM)
_WINDOW_PROG = Program(name="window", insns=[Insn(Op.EXIT)], hook="xdp")

#: Corpus of adversarial scalar values for differential execution.
_EDGE_VALUES = (
    0, 1, 2, 3, 7, 8, 63, 64, 255, 256, 0xFFFF, 0x10000,
    (1 << 31) - 1, 1 << 31, (1 << 32) - 1, 1 << 32,
    (1 << 63) - 1, 1 << 63, MASK64 - 1, MASK64,
)


@dataclass(frozen=True)
class Counterexample:
    """A rejected rewrite: the inputs on which the two windows disagree."""

    rule: str
    pc: int
    stage: str  # "abstract" (domain disproof) or "concrete" (VM divergence)
    inputs: Tuple[Tuple[str, str], ...]  # (register/probe, value) pairs
    expected: str
    got: str

    def __str__(self) -> str:
        where = ", ".join(f"{k}={v}" for k, v in self.inputs) or "any input"
        return (
            f"rule {self.rule} at pc {self.pc} refuted ({self.stage}): "
            f"with {where}: expected {self.expected}, got {self.got}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "pc": self.pc,
            "stage": self.stage,
            "inputs": dict(self.inputs),
            "expected": self.expected,
            "got": self.got,
        }


@dataclass
class CheckResult:
    verdict: str  # proven | unproven | refuted
    counterexample: Optional[Counterexample] = None
    probes: int = 0


def window_supported(insns: Sequence[Insn]) -> bool:
    """Whether every instruction falls in the checkable fragment."""
    for insn in insns:
        if insn.op not in _SUPPORTED:
            return False
        if insn.op is Op.LDX and insn.src != R10:
            return False
        if insn.op in (Op.STX, Op.ST_IMM) and insn.dst != R10:
            return False
    return True


def window_reads(*sequences: Sequence[Insn]) -> Tuple[int, ...]:
    """Registers either sequence reads before writing (entry dependencies)."""
    reads: set = set()
    for insns in sequences:
        written: set = set()
        for insn in insns:
            op = insn.op
            if op is Op.MOV_REG:
                if insn.src not in written:
                    reads.add(insn.src)
                written.add(insn.dst)
            elif op in ALU_IMM_OPS or op is Op.NEG:
                if insn.dst not in written:
                    reads.add(insn.dst)
                written.add(insn.dst)
            elif op in ALU_REG_OPS:
                for r in (insn.dst, insn.src):
                    if r not in written:
                        reads.add(r)
                written.add(insn.dst)
            elif op is Op.MOV_IMM:
                written.add(insn.dst)
            elif op is Op.LDX:
                written.add(insn.dst)  # src is R10, always defined
            elif op is Op.STX:
                if insn.src not in written:
                    reads.add(insn.src)
    reads.discard(R10)
    return tuple(sorted(reads))


# --------------------------------------------------------------- abstract ---

#: A symbolic value: a canonical expression tree (nested tuples). Leaves are
#: ``("reg", r)`` entry registers, ``("const", v)``, and ``("slot", off,
#: size, gen)`` untracked stack loads (``gen`` counts prior overlapping
#: stores, so a load before and after a clobbering store never unify).


def _canon_alu(op: str, left, right, rng: Range):
    """Canonical vid for ``left op right`` with result range ``rng``.

    Each folded identity is a theorem about the VM's ``_alu``; the interval
    domain supplies the constant collapse.
    """
    if rng.is_const:
        return ("const", rng.lo)
    if right[0] == "const":
        value = right[1]
        if value == 0 and op in ("add", "sub", "or", "xor", "lsh", "rsh"):
            return left
        if value == 0 and op == "mod":  # x % 0 == x in eBPF
            return left
        if value == 1 and op in ("mul", "div"):
            return left
        if value > 1 and value & (value - 1) == 0:
            shift = value.bit_length() - 1
            if op == "mul":
                return _canon_alu("lsh", left, ("const", shift), rng)
            if op == "div":
                return _canon_alu("rsh", left, ("const", shift), rng)
            if op == "mod":
                return _canon_alu("and", left, ("const", value - 1), rng)
    if left[0] == "const" and left[1] == 0 and op == "add":
        return right
    if left[0] == "const" and left[1] == 1 and op == "mul":
        return right
    if op in _COMMUTATIVE:
        left, right = sorted((left, right), key=repr)
    return ("alu", op, left, right)


def abstract_eval_window(
    insns: Sequence[Insn], init_ranges: Dict[int, Range], with_ranges: bool = False
) -> Optional[Tuple]:
    """Symbolic + interval evaluation of a straight-line window.

    Returns ``(final_regs, final_mem)`` — canonical vids for r0–r9 and the
    tracked stack slots — or ``None`` when the window leaves the scalar
    fragment (pointer manipulation beyond frame-pointer loads/stores, or
    overlapping-but-unequal store spans, which the tracked-slot model cannot
    compare byte-exactly). With ``with_ranges`` a third element carries the
    interval of each final register — the over-approximation the soundness
    property test exercises.
    """
    regs: List[Tuple] = [("reg", r) for r in range(10)]
    ranges: Dict[Tuple, Range] = {}

    def rng_of(vid) -> Range:
        if vid[0] == "const":
            return Range.const(vid[1])
        return ranges.get(vid, Range.unknown())

    for r, rng in init_ranges.items():
        if rng.is_const:
            regs[r] = ("const", rng.lo)
        else:
            ranges[("reg", r)] = rng

    mem: Dict[int, Tuple[int, Tuple]] = {}  # off -> (size, vid)
    store_log: List[Tuple[int, int]] = []  # (off, size) in store order

    def overlapping_gen(off: int, size: int) -> int:
        return sum(1 for o, s in store_log if o < off + size and off < o + s)

    def do_store(off: int, size: int, vid) -> bool:
        for other in list(mem):
            osize = mem[other][0]
            if other < off + size and off < other + osize:
                if other != off or osize != size:
                    return False  # partial overlap: bytes not comparable
                del mem[other]
        value_rng = rng_of(vid)
        limit = (1 << (8 * size)) - 1
        if value_rng.hi > limit:
            vid = ("trunc", size, vid)
            ranges[vid] = Range.sized(size)
        mem[off] = (size, vid)
        store_log.append((off, size))
        return True

    for insn in insns:
        op = insn.op
        if op is Op.MOV_IMM:
            regs[insn.dst] = ("const", insn.imm & MASK64)
        elif op is Op.MOV_REG:
            if insn.src == R10:
                return None
            regs[insn.dst] = regs[insn.src]
        elif op in ALU_IMM_OPS:
            name = op.value[:-4]
            left = regs[insn.dst]
            right = ("const", insn.imm & MASK64)
            rng = alu_range(name, rng_of(left), Range.const(insn.imm & MASK64))
            vid = _canon_alu(name, left, right, rng)
            ranges.setdefault(vid, rng)
            regs[insn.dst] = vid
        elif op in ALU_REG_OPS:
            if insn.src == R10:
                return None
            name = op.value[:-4]
            left, right = regs[insn.dst], regs[insn.src]
            rng = alu_range(name, rng_of(left), rng_of(right))
            vid = _canon_alu(name, left, right, rng)
            ranges.setdefault(vid, rng)
            regs[insn.dst] = vid
        elif op is Op.NEG:
            left = regs[insn.dst]
            rng = alu_range("neg", rng_of(left), Range.const(0))
            if rng.is_const:
                regs[insn.dst] = ("const", rng.lo)
            else:
                vid = ("alu", "neg", left, ("const", 0))
                ranges.setdefault(vid, rng)
                regs[insn.dst] = vid
        elif op is Op.LDX:
            if insn.src != R10:
                return None
            entry = mem.get(insn.off)
            if entry is not None and entry[0] == insn.imm:
                regs[insn.dst] = entry[1]
            else:
                vid = ("slot", insn.off, insn.imm, overlapping_gen(insn.off, insn.imm))
                ranges.setdefault(vid, Range.sized(insn.imm))
                regs[insn.dst] = vid
        elif op is Op.STX:
            if insn.dst != R10 or insn.src == R10:
                return None
            if not do_store(insn.off, insn.imm, regs[insn.src]):
                return None
        elif op is Op.ST_IMM:
            if insn.dst != R10:
                return None
            if not do_store(insn.off, insn.src, ("const", insn.imm & MASK64)):
                return None
        else:
            return None
    if with_ranges:
        return tuple(regs), tuple(sorted(mem.items())), tuple(rng_of(v) for v in regs)
    return tuple(regs), tuple(sorted(mem.items()))


# --------------------------------------------------------------- concrete ---


def _fresh_stack(seed: int) -> Region:
    rng = random.Random(seed)
    return Region(
        "stack", bytearray(rng.getrandbits(8) for _ in range(STACK_SIZE)), allow_pointers=True
    )


def _canon_word(value) -> object:
    if isinstance(value, Pointer):
        return ("ptr", value.region.kind, value.offset)
    return value


def concrete_eval_window(
    insns: Sequence[Insn], init: Dict[int, object], stack_seed: int = 0
):
    """Run a straight-line window under the production VM ALU.

    ``init`` maps registers to entry values: ints, or ``("stackptr", off)``
    to plant a fat pointer into the (seeded, randomized) stack frame.
    Returns ``("ok", final_regs, (stack_bytes, spilled))`` or
    ``("abort", detail, None)`` when the VM faults — windows only touch the
    per-invocation stack, so an abort's partial state is unobservable and
    two aborts compare equal.
    """
    stack = _fresh_stack(stack_seed)
    regs: List[object] = [0] * (R10 + 1)
    for r in range(10):
        value = init.get(r, 0)
        if isinstance(value, tuple):
            value = Pointer(stack, value[1])
        regs[r] = value
    regs[R10] = Pointer(stack, STACK_SIZE)
    try:
        for insn in insns:
            op = insn.op
            if op is Op.MOV_IMM:
                regs[insn.dst] = insn.imm & MASK64
            elif op is Op.MOV_REG:
                regs[insn.dst] = regs[insn.src]
            elif op in ALU_IMM_OPS:
                regs[insn.dst] = _VM._alu(
                    op.value[:-4], regs[insn.dst], insn.imm & MASK64, insn, _WINDOW_PROG
                )
            elif op in ALU_REG_OPS:
                regs[insn.dst] = _VM._alu(
                    op.value[:-4], regs[insn.dst], regs[insn.src], insn, _WINDOW_PROG
                )
            elif op is Op.NEG:
                value = regs[insn.dst]
                if isinstance(value, Pointer):
                    raise VMError("NEG on pointer")
                regs[insn.dst] = (-value) & MASK64
            elif op is Op.LDX:
                ptr = regs[insn.src]
                if not isinstance(ptr, Pointer):
                    raise VMError(f"load via non-pointer r{insn.src}")
                regs[insn.dst] = ptr.load(insn.off, insn.imm)
            elif op is Op.STX:
                ptr = regs[insn.dst]
                if not isinstance(ptr, Pointer):
                    raise VMError(f"store via non-pointer r{insn.dst}")
                ptr.store(insn.off, insn.imm, regs[insn.src])
            elif op is Op.ST_IMM:
                ptr = regs[insn.dst]
                if not isinstance(ptr, Pointer):
                    raise VMError(f"store via non-pointer r{insn.dst}")
                ptr.store(insn.off, insn.src, insn.imm)
            else:
                raise VMError(f"unsupported window op {op}")
    except (VMError, MemoryError_) as exc:
        return ("abort", str(exc), None)
    final_regs = tuple(_canon_word(regs[r]) for r in range(10))
    spilled = tuple(sorted((off, _canon_word(p)) for off, p in stack._spilled.items()))
    return ("ok", final_regs, (bytes(stack.data), spilled))


# ------------------------------------------------------------ the checker ---


def _abstract_probes(reads: Sequence[int]) -> List[Dict[int, Range]]:
    probes: List[Dict[int, Range]] = [{}]  # unknown everywhere
    for value in (0, 1, 5, MASK64):
        probes.append({r: Range.const(value) for r in reads})
    probes.append({r: Range(0, 255) for r in reads})
    if len(reads) >= 2:
        a, b = reads[0], reads[1]
        probes.append({a: Range.const(8), b: Range.const(1)})
        probes.append({a: Range.const(1), b: Range.const(8)})
    return probes


def _concrete_probes(reads: Sequence[int], seed: int) -> List[Dict[int, object]]:
    rng = random.Random(seed)
    probes: List[Dict[int, object]] = []
    if not reads:
        return [{}]
    for value in _EDGE_VALUES:
        probes.append({r: value for r in reads})
    for _ in range(16):
        probes.append({r: rng.choice(_EDGE_VALUES + (rng.getrandbits(64),)) for r in reads})
    # fat-pointer probes: each read register in turn carries a stack pointer
    for r in reads:
        for offset in (STACK_SIZE - 64, STACK_SIZE):
            probe = {x: rng.choice(_EDGE_VALUES) for x in reads}
            probe[r] = ("stackptr", offset)
            probes.append(probe)
    return probes


def _format_inputs(probe: Dict[int, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple((f"r{r}", str(v)) for r, v in sorted(probe.items()))


def _abstract_mismatch(state_a, state_b) -> Optional[Tuple[str, str, str]]:
    """A definite disagreement: the same location, two different constants."""
    regs_a, mem_a = state_a
    regs_b, mem_b = state_b
    for r in range(10):
        va, vb = regs_a[r], regs_b[r]
        if va != vb and va[0] == "const" and vb[0] == "const":
            return (f"r{r}", str(va[1]), str(vb[1]))
    mem_b_dict = dict(mem_b)
    for off, (size, vid) in mem_a:
        other = mem_b_dict.get(off)
        if other is not None and other[0] == size:
            ovid = other[1]
            if vid != ovid and vid[0] == "const" and ovid[0] == "const":
                return (f"stack[{off}:{size}]", str(vid[1]), str(ovid[1]))
    return None


def check_window(
    original: Sequence[Insn],
    candidate: Sequence[Insn],
    rule: str = "",
    pc: int = 0,
    seed: int = 0,
) -> CheckResult:
    """Decide whether ``candidate`` may replace ``original``.

    ``proven`` requires the canonical abstract states to be equal on every
    probe *and* the differential VM runs to agree on the entire corpus;
    ``refuted`` carries a counterexample; anything else is ``unproven``.
    """
    if not window_supported(original) or not window_supported(candidate):
        return CheckResult(UNPROVEN)
    reads = window_reads(original, candidate)
    probes = 0

    abstract_equal = True
    for init in _abstract_probes(reads):
        probes += 1
        state_a = abstract_eval_window(original, init)
        state_b = abstract_eval_window(candidate, init)
        if state_a is None or state_b is None:
            abstract_equal = False
            continue
        if state_a == state_b:
            continue
        mismatch = _abstract_mismatch(state_a, state_b)
        if mismatch is not None:
            where, expected, got = mismatch
            inputs = tuple(
                (f"r{r}", f"[{rng.lo:#x}, {rng.hi:#x}]") for r, rng in sorted(init.items())
            )
            return CheckResult(
                REFUTED,
                Counterexample(rule, pc, "abstract", inputs, f"{where}={expected}", f"{where}={got}"),
                probes,
            )
        abstract_equal = False

    for stack_seed in (seed, seed + 1):
        for init in _concrete_probes(reads, seed):
            probes += 1
            out_a = concrete_eval_window(original, init, stack_seed)
            out_b = concrete_eval_window(candidate, init, stack_seed)
            if out_a[0] == "abort" and out_b[0] == "abort":
                continue  # both abort; partial stack state dies with the frame
            if out_a != out_b:
                pointer_probe = any(isinstance(v, tuple) for v in init.values())
                if pointer_probe and ("abort" in (out_a[0], out_b[0])):
                    # One side faults only when the operand is a pointer.
                    # The verifier rejects pointer ALU statically, so this
                    # state is unreachable in any program the engine rewrites
                    # — but the window alone cannot show that. Not a rule
                    # bug, just undecidable in isolation: decline quietly.
                    abstract_equal = False
                    continue
                return CheckResult(
                    REFUTED,
                    Counterexample(
                        rule,
                        pc,
                        "concrete",
                        _format_inputs(init) + (("stack_seed", str(stack_seed)),),
                        _summarize(out_a),
                        _summarize(out_b),
                    ),
                    probes,
                )

    return CheckResult(PROVEN if abstract_equal else UNPROVEN, None, probes)


def _summarize(outcome) -> str:
    if outcome[0] == "abort":
        return f"abort({outcome[1]})"
    regs = ", ".join(
        f"r{r}={v:#x}" if isinstance(v, int) else f"r{r}={v}"
        for r, v in enumerate(outcome[1])
    )
    return f"ok[{regs}]"
