"""Dead-code elimination shared by the code generator and the optimizer.

Two primitives: :func:`reachable_pcs` (forward reachability over the
loop-free CFG) and :func:`remove_insns` (drop an index set and remap every
surviving jump to the compacted layout). :func:`eliminate_unreachable`
composes them; the minic code generator calls it to sweep the dead tails its
straight-line lowering leaves behind (the epilogue after an unconditional
``return``, inline-call fall-throughs), and the optimizer engine calls it
after branch folding opens up newly unreachable arms.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable, List, Sequence, Set

from repro.ebpf.isa import JUMP_OPS, Insn, Op


def reachable_pcs(insns: Sequence[Insn]) -> Set[int]:
    """Instruction indices reachable from the entry point."""
    reachable: Set[int] = set()
    work = [0]
    while work:
        pc = work.pop()
        if pc in reachable or not 0 <= pc < len(insns):
            continue
        reachable.add(pc)
        op = insns[pc].op
        if op is Op.EXIT:
            continue
        if op is Op.JA:
            work.append(pc + 1 + insns[pc].off)
            continue
        if op in JUMP_OPS:
            work.append(pc + 1 + insns[pc].off)
        work.append(pc + 1)
    return reachable


def remove_insns(insns: Sequence[Insn], dead: Iterable[int]) -> List[Insn]:
    """Drop the ``dead`` indices, remapping jump offsets to the new layout.

    A jump whose target was removed retargets to the next surviving
    instruction. Every removal this package performs — unreachable code,
    no-op hops, writes proven dead — makes that retarget
    semantics-preserving: the removed target either cannot execute or has no
    observable effect on any path through it.
    """
    dead_set = set(dead)
    if not dead_set:
        return list(insns)
    kept = [pc for pc in range(len(insns)) if pc not in dead_set]
    if not kept:
        raise ValueError("cannot remove every instruction")
    new_pos = {old: new for new, old in enumerate(kept)}

    def surviving_target(target: int) -> int:
        i = bisect.bisect_left(kept, target)
        if i == len(kept):
            raise ValueError(f"jump target {target} has no surviving successor")
        return i

    out: List[Insn] = []
    for old in kept:
        insn = insns[old]
        if insn.op in JUMP_OPS:
            target = old + 1 + insn.off
            insn = dataclasses.replace(insn, off=surviving_target(target) - new_pos[old] - 1)
        out.append(insn)
    return out


def eliminate_unreachable(insns: List[Insn]) -> List[Insn]:
    """Drop instructions unreachable from the entry point.

    Executed paths are untouched — only never-reached instructions are
    removed, with jump offsets remapped to the compacted layout.
    """
    reachable = reachable_pcs(insns)
    if len(reachable) == len(insns):
        return insns
    return remove_insns(insns, set(range(len(insns))) - reachable)
