"""Equivalence-checked superoptimization of FPM bytecode.

The paper's minimality thesis — synthesized fast paths are fast *because*
they contain only the instructions the configuration needs — is enforced
here mechanically, K2-style ("Synthesizing Safe and Efficient Kernel
Extensions for Packet Processing"): a window/peephole engine proposes
rewrites from a rule catalog, each candidate must be *proven* equivalent to
the window it replaces (symbolic values over the :mod:`..domain` interval
lattice, with differential VM execution as a soundness backstop), and the
full range-tracking verifier re-checks every optimized program. Anything
short of proof falls back to the unoptimized bytecode — fail-closed,
mirroring the Deployer's degradation ladder.

Public surface:

- :func:`~repro.ebpf.analysis.opt.engine.optimize_program` — the pipeline.
- :mod:`~repro.ebpf.analysis.opt.dce` — shared dead-code elimination, also
  used by the minic code generator.
- :mod:`~repro.ebpf.analysis.opt.rules` — the rewrite catalog.
- :mod:`~repro.ebpf.analysis.opt.equiv` — the window equivalence checker.
"""

from repro.ebpf.analysis.opt.dce import eliminate_unreachable, remove_insns
from repro.ebpf.analysis.opt.engine import OptimizationReport, optimize_program
from repro.ebpf.analysis.opt.equiv import Counterexample, check_window
from repro.ebpf.analysis.opt.rules import Rule, default_rules

__all__ = [
    "Counterexample",
    "OptimizationReport",
    "Rule",
    "check_window",
    "default_rules",
    "eliminate_unreachable",
    "optimize_program",
    "remove_insns",
]
