"""The rewrite catalog the peephole engine mines candidates from.

Every rule is *advisory*: a match only produces a candidate, and the engine
applies it solely after :func:`~repro.ebpf.analysis.opt.equiv.check_window`
proves the replacement equivalent. The catalog therefore errs toward
matching aggressively — an unsound match costs a rejected candidate (and a
recorded counterexample), never a miscompiled program.

The rules target what the minic code generator actually emits: its
stack-machine lowering spills the working register around every binary
operator (``STX [fp+c]=r6; LDX rX=[fp+c]`` pairs), copies helper results
unconditionally (``CALL; MOV_REG r6, r0``), and routes commutative results
through the auxiliary register (``ADD_REG r7, r6; MOV_REG r6, r7``). The
store-load/copy rewrites here expose those values to the engine's dead-write
and dead-store passes, which harvest the actual instruction-count wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.ebpf.isa import R10, Insn, Op, mov_imm, mov_reg

#: A match result: (window length, replacement instructions).
Match = Optional[Tuple[int, List[Insn]]]


@dataclass(frozen=True)
class Rule:
    """One named rewrite: ``match(insns, pc)`` → candidate or None."""

    name: str
    match: Callable[[Sequence[Insn], int], Match]


_ZERO_IDENTITY = (Op.ADD_IMM, Op.SUB_IMM, Op.OR_IMM, Op.XOR_IMM, Op.LSH_IMM, Op.RSH_IMM)
_COMMUTATIVE_REG = (Op.ADD_REG, Op.MUL_REG, Op.AND_REG, Op.OR_REG, Op.XOR_REG)


def _is_pow2(value: int) -> bool:
    return value > 1 and value & (value - 1) == 0


def _match_identity(insns: Sequence[Insn], pc: int) -> Match:
    """Ops that provably leave dst unchanged: drop them."""
    insn = insns[pc]
    if insn.op in _ZERO_IDENTITY and insn.imm == 0:
        return (1, [])
    if insn.op in (Op.MUL_IMM, Op.DIV_IMM) and insn.imm == 1:
        return (1, [])
    if insn.op is Op.MOD_IMM and insn.imm == 0:  # x % 0 == x in eBPF
        return (1, [])
    if insn.op is Op.MOV_REG and insn.dst == insn.src:
        return (1, [])
    return None


def _match_const_fold(insns: Sequence[Insn], pc: int) -> Match:
    """Ops whose result the range domain collapses to a constant."""
    insn = insns[pc]
    if insn.op in (Op.MUL_IMM, Op.AND_IMM) and insn.imm == 0:
        return (1, [mov_imm(insn.dst, 0)])
    if insn.op is Op.MOD_IMM and insn.imm == 1:
        return (1, [mov_imm(insn.dst, 0)])
    if insn.op is Op.DIV_IMM and insn.imm == 0:  # x / 0 == 0 in eBPF
        return (1, [mov_imm(insn.dst, 0)])
    return None


def _match_strength_reduction(insns: Sequence[Insn], pc: int) -> Match:
    """mul/div/mod by a power of two → shift/mask (K2's classic)."""
    insn = insns[pc]
    if not _is_pow2(insn.imm):
        return None
    shift = insn.imm.bit_length() - 1
    if insn.op is Op.MUL_IMM:
        return (1, [Insn(Op.LSH_IMM, dst=insn.dst, imm=shift)])
    if insn.op is Op.DIV_IMM:
        return (1, [Insn(Op.RSH_IMM, dst=insn.dst, imm=shift)])
    if insn.op is Op.MOD_IMM:
        return (1, [Insn(Op.AND_IMM, dst=insn.dst, imm=insn.imm - 1)])
    return None


def _match_store_load_forward(insns: Sequence[Insn], pc: int) -> Match:
    """A full-width spill immediately reloaded: forward the register."""
    if pc + 1 >= len(insns):
        return None
    a, b = insns[pc], insns[pc + 1]
    if not (b.op is Op.LDX and b.src == R10 and b.imm == 8):
        return None
    if a.op is Op.STX and a.dst == R10 and a.imm == 8 and a.off == b.off and a.src != R10:
        if b.dst == a.src:
            return (2, [a])
        return (2, [a, mov_reg(b.dst, a.src)])
    if a.op is Op.ST_IMM and a.dst == R10 and a.src == 8 and a.off == b.off:
        return (2, [a, mov_imm(b.dst, a.imm)])
    return None


def _match_redundant_load(insns: Sequence[Insn], pc: int) -> Match:
    """Two back-to-back loads of the same slot: copy, don't reload."""
    if pc + 1 >= len(insns):
        return None
    a, b = insns[pc], insns[pc + 1]
    if not (
        a.op is Op.LDX
        and b.op is Op.LDX
        and a.src == R10
        and b.src == R10
        and a.off == b.off
        and a.imm == b.imm
    ):
        return None
    if b.dst == a.dst:
        return (2, [a])
    return (2, [a, mov_reg(b.dst, a.dst)])


def _match_store_store_elide(insns: Sequence[Insn], pc: int) -> Match:
    """A full-width store overwritten before any load: drop the first."""
    if pc + 1 >= len(insns):
        return None
    a, b = insns[pc], insns[pc + 1]
    size_a = a.imm if a.op is Op.STX else a.src if a.op is Op.ST_IMM else None
    size_b = b.imm if b.op is Op.STX else b.src if b.op is Op.ST_IMM else None
    if size_a != 8 or size_b != 8:
        return None
    if a.dst == R10 and b.dst == R10 and a.off == b.off:
        return (2, [b])
    return None


def _match_commutative_swap(insns: Sequence[Insn], pc: int) -> Match:
    """``A = A op B; B = A`` → ``B = B op A; A = B`` for commutative ops.

    Same length, same final state — but the copy now lands in the *other*
    register, which in minic's emission pattern (result routed through the
    auxiliary register) is dead, so the dead-write pass deletes it. Only the
    ``dst > src`` orientation matches (minic's AUX registers are numbered
    above WORK), which also keeps the rewrite from undoing itself.
    """
    if pc + 1 >= len(insns):
        return None
    a, b = insns[pc], insns[pc + 1]
    if (
        a.op in _COMMUTATIVE_REG
        and a.dst > a.src
        and a.src != R10
        and b.op is Op.MOV_REG
        and b.src == a.dst
        and b.dst == a.src
    ):
        return (2, [Insn(a.op, dst=a.src, src=a.dst, comment=a.comment), mov_reg(a.dst, a.src)])
    return None


def default_rules() -> List[Rule]:
    """The catalog, in application order (cheap single-insn rules first)."""
    return [
        Rule("identity", _match_identity),
        Rule("const-fold", _match_const_fold),
        Rule("strength-reduction", _match_strength_reduction),
        Rule("store-load-forward", _match_store_load_forward),
        Rule("redundant-load", _match_redundant_load),
        Rule("store-store-elide", _match_store_store_elide),
        Rule("commutative-swap", _match_commutative_swap),
    ]
