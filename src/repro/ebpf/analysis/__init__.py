"""Static analysis for the eBPF-like ISA.

The package splits the range-tracking verifier into:

- :mod:`repro.ebpf.analysis.errors` — structured :class:`VerifierError`;
- :mod:`repro.ebpf.analysis.domain` — abstract values (register types and
  u64 ranges) plus the branch-refinement and ALU transfer rules;
- :mod:`repro.ebpf.analysis.interp` — the path-sensitive abstract
  interpreter that proves memory safety and helper-signature conformance;
- :mod:`repro.ebpf.analysis.lint` — an FPM lint pass (dead code, redundant
  bounds checks, unused map slots) built on the interpreter's coverage facts.
"""

from repro.ebpf.analysis.domain import AbstractVal, Range
from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.analysis.interp import Analysis, interpret

__all__ = ["AbstractVal", "Analysis", "Range", "VerifierError", "interpret"]
