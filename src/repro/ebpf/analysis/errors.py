"""Structured verifier diagnostics.

A :class:`VerifierError` is still an ordinary exception (``str(exc)`` is the
human-readable message the tests match on), but it also carries machine-
readable fields so the control plane can log *typed* incidents instead of
opaque strings: which program, at which pc, with which diagnostic code.
"""

from __future__ import annotations

from typing import Dict, Optional


class VerifierError(Exception):
    """Program rejected by the static verifier.

    ``code`` is a stable kebab-case diagnostic identifier (for example
    ``packet-out-of-bounds`` or ``helper-signature``); ``program``/``pc``/
    ``insn`` locate the offending instruction when the rejection is tied to
    one.
    """

    def __init__(
        self,
        message: str,
        *,
        program: Optional[str] = None,
        pc: Optional[int] = None,
        code: Optional[str] = None,
        insn: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.program = program
        self.pc = pc
        self.code = code
        self.insn = insn

    def to_dict(self) -> Dict[str, object]:
        """Serializable form for incident logs and deploy-failure records."""
        return {
            "message": self.message,
            "program": self.program,
            "pc": self.pc,
            "code": self.code,
            "insn": self.insn,
        }
