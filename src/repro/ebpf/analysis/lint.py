"""FPM lint: reusable findings on top of the verifier's coverage facts.

The abstract interpreter already walks every feasible path, so linting is
free: instructions it never reached are dead code, conditional jumps with a
single feasible outcome are redundant checks, and map slots never touched
by a reachable ``LD_MAP`` are unused. Synthesized fast paths are expected
to be lint-clean — a finding means the synthesizer emitted code it did not
need (CI runs ``python -m repro.tools.fpmlint`` over the whole template
library to enforce this).

Pointer-null checks (``map_lookup`` result tests) are never flagged as
redundant: the interpreter records both outcomes for them by construction,
since NULL-ness is not modeled as a numeric range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ebpf.analysis.interp import Analysis, interpret
from repro.ebpf.program import Program


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic for a verified program."""

    program: str
    pc: Optional[int]
    code: str  # dead-code | redundant-check | unused-map
    message: str

    def __str__(self) -> str:
        where = f"@{self.pc}" if self.pc is not None else ""
        return f"{self.program}{where}: {self.code}: {self.message}"


def lint_program(
    program: Program,
    entry_regs: Tuple[int, ...] = (1, 2, 3),
    entry_kinds: Optional[Tuple[str, ...]] = None,
) -> List[LintFinding]:
    """Verify ``program`` and report lint findings.

    Raises :class:`~repro.ebpf.analysis.errors.VerifierError` if the program
    does not verify — lint findings are only meaningful for safe programs.
    """
    # imported here: verifier imports the interpreter, so a module-level
    # import would be circular
    from repro.ebpf.verifier import check_structure

    check_structure(program)
    analysis: Analysis = interpret(program, entry_regs, entry_kinds)
    findings: List[LintFinding] = []
    name = program.name

    for pc, insn in enumerate(program.insns):
        if pc not in analysis.visited:
            findings.append(
                LintFinding(name, pc, "dead-code", f"unreachable instruction {insn!r}")
            )

    for pc, outcomes in sorted(analysis.branch_outcomes.items()):
        if len(outcomes) == 1:
            which = "always taken" if True in outcomes else "never taken"
            findings.append(
                LintFinding(
                    name,
                    pc,
                    "redundant-check",
                    f"branch {program.insns[pc]!r} is {which} on every feasible path",
                )
            )

    for slot, bpf_map in enumerate(program.maps):
        if slot not in analysis.used_maps:
            map_name = getattr(bpf_map, "name", f"slot {slot}")
            findings.append(
                LintFinding(
                    name, None, "unused-map", f"map {map_name!r} (slot {slot}) is never referenced"
                )
            )

    return findings
