"""Abstract values for the range-tracking verifier.

Registers (and tracked stack slots) hold an :class:`AbstractVal`: a register
*type* mirroring the kernel verifier's ``bpf_reg_type`` lattice plus a u64
interval. For scalars the interval is the value range (umin/umax; the signed
view is derived, see :meth:`Range.signed`); for pointers it is the *offset*
range relative to the start of the pointed-to region, kept as unbounded
Python ints because the VM's fat pointers never wrap.

The transfer rules here are deliberately the interval-arithmetic core only —
no path logic, no memory model. Everything degrades soundly to ``[0, 2^64)``
(or an unbounded offset) when precision is lost; the interpreter rejects any
access it cannot prove, so imprecision can only cause false rejections,
never false acceptance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

U64MAX = (1 << 64) - 1
S64MIN = -(1 << 63)

# --------------------------------------------------------------- value kinds

SCALAR = "scalar"
PTR_TO_PACKET = "ptr_to_packet"
#: A scalar whose value *is* the packet length — the role ``data_end`` plays
#: in real XDP. Comparing it refines the interpreter's packet-length range,
#: which is what makes ``if (len < 34) return;`` a usable bounds proof.
PACKET_LEN = "packet_len"
PTR_TO_STACK = "ptr_to_stack"
CONST_PTR_TO_MAP = "const_ptr_to_map"
PTR_TO_MAP_VALUE = "ptr_to_map_value"
MAP_VALUE_OR_NULL = "map_value_or_null"

#: Kinds that are a live fat pointer at runtime.
POINTER_KINDS = frozenset({PTR_TO_PACKET, PTR_TO_STACK, PTR_TO_MAP_VALUE})
#: Kinds that are a plain integer at runtime.
SCALAR_KINDS = frozenset({SCALAR, PACKET_LEN})


@dataclass(frozen=True)
class Range:
    """A closed interval ``[lo, hi]`` (unsigned for scalars)."""

    lo: int
    hi: int

    @staticmethod
    def const(value: int) -> "Range":
        return Range(value, value)

    @staticmethod
    def unknown() -> "Range":
        return Range(0, U64MAX)

    @staticmethod
    def sized(nbytes: int) -> "Range":
        """The value range of an ``nbytes``-wide big-endian load."""
        return Range(0, (1 << (8 * nbytes)) - 1)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def signed(self) -> Optional[Tuple[int, int]]:
        """The signed-64 view ``[smin, smax]``, or None if it straddles."""
        if self.hi < 1 << 63:
            return (self.lo, self.hi)
        if self.lo >= 1 << 63:
            return (self.lo - (1 << 64), self.hi - (1 << 64))
        return None


def _low_mask(value: int) -> int:
    """The smallest all-ones mask covering ``value`` (0 → 0)."""
    return (1 << value.bit_length()) - 1


def alu_range(op_name: str, left: Range, right: Range) -> Range:
    """Abstract u64 ALU: the VM's ``_alu`` lifted to intervals.

    Any result that may wrap modulo 2^64 degrades to unknown rather than
    splitting the interval — matching the kernel verifier's umin/umax
    behaviour for overflowing ops.
    """
    if op_name == "add":
        lo, hi = left.lo + right.lo, left.hi + right.hi
        return Range(lo, hi) if hi <= U64MAX else Range.unknown()
    if op_name == "sub":
        if left.lo >= right.hi:
            return Range(left.lo - right.hi, left.hi - right.lo)
        return Range.unknown()
    if op_name == "mul":
        hi = left.hi * right.hi
        return Range(left.lo * right.lo, hi) if hi <= U64MAX else Range.unknown()
    if op_name == "div":  # unsigned; x/0 == 0
        if right.lo > 0:
            return Range(left.lo // right.hi, left.hi // right.lo)
        return Range(0, left.hi)  # divisor may be 0 (→ 0) or ≥1 (shrinks)
    if op_name == "mod":  # x % 0 == x
        if right.lo > 0:
            return Range(0, min(left.hi, right.hi - 1))
        return Range(0, left.hi)
    if op_name == "and":
        return Range(0, min(left.hi, right.hi))
    if op_name == "or":
        return Range(max(left.lo, right.lo), min(U64MAX, left.hi | _low_mask(right.hi)))
    if op_name == "xor":
        return Range(0, min(U64MAX, _low_mask(left.hi) | _low_mask(right.hi)))
    if op_name == "lsh":  # shift counts are masked & 63 at runtime
        if right.hi <= 63:
            hi = left.hi << right.hi
            return Range(left.lo << right.lo, hi) if hi <= U64MAX else Range.unknown()
        return Range.unknown()
    if op_name == "rsh":
        if right.hi <= 63:
            return Range(left.lo >> right.hi, left.hi >> right.lo)
        return Range(0, left.hi)
    if op_name == "neg":
        if left.is_const:
            return Range.const((-left.lo) & U64MAX)
        return Range.unknown()
    raise AssertionError(f"unknown ALU op {op_name}")  # pragma: no cover


# --------------------------------------------------------- branch refinement

#: (op name, branch taken?) → canonical relation ``left REL right``.
_RELATION = {
    ("jeq", True): "eq", ("jeq", False): "ne",
    ("jne", True): "ne", ("jne", False): "eq",
    ("jgt", True): "gt", ("jgt", False): "le",
    ("jge", True): "ge", ("jge", False): "lt",
    ("jlt", True): "lt", ("jlt", False): "ge",
    ("jle", True): "le", ("jle", False): "gt",
    ("jset", True): "set", ("jset", False): "nset",
}


def refine(op_name: str, taken: bool, left: Range, right: Range):
    """Feasibility + refined operand ranges for one branch outcome.

    Returns ``(feasible, left', right')``. The refined ranges are sound
    over-approximations of the operand values on that edge; an infeasible
    edge is pruned by the interpreter (and reported to the lint pass, which
    flags conditions with only one feasible outcome as redundant checks).
    """
    rel = _RELATION[(op_name, taken)]
    if rel == "eq":
        lo, hi = max(left.lo, right.lo), min(left.hi, right.hi)
        if lo > hi:
            return False, left, right
        meet = Range(lo, hi)
        return True, meet, meet
    if rel == "ne":
        if left.is_const and right.is_const and left.lo == right.lo:
            return False, left, right
        new_left, new_right = left, right
        if right.is_const:
            new_left = _trim(left, right.lo)
            if new_left is None:
                return False, left, right
        if left.is_const:
            new_right = _trim(right, left.lo)
            if new_right is None:
                return False, left, right
        return True, new_left, new_right
    if rel == "gt":  # left > right
        if left.hi <= right.lo:
            return False, left, right
        return True, Range(max(left.lo, right.lo + 1), left.hi), Range(right.lo, min(right.hi, left.hi - 1))
    if rel == "ge":
        if left.hi < right.lo:
            return False, left, right
        return True, Range(max(left.lo, right.lo), left.hi), Range(right.lo, min(right.hi, left.hi))
    if rel == "lt":
        if left.lo >= right.hi:
            return False, left, right
        return True, Range(left.lo, min(left.hi, right.hi - 1)), Range(max(right.lo, left.lo + 1), right.hi)
    if rel == "le":
        if left.lo > right.hi:
            return False, left, right
        return True, Range(left.lo, min(left.hi, right.hi)), Range(max(right.lo, left.lo), right.hi)
    if rel == "set":  # (left & right) != 0
        if left.is_const and right.is_const:
            return bool(left.lo & right.lo), left, right
        if left.hi == 0 or right.hi == 0:
            return False, left, right
        new_left = Range(max(left.lo, 1), left.hi) if right.lo > 0 else left
        return True, new_left, right
    if rel == "nset":
        if left.is_const and right.is_const:
            return not (left.lo & right.lo), left, right
        return True, left, right
    raise AssertionError(rel)  # pragma: no cover


def _trim(rng: Range, excluded: int) -> Optional[Range]:
    """Shave ``excluded`` off an interval endpoint (None when empty)."""
    lo, hi = rng.lo, rng.hi
    if lo == hi:
        return None if lo == excluded else rng
    if lo == excluded:
        return Range(lo + 1, hi)
    if hi == excluded:
        return Range(lo, hi - 1)
    return rng


@dataclass(frozen=True)
class AbstractVal:
    """One abstract register/slot value: a kind plus a range.

    For :data:`SCALAR` the range is the u64 value interval; for pointer
    kinds it is the byte offset into the region; for :data:`PACKET_LEN` the
    range lives in the interpreter state (all packet-length values alias the
    single tracked length) and the field here is ignored; for
    :data:`CONST_PTR_TO_MAP`, :data:`PTR_TO_MAP_VALUE` and
    :data:`MAP_VALUE_OR_NULL` the ``map`` field names the map object whose
    ``key_size``/``value_size`` bound the access.
    """

    kind: str
    rng: Range
    map: Optional[object] = None
