"""Path-sensitive abstract interpretation over the eBPF-like ISA.

The interpreter walks every feasible path of the (loop-free) program with an
abstract machine state: each live register and tracked stack slot holds a
*value id*, and a shared table maps value ids to :class:`AbstractVal`s. The
indirection is what makes branch refinement work the way the kernel
verifier's does — when ``if (len < 34)`` refines the packet-length range,
every register and spilled slot holding that same value sees the refined
range, because they alias one value id.

What is proven statically (the VM's fat pointers then only re-assert it):

- every packet load/store lies below the *guaranteed minimum* packet length
  established by dominating length checks (``PACKET_LEN`` comparisons);
- stack accesses stay inside the 512-byte frame, and spilled pointers are
  only filled back full-width from the exact slot they went into;
- map-value accesses stay within the map's declared ``value_size`` and
  maybe-NULL map values are null-checked before any dereference;
- helper calls match the declared signatures in ``HELPER_SIGS`` (argument
  kinds, pointed-to buffer sizes, map-type constraints);
- no pointer leaks into scalar arithmetic, comparisons (beyond null
  checks), stores to non-stack memory, or the R0 exit value.

The walk also records per-instruction coverage and per-branch feasible
outcomes, which :mod:`repro.ebpf.analysis.lint` turns into dead-code and
redundant-check findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NoReturn, Optional, Set, Tuple

from repro.ebpf import helpers as helpers_mod
from repro.ebpf.analysis.domain import (
    CONST_PTR_TO_MAP,
    MAP_VALUE_OR_NULL,
    PACKET_LEN,
    POINTER_KINDS,
    PTR_TO_MAP_VALUE,
    PTR_TO_PACKET,
    PTR_TO_STACK,
    SCALAR,
    SCALAR_KINDS,
    U64MAX,
    AbstractVal,
    Range,
    alu_range,
    refine,
)
from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.isa import ALU_IMM_OPS, ALU_REG_OPS, JMP_IMM_OPS, JMP_REG_OPS, NUM_REGS, Insn, Op, R10
from repro.ebpf.program import Program
from repro.ebpf.vm import STACK_SIZE

#: Upper bound on explored (pc, state) transfer steps before the program is
#: rejected as too complex — the analogue of the kernel's 1M-insn verifier
#: budget. Synthesized FPMs explore a few thousand steps; only adversarial
#: branch ladders get near this.
STEP_BUDGET = 200_000

#: Entry-ABI kinds accepted by :func:`interpret`.
ENTRY_PACKET = "packet"
ENTRY_PACKET_LEN = "packet_len"
ENTRY_SCALAR = "scalar"


def default_entry_kinds(count: int) -> Tuple[str, ...]:
    """The hook ABI: r1 = packet pointer, r2 = packet length, rest scalars."""
    kinds = (ENTRY_PACKET, ENTRY_PACKET_LEN)[:count]
    return kinds + (ENTRY_SCALAR,) * (count - len(kinds))


@dataclass
class Analysis:
    """Coverage facts collected while proving the program safe."""

    #: Instruction indices reached on at least one feasible path.
    visited: Set[int] = field(default_factory=set)
    #: For each conditional jump: the set of feasible outcomes (True=taken).
    branch_outcomes: Dict[int, Set[bool]] = field(default_factory=dict)
    #: ``program.maps`` slots referenced by a reachable LD_MAP.
    used_maps: Set[int] = field(default_factory=set)
    #: Total transfer steps (explored program points, all paths).
    steps: int = 0


class _State:
    """One path's machine state: reg/slot → value id → abstract value.

    ``pkt_len`` is the path's packet-length interval; every ``PACKET_LEN``
    value aliases it, so refining any copy of the length refines them all.
    Stack slots are keyed by absolute frame offset (R10 sits at
    ``STACK_SIZE``) and each tracked slot covers exactly 8 bytes.
    """

    __slots__ = ("regs", "slots", "vals", "pkt_len")

    def __init__(
        self,
        regs: List[Optional[int]],
        slots: Dict[int, int],
        vals: Dict[int, AbstractVal],
        pkt_len: Range,
    ) -> None:
        self.regs = regs
        self.slots = slots
        self.vals = vals
        self.pkt_len = pkt_len

    def copy(self) -> "_State":
        return _State(list(self.regs), dict(self.slots), dict(self.vals), self.pkt_len)

    def val(self, vid: int) -> AbstractVal:
        value = self.vals[vid]
        if value.kind == PACKET_LEN:
            return AbstractVal(PACKET_LEN, self.pkt_len)
        return value

    def set_rng(self, vid: int, rng: Range) -> None:
        value = self.vals[vid]
        if value.kind == PACKET_LEN:
            self.pkt_len = rng
        else:
            self.vals[vid] = AbstractVal(value.kind, rng, value.map)

    def set_val(self, vid: int, value: AbstractVal) -> None:
        self.vals[vid] = value


def interpret(
    program: Program,
    entry_regs: Tuple[int, ...] = (1, 2, 3),
    entry_kinds: Optional[Tuple[str, ...]] = None,
) -> Analysis:
    """Prove ``program`` memory-safe under the given entry ABI.

    Raises :class:`VerifierError` (with structured fields) on the first
    path that cannot be proven safe; returns the coverage
    :class:`Analysis` otherwise. Assumes structural checks (jump targets,
    access sizes, helper ids, map indices) already passed.
    """
    if entry_kinds is None:
        entry_kinds = default_entry_kinds(len(entry_regs))
    if len(entry_kinds) != len(entry_regs):
        raise ValueError("entry_kinds must match entry_regs in length")
    return _Interp(program).run(entry_regs, entry_kinds)


class _Interp:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.insns = program.insns
        self.name = program.name
        self.analysis = Analysis()
        self._next_vid = 0

    # ------------------------------------------------------------ plumbing

    def fail(self, pc: int, insn: Insn, code: str, message: str) -> NoReturn:
        raise VerifierError(
            f"{self.name}@{pc}: {message}",
            program=self.name,
            pc=pc,
            code=code,
            insn=repr(insn),
        )

    def new_vid(self, st: _State, value: AbstractVal) -> int:
        vid = self._next_vid
        self._next_vid += 1
        st.vals[vid] = value
        return vid

    def read(self, st: _State, pc: int, insn: Insn, reg: int) -> int:
        vid = st.regs[reg]
        if vid is None:
            self.fail(pc, insn, "uninitialized-register", f"r{reg} may be used uninitialized ({insn!r})")
        return vid

    # ------------------------------------------------------------- driving

    def run(self, entry_regs: Tuple[int, ...], entry_kinds: Tuple[str, ...]) -> Analysis:
        st = _State([None] * NUM_REGS, {}, {}, Range.unknown())
        for position, reg in enumerate(entry_regs):
            kind = entry_kinds[position]
            if kind == ENTRY_PACKET:
                value = AbstractVal(PTR_TO_PACKET, Range.const(0))
            elif kind == ENTRY_PACKET_LEN:
                value = AbstractVal(PACKET_LEN, Range.unknown())
            elif kind == ENTRY_SCALAR:
                value = AbstractVal(SCALAR, Range.unknown())
            else:
                raise ValueError(f"unknown entry kind {kind!r}")
            st.regs[reg] = self.new_vid(st, value)
        st.regs[R10] = self.new_vid(st, AbstractVal(PTR_TO_STACK, Range.const(STACK_SIZE)))

        work: List[Tuple[int, _State]] = [(0, st)]
        while work:
            pc, st = work.pop()
            while True:
                self.analysis.steps += 1
                if self.analysis.steps > STEP_BUDGET:
                    raise VerifierError(
                        f"{self.name}: program too complex to verify "
                        f"(more than {STEP_BUDGET} explored states)",
                        program=self.name,
                        code="too-complex",
                    )
                self.analysis.visited.add(pc)
                insn = self.insns[pc]
                if insn.op is Op.EXIT:
                    self._check_exit(pc, insn, st)
                    break
                pc = self._step(pc, insn, st, work)
        return self.analysis

    # ------------------------------------------------------ transfer rules

    def _step(self, pc: int, insn: Insn, st: _State, work: List[Tuple[int, _State]]) -> int:
        op = insn.op

        if op is Op.MOV_IMM:
            st.regs[insn.dst] = self.new_vid(st, AbstractVal(SCALAR, Range.const(insn.imm & U64MAX)))
            return pc + 1
        if op is Op.MOV_REG:
            st.regs[insn.dst] = self.read(st, pc, insn, insn.src)
            return pc + 1
        if op is Op.LD_MAP:
            self.analysis.used_maps.add(insn.imm)
            bpf_map = self.program.maps[insn.imm]
            st.regs[insn.dst] = self.new_vid(st, AbstractVal(CONST_PTR_TO_MAP, Range.const(0), bpf_map))
            return pc + 1
        if op in ALU_IMM_OPS or op in ALU_REG_OPS or op is Op.NEG:
            if op is Op.NEG:
                op_name = "neg"
                right = AbstractVal(SCALAR, Range.const(0))
            elif op in ALU_REG_OPS:
                op_name = op.value[:-4]
                right = st.val(self.read(st, pc, insn, insn.src))
            else:
                op_name = op.value[:-4]
                right = AbstractVal(SCALAR, Range.const(insn.imm & U64MAX))
            left = st.val(self.read(st, pc, insn, insn.dst))
            result = self._alu(pc, insn, op_name, left, right)
            st.regs[insn.dst] = self.new_vid(st, result)
            return pc + 1
        if op is Op.LDX:
            pointer = st.val(self.read(st, pc, insn, insn.src))
            st.regs[insn.dst] = self._load(pc, insn, st, pointer, insn.imm)
            return pc + 1
        if op is Op.STX:
            pointer = st.val(self.read(st, pc, insn, insn.dst))
            svid = self.read(st, pc, insn, insn.src)
            self._store(pc, insn, st, pointer, svid, st.val(svid), insn.imm)
            return pc + 1
        if op is Op.ST_IMM:
            pointer = st.val(self.read(st, pc, insn, insn.dst))
            value = AbstractVal(SCALAR, Range.const(insn.imm & U64MAX))
            self._store(pc, insn, st, pointer, self.new_vid(st, value), value, insn.src)
            return pc + 1
        if op is Op.JA:
            return pc + 1 + insn.off
        if op in JMP_IMM_OPS or op in JMP_REG_OPS:
            return self._branch(pc, insn, st, work)
        if op is Op.CALL:
            return self._call(pc, insn, st)
        if op is Op.TAIL_CALL:
            return self._tail_call(pc, insn, st)
        self.fail(pc, insn, "bad-access", f"unimplemented op {op}")  # pragma: no cover

    def _alu(self, pc: int, insn: Insn, op_name: str, left: AbstractVal, right: AbstractVal) -> AbstractVal:
        if CONST_PTR_TO_MAP in (left.kind, right.kind):
            self.fail(pc, insn, "map-reference-misuse", f"arithmetic on a map reference ({insn!r})")
        if MAP_VALUE_OR_NULL in (left.kind, right.kind):
            self.fail(
                pc, insn, "maybe-null-deref",
                f"arithmetic on a possibly-NULL map value; null-check first ({insn!r})",
            )
        left_ptr = left.kind in POINTER_KINDS
        right_ptr = right.kind in POINTER_KINDS
        if left_ptr and right_ptr:
            self.fail(pc, insn, "pointer-leak", f"pointer-pointer arithmetic ({insn!r})")
        if left_ptr or right_ptr:
            if left_ptr and op_name not in ("add", "sub"):
                self.fail(pc, insn, "pointer-leak", f"{op_name} on pointer ({insn!r})")
            if right_ptr and op_name != "add":
                self.fail(pc, insn, "pointer-leak", f"scalar {op_name} pointer ({insn!r})")
            pointer, scalar = (left, right) if left_ptr else (right, left)
            delta = scalar.rng.signed()
            if delta is None:
                # the signed delta straddles: offset becomes unusable (any
                # later access through it is unprovable, hence rejected)
                offset = Range(-(1 << 64), 1 << 64)
            else:
                delta_lo, delta_hi = delta
                if op_name == "sub":
                    delta_lo, delta_hi = -delta_hi, -delta_lo
                offset = Range(pointer.rng.lo + delta_lo, pointer.rng.hi + delta_hi)
            return AbstractVal(pointer.kind, offset, pointer.map)
        return AbstractVal(SCALAR, alu_range(op_name, left.rng, right.rng))

    # -------------------------------------------------------------- memory

    def _check_packet(self, pc: int, insn: Insn, st: _State, offset: Range, size: int) -> None:
        low, high_end = offset.lo, offset.hi + size
        if low < 0 or high_end > st.pkt_len.lo:
            self.fail(
                pc, insn, "packet-out-of-bounds",
                f"packet access [{low}, {high_end}) not proven within packet bounds "
                f"(guaranteed length {st.pkt_len.lo}); add a packet length guard",
            )

    def _check_map_value(self, pc: int, insn: Insn, value: AbstractVal, offset: Range, size: int) -> None:
        low, high_end = offset.lo, offset.hi + size
        if low < 0 or high_end > value.map.value_size:
            self.fail(
                pc, insn, "map-value-out-of-bounds",
                f"map value access [{low}, {high_end}) outside {value.map.name} "
                f"value size {value.map.value_size}",
            )

    def _check_stack(self, pc: int, insn: Insn, offset: Range, size: int) -> None:
        if offset.lo < 0 or offset.hi + size > STACK_SIZE:
            self.fail(
                pc, insn, "stack-out-of-bounds",
                f"stack access [{offset.lo - STACK_SIZE}, {offset.hi + size - STACK_SIZE}) "
                f"outside the {STACK_SIZE}-byte frame",
            )

    def _ptr_slot_in(self, st: _State, low: int, high_end: int) -> bool:
        """Is any spilled-pointer slot overlapped by byte range [low, high_end)?"""
        for slot, vid in st.slots.items():
            if slot < high_end and slot + 8 > low:
                kind = st.vals[vid].kind
                if kind in POINTER_KINDS or kind == MAP_VALUE_OR_NULL:
                    return True
        return False

    def _clobber_slots(self, st: _State, low: int, high_end: int) -> None:
        for slot in [s for s in st.slots if s < high_end and s + 8 > low]:
            del st.slots[slot]

    def _load(self, pc: int, insn: Insn, st: _State, pointer: AbstractVal, size: int) -> int:
        kind = pointer.kind
        if kind in SCALAR_KINDS:
            self.fail(pc, insn, "bad-access", f"load via non-pointer r{insn.src} ({insn!r})")
        if kind == CONST_PTR_TO_MAP:
            self.fail(pc, insn, "map-reference-misuse", f"load via map reference r{insn.src} ({insn!r})")
        if kind == MAP_VALUE_OR_NULL:
            self.fail(
                pc, insn, "maybe-null-deref",
                f"r{insn.src} may be NULL (unchecked map_lookup result); null-check before dereference",
            )
        offset = Range(pointer.rng.lo + insn.off, pointer.rng.hi + insn.off)
        if kind == PTR_TO_PACKET:
            self._check_packet(pc, insn, st, offset, size)
            return self.new_vid(st, AbstractVal(SCALAR, Range.sized(size)))
        if kind == PTR_TO_MAP_VALUE:
            self._check_map_value(pc, insn, pointer, offset, size)
            return self.new_vid(st, AbstractVal(SCALAR, Range.sized(size)))
        self._check_stack(pc, insn, offset, size)
        if offset.is_const:
            if size == 8 and offset.lo in st.slots:
                return st.slots[offset.lo]  # exact fill: the spilled value, shared vid
            # partial or untracked read: the VM returns plain bytes (a
            # pointer's backing store reads as zeros), so a scalar is exact
            return self.new_vid(st, AbstractVal(SCALAR, Range.sized(size)))
        if size == 8 and self._ptr_slot_in(st, offset.lo, offset.hi + size):
            self.fail(
                pc, insn, "pointer-spill",
                "variable-offset stack load may alias a spilled pointer",
            )
        return self.new_vid(st, AbstractVal(SCALAR, Range.sized(size)))

    def _store(
        self, pc: int, insn: Insn, st: _State, pointer: AbstractVal, svid: int, value: AbstractVal, size: int
    ) -> None:
        kind = pointer.kind
        if kind in SCALAR_KINDS:
            self.fail(pc, insn, "bad-access", f"store via non-pointer r{insn.dst} ({insn!r})")
        if kind == CONST_PTR_TO_MAP:
            self.fail(pc, insn, "map-reference-misuse", f"store via map reference r{insn.dst} ({insn!r})")
        if kind == MAP_VALUE_OR_NULL:
            self.fail(
                pc, insn, "maybe-null-deref",
                f"r{insn.dst} may be NULL (unchecked map_lookup result); null-check before dereference",
            )
        if value.kind == CONST_PTR_TO_MAP:
            self.fail(pc, insn, "map-reference-misuse", f"storing a map reference to memory ({insn!r})")
        value_is_ptr = value.kind in POINTER_KINDS or value.kind == MAP_VALUE_OR_NULL
        offset = Range(pointer.rng.lo + insn.off, pointer.rng.hi + insn.off)
        if kind == PTR_TO_PACKET:
            if value_is_ptr:
                self.fail(pc, insn, "pointer-spill", "cannot spill a pointer to packet memory")
            self._check_packet(pc, insn, st, offset, size)
            return
        if kind == PTR_TO_MAP_VALUE:
            if value_is_ptr:
                self.fail(pc, insn, "pointer-spill", "cannot spill a pointer to map-value memory")
            self._check_map_value(pc, insn, pointer, offset, size)
            return
        self._check_stack(pc, insn, offset, size)
        if value_is_ptr:
            if size != 8:
                self.fail(pc, insn, "pointer-spill", f"pointer spill must be 8 bytes, got {size}")
            if not offset.is_const:
                self.fail(pc, insn, "pointer-spill", "pointer spill requires a constant stack offset")
            self._clobber_slots(st, offset.lo, offset.lo + 8)
            st.slots[offset.lo] = svid
            return
        if offset.is_const:
            self._clobber_slots(st, offset.lo, offset.lo + size)
            if size == 8:
                st.slots[offset.lo] = svid
            return
        if self._ptr_slot_in(st, offset.lo, offset.hi + size):
            self.fail(
                pc, insn, "pointer-spill",
                "variable-offset stack store may clobber a spilled pointer",
            )
        self._clobber_slots(st, offset.lo, offset.hi + size)

    # ------------------------------------------------------------ branches

    def _branch(self, pc: int, insn: Insn, st: _State, work: List[Tuple[int, _State]]) -> int:
        op = insn.op
        target = pc + 1 + insn.off
        outcomes = self.analysis.branch_outcomes.setdefault(pc, set())
        lvid = self.read(st, pc, insn, insn.dst)
        left = st.val(lvid)
        if op in JMP_REG_OPS:
            rvid: Optional[int] = self.read(st, pc, insn, insn.src)
            right = st.val(rvid)
        else:
            rvid = None
            right = AbstractVal(SCALAR, Range.const(insn.imm & U64MAX))
        if CONST_PTR_TO_MAP in (left.kind, right.kind):
            self.fail(pc, insn, "map-reference-misuse", f"comparison on a map reference ({insn!r})")
        left_ptrish = left.kind in POINTER_KINDS or left.kind == MAP_VALUE_OR_NULL
        right_ptrish = right.kind in POINTER_KINDS or right.kind == MAP_VALUE_OR_NULL
        if left_ptrish or right_ptrish:
            if op in (Op.JEQ_IMM, Op.JNE_IMM) and insn.imm == 0:
                # A null check. Live pointers are never null at runtime, but
                # both edges are explored so joins stay sound; a maybe-NULL
                # map value is *refined* by the check — that is the proof
                # obligation before dereferencing a map_lookup result.
                outcomes.update((True, False))
                taken_st = st.copy()
                for state, taken in ((taken_st, True), (st, False)):
                    if left.kind == MAP_VALUE_OR_NULL:
                        is_null = (op is Op.JEQ_IMM) == taken
                        if is_null:
                            state.set_val(lvid, AbstractVal(SCALAR, Range.const(0)))
                        else:
                            state.set_val(lvid, AbstractVal(PTR_TO_MAP_VALUE, left.rng, left.map))
                work.append((target, taken_st))
                return pc + 1
            self.fail(pc, insn, "pointer-comparison", f"pointer comparison ({insn!r})")

        op_name = op.value[:-4]
        edges = []
        for taken in (False, True):
            feasible, new_left, new_right = refine(op_name, taken, left.rng, right.rng)
            if feasible:
                outcomes.add(taken)
                edges.append((taken, new_left, new_right))

        def apply(state: _State, edge) -> None:
            __, new_left, new_right = edge
            state.set_rng(lvid, new_left)
            if rvid is not None and rvid != lvid:
                state.set_rng(rvid, new_right)

        if len(edges) == 2:
            taken_st = st.copy()
            apply(taken_st, edges[1])
            work.append((target, taken_st))
            apply(st, edges[0])
            return pc + 1
        edge = edges[0]
        apply(st, edge)
        return target if edge[0] else pc + 1

    # --------------------------------------------------------------- calls

    def _call(self, pc: int, insn: Insn, st: _State) -> int:
        entry = helpers_mod.HELPERS.get(insn.imm)
        if entry is None:
            self.fail(pc, insn, "helper-unknown", f"unknown helper id {insn.imm}")
        helper_name = entry[0]
        sig = helpers_mod.HELPER_SIGS.get(insn.imm)
        if sig is None:
            # no declared signature (test-registered helper): be conservative
            # about the result, permissive about the arguments
            result = AbstractVal(SCALAR, Range.unknown())
        else:
            result = self._check_call(pc, insn, st, helper_name, sig)
        for reg in range(1, 6):
            st.regs[reg] = None  # helper calls clobber the argument registers
        st.regs[0] = self.new_vid(st, result)
        return pc + 1

    def _check_call(self, pc: int, insn: Insn, st: _State, helper_name: str, sig) -> AbstractVal:
        resolved_maps: Dict[int, object] = {}
        for index, spec in enumerate(sig.args):
            reg = 1 + index
            if spec.kind == "any":
                continue
            vid = st.regs[reg]
            if vid is None:
                self.fail(
                    pc, insn, "uninitialized-register",
                    f"r{reg} may be used uninitialized in call to helper {helper_name} ({insn!r})",
                )
            value = st.val(vid)
            if spec.kind == "scalar":
                if value.kind not in SCALAR_KINDS:
                    self.fail(
                        pc, insn, "helper-signature",
                        f"helper {helper_name} argument {index + 1} (r{reg}) must be a scalar, "
                        f"got {value.kind}",
                    )
            elif spec.kind == "map":
                self._check_map_arg(pc, insn, helper_name, index, reg, value, spec, resolved_maps)
            elif spec.kind == "ptr":
                self._check_mem_arg(pc, insn, st, helper_name, index, reg, value, spec, resolved_maps)
            else:  # pragma: no cover - signature table is static
                raise AssertionError(f"bad arg spec kind {spec.kind}")
        if sig.ret == "map_value_or_null":
            return AbstractVal(MAP_VALUE_OR_NULL, Range.const(0), resolved_maps.get(0))
        ret_lo, ret_hi = sig.ret
        return AbstractVal(SCALAR, Range(ret_lo, ret_hi))

    def _check_map_arg(self, pc, insn, helper_name, index, reg, value, spec, resolved_maps) -> None:
        if value.kind != CONST_PTR_TO_MAP:
            self.fail(
                pc, insn, "helper-signature",
                f"helper {helper_name} argument {index + 1} (r{reg}) must be a map reference, "
                f"got {value.kind}",
            )
        bpf_map = value.map
        if spec.map_types and bpf_map.map_type not in spec.map_types:
            self.fail(
                pc, insn, "helper-signature",
                f"helper {helper_name} needs a {'/'.join(spec.map_types)} map, "
                f"got {bpf_map.map_type} ({bpf_map.name})",
            )
        if spec.byte_addressable and not getattr(bpf_map, "byte_addressable", True):
            self.fail(
                pc, insn, "helper-signature",
                f"helper {helper_name} cannot access {bpf_map.map_type} map {bpf_map.name}: "
                f"not byte-addressable",
            )
        resolved_maps[index] = bpf_map

    def _check_mem_arg(self, pc, insn, st, helper_name, index, reg, value, spec, resolved_maps) -> None:
        if value.kind == MAP_VALUE_OR_NULL:
            self.fail(
                pc, insn, "maybe-null-deref",
                f"helper {helper_name} argument {index + 1} (r{reg}) may be NULL; null-check first",
            )
        if value.kind not in POINTER_KINDS:
            self.fail(
                pc, insn, "helper-signature",
                f"helper {helper_name} argument {index + 1} (r{reg}) must be a pointer, "
                f"got {value.kind}",
            )
        if spec.size == "map_key" or spec.size == "map_value":
            bpf_map = resolved_maps.get(spec.map_from)
            if bpf_map is None:  # pragma: no cover - signature table is static
                raise AssertionError(f"{helper_name}: size {spec.size!r} needs a resolved map arg")
            size_hi = bpf_map.key_size if spec.size == "map_key" else bpf_map.value_size
        elif spec.size is not None:
            size_hi = spec.size
        else:
            size_reg = 1 + spec.size_from
            svid = st.regs[size_reg]
            if svid is None:
                self.fail(
                    pc, insn, "uninitialized-register",
                    f"r{size_reg} may be used uninitialized in call to helper {helper_name} ({insn!r})",
                )
            size_val = st.val(svid)
            if size_val.kind == PACKET_LEN:
                if value.kind == PTR_TO_PACKET and value.rng == Range.const(0):
                    return  # reads exactly [0, packet_len): in bounds by construction
                self.fail(
                    pc, insn, "helper-signature",
                    f"helper {helper_name} argument {index + 1} (r{reg}): a packet-length-sized "
                    f"buffer must point at packet offset 0",
                )
            elif size_val.kind == SCALAR:
                size_hi = size_val.rng.hi
            else:
                self.fail(
                    pc, insn, "helper-signature",
                    f"helper {helper_name} argument {1 + spec.size_from} (r{size_reg}) must be a "
                    f"scalar length, got {size_val.kind}",
                )
        low, high_end = value.rng.lo, value.rng.hi + size_hi
        if value.kind == PTR_TO_PACKET:
            limit, code, what = st.pkt_len.lo, "packet-out-of-bounds", "packet bounds"
        elif value.kind == PTR_TO_STACK:
            limit, code, what = STACK_SIZE, "stack-out-of-bounds", f"the {STACK_SIZE}-byte frame"
        else:
            limit, code, what = value.map.value_size, "map-value-out-of-bounds", (
                f"{value.map.name} value size {value.map.value_size}"
            )
        if low < 0 or high_end > limit:
            self.fail(
                pc, insn, code,
                f"helper {helper_name} argument {index + 1} (r{reg}): access [{low}, {high_end}) "
                f"not proven within {what}",
            )
        if spec.writes and value.kind == PTR_TO_STACK:
            if self._ptr_slot_in(st, low, high_end):
                self.fail(
                    pc, insn, "pointer-spill",
                    f"helper {helper_name} may overwrite a spilled pointer on the stack",
                )
            self._clobber_slots(st, low, high_end)

    def _tail_call(self, pc: int, insn: Insn, st: _State) -> int:
        vid2 = st.regs[2]
        if vid2 is None:
            self.fail(
                pc, insn, "uninitialized-register",
                f"r2 may be used uninitialized by tail call ({insn!r})",
            )
        value2 = st.val(vid2)
        if value2.kind != CONST_PTR_TO_MAP or value2.map.map_type != "prog_array":
            self.fail(
                pc, insn, "tail-call",
                f"tail call needs a prog array reference in r2, got {value2.kind}",
            )
        value3 = st.val(self.read(st, pc, insn, 3))
        if value3.kind not in SCALAR_KINDS:
            self.fail(pc, insn, "tail-call", f"tail call index (r3) must be a scalar, got {value3.kind}")
        # an empty slot falls through with registers untouched; a taken tail
        # call never returns — so the fall-through state is the only successor
        return pc + 1

    def _check_exit(self, pc: int, insn: Insn, st: _State) -> None:
        vid0 = st.regs[0]
        if vid0 is None:
            self.fail(pc, insn, "exit-r0", "exit with possibly uninitialized r0")
        value = st.val(vid0)
        if value.kind not in SCALAR_KINDS:
            self.fail(pc, insn, "pointer-leak", f"exit with {value.kind} in r0")
