"""AF_XDP-style sockets: raw frames from the XDP layer to userspace.

The paper's future work (§VIII) includes "custom packet-processing
applications in user space … a special type of socket, called AF_XDP, that
allows sending raw packets directly from the XDP layer to user space".

Model: an :class:`XskSocket` binds to a (ifindex, queue) pair and is
registered in an :class:`XskMap`; an XDP program returns the redirect
verdict via the ``redirect_xsk`` helper and the raw frame lands in the
socket's RX ring, bypassing the rest of the kernel stack. Userspace can
also transmit raw frames back out of the device.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.ebpf.maps import BpfMap, MapError


class XskError(ValueError):
    """Invalid AF_XDP socket operation."""


class XskSocket:
    """A userspace AF_XDP endpoint bound to one device queue."""

    def __init__(self, kernel, ifindex: int, queue: int = 0, ring_size: int = 2048) -> None:
        self.kernel = kernel
        self.ifindex = ifindex
        self.queue = queue
        self.ring_size = ring_size
        self.rx_ring: Deque[bytes] = deque()
        self.rx_dropped = 0
        self.tx_packets = 0

    def push_rx(self, frame: bytes) -> bool:
        """Kernel side: deliver a frame to userspace (False when ring full)."""
        if len(self.rx_ring) >= self.ring_size:
            self.rx_dropped += 1
            return False
        self.rx_ring.append(frame)
        return True

    def recv(self, budget: int = 64) -> List[bytes]:
        """Userspace side: drain up to ``budget`` frames."""
        out: List[bytes] = []
        while self.rx_ring and len(out) < budget:
            out.append(self.rx_ring.popleft())
        return out

    def send(self, frame: bytes) -> None:
        """Userspace side: transmit a raw frame out of the bound device."""
        self.tx_packets += 1
        self.kernel.devices.by_index(self.ifindex).transmit(frame)


class XskMap(BpfMap):
    """``BPF_MAP_TYPE_XSKMAP``: slot index → AF_XDP socket."""

    map_type = "xskmap"

    def __init__(self, name: str, max_entries: int = 64) -> None:
        super().__init__(name, key_size=4, value_size=4, max_entries=max_entries)
        self._sockets: Dict[int, XskSocket] = {}

    def set_socket(self, index: int, socket: XskSocket) -> None:
        if not 0 <= index < self.max_entries:
            raise MapError(f"{self.name}: index {index} out of range")
        self._sockets[index] = socket

    def get_socket(self, index: int) -> Optional[XskSocket]:
        return self._sockets.get(index)

    def lookup(self, key: bytes) -> Optional[bytes]:
        self._check_key(key)
        index = int.from_bytes(key, "little")
        return b"\x01\x00\x00\x00" if index in self._sockets else None

    def update(self, key: bytes, value: bytes) -> None:
        raise MapError("use set_socket() for xsk maps")

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        self._sockets.pop(int.from_bytes(key, "little"), None)


def bpf_redirect_xsk(env, args) -> int:
    """(xskmap, slot, fallback_verdict) → XDP_REDIRECT_XSK or the fallback.

    On success the hook layer pushes the (possibly rewritten) frame into the
    socket's RX ring instead of driver TX.
    """
    from repro.ebpf.helpers import HelperError, _as_int, _as_map

    env.mark_uncacheable()  # per-packet socket delivery; never replay from cache
    xsk_map = _as_map(args[0], "redirect_xsk")
    if not isinstance(xsk_map, XskMap):
        raise HelperError("redirect_xsk needs an xskmap")
    socket = xsk_map.get_socket(_as_int(args[1], "redirect_xsk slot"))
    if socket is None:
        return _as_int(args[2], "redirect_xsk fallback")
    env.kernel.costs_charge("ebpf_map_lookup")
    env.xsk_socket = socket
    return XDP_REDIRECT_XSK


# a dedicated verdict the XDP attachment understands (not part of the
# kernel's enum; consumed entirely inside the eBPF layer)
XDP_REDIRECT_XSK = 64
