"""The static verifier.

A simplified analogue of the kernel's eBPF verifier, enforcing the
properties that make loading synthesized code into the kernel safe:

- bounded program size and **no backward jumps** (classic eBPF's
  termination guarantee — synthesized FPMs are loop-free; iteration lives
  inside helpers, as with real ``bpf_fib_lookup``);
- all jump targets in range, no falling off the end;
- loads/stores use valid access sizes; no writes to the frame pointer R10;
  stack accesses stay within the 512-byte frame;
- helper ids and map references resolve;
- no register is read before it is written (forward dataflow with
  intersection at join points);
- R0 is initialized at every EXIT.

Memory bounds that the real verifier proves via range tracking are enforced
at runtime by the VM's fat pointers (a documented simplification; the
failure mode — program abort, packet drop — matches ``XDP_ABORTED``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    MEM_SIZES,
    NUM_REGS,
    Insn,
    Op,
    R10,
)
from repro.ebpf.program import Program
from repro.ebpf.vm import STACK_SIZE
from repro.testing import faults

MAX_INSNS = 4096


class VerifierError(Exception):
    """Program rejected."""


def verify(program: Program, entry_regs: Tuple[int, ...] = (1, 2, 3)) -> None:
    """Statically check ``program``; raises :class:`VerifierError`."""
    faults.fire("verify", program.name)
    insns = program.insns
    if len(insns) > MAX_INSNS:
        raise VerifierError(f"{program.name}: too many instructions ({len(insns)} > {MAX_INSNS})")

    for pc, insn in enumerate(insns):
        _check_structural(program, pc, insn)

    last = insns[-1]
    if last.op is not Op.EXIT and last.op is not Op.JA:
        raise VerifierError(f"{program.name}: control can fall off the end (last insn is {last.op.value})")

    _check_init_flow(program, entry_regs)


def _check_structural(program: Program, pc: int, insn: Insn) -> None:
    name = program.name
    if not 0 <= insn.dst < NUM_REGS or not 0 <= insn.src < NUM_REGS:
        raise VerifierError(f"{name}@{pc}: bad register")

    writes_dst = insn.op in ALU_IMM_OPS or insn.op in ALU_REG_OPS or insn.op in (
        Op.MOV_IMM,
        Op.MOV_REG,
        Op.LDX,
        Op.NEG,
        Op.LD_MAP,
    )
    if writes_dst and insn.dst == R10:
        raise VerifierError(f"{name}@{pc}: write to frame pointer r10")

    if insn.op in (Op.LDX, Op.STX):
        if insn.imm not in MEM_SIZES:
            raise VerifierError(f"{name}@{pc}: bad access size {insn.imm}")
    if insn.op is Op.ST_IMM and insn.src not in MEM_SIZES:
        raise VerifierError(f"{name}@{pc}: bad access size {insn.src}")

    # static stack bounds for frame-pointer-relative access
    if insn.op is Op.LDX and insn.src == R10:
        _check_stack_off(name, pc, insn.off, insn.imm)
    if insn.op in (Op.STX, Op.ST_IMM) and insn.dst == R10:
        size = insn.imm if insn.op is Op.STX else insn.src
        _check_stack_off(name, pc, insn.off, size)

    if insn.op is Op.JA or insn.op in JMP_IMM_OPS or insn.op in JMP_REG_OPS:
        if insn.off < 0:
            raise VerifierError(f"{name}@{pc}: backward jump (off={insn.off})")
        target = pc + 1 + insn.off
        if target >= len(program.insns) or (insn.off == 0 and insn.op is Op.JA):
            if target >= len(program.insns):
                raise VerifierError(f"{name}@{pc}: jump target {target} out of range")

    if insn.op is Op.CALL and insn.imm not in HELPERS:
        raise VerifierError(f"{name}@{pc}: unknown helper id {insn.imm}")

    if insn.op is Op.LD_MAP and not 0 <= insn.imm < len(program.maps):
        raise VerifierError(f"{name}@{pc}: map index {insn.imm} unresolved")


def _check_stack_off(name: str, pc: int, off: int, size: int) -> None:
    if off >= 0 or off + size > 0 or off < -STACK_SIZE:
        raise VerifierError(f"{name}@{pc}: stack access [{off}, {off + size}) outside [-{STACK_SIZE}, 0)")


def _check_init_flow(program: Program, entry_regs: Tuple[int, ...]) -> None:
    """Forward may-be-uninitialized analysis (loop-free, so one DAG pass)."""
    insns = program.insns
    name = program.name
    entry: FrozenSet[int] = frozenset(entry_regs) | {R10}
    state: Dict[int, Optional[FrozenSet[int]]] = {pc: None for pc in range(len(insns))}
    state[0] = entry

    for pc in range(len(insns)):
        current = state[pc]
        if current is None:
            continue  # unreachable
        insn = insns[pc]
        out = _transfer(name, pc, insn, current)
        if out is None:
            continue  # EXIT: no successors
        for successor in _successors(pc, insn, len(insns)):
            previous = state[successor]
            state[successor] = out if previous is None else frozenset(previous & out)


def _transfer(name: str, pc: int, insn: Insn, initialized: FrozenSet[int]) -> Optional[FrozenSet[int]]:
    op = insn.op

    def need(reg: int) -> None:
        if reg not in initialized:
            raise VerifierError(f"{name}@{pc}: r{reg} may be used uninitialized ({insn!r})")

    reads: List[int] = []
    if op in ALU_IMM_OPS or op is Op.NEG:
        reads = [insn.dst]
    elif op in ALU_REG_OPS:
        reads = [insn.dst, insn.src]
    elif op is Op.MOV_REG:
        reads = [insn.src]
    elif op is Op.LDX:
        reads = [insn.src]
    elif op is Op.STX:
        reads = [insn.dst, insn.src]
    elif op is Op.ST_IMM:
        reads = [insn.dst]
    elif op in JMP_IMM_OPS:
        reads = [insn.dst]
    elif op in JMP_REG_OPS:
        reads = [insn.dst, insn.src]
    elif op is Op.CALL:
        # conservatively require the helper's declared arity? unknown; the
        # VM validates argument kinds — here we only require r1 for helpers
        # that take arguments (all but ktime_get_ns).
        pass
    elif op is Op.TAIL_CALL:
        reads = [2, 3]
    elif op is Op.EXIT:
        need(0)
        return None
    for reg in reads:
        need(reg)

    out = set(initialized)
    if op in ALU_IMM_OPS or op in ALU_REG_OPS or op in (Op.MOV_IMM, Op.MOV_REG, Op.LDX, Op.NEG, Op.LD_MAP):
        out.add(insn.dst)
    elif op is Op.CALL:
        out.add(0)
        for reg in (1, 2, 3, 4, 5):
            out.discard(reg)
    return frozenset(out)


def _successors(pc: int, insn: Insn, length: int) -> List[int]:
    if insn.op is Op.EXIT:
        return []
    if insn.op is Op.JA:
        return [pc + 1 + insn.off]
    if insn.op in JMP_IMM_OPS or insn.op in JMP_REG_OPS:
        return [pc + 1, pc + 1 + insn.off]
    return [pc + 1]
