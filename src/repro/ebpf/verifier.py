"""The static verifier.

A simplified analogue of the kernel's eBPF verifier, in two passes:

1. **Structural** (:func:`check_structure`): bounded program size, no
   backward jumps (the classic termination guarantee — synthesized FPMs are
   loop-free; iteration lives inside helpers, as with real
   ``bpf_fib_lookup``), jump targets in range, no falling off the end,
   valid access sizes, no writes to the frame pointer R10, helper ids and
   map references resolve.

2. **Range tracking** (:mod:`repro.ebpf.analysis.interp`): a path-sensitive
   abstract interpretation that types every register (scalar, packet
   pointer, packet length, stack pointer, map reference, map value) and
   tracks u64 ranges refined at conditional branches. It proves packet and
   map-value accesses in bounds, models fat-pointer spill/fill through the
   stack, null-checks maybe-NULL map values, and enforces the declared
   helper signatures in ``HELPER_SIGS`` — so any accepted program can never
   raise a memory error in the VM. The fat pointers at runtime are
   defense-in-depth, not the safety mechanism. See ``docs/verifier.md``.

The entry ABI defaults to the hook convention (r1 = packet pointer,
r2 = packet length, r3 = ifindex scalar); pass ``entry_kinds`` to verify
programs with a different ABI, e.g. pure-scalar arithmetic kernels.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.analysis.interp import interpret
from repro.ebpf.helpers import HELPERS
from repro.ebpf.isa import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    JMP_IMM_OPS,
    JMP_REG_OPS,
    MEM_SIZES,
    NUM_REGS,
    Insn,
    Op,
    R10,
)
from repro.ebpf.program import Program
from repro.ebpf.vm import STACK_SIZE
from repro.testing import faults

__all__ = ["MAX_INSNS", "VerifierError", "check_structure", "verify"]

MAX_INSNS = 4096


def verify(
    program: Program,
    entry_regs: Tuple[int, ...] = (1, 2, 3),
    entry_kinds: Optional[Tuple[str, ...]] = None,
) -> None:
    """Statically check ``program``; raises :class:`VerifierError`."""
    faults.fire("verify", program.name)
    check_structure(program)
    interpret(program, entry_regs, entry_kinds)


def check_structure(program: Program) -> None:
    """The structural pass alone (shared with the lint driver)."""
    insns = program.insns
    if len(insns) > MAX_INSNS:
        raise VerifierError(
            f"{program.name}: too many instructions ({len(insns)} > {MAX_INSNS})",
            program=program.name,
            code="too-many-insns",
        )

    for pc, insn in enumerate(insns):
        _check_structural(program, pc, insn)

    last = insns[-1]
    if last.op is not Op.EXIT and last.op is not Op.JA:
        raise VerifierError(
            f"{program.name}: control can fall off the end (last insn is {last.op.value})",
            program=program.name,
            pc=len(insns) - 1,
            code="fall-off-end",
            insn=repr(last),
        )


def _check_structural(program: Program, pc: int, insn: Insn) -> None:
    name = program.name

    def fail(code: str, message: str) -> None:
        raise VerifierError(
            f"{name}@{pc}: {message}", program=name, pc=pc, code=code, insn=repr(insn)
        )

    if not 0 <= insn.dst < NUM_REGS or not 0 <= insn.src < NUM_REGS:
        fail("bad-register", "bad register")

    writes_dst = insn.op in ALU_IMM_OPS or insn.op in ALU_REG_OPS or insn.op in (
        Op.MOV_IMM,
        Op.MOV_REG,
        Op.LDX,
        Op.NEG,
        Op.LD_MAP,
    )
    if writes_dst and insn.dst == R10:
        fail("frame-pointer-write", "write to frame pointer r10")

    if insn.op in (Op.LDX, Op.STX):
        if insn.imm not in MEM_SIZES:
            fail("bad-access-size", f"bad access size {insn.imm}")
    if insn.op is Op.ST_IMM and insn.src not in MEM_SIZES:
        fail("bad-access-size", f"bad access size {insn.src}")

    # static stack bounds for frame-pointer-relative access
    if insn.op is Op.LDX and insn.src == R10:
        _check_stack_off(name, pc, insn, insn.off, insn.imm)
    if insn.op in (Op.STX, Op.ST_IMM) and insn.dst == R10:
        size = insn.imm if insn.op is Op.STX else insn.src
        _check_stack_off(name, pc, insn, insn.off, size)

    if insn.op is Op.JA or insn.op in JMP_IMM_OPS or insn.op in JMP_REG_OPS:
        if insn.off < 0:
            fail("backward-jump", f"backward jump (off={insn.off})")
        # A JA with off == 0 is a harmless no-op hop to pc+1 (the historical
        # clause singling it out was dead code: only out-of-range targets
        # are rejected).
        target = pc + 1 + insn.off
        if target >= len(program.insns):
            fail("jump-out-of-range", f"jump target {target} out of range")

    if insn.op is Op.CALL and insn.imm not in HELPERS:
        fail("helper-unknown", f"unknown helper id {insn.imm}")

    if insn.op is Op.LD_MAP and not 0 <= insn.imm < len(program.maps):
        fail("map-unresolved", f"map index {insn.imm} unresolved")


def _check_stack_off(name: str, pc: int, insn: Insn, off: int, size: int) -> None:
    if off >= 0 or off + size > 0 or off < -STACK_SIZE:
        raise VerifierError(
            f"{name}@{pc}: stack access [{off}, {off + size}) outside [-{STACK_SIZE}, 0)",
            program=name,
            pc=pc,
            code="stack-out-of-bounds",
            insn=repr(insn),
        )
