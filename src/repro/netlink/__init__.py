"""Netlink substrate: the management-plane protocol between tools and kernel.

LinuxFP's transparency claim rests on consuming the *same* management API
that iproute2, brctl, iptables, and Kubernetes CNI plugins use: netlink.
This package implements a faithful miniature of that protocol:

- :mod:`repro.netlink.codec` — 4-byte-aligned TLV attribute encoding and a
  schema-driven value codec (u8/u16/u32/u64/string/ip4/mac/nested/list).
- :mod:`repro.netlink.messages` — message-type constants (``RTM_*`` plus the
  netfilter extensions), flags, and the :class:`NetlinkMsg` container with
  full binary round-tripping.
- :mod:`repro.netlink.bus` — the kernel-side bus: request/reply (including
  ``NLM_F_DUMP`` multi-part replies) and multicast notification groups, which
  is how the LinuxFP controller observes configuration changes.

All management tools in :mod:`repro.tools` and the LinuxFP controller in
:mod:`repro.core` speak exclusively through this layer — they never touch
kernel objects directly.
"""

from repro.netlink.messages import NetlinkError, NetlinkMsg
from repro.netlink.bus import NetlinkBus, NetlinkSocket

__all__ = ["NetlinkMsg", "NetlinkError", "NetlinkBus", "NetlinkSocket"]
