"""The kernel-side netlink bus: request/reply plus multicast notifications.

The bus lives inside a simulated kernel. Kernel subsystems register
*handlers* per message type; userspace components (management tools, the
LinuxFP controller, CNI plugins) open :class:`NetlinkSocket`\\ s to send
requests and to subscribe to multicast groups.

Faithfulness notes:

- Requests and replies cross the bus **as bytes** — both sides run the real
  codec, so schema bugs surface exactly like malformed netlink would.
- Dump requests (``NLM_F_DUMP``) produce multi-part replies terminated by
  ``NLMSG_DONE``.
- Notifications carry the same message types as the corresponding requests
  (``RTM_NEWROUTE`` both configures a route and announces one), as in Linux.
- Sockets have a **bounded** notification queue. Netlink is lossy but never
  *silently* lossy: when the kernel cannot deliver (buffer full, or a
  delivery fault is injected), the socket's overrun flag is raised — the
  ``ENOBUFS`` a real recv would see — and the subscriber is expected to
  resynchronise with a full dump.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.netlink.messages import (
    ALL_GROUPS,
    NLM_F_DUMP,
    NetlinkError,
    NetlinkMsg,
    ack_msg,
    done_msg,
    error_msg,
)
from repro.testing import faults

#: Default per-socket notification queue depth (a stand-in for the default
#: ``SO_RCVBUF`` of a real netlink socket).
DEFAULT_MAX_PENDING = 4096

# A kernel handler takes the request message and returns reply messages
# (excluding the trailing DONE for dumps, which the bus appends).
Handler = Callable[[NetlinkMsg], List[NetlinkMsg]]


class NetlinkBus:
    """Message router between userspace sockets and kernel subsystems."""

    def __init__(self) -> None:
        self._handlers: Dict[int, Handler] = {}
        self._sockets: List["NetlinkSocket"] = []
        self._next_pid = 1

    def register_handler(self, msg_type: int, handler: Handler) -> None:
        if msg_type in self._handlers:
            raise ValueError(f"handler already registered for type {msg_type}")
        self._handlers[msg_type] = handler

    def open_socket(self, max_pending: int = DEFAULT_MAX_PENDING) -> "NetlinkSocket":
        sock = NetlinkSocket(self, pid=self._next_pid, max_pending=max_pending)
        self._next_pid += 1
        self._sockets.append(sock)
        return sock

    def close_socket(self, sock: "NetlinkSocket") -> None:
        if sock in self._sockets:
            self._sockets.remove(sock)

    def dispatch(self, raw: bytes) -> bytes:
        """Handle one request (as bytes) and return the reply byte stream."""
        request = NetlinkMsg.from_bytes(raw)
        handler = self._handlers.get(request.msg_type)
        if handler is None:
            return error_msg(-95, f"unsupported message type {request.type_name}", request.seq).to_bytes()
        try:
            replies = handler(request)
        except NetlinkError as exc:
            return error_msg(exc.code, exc.message, request.seq).to_bytes()
        if request.flags & NLM_F_DUMP:
            replies = list(replies) + [done_msg(request.seq)]
        elif not replies:
            replies = [ack_msg(request.seq)]
        for reply in replies:
            reply.seq = request.seq
        return b"".join(reply.to_bytes() for reply in replies)

    def notify(self, group: str, msg: NetlinkMsg) -> None:
        """Multicast a notification to every socket subscribed to ``group``."""
        if group not in ALL_GROUPS:
            raise ValueError(f"unknown multicast group {group!r}")
        raw = msg.to_bytes()
        for sock in self._sockets:
            if group in sock.groups:
                sock._deliver(raw)


class NetlinkSocket:
    """Userspace endpoint: synchronous requests plus a notification queue."""

    def __init__(self, bus: NetlinkBus, pid: int, max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self._bus = bus
        self.pid = pid
        self.max_pending = max_pending
        self.groups: set = set()
        self._queue: Deque[bytes] = deque()
        self._seq = 0
        self.listeners: List[Callable[[NetlinkMsg], None]] = []
        #: Set when a notification could not be delivered (queue overflow or
        #: injected delivery fault) — the ENOBUFS condition. Sticky until the
        #: subscriber acknowledges it via :meth:`clear_overrun`.
        self.overrun = False
        self.overruns = 0

    def subscribe(self, *groups: str) -> None:
        for group in groups:
            if group not in ALL_GROUPS:
                raise ValueError(f"unknown multicast group {group!r}")
            self.groups.add(group)

    def unsubscribe(self, *groups: str) -> None:
        for group in groups:
            self.groups.discard(group)

    def request(self, msg: NetlinkMsg) -> List[NetlinkMsg]:
        """Send a request; return replies. Raises :class:`NetlinkError` on error."""
        self._seq += 1
        msg.seq = self._seq
        msg.pid = self.pid
        raw_reply = self._bus.dispatch(msg.to_bytes())
        replies = NetlinkMsg.parse_stream(raw_reply)
        out: List[NetlinkMsg] = []
        for reply in replies:
            reply.raise_for_error()
            if reply.is_error():  # a zero-code ACK
                continue
            if reply.msg_type == 3:  # NLMSG_DONE
                continue
            out.append(reply)
        return out

    def add_listener(self, callback: Callable[[NetlinkMsg], None]) -> None:
        """Register a push callback invoked for each delivered notification."""
        self.listeners.append(callback)

    def recv(self) -> Optional[NetlinkMsg]:
        """Pop the next queued notification, or None when the queue is empty."""
        if not self._queue:
            return None
        return NetlinkMsg.from_bytes(self._queue.popleft())

    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> List[NetlinkMsg]:
        out = []
        while self._queue:
            out.append(NetlinkMsg.from_bytes(self._queue.popleft()))
        return out

    def close(self) -> None:
        self._bus.close_socket(self)

    def clear_overrun(self) -> None:
        """Acknowledge the overrun (the subscriber is about to resync)."""
        self.overrun = False

    def _note_overrun(self) -> None:
        self.overrun = True
        self.overruns += 1

    def _deliver(self, raw: bytes) -> None:
        copies = 1
        if faults.active():
            action = faults.decide("netlink_deliver", f"pid{self.pid}")
            if action == "drop":
                # The message is lost, but never silently: the overrun flag
                # is the ENOBUFS the subscriber's next recv would report.
                self._note_overrun()
                return
            if action == "dup":
                copies = 2
        for _ in range(copies):
            if self.listeners:
                msg = NetlinkMsg.from_bytes(raw)
                for listener in self.listeners:
                    listener(msg)
            elif len(self._queue) >= self.max_pending:
                self._note_overrun()
            else:
                self._queue.append(raw)
