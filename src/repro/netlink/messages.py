"""Netlink message types, flags, multicast groups, and binary encoding.

This mirrors the rtnetlink/nfnetlink families the LinuxFP controller listens
to. Message payloads are schema-encoded TLV attribute sets
(:mod:`repro.netlink.codec`); every message round-trips through bytes, which
is what travels over :class:`repro.netlink.bus.NetlinkBus`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List
from repro.netlink.codec import AttrSchema, CodecError, schema

# --- message types (values chosen to mirror rtnetlink where it has them) ---
NLMSG_ERROR = 0x2
NLMSG_DONE = 0x3

RTM_NEWLINK = 16
RTM_DELLINK = 17
RTM_GETLINK = 18
RTM_SETLINK = 19
RTM_NEWADDR = 20
RTM_DELADDR = 21
RTM_GETADDR = 22
RTM_NEWROUTE = 24
RTM_DELROUTE = 25
RTM_GETROUTE = 26
RTM_NEWNEIGH = 28
RTM_DELNEIGH = 29
RTM_GETNEIGH = 30
# bridge FDB entries (real rtnetlink reuses RTM_*NEIGH with AF_BRIDGE; we
# give them their own type ids for clarity)
RTM_NEWFDB = 40
RTM_DELFDB = 41
RTM_GETFDB = 42
# netfilter extensions (nfnetlink subsystem in real Linux)
NFT_NEWRULE = 64
NFT_DELRULE = 65
NFT_GETRULE = 66
NFT_SETPOLICY = 67
IPSET_NEWSET = 72
IPSET_DELSET = 73
IPSET_GETSET = 74
IPSET_ADDENTRY = 75
IPSET_DELENTRY = 76
# ipvs (genetlink IPVS family in real Linux)
IPVS_NEWSERVICE = 80
IPVS_DELSERVICE = 81
IPVS_GETSERVICE = 82
IPVS_NEWDEST = 83
IPVS_DELDEST = 84
# sysctl change notification (real Linux exposes sysctl via procfs; we carry
# the notification on the bus so the controller has one event source —
# documented divergence, see DESIGN.md)
SYSCTL_SET = 96
SYSCTL_GET = 97
# CPU hotplug notifications (real Linux announces these through the cpuhp
# state machine + udev, not netlink; carried on the bus so the controller
# keeps a single event source — same documented divergence as sysctl)
CPU_OFFLINE = 104
CPU_ONLINE = 105

# --- flags ---
NLM_F_REQUEST = 0x01
NLM_F_MULTI = 0x02
NLM_F_ACK = 0x04
NLM_F_DUMP = 0x300
NLM_F_CREATE = 0x400
NLM_F_EXCL = 0x200
NLM_F_REPLACE = 0x100

# --- multicast groups ---
RTNLGRP_LINK = "link"
RTNLGRP_IPV4_IFADDR = "ifaddr"
RTNLGRP_IPV4_ROUTE = "route"
RTNLGRP_NEIGH = "neigh"
RTNLGRP_FDB = "fdb"
NFNLGRP_IPTABLES = "iptables"
NFNLGRP_IPSET = "ipset"
GRP_IPVS = "ipvs"
GRP_SYSCTL = "sysctl"
GRP_CPU = "cpu"

ALL_GROUPS = (
    RTNLGRP_LINK,
    RTNLGRP_IPV4_IFADDR,
    RTNLGRP_IPV4_ROUTE,
    RTNLGRP_NEIGH,
    RTNLGRP_FDB,
    NFNLGRP_IPTABLES,
    NFNLGRP_IPSET,
    GRP_IPVS,
    GRP_SYSCTL,
    GRP_CPU,
)

# --- attribute schemas per family ---

LINKINFO_BRIDGE = schema(
    "linkinfo_bridge",
    stp_state=(1, "u8"),
    vlan_filtering=(2, "u8"),
    ageing_time=(3, "u32"),
)

LINKINFO_VXLAN = schema(
    "linkinfo_vxlan",
    vni=(1, "u32"),
    local=(2, "ip4"),
    port=(3, "u16"),
    underlay_ifindex=(4, "u32"),
)

LINKINFO_VETH = schema(
    "linkinfo_veth",
    peer_ifindex=(1, "u32"),
)

LINK_SCHEMA = schema(
    "link",
    ifindex=(1, "u32"),
    ifname=(2, "string"),
    kind=(3, "string"),
    operstate=(4, "u8"),  # 1 = up, 0 = down
    address=(5, "mac"),
    master=(6, "u32"),  # bridge ifindex when enslaved
    mtu=(7, "u32"),
    num_queues=(8, "u32"),
    bridge=(9, "nested", LINKINFO_BRIDGE),
    vxlan=(10, "nested", LINKINFO_VXLAN),
    veth=(11, "nested", LINKINFO_VETH),
    netns=(12, "string"),
)

ADDR_SCHEMA = schema(
    "addr",
    ifindex=(1, "u32"),
    address=(2, "ip4"),
    prefixlen=(3, "u8"),
)

ROUTE_SCHEMA = schema(
    "route",
    dst=(1, "ip4"),
    dst_len=(2, "u8"),
    gateway=(3, "ip4"),
    oif=(4, "u32"),
    table=(5, "u32"),
    scope=(6, "u8"),  # 0 = universe (via gateway), 253 = link (connected)
    metric=(7, "u32"),
    nhg=(8, "u32"),  # multipath: the nexthop group serving this route
    replace=(9, "flag"),  # NLM_F_REPLACE-style request
    nhg_policy=(10, "string"),  # group announcements: hash policy
    nhg_buckets=(11, "u32"),  # group announcements: bucket-table size
)

NEIGH_SCHEMA = schema(
    "neigh",
    ifindex=(1, "u32"),
    dst=(2, "ip4"),
    lladdr=(3, "mac"),
    state=(4, "u16"),
)

FDB_SCHEMA = schema(
    "fdb",
    ifindex=(1, "u32"),  # bridge port ifindex
    master=(2, "u32"),  # bridge ifindex
    lladdr=(3, "mac"),
    vlan=(4, "u16"),
    state=(5, "u16"),
    dst=(6, "ip4"),  # remote vtep IP for vxlan fdb entries (NDA_DST)
)

RULE_SCHEMA = schema(
    "nft_rule",
    table=(1, "string"),
    chain=(2, "string"),
    handle=(3, "u32"),
    src=(4, "ip4"),
    src_len=(5, "u8"),
    dst=(6, "ip4"),
    dst_len=(7, "u8"),
    proto=(8, "u8"),
    sport=(9, "u16"),
    dport=(10, "u16"),
    in_iface=(11, "string"),
    out_iface=(12, "string"),
    target=(13, "string"),  # ACCEPT | DROP | RETURN
    match_set=(14, "string"),  # ipset name
    set_dir=(15, "string"),  # src | dst
    policy=(16, "string"),
    ct_state=(17, "string"),  # NEW | ESTABLISHED (stateful match)
)

IPSET_ENTRY = schema(
    "ipset_entry",
    ip=(1, "ip4"),
    prefixlen=(2, "u8"),
)

IPSET_SCHEMA = schema(
    "ipset",
    name=(1, "string"),
    set_type=(2, "string"),  # hash:ip | hash:net
    entries=(3, "list", IPSET_ENTRY),
)

IPVS_SCHEMA = schema(
    "ipvs",
    vip=(1, "ip4"),
    vport=(2, "u16"),
    proto=(3, "u8"),
    scheduler=(4, "string"),
    rs=(5, "ip4"),
    rport=(6, "u16"),
    weight=(7, "u32"),
)

SYSCTL_SCHEMA = schema(
    "sysctl",
    name=(1, "string"),
    value=(2, "string"),
)

CPU_SCHEMA = schema(
    "cpu",
    cpu=(1, "u32"),
    num_online=(2, "u32"),
)

ERROR_SCHEMA = schema(
    "error",
    code=(1, "s32"),
    message=(2, "string"),
)

DONE_SCHEMA = schema("done")

SCHEMA_BY_TYPE: Dict[int, AttrSchema] = {
    NLMSG_ERROR: ERROR_SCHEMA,
    NLMSG_DONE: DONE_SCHEMA,
    RTM_NEWLINK: LINK_SCHEMA,
    RTM_DELLINK: LINK_SCHEMA,
    RTM_GETLINK: LINK_SCHEMA,
    RTM_SETLINK: LINK_SCHEMA,
    RTM_NEWADDR: ADDR_SCHEMA,
    RTM_DELADDR: ADDR_SCHEMA,
    RTM_GETADDR: ADDR_SCHEMA,
    RTM_NEWROUTE: ROUTE_SCHEMA,
    RTM_DELROUTE: ROUTE_SCHEMA,
    RTM_GETROUTE: ROUTE_SCHEMA,
    RTM_NEWNEIGH: NEIGH_SCHEMA,
    RTM_DELNEIGH: NEIGH_SCHEMA,
    RTM_GETNEIGH: NEIGH_SCHEMA,
    RTM_NEWFDB: FDB_SCHEMA,
    RTM_DELFDB: FDB_SCHEMA,
    RTM_GETFDB: FDB_SCHEMA,
    NFT_NEWRULE: RULE_SCHEMA,
    NFT_DELRULE: RULE_SCHEMA,
    NFT_GETRULE: RULE_SCHEMA,
    NFT_SETPOLICY: RULE_SCHEMA,
    IPSET_NEWSET: IPSET_SCHEMA,
    IPSET_DELSET: IPSET_SCHEMA,
    IPSET_GETSET: IPSET_SCHEMA,
    IPSET_ADDENTRY: IPSET_SCHEMA,
    IPSET_DELENTRY: IPSET_SCHEMA,
    IPVS_NEWSERVICE: IPVS_SCHEMA,
    IPVS_DELSERVICE: IPVS_SCHEMA,
    IPVS_GETSERVICE: IPVS_SCHEMA,
    IPVS_NEWDEST: IPVS_SCHEMA,
    IPVS_DELDEST: IPVS_SCHEMA,
    SYSCTL_SET: SYSCTL_SCHEMA,
    SYSCTL_GET: SYSCTL_SCHEMA,
    CPU_OFFLINE: CPU_SCHEMA,
    CPU_ONLINE: CPU_SCHEMA,
}

TYPE_NAMES = {
    value: name
    for name, value in globals().items()
    if name.startswith(("RTM_", "NFT_", "IPSET_", "IPVS_", "SYSCTL_", "CPU_", "NLMSG_")) and isinstance(value, int)
}

NLMSG_HDR = struct.Struct("<IHHII")  # length, type, flags, seq, pid


class NetlinkError(Exception):
    """An NLMSG_ERROR reply, raised on the requesting side."""

    def __init__(self, code: int, message: str = "") -> None:
        super().__init__(f"netlink error {code}: {message}")
        self.code = code
        self.message = message


@dataclass
class NetlinkMsg:
    """One netlink message: header fields plus a typed attribute dict."""

    msg_type: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    flags: int = NLM_F_REQUEST
    seq: int = 0
    pid: int = 0

    def to_bytes(self) -> bytes:
        msg_schema = SCHEMA_BY_TYPE.get(self.msg_type)
        if msg_schema is None:
            raise CodecError(f"no schema for message type {self.msg_type}")
        payload = msg_schema.encode(self.attrs)
        return NLMSG_HDR.pack(NLMSG_HDR.size + len(payload), self.msg_type, self.flags, self.seq, self.pid) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "NetlinkMsg":
        msgs = cls.parse_stream(data)
        if len(msgs) != 1:
            raise CodecError(f"expected exactly one message, got {len(msgs)}")
        return msgs[0]

    @classmethod
    def parse_stream(cls, data: bytes) -> List["NetlinkMsg"]:
        """Parse a byte stream possibly containing several messages."""
        msgs: List[NetlinkMsg] = []
        offset = 0
        while offset < len(data):
            if len(data) - offset < NLMSG_HDR.size:
                raise CodecError("truncated netlink header")
            length, msg_type, flags, seq, pid = NLMSG_HDR.unpack_from(data, offset)
            if length < NLMSG_HDR.size or offset + length > len(data):
                raise CodecError(f"bad netlink message length {length}")
            msg_schema = SCHEMA_BY_TYPE.get(msg_type)
            if msg_schema is None:
                raise CodecError(f"unknown message type {msg_type}")
            payload = data[offset + NLMSG_HDR.size : offset + length]
            msgs.append(cls(msg_type, msg_schema.decode(payload), flags, seq, pid))
            offset += length
        return msgs

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.msg_type, str(self.msg_type))

    def is_error(self) -> bool:
        return self.msg_type == NLMSG_ERROR

    def raise_for_error(self) -> "NetlinkMsg":
        if self.is_error() and self.attrs.get("code", 0) != 0:
            raise NetlinkError(self.attrs.get("code", -1), self.attrs.get("message", ""))
        return self

    def __repr__(self) -> str:
        return f"NetlinkMsg({self.type_name}, {self.attrs})"


def error_msg(code: int, message: str = "", seq: int = 0) -> NetlinkMsg:
    return NetlinkMsg(NLMSG_ERROR, {"code": code, "message": message}, flags=0, seq=seq)


def ack_msg(seq: int = 0) -> NetlinkMsg:
    return NetlinkMsg(NLMSG_ERROR, {"code": 0, "message": ""}, flags=0, seq=seq)


def done_msg(seq: int = 0) -> NetlinkMsg:
    return NetlinkMsg(NLMSG_DONE, {}, flags=NLM_F_MULTI, seq=seq)
