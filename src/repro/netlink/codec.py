"""TLV attribute codec for netlink messages.

Netlink attributes are encoded as ``struct nlattr``: a 4-byte header
(u16 length including header, u16 type) followed by the payload, padded to a
4-byte boundary. Attribute *values* are typed per-message by a schema
(:class:`AttrSchema`), mirroring how real netlink families document their
attribute spaces (``IFLA_*``, ``RTA_*``, …).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.netsim.addresses import IPv4Addr, MacAddr

NLATTR_HDR = struct.Struct("<HH")
ALIGN = 4


class CodecError(ValueError):
    """Raised on malformed attribute encodings or schema violations."""


def _pad(length: int) -> int:
    return (ALIGN - (length % ALIGN)) % ALIGN


def pack_attr(attr_type: int, payload: bytes) -> bytes:
    """Encode one nlattr TLV (with padding)."""
    length = NLATTR_HDR.size + len(payload)
    if length > 0xFFFF:
        raise CodecError(f"attribute payload too large: {len(payload)}")
    return NLATTR_HDR.pack(length, attr_type) + payload + b"\x00" * _pad(len(payload))


def unpack_attrs(data: bytes) -> List[Tuple[int, bytes]]:
    """Decode a run of nlattr TLVs into (type, payload) pairs."""
    attrs: List[Tuple[int, bytes]] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < NLATTR_HDR.size:
            raise CodecError("truncated attribute header")
        length, attr_type = NLATTR_HDR.unpack_from(data, offset)
        if length < NLATTR_HDR.size or offset + length > len(data):
            raise CodecError(f"bad attribute length {length} at offset {offset}")
        payload = data[offset + NLATTR_HDR.size : offset + length]
        attrs.append((attr_type, payload))
        offset += length + _pad(length - NLATTR_HDR.size)
    return attrs


@dataclass(frozen=True)
class AttrDef:
    """One attribute in a message schema."""

    attr_id: int
    kind: str  # u8|u16|u32|u64|s32|flag|string|bytes|ip4|mac|nested|list

    def __post_init__(self) -> None:
        if self.kind not in _VALUE_CODECS and self.kind not in ("nested", "list"):
            raise CodecError(f"unknown attr kind {self.kind!r}")


def _enc_uint(width: int):
    def enc(value: Any) -> bytes:
        if not isinstance(value, int) or value < 0:
            raise CodecError(f"expected unsigned int, got {value!r}")
        return value.to_bytes(width, "little")

    return enc


def _dec_uint(width: int):
    def dec(payload: bytes) -> int:
        if len(payload) != width:
            raise CodecError(f"expected {width}-byte integer, got {len(payload)} bytes")
        return int.from_bytes(payload, "little")

    return dec


_VALUE_CODECS = {
    "u8": (_enc_uint(1), _dec_uint(1)),
    "u16": (_enc_uint(2), _dec_uint(2)),
    "u32": (_enc_uint(4), _dec_uint(4)),
    "u64": (_enc_uint(8), _dec_uint(8)),
    "s32": (
        lambda v: int(v).to_bytes(4, "little", signed=True),
        lambda p: int.from_bytes(p, "little", signed=True),
    ),
    "flag": (lambda v: b"" if v else b"", lambda p: True),
    "string": (
        lambda v: str(v).encode() + b"\x00",
        lambda p: p.rstrip(b"\x00").decode(),
    ),
    "bytes": (lambda v: bytes(v), lambda p: p),
    "ip4": (
        lambda v: (v if isinstance(v, IPv4Addr) else IPv4Addr.parse(str(v))).to_bytes(),
        lambda p: IPv4Addr.from_bytes(p),
    ),
    "mac": (
        lambda v: (v if isinstance(v, MacAddr) else MacAddr.parse(str(v))).to_bytes(),
        lambda p: MacAddr.from_bytes(p),
    ),
}


class AttrSchema:
    """A named attribute space: maps attribute names ↔ ids with typed codecs.

    ``nested`` attributes take a sub-schema; ``list`` attributes encode a
    Python list where each element is an indexed nested attribute (the
    convention real netlink uses for e.g. ``IFLA_VFINFO_LIST``).
    """

    def __init__(self, name: str, attrs: Dict[str, AttrDef], nested: Dict[str, "AttrSchema"] = None) -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.nested = dict(nested or {})
        self._by_id = {d.attr_id: (n, d) for n, d in self.attrs.items()}
        if len(self._by_id) != len(self.attrs):
            raise CodecError(f"duplicate attribute ids in schema {name}")
        for attr_name, definition in self.attrs.items():
            if definition.kind in ("nested", "list") and attr_name not in self.nested:
                raise CodecError(f"schema {name}: {attr_name} needs a sub-schema")

    def encode(self, values: Dict[str, Any]) -> bytes:
        out = []
        for attr_name in sorted(values):
            value = values[attr_name]
            if value is None:
                continue
            definition = self.attrs.get(attr_name)
            if definition is None:
                raise CodecError(f"schema {self.name}: unknown attribute {attr_name!r}")
            if definition.kind == "flag" and not value:
                continue
            out.append(pack_attr(definition.attr_id, self._encode_value(attr_name, definition, value)))
        return b"".join(out)

    def decode(self, data: bytes) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for attr_id, payload in unpack_attrs(data):
            if attr_id not in self._by_id:
                # Unknown attributes are skipped, like real netlink consumers do.
                continue
            attr_name, definition = self._by_id[attr_id]
            values[attr_name] = self._decode_value(attr_name, definition, payload)
        return values

    def _encode_value(self, attr_name: str, definition: AttrDef, value: Any) -> bytes:
        if definition.kind == "nested":
            return self.nested[attr_name].encode(value)
        if definition.kind == "list":
            sub = self.nested[attr_name]
            return b"".join(pack_attr(i, sub.encode(item)) for i, item in enumerate(value))
        encoder, __ = _VALUE_CODECS[definition.kind]
        try:
            return encoder(value)
        except (ValueError, TypeError, AttributeError) as exc:
            raise CodecError(f"schema {self.name}: bad value for {attr_name}: {exc}") from exc

    def _decode_value(self, attr_name: str, definition: AttrDef, payload: bytes) -> Any:
        if definition.kind == "nested":
            return self.nested[attr_name].decode(payload)
        if definition.kind == "list":
            sub = self.nested[attr_name]
            return [sub.decode(p) for __, p in unpack_attrs(payload)]
        __, decoder = _VALUE_CODECS[definition.kind]
        return decoder(payload)


def schema(name: str, /, **attrs: Any) -> AttrSchema:
    """Build an :class:`AttrSchema` compactly.

    Each keyword is ``name=(id, kind)`` or ``name=(id, kind, sub_schema)``
    for nested/list kinds.
    """
    defs: Dict[str, AttrDef] = {}
    nested: Dict[str, AttrSchema] = {}
    for attr_name, spec in attrs.items():
        if len(spec) == 3:
            attr_id, kind, sub = spec
            nested[attr_name] = sub
        else:
            attr_id, kind = spec
        defs[attr_name] = AttrDef(attr_id, kind)
    return AttrSchema(name, defs, nested)
