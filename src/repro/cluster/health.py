"""BFD-style liveness probing for the anycast fleet.

Real deployments run BFD (RFC 5880) between the ECMP spine and each
next hop: the spine sends a probe every ``probe_interval_ns`` and declares
a neighbor down only after ``detect_mult`` consecutive misses — a single
lost probe (``probe_flap`` fault site) must *not* flap the route. On
detection the monitor weights the dead member out of the nexthop group
(its buckets migrate at once, ~1/N of flows) and raises a
``router-offline`` incident through the surviving fleet's controller;
recovery weights it back in with ``router-online``.

The monitor also watches administrative drains: once a draining member's
last bucket has migrated (every flow it carried went idle), it raises
``router-drained`` so the operator knows the box is safe to take away.

Fault sites consulted per probe, per member:

- ``partition`` (action ``drop``) — asymmetric partition: probes toward
  the matched router are lost while its data plane keeps forwarding.
- ``probe_flap`` (action ``miss``) — one probe lost with no underlying
  failure; exercises the detect-multiplier debounce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.fleet import AnycastFleet

#: 50 ms probes, 3-miss detection: dead routers detected in ~150 ms,
#: the same order as aggressive production BFD timers.
DEFAULT_PROBE_INTERVAL_NS = 50_000_000
DEFAULT_DETECT_MULT = 3


class HealthMonitor:
    """Probes every gateway; weights members out/in on the evidence."""

    def __init__(
        self,
        fleet: "AnycastFleet",
        probe_interval_ns: int = DEFAULT_PROBE_INTERVAL_NS,
        detect_mult: int = DEFAULT_DETECT_MULT,
    ) -> None:
        if detect_mult < 1:
            raise ValueError("detect_mult must be >= 1")
        self.fleet = fleet
        self.probe_interval_ns = probe_interval_ns
        self.detect_mult = detect_mult
        n = fleet.num_routers
        self.up: List[bool] = [True] * n
        self.miss_streak: List[int] = [0] * n
        self.probes_sent = 0
        self.probes_missed = 0
        self._next_probe_ns = 0
        self._drained_reported: Set[int] = set()

    # ---------------------------------------------------------------- ticks

    def tick(self, now_ns: int) -> None:
        """Run every probe round due by ``now_ns`` (catch-up safe)."""
        while now_ns >= self._next_probe_ns:
            self._probe_round(self._next_probe_ns)
            self._next_probe_ns += self.probe_interval_ns
        self.fleet.group.maintain(now_ns)
        self._check_drains()

    def _probe_round(self, now_ns: int) -> None:
        group = self.fleet.group
        for k, member in enumerate(self.fleet.members):
            self.probes_sent += 1
            missed = member.dead
            if not missed and faults.active():
                if faults.decide("partition", member.name) == "drop":
                    missed = True
                elif faults.decide("probe_flap", member.name) == "miss":
                    missed = True
            if missed:
                self.probes_missed += 1
                self.miss_streak[k] += 1
                if self.up[k] and self.miss_streak[k] >= self.detect_mult:
                    self.up[k] = False
                    group.set_alive(member.ip, False, now_ns)
                    self.fleet.notify_incident(
                        "router-offline",
                        f"{member.name}: {self.miss_streak[k]} consecutive probes missed",
                        member.name,
                    )
            else:
                if not self.up[k]:
                    self.up[k] = True
                    group.set_alive(member.ip, True, now_ns)
                    self._drained_reported.discard(k)
                    self.fleet.notify_incident(
                        "router-online", f"{member.name}: probes restored", member.name
                    )
                self.miss_streak[k] = 0

    def _check_drains(self) -> None:
        group = self.fleet.group
        for k, member in enumerate(self.fleet.members):
            if not member.draining or k in self._drained_reported:
                continue
            if group.is_drained(member.ip):
                self._drained_reported.add(k)
                self.fleet.notify_incident(
                    "router-drained",
                    f"{member.name}: all flows migrated, safe to remove",
                    member.name,
                )

    # ------------------------------------------------------------ reporting

    def to_dict(self) -> dict:
        return {
            "probe_interval_ns": self.probe_interval_ns,
            "detect_mult": self.detect_mult,
            "up": list(self.up),
            "miss_streak": list(self.miss_streak),
            "probes_sent": self.probes_sent,
            "probes_missed": self.probes_missed,
        }
