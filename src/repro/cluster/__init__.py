"""Multi-router anycast fleet: N LinuxFP gateways behind one set of VIPs.

:class:`~repro.cluster.fleet.AnycastFleet` wires an upstream flow-hash
sprayer (a plain-Linux spine running ECMP over a resilient nexthop group)
in front of N independent gateway kernels, each running its own LinuxFP
controller. :class:`~repro.cluster.health.HealthMonitor` layers BFD-style
liveness probing on top: dead routers are detected and weighted out,
draining routers bleed their flows gracefully, and every transition is an
incident in a controller's log.
"""

from repro.cluster.fleet import AnycastFleet, GatewayMember
from repro.cluster.health import HealthMonitor

__all__ = ["AnycastFleet", "GatewayMember", "HealthMonitor"]
