"""Anycast gateway fleet behind an ECMP flow-hash sprayer.

Topology (N routers, default 4)::

    traffic ──> spine ──┬── gw0 ──┐
      (injected)        ├── gw1 ──┤
                        ├── gw2 ──┼──> sink (one NIC per router,
                        └── gw3 ──┘     counts which router served
                                        each flow)

- The **spine** is a plain-Linux sprayer: ``ip_forward=1`` and one
  nexthop group (:class:`repro.kernel.fib.NexthopGroup`) spanning every
  gateway's ingress address. All anycast VIP prefixes route through that
  group, so the spine spreads flows across the fleet by symmetric flow
  hash — resilient consistent hashing by default, naive mod-N when the
  experiment wants the baseline to lose.
- Each **gateway** is an independent kernel: its own FIB, netfilter
  blacklist, conntrack (one stateful rule makes FORWARD stateful), and —
  on the ``linuxfp`` platform — its own :class:`~repro.core.Controller`
  compiling the fast path.
- The **sink** terminates every VIP prefix once per router, so the fleet
  can attribute each delivered packet to the gateway that carried it.
  That attribution is what the failover scorecard measures: a flow is
  *disrupted* when an event moves it to a different router.

Addressing: spine ingress ``10.0.0.1/24`` (traffic source fabricated as
``10.0.0.2``); spine↔gw-k link ``10.1.k.0/24`` (spine ``.1``, gateway
``.2``); gw-k↔sink link ``10.2.k.0/24`` (gateway ``.1``, sink ``.2``);
VIP prefixes ``10.(100+i).0.0/16``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.core import Controller
from repro.kernel import Kernel
from repro.kernel.interfaces import PhysicalDevice
from repro.kernel.fib import POLICY_RESILIENT, NextHop, NexthopGroup
from repro.netsim.addresses import IPv4Addr, ipv4, mac
from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel
from repro.netsim.nic import Wire
from repro.netsim.packet import Packet, make_udp
from repro.testing import faults
from repro.tools.iptables import iptables

#: Flow ``f`` sends UDP from sport ``FLOW_SPORT_BASE + f`` — the sink reads
#: the flow id back out of the frame, whichever router carried it.
FLOW_SPORT_BASE = 1024
FLOW_DPORT = 7000

#: The upstream traffic source (fabricated — frames are injected straight
#: into the spine's ingress NIC with this source address/MAC).
SOURCE_IP = "10.0.0.2"
SOURCE_MAC = mac("02:fa:ce:00:00:02")

#: The one nexthop group the spine sprays through.
NHG_ID = 1

#: Default knobs. The idle timer is short relative to probe cadence so a
#: draining router's buckets actually migrate within an experiment.
DEFAULT_NUM_BUCKETS = 128
DEFAULT_IDLE_TIMER_NS = 200_000_000  # 200 ms


class GatewayMember:
    """One gateway router in the fleet."""

    def __init__(
        self,
        index: int,
        kernel: Kernel,
        ingress: PhysicalDevice,
        egress: PhysicalDevice,
        ip: str,
    ) -> None:
        self.index = index
        self.name = kernel.hostname
        self.kernel = kernel
        self.ingress = ingress
        self.egress = egress
        self.ip = ip  # spine-facing address, the group membership key
        self.controller: Optional[Controller] = None
        self.dead = False  # power lost: NICs black-holed
        self.draining = False  # administratively bleeding flows

    @property
    def ip_addr(self) -> IPv4Addr:
        return ipv4(self.ip)

    def __repr__(self) -> str:
        state = "dead" if self.dead else ("draining" if self.draining else "up")
        return f"<GatewayMember {self.name} {self.ip} {state}>"


class AnycastFleet:
    """N gateways behind one set of VIPs, fed by an ECMP spine."""

    def __init__(
        self,
        num_routers: int = 4,
        policy: str = POLICY_RESILIENT,
        num_prefixes: int = 8,
        num_rules: int = 4,
        platform: str = "linuxfp",
        hook: str = "xdp",
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        idle_timer_ns: int = DEFAULT_IDLE_TIMER_NS,
        clock: Optional[Clock] = None,
    ) -> None:
        if num_routers < 2:
            raise ValueError("a fleet needs at least 2 routers")
        if platform not in ("linux", "linuxfp"):
            raise ValueError(f"unknown fleet platform {platform!r}")
        self.num_routers = num_routers
        self.policy = policy
        self.num_prefixes = num_prefixes
        self.platform = platform
        self.clock = clock if clock is not None else Clock()
        self.costs = CostModel()

        # --- spine (the plain-Linux sprayer) ---------------------------
        self.spine = Kernel("spine", clock=self.clock, costs=self.costs)
        self.spine_in = self.spine.add_physical("eth0")
        self.spine.set_link("eth0", True)
        self.spine.add_address("eth0", "10.0.0.1/24")
        self.spine.sysctl_set("net.ipv4.ip_forward", "1")
        self.spine.neigh_add("eth0", SOURCE_IP, SOURCE_MAC)

        # --- sink (terminates every VIP once per router) ---------------
        self.sink = Kernel("sink", clock=self.clock, costs=self.costs)

        # per-router delivery ledger: served[k][flow] = packets
        self.served: List[Counter] = [Counter() for _ in range(num_routers)]
        #: flow -> router that carried its most recent packet
        self.serving: Dict[int, int] = {}
        self.delivered = 0
        #: frames that arrived at a killed router and vanished on the wire
        self.blackholed: List[int] = [0] * num_routers

        # --- gateways --------------------------------------------------
        self.members: List[GatewayMember] = []
        nexthops = []
        for k in range(num_routers):
            gw = Kernel(f"gw{k}", clock=self.clock, costs=self.costs)
            ingress = gw.add_physical("eth0")
            egress = gw.add_physical("eth1")
            gw.set_link("eth0", True)
            gw.set_link("eth1", True)
            gw.add_address("eth0", f"10.1.{k}.2/24")
            gw.add_address("eth1", f"10.2.{k}.1/24")
            gw.sysctl_set("net.ipv4.ip_forward", "1")
            gw.route_add("0.0.0.0/0", via=f"10.1.{k}.1")  # ICMP back upstream

            spine_port = self.spine.add_physical(f"eth{k + 1}")
            self.spine.set_link(f"eth{k + 1}", True)
            self.spine.add_address(f"eth{k + 1}", f"10.1.{k}.1/24")
            Wire(spine_port.nic, ingress.nic)

            sink_port = self.sink.add_physical(f"eth{k}")
            self.sink.set_link(f"eth{k}", True)
            self.sink.add_address(f"eth{k}", f"10.2.{k}.2/24")
            Wire(egress.nic, sink_port.nic)
            sink_port.nic.attach(self._make_sink_handler(k))

            # a warmed-up testbed: neighbors resolved in both directions
            self.spine.neigh_add(f"eth{k + 1}", f"10.1.{k}.2", ingress.mac)
            gw.neigh_add("eth0", f"10.1.{k}.1", spine_port.mac)
            gw.neigh_add("eth1", f"10.2.{k}.2", sink_port.mac)
            self.sink.neigh_add(f"eth{k}", f"10.2.{k}.1", egress.mac)

            # VIP prefixes: every gateway serves all of them (anycast)
            for i in range(num_prefixes):
                gw.route_add(f"10.{100 + i}.0.0/16", via=f"10.2.{k}.2")

            # a small blacklist plus one stateful rule so FORWARD runs
            # conntrack — established flows are tracked per gateway
            for r in range(num_rules):
                iptables(gw, f"-A FORWARD -s 172.16.{k}.{r + 1}/32 -j DROP")
            iptables(gw, "-A FORWARD -m state --state ESTABLISHED -j ACCEPT")

            member = GatewayMember(k, gw, ingress, egress, f"10.1.{k}.2")
            if platform == "linuxfp":
                member.controller = Controller(gw, hook=hook)
                member.controller.start()
            self.members.append(member)
            nexthops.append(NextHop(oif=spine_port.ifindex, gateway=ipv4(member.ip)))

        # --- the ECMP spray: one group, every VIP through it -----------
        self.spine.nexthop_group_add(
            NHG_ID,
            nexthops,
            policy=policy,
            num_buckets=num_buckets,
            idle_timer_ns=idle_timer_ns,
        )
        for i in range(num_prefixes):
            self.spine.route_add(f"10.{100 + i}.0.0/16", nhg=NHG_ID)

    # ------------------------------------------------------------- plumbing

    @property
    def group(self) -> NexthopGroup:
        group = self.spine.fib.nexthop_group(NHG_ID)
        assert group is not None
        return group

    @property
    def controllers(self) -> List[Controller]:
        return [m.controller for m in self.members if m.controller is not None]

    def observer_controller(self) -> Optional[Controller]:
        """Where fleet-level incidents land: the first *alive* gateway's
        controller (a dead router's control process died with it)."""
        for member in self.members:
            if member.controller is not None and not member.dead:
                return member.controller
        return None

    def notify_incident(self, kind: str, detail: str, ifname: Optional[str] = None) -> None:
        observer = self.observer_controller()
        if observer is not None:
            observer.notify_incident(kind, detail, ifname)

    def _make_sink_handler(self, index: int):
        def handler(frame: bytes, queue: int = 0) -> None:
            try:
                pkt = Packet.from_bytes(frame)
            except Exception:  # noqa: BLE001 — non-flow traffic is fine
                return
            l4 = getattr(pkt, "l4", None)
            sport = getattr(l4, "sport", None)
            if sport is None or sport < FLOW_SPORT_BASE:
                return
            flow = sport - FLOW_SPORT_BASE
            self.served[index][flow] += 1
            self.serving[flow] = index
            self.delivered += 1

        return handler

    # -------------------------------------------------------------- traffic

    def flow_destination(self, flow: int) -> str:
        return f"10.{100 + (flow % self.num_prefixes)}.0.{(flow % 250) + 1}"

    def flow_frame(self, flow: int, payload: bytes = b"x" * 26) -> bytes:
        return make_udp(
            SOURCE_MAC,
            self.spine_in.mac,
            SOURCE_IP,
            self.flow_destination(flow),
            sport=FLOW_SPORT_BASE + flow,
            dport=FLOW_DPORT,
            payload=payload,
        ).to_bytes()

    def inject(self, flows: List[int], advance_ns: int = 1_000_000) -> None:
        """One packet per listed flow, as a burst, then advance the clock."""
        self.spine_in.nic.receive_burst([self.flow_frame(f) for f in flows])
        if advance_ns:
            self.clock.advance(advance_ns)

    # --------------------------------------------------------------- events

    def kill_router(self, index: int) -> None:
        """Power loss: frames already on the wire toward this router vanish
        (the NIC stops delivering), and its control process dies with it."""
        member = self.members[index]
        if member.dead:
            return
        faults.decide("router_kill", member.name)  # chaos ledger, when armed
        member.dead = True

        def blackhole(_frame: bytes, _queue: int = 0) -> None:
            self.blackholed[index] += 1

        member.ingress.nic.attach(blackhole)
        member.egress.nic.attach(blackhole)

    def revive_router(self, index: int) -> None:
        """Power restored: reattach the kernel's rx handlers (single-frame
        and burst — ``attach`` clears the burst path)."""
        member = self.members[index]
        if not member.dead:
            return
        member.dead = False
        for dev in (member.ingress, member.egress):
            dev.nic.attach(dev._on_nic_rx)
            dev.nic.attach_burst(dev._on_nic_rx_burst)

    def drain_router(self, index: int) -> None:
        """Administrative drain: no new flows land here; established flows
        keep their buckets until idle (the consistent-hash guarantee)."""
        member = self.members[index]
        if member.draining:
            return
        member.draining = True
        self.group.set_draining(member.ip, True, self.clock.now_ns)
        self.notify_incident("router-drain", f"{member.name}: draining started", member.name)

    def undrain_router(self, index: int) -> None:
        member = self.members[index]
        if not member.draining:
            return
        member.draining = False
        self.group.set_draining(member.ip, False, self.clock.now_ns)

    # ------------------------------------------------------------ liveness

    def tick(self, advance_ns: int = 0) -> None:
        """Advance time, run every live controller, maintain the group."""
        if advance_ns:
            self.clock.advance(advance_ns)
        now = self.clock.now_ns
        for member in self.members:
            if member.controller is not None and not member.dead:
                member.controller.tick()
        self.group.maintain(now)

    # ---------------------------------------------------------- accounting

    def snapshot_serving(self) -> Dict[int, int]:
        """flow → router, at this instant (copy; compare across events)."""
        return dict(self.serving)

    def conntrack_entries(self, index: int) -> int:
        return len(self.members[index].kernel.conntrack)

    def conservation(self) -> Dict[str, Dict[str, object]]:
        """Per-kernel ledger: ``rx + tx_local == settled + pending``.

        Killed routers conserve trivially (their NICs never delivered the
        frames); the spine and survivors must conserve exactly — no packet
        is lost unaccounted during failover.
        """
        out: Dict[str, Dict[str, object]] = {}
        kernels = [self.spine] + [m.kernel for m in self.members] + [self.sink]
        for kernel in kernels:
            stack = kernel.stack
            rx = stack.rx_packets
            tx_local = stack.tx_local_packets
            settled = stack.settled
            pending = stack.pending_packets()
            out[kernel.hostname] = {
                "rx_packets": rx,
                "tx_local_packets": tx_local,
                "settled": settled,
                "pending": pending,
                "conserved": rx + tx_local == settled + pending,
            }
        return out

    def conserved(self) -> bool:
        return all(entry["conserved"] for entry in self.conservation().values())
