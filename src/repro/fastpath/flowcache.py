"""The megaflow-style flow cache for synthesized fast paths.

The synthesized FPM chain re-derives the same verdict for every packet of a
flow. This cache — inspired by OVS's megaflow cache, and an extension beyond
the LinuxFP paper — runs the chain once per flow, derives the *semantic
actions* the program applied (MAC rewrite, TTL decrement + incremental
checksum update, DNAT), and replays them on subsequent packets of the flow
for a single O(1) dict lookup.

Correctness rests on three mechanisms:

1. **Generation tags.** Every mutable kernel table (FIB, bridge FDB,
   netfilter, conntrack, ipset registry, neighbor table, device table) bumps
   a generation counter on semantically-visible mutation. Helpers record
   which tables a run consulted (``Env.note_dep``); the entry snapshots
   those tables' generations and a hit revalidates them. A stale generation
   drops the entry and falls back to the full FPM run.

2. **Deadline expiry.** Time-based staleness (bridge FDB ageing, conntrack
   timeouts) is invisible to generation tags, so helpers also record the
   earliest deadline at which a consulted entry would expire
   (``Env.note_expiry``); hits past the deadline re-run the chain.

3. **Verified derivation.** Actions are derived by diffing the input and
   output frames of the recording run, then re-applied to the input frame
   and checked for byte-equality against the program's actual output. A
   diff the action model cannot express (or a run that touched per-packet
   state: maps, ktime, AF_XDP) yields an *uncacheable* marker entry, and
   that flow takes the full run forever.

Partitions are keyed by (hook, ifindex) so the deployer's atomic prog-array
swap can flush exactly the traffic whose program changed. Each partition
additionally carries an **epoch**: flushing a partition bumps it, entries
are stamped with the epoch they were recorded under, and a lookup rejects
any entry from an older epoch. The flush already deletes matching entries,
so the epoch is the belt-and-suspenders guarantee the watchdog's quarantine
relies on — no verdict recorded under a withdrawn program can ever be
served, even if an entry were re-inserted by an in-flight recording run.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.kernel.hooks_api import (
    TC_ACT_REDIRECT,
    TcResult,
    XDP_ABORTED,
    XDP_CONSUMED,
    XDP_REDIRECT,
    XdpResult,
)
from repro.netsim.flowkey import FlowKey, extract_flow_key
from repro.netsim.packet import Packet, PacketError

DEFAULT_CAPACITY = 4096

# Which FPM a table dependency implicates (for per-FPM hit attribution).
_FPM_FOR_DEP = {
    "fib": "router",
    "netfilter": "filter",
    "bridge": "bridge",
    "conntrack": "ipvs",
}

# Frame offsets (eth + option-less IPv4, guaranteed by extract_flow_key)
_TTL_OFF = 22
_CSUM_OFF = 24
_DST_OFF = 30
_DPORT_OFF = 36


class CachedActions:
    """The value-relative rewrite a fast-path run applied to a frame.

    Mirrors the FPM templates' write set exactly: DNAT (absolute dst ip +
    dst port stores, one RFC 1624 checksum fold), TTL decrement (one more
    fold), and absolute MAC stores. Anything else fails derivation.
    """

    __slots__ = ("eth_dst", "eth_src", "ttl_dec", "dnat_dst", "dnat_dport")

    def __init__(
        self,
        eth_dst: Optional[bytes] = None,
        eth_src: Optional[bytes] = None,
        ttl_dec: bool = False,
        dnat_dst: Optional[bytes] = None,
        dnat_dport: Optional[bytes] = None,
    ) -> None:
        self.eth_dst = eth_dst
        self.eth_src = eth_src
        self.ttl_dec = ttl_dec
        self.dnat_dst = dnat_dst
        self.dnat_dport = dnat_dport

    @property
    def is_noop(self) -> bool:
        return not (self.eth_dst or self.eth_src or self.ttl_dec or self.dnat_dst or self.dnat_dport)

    def apply(self, frame: bytes) -> Optional[bytes]:
        """Replay onto ``frame``; None when a guard forces the full run."""
        if self.ttl_dec and frame[_TTL_OFF] <= 1:
            return None  # the router FPM punts expiring TTLs to the slow path
        if self.is_noop:
            return frame
        buf = bytearray(frame)
        if self.dnat_dst is not None or self.dnat_dport is not None:
            if self.dnat_dst is not None:
                buf[_DST_OFF:_DST_OFF + 4] = self.dnat_dst
            if self.dnat_dport is not None:
                buf[_DPORT_OFF:_DPORT_OFF + 2] = self.dnat_dport
            _csum_fold(buf)
        if self.ttl_dec:
            buf[_TTL_OFF] -= 1
            _csum_fold(buf)
        if self.eth_dst is not None:
            buf[0:6] = self.eth_dst
        if self.eth_src is not None:
            buf[6:12] = self.eth_src
        return bytes(buf)


def _csum_fold(buf: bytearray) -> None:
    """The templates' incremental checksum update: csum += 0x100, fold once."""
    csum = ((buf[_CSUM_OFF] << 8) | buf[_CSUM_OFF + 1]) + 0x100
    csum = (csum & 0xFFFF) + (csum >> 16)
    buf[_CSUM_OFF] = (csum >> 8) & 0xFF
    buf[_CSUM_OFF + 1] = csum & 0xFF


class FlowEntry:
    """One cached flow: verdict + actions + the state it depends on."""

    __slots__ = (
        "key", "verdict", "redirect_ifindex", "actions", "deps", "expires_ns",
        "eth_match", "rules", "ct_entries", "fpms", "full_ns", "insns", "hits",
        "epoch",
    )

    def __init__(
        self,
        key: FlowKey,
        verdict: int,
        redirect_ifindex: Optional[int],
        actions: Optional[CachedActions],
        deps: Dict[str, int],
        expires_ns: Optional[int],
        eth_match: Optional[bytes],
        rules: Tuple,
        ct_entries: Tuple,
        fpms: Tuple[str, ...],
        full_ns: float,
        insns: int,
        epoch: int = 0,
    ) -> None:
        self.key = key
        self.verdict = verdict
        self.redirect_ifindex = redirect_ifindex
        self.actions = actions  # None marks an uncacheable flow
        self.deps = deps
        self.expires_ns = expires_ns
        self.eth_match = eth_match
        self.rules = rules
        self.ct_entries = ct_entries
        self.fpms = fpms
        self.full_ns = full_ns
        self.insns = insns
        self.epoch = epoch
        self.hits = 0

    @property
    def uncacheable(self) -> bool:
        return self.actions is None


class FlowCacheStats:
    """Per-hook / per-FPM perf counters for the cache."""

    def __init__(self) -> None:
        self.hits: Counter = Counter()       # hook -> cache hits
        self.misses: Counter = Counter()     # hook -> misses (full run + record attempt)
        self.bypasses: Counter = Counter()   # hook -> unkeyable/guarded/uncacheable
        self.records: Counter = Counter()    # hook -> entries recorded
        self.fpm_hits: Counter = Counter()   # fpm name -> FPM runs avoided
        self.invalidations: Counter = Counter()  # reason ("gen:fib", "expired") -> count
        self.evictions = 0
        self.flushes = 0
        self.flushed_entries = 0
        self.insns_avoided = 0
        self.ns_saved = 0.0

    def reset(self) -> None:
        self.__init__()

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "bypasses": dict(self.bypasses),
            "records": dict(self.records),
            "fpm_hits": dict(self.fpm_hits),
            "invalidations": dict(self.invalidations),
            "evictions": self.evictions,
            "flushes": self.flushes,
            "flushed_entries": self.flushed_entries,
            "insns_avoided": self.insns_avoided,
            "ns_saved": self.ns_saved,
        }

    def hit_rate(self, hook: Optional[str] = None) -> float:
        hits = self.hits[hook] if hook else sum(self.hits.values())
        misses = self.misses[hook] if hook else sum(self.misses.values())
        total = hits + misses
        return hits / total if total else 0.0


class FlowCache:
    """Per-kernel flow cache over the XDP and TC-ingress hook points."""

    def __init__(self, kernel, capacity: int = DEFAULT_CAPACITY) -> None:
        self.kernel = kernel
        self.capacity = capacity
        self.enabled = False
        self.stats = FlowCacheStats()
        # One shard per data-plane CPU, each (hook, ifindex, FlowKey) ->
        # FlowEntry in LRU order (oldest first). RPS steering pins a flow to
        # one CPU, so its entry only ever lives in (and is only looked up
        # from) that CPU's shard — no cross-CPU sharing on the fast path.
        # The global ``capacity`` budget is split evenly across shards.
        self.num_shards = max(1, getattr(kernel, "num_cores", 1))
        self._shards: List["OrderedDict[Tuple[str, int, FlowKey], FlowEntry]"] = [
            OrderedDict() for _ in range(self.num_shards)
        ]
        # (hook, ifindex) -> partition epoch; bumped by every flush touching
        # the partition. Entries from older epochs never serve. Epochs are
        # global across shards: a withdraw must silence every CPU at once.
        self._epochs: Counter = Counter()

    def _shard(self) -> "OrderedDict[Tuple[str, int, FlowKey], FlowEntry]":
        """The executing CPU's shard (control-plane context uses CPU 0's)."""
        cpu = self.kernel.cpus.current_cpu
        return self._shards[0 if cpu is None else cpu % self.num_shards]

    @property
    def shard_capacity(self) -> int:
        return max(1, self.capacity // self.num_shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------ hook entry

    def _trace(self, event: str, detail: str = "") -> None:
        obs = getattr(self.kernel, "observability", None)
        if obs is not None and obs.tracer.recording:
            obs.tracer.event(event, detail)

    def run_xdp(self, dev, frame: bytes) -> XdpResult:
        """Consult the cache for an XDP-hook frame; falls back to the prog."""
        attachment = dev.xdp_prog
        hit = self._lookup("xdp", dev.ifindex, frame)
        if hit is not None:
            entry, replayed = hit
            self._trace("flow_cache", f"hit fpms={','.join(entry.fpms) or '-'}")
            return XdpResult(entry.verdict, replayed, entry.redirect_ifindex)

        key = self._key(frame, dev.ifindex)
        if key is None:
            self.stats.bypasses["xdp"] += 1
            self._trace("flow_cache", "bypass")
            return attachment.run_xdp(self.kernel, dev, frame)

        cached = self._shard().get(("xdp", dev.ifindex, key))
        if cached is not None:
            # valid but unreplayable (uncacheable flow or TTL guard): full run
            self.stats.bypasses["xdp"] += 1
            self._trace("flow_cache", "bypass")
            return attachment.run_xdp(self.kernel, dev, frame)

        from repro.ebpf.vm import Env

        self.stats.misses["xdp"] += 1
        self._trace("flow_cache", "miss")
        env = Env(self.kernel, redirect_verdict=XDP_REDIRECT)
        t0 = self.kernel.clock.now_ns
        result = attachment.run_xdp(self.kernel, dev, frame, env=env)
        self._record("xdp", dev.ifindex, key, frame, result.frame, result.verdict,
                     result.redirect_ifindex, env, self.kernel.clock.now_ns - t0)
        return result

    def run_tc(self, dev, skb) -> TcResult:
        """Consult the cache for a TC-ingress skb; falls back to the prog."""
        attachment = dev.tc_ingress_prog
        wire = getattr(skb, "wire_frame", None)
        frame = wire() if wire is not None else skb.pkt.to_bytes()
        hit = self._lookup("tc", dev.ifindex, frame)
        if hit is not None:
            entry, replayed = hit
            self._trace("flow_cache", f"hit fpms={','.join(entry.fpms) or '-'}")
            return TcResult(entry.verdict, replayed, entry.redirect_ifindex)

        key = self._key(frame, dev.ifindex)
        if key is None:
            self.stats.bypasses["tc"] += 1
            self._trace("flow_cache", "bypass")
            return attachment.run_tc(self.kernel, dev, skb)

        cached = self._shard().get(("tc", dev.ifindex, key))
        if cached is not None:
            self.stats.bypasses["tc"] += 1
            self._trace("flow_cache", "bypass")
            return attachment.run_tc(self.kernel, dev, skb)

        from repro.ebpf.vm import Env

        self.stats.misses["tc"] += 1
        self._trace("flow_cache", "miss")
        env = Env(self.kernel, redirect_verdict=TC_ACT_REDIRECT)
        t0 = self.kernel.clock.now_ns
        result = attachment.run_tc(self.kernel, dev, skb, env=env)
        self._record("tc", dev.ifindex, key, frame, result.frame, result.verdict,
                     result.redirect_ifindex, env, self.kernel.clock.now_ns - t0)
        return result

    # ------------------------------------------------------------ lifecycle

    def flush(self, hook: Optional[str] = None, ifindex: Optional[int] = None,
              reason: str = "flush") -> int:
        """Drop entries matching (hook, ifindex); None matches everything."""
        doomed = []
        for shard in self._shards:
            shard_doomed = [
                k for k in shard
                if (hook is None or k[0] == hook) and (ifindex is None or k[1] == ifindex)
            ]
            for k in shard_doomed:
                del shard[k]
            doomed.extend(shard_doomed)
        self._bump_epochs(hook, ifindex, doomed)
        self.stats.flushes += 1
        self.stats.flushed_entries += len(doomed)
        return len(doomed)

    def _bump_epochs(self, hook: Optional[str], ifindex: Optional[int], doomed) -> None:
        partitions = {(k[0], k[1]) for k in doomed}
        if hook is not None and ifindex is not None:
            partitions.add((hook, ifindex))  # bump even when currently empty
        else:
            partitions.update(
                p for p in self._epochs
                if (hook is None or p[0] == hook) and (ifindex is None or p[1] == ifindex)
            )
        for p in partitions:
            self._epochs[p] += 1

    def drop_shard(self, cpu: int, reason: str = "cpu_offline") -> int:
        """Discard one CPU's shard (hotplug offline).

        After the CPU goes offline RPS never steers to it again, so its
        entries could only go stale — and when the CPU comes *back*, flows
        that re-steer there must re-record rather than find pre-offline
        verdicts. Cache entries are pure derived state, so dropping them is
        always safe (the next packet takes the full run). Returns entries
        dropped.
        """
        shard = self._shards[cpu % self.num_shards]
        dropped = len(shard)
        shard.clear()
        if dropped:
            self.stats.invalidations[reason] += dropped
        return dropped

    def epoch(self, hook: str, ifindex: int) -> int:
        """The current epoch of a (hook, ifindex) partition."""
        return self._epochs[(hook, ifindex)]

    def entries(self) -> List[FlowEntry]:
        return [entry for shard in self._shards for entry in shard.values()]

    # ------------------------------------------------------------- internals

    def _key(self, frame: bytes, ifindex: int) -> Optional[FlowKey]:
        key = extract_flow_key(frame, ifindex)
        if key is None:
            return None
        # The 5-tuple alone cannot distinguish a well-formed packet from one
        # with, say, a truncated TCP header — which the full pipeline treats
        # differently (bpf_ipt_lookup punts, the slow path drops). Only
        # frames that parse cleanly may consult or seed the cache.
        try:
            Packet.from_bytes(frame)
        except PacketError:
            return None
        return key

    def _lookup(self, hook: str, ifindex: int, frame: bytes):
        """A valid, replayable hit: (entry, replayed_frame) — else None."""
        key = extract_flow_key(frame, ifindex)
        if key is None:
            return None
        full_key = (hook, ifindex, key)
        shard = self._shard()
        entry = shard.get(full_key)
        if entry is None:
            return None
        if entry.epoch != self._epochs[(hook, ifindex)]:
            del shard[full_key]
            self.stats.invalidations["epoch"] += 1
            return None
        reason = self._staleness(entry)
        if reason is not None:
            del shard[full_key]
            self.stats.invalidations[reason] += 1
            return None
        if entry.uncacheable:
            return None  # caller runs the full chain (counted as bypass)
        if entry.eth_match is not None and frame[0:12] != entry.eth_match:
            # L2-sensitive entry (the program consulted the FDB) seeing new
            # MACs: not the same megaflow; take the full run.
            return None
        if self._key(frame, ifindex) is None:
            return None  # parse-hostile frame inside a known flow: full run
        replayed = entry.actions.apply(frame)
        if replayed is None:
            return None  # TTL guard
        self.kernel.costs_charge("flow_cache_lookup")
        shard.move_to_end(full_key)
        entry.hits += 1
        self.stats.hits[hook] += 1
        self.stats.fpm_hits.update(entry.fpms)
        self.stats.insns_avoided += entry.insns
        self.stats.ns_saved += max(0.0, entry.full_ns - self.kernel.costs.flow_cache_lookup)
        # Mirror the helper side effects the skipped run would have had.
        for rule in entry.rules:
            rule.packets += 1
        for ct in entry.ct_entries:
            ct.packets += 1
        return entry, replayed

    def _staleness(self, entry: FlowEntry) -> Optional[str]:
        """Why the entry is stale ("gen:<table>" / "expired"), or None."""
        if entry.expires_ns is not None and self.kernel.clock.now_ns >= entry.expires_ns:
            return "expired"
        for name, gen in entry.deps.items():
            if self._generation(name) != gen:
                return f"gen:{name}"
        return None

    def _generation(self, name: str) -> int:
        kernel = self.kernel
        if name == "fib":
            return kernel.fib.gen
        if name == "neighbor":
            return kernel.neighbors.gen
        if name == "netfilter":
            return kernel.netfilter.gen
        if name == "conntrack":
            return kernel.conntrack.gen
        if name == "ipset":
            return kernel.ipsets.gen
        if name == "devices":
            return kernel.devices.gen
        if name == "bridge":
            from repro.kernel.interfaces import BridgeDevice

            return sum(
                d.bridge.gen for d in kernel.devices.all() if isinstance(d, BridgeDevice)
            )
        return 0  # unknown dependency: never invalidates (helpers control names)

    def _record(self, hook: str, ifindex: int, key: FlowKey, in_frame: bytes,
                out_frame: bytes, verdict: int, redirect_ifindex: Optional[int],
                env, full_ns: float) -> None:
        if getattr(env, "aborted", False) or (hook == "xdp" and verdict == XDP_ABORTED):
            return  # never cache an aborted run's verdict
        actions: Optional[CachedActions]
        if env.uncacheable or verdict == XDP_CONSUMED:
            actions = None  # marker entry: this flow always takes the full run
        else:
            actions = _derive_actions(in_frame, out_frame)
            if actions is not None:
                replayed = actions.apply(in_frame)
                if replayed != out_frame:
                    actions = None  # derivation failed verification
        deps = {name: self._generation(name) for name in env.deps}
        eth_match = in_frame[0:12] if "bridge" in env.deps else None
        fpms = tuple(sorted({_FPM_FOR_DEP[d] for d in env.deps if d in _FPM_FOR_DEP}))
        entry = FlowEntry(
            key=key,
            verdict=verdict,
            redirect_ifindex=redirect_ifindex,
            actions=actions,
            deps=deps,
            expires_ns=env.expires_ns,
            eth_match=eth_match,
            rules=tuple(env.matched_rules),
            ct_entries=tuple(env.ct_entries),
            fpms=fpms,
            full_ns=full_ns,
            insns=env.insns_executed,
            epoch=self._epochs[(hook, ifindex)],
        )
        full_key = (hook, ifindex, key)
        shard = self._shard()
        if full_key not in shard and len(shard) >= self.shard_capacity:
            shard.popitem(last=False)  # evict this shard's LRU entry
            self.stats.evictions += 1
        shard[full_key] = entry
        shard.move_to_end(full_key)
        self.kernel.costs_charge("flow_cache_insert")
        self.stats.records[hook] += 1


def _derive_actions(in_frame: bytes, out_frame: bytes) -> Optional[CachedActions]:
    """Diff input/output frames into the template action model, or None."""
    if len(in_frame) != len(out_frame):
        return None
    actions = CachedActions()
    if out_frame[0:6] != in_frame[0:6]:
        actions.eth_dst = out_frame[0:6]
    if out_frame[6:12] != in_frame[6:12]:
        actions.eth_src = out_frame[6:12]
    if out_frame[_TTL_OFF] != in_frame[_TTL_OFF]:
        if out_frame[_TTL_OFF] != in_frame[_TTL_OFF] - 1:
            return None  # only a single decrement is expressible
        actions.ttl_dec = True
    if out_frame[_DST_OFF:_DST_OFF + 4] != in_frame[_DST_OFF:_DST_OFF + 4]:
        actions.dnat_dst = out_frame[_DST_OFF:_DST_OFF + 4]
    if out_frame[_DPORT_OFF:_DPORT_OFF + 2] != in_frame[_DPORT_OFF:_DPORT_OFF + 2]:
        actions.dnat_dport = out_frame[_DPORT_OFF:_DPORT_OFF + 2]
    # Any other differing byte (outside the checksum field, which the
    # verification replay reproduces) is beyond the model.
    allowed = set(range(0, 12)) | {_TTL_OFF, _CSUM_OFF, _CSUM_OFF + 1}
    allowed |= set(range(_DST_OFF, _DST_OFF + 4)) | {_DPORT_OFF, _DPORT_OFF + 1}
    for i in range(len(in_frame)):
        if in_frame[i] != out_frame[i] and i not in allowed:
            return None
    return actions
