"""Megaflow-style fast-path flow cache (a deliberate extension beyond the
paper: see docs/flow_cache.md)."""

from repro.fastpath.flowcache import CachedActions, FlowCache, FlowCacheStats, FlowEntry

__all__ = ["CachedActions", "FlowCache", "FlowCacheStats", "FlowEntry"]
