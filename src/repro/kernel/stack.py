"""The packet pipeline: the LinuxFP *slow path*.

``Stack.receive`` mirrors the structure of the real Linux receive path —
driver → XDP hook → sk_buff allocation → TC ingress → bridge handling →
``ip_rcv`` → routing decision → forward / local deliver → neighbor output →
TC egress → driver. Stage names recorded in the profiler match the kernel
functions a flame graph of real Linux forwarding shows (paper Fig 1), and
every stage charges its calibrated cost to the simulated clock.

Packet accounting follows the kernel's ``kfree_skb`` drop-reason model:
every packet that enters the pipeline (``rx_packets`` at a driver,
``tx_local_packets`` at the socket layer) reaches exactly one terminal —
:meth:`finish` for a non-drop outcome or :meth:`drop` with a registered
reason — or sits in a neighbor queue awaiting ARP (``pending_packets``).
The conservation invariant ``rx + tx_local == settled + pending`` holds at
all times; the differential test suite enforces it under randomized
traffic.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.kernel.fib import Route
from repro.kernel.hooks_api import (
    TC_ACT_REDIRECT,
    TC_ACT_SHOT,
    TC_ACTION_NAMES,
    XDP_ACTION_NAMES,
    XDP_CONSUMED,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XDP_TX,
)
from repro.kernel.interfaces import BridgeDevice, NetDevice, PhysicalDevice, VxlanDevice
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.packet import (
    ARP_REPLY,
    ARP_REQUEST,
    ETH_P_ARP,
    ETH_P_IP,
    ICMP,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IPPROTO_ICMP,
    IPPROTO_UDP,
    IPv4,
    Packet,
    PacketError,
    UDP,
    make_arp_reply,
    make_arp_request,
)
from repro.netsim.skbuff import SKBuff
from repro.observability.drop_reasons import drop_reason

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

VXLAN_HDR = struct.Struct("!B3xI")  # flags, reserved, (vni << 8)
VXLAN_FLAG_VNI = 0x08


def _is_martian_source(addr: IPv4Addr) -> bool:
    """Sources that must never appear on the forward path (RFC 1812 §5.3.7,
    narrowed to the unambiguous cases: loopback, multicast, broadcast)."""
    return (addr.value >> 24) == 127 or addr.is_multicast or addr.is_broadcast


class Stack:
    """The receive/transmit pipeline for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.drops: Counter = Counter()
        self.forwarded = 0
        self.delivered_local = 0
        self.xdp_actions: Counter = Counter()
        self.tc_actions: Counter = Counter()
        # --- the packet ledger ---
        self.rx_packets = 0        # frames entering at a driver
        self.tx_local_packets = 0  # locally-generated packets entering output
        self.settled = 0           # packets that reached exactly one terminal
        self.dropped = 0           # terminal settles that were drops
        self.outcomes: Counter = Counter()  # non-drop terminals by name
        # Per-CPU ledger slices, keyed by the CPU a packet was counted on
        # (-1 = host/control context, e.g. test-injected sends). Each global
        # counter above always equals the sum of its per-CPU family — the
        # multi-core conservation suite checks both levels.
        self.rx_by_cpu: Counter = Counter()
        self.tx_local_by_cpu: Counter = Counter()
        self.settled_by_cpu: Counter = Counter()
        self.dropped_by_cpu: Counter = Counter()
        # Transmit observation taps: called as tap(ifindex, frame) for every
        # slow-path transmit. The differential watchdog installs one to
        # capture the plain kernel's output for a sampled packet.
        self.tx_taps: List[Callable[[int, bytes], None]] = []
        from repro.kernel.fragments import Reassembler

        self.reassembler = Reassembler(kernel.clock)

    def emit_tx(self, dev: NetDevice, frame: bytes) -> None:
        """Report a slow-path transmit to the installed taps."""
        for tap in self.tx_taps:
            tap(dev.ifindex, frame)

    # -------------------------------------------------------- the ledger

    def drop(
        self,
        reason: str,
        dev: Optional[NetDevice] = None,
        skb: Optional[SKBuff] = None,
        terminal: bool = True,
    ) -> None:
        """Discard a packet for a *registered* reason (``kfree_skb`` style).

        Raises :class:`~repro.observability.drop_reasons.UnknownDropReason`
        for an unregistered name, so silent unaccounted discards cannot be
        introduced. ``terminal=False`` records the reason without settling —
        used when the packet already settled (e.g. fragments that settled as
        ``reasm_hold`` before their reassembly queue timed out).
        """
        info = drop_reason(reason)
        self.drops[reason] += 1
        obs = getattr(self.kernel, "observability", None)
        if obs is not None:
            obs.drops.record(info, dev.name if dev is not None else None)
            if obs.tracer.recording:
                obs.tracer.event("kfree_skb", reason)
                obs.tracer.set_outcome(f"drop:{reason}")
        if terminal and self._settle(skb):
            self.dropped += 1
            self.dropped_by_cpu[self._ledger_cpu()] += 1

    def finish(
        self,
        outcome: str,
        dev: Optional[NetDevice] = None,
        skb: Optional[SKBuff] = None,
    ) -> None:
        """A packet reached a non-drop terminal (transmitted, delivered,
        consumed). Counted once per packet: re-finishing an already-settled
        skb (a fragment piece, a drained neighbor-queue entry) is a no-op
        for the ledger."""
        obs = getattr(self.kernel, "observability", None)
        if obs is not None and obs.tracer.recording:
            obs.tracer.set_outcome(outcome)
        if self._settle(skb):
            self.outcomes[outcome] += 1

    def _ledger_cpu(self) -> int:
        """The CPU this ledger event is attributed to (-1 = host context)."""
        cpu = self.kernel.cpus.current_cpu
        return -1 if cpu is None else cpu

    def _settle(self, skb: Optional[SKBuff]) -> bool:
        if skb is not None:
            if skb.accounted:
                return False
            skb.accounted = True
        self.settled += 1
        self.settled_by_cpu[self._ledger_cpu()] += 1
        return True

    def pending_packets(self) -> int:
        """Packets queued in neighbor entries awaiting ARP resolution."""
        return sum(len(e.queued) for e in self.kernel.neighbors.entries())

    def _trace_event(self, stage: str, detail: str = "") -> None:
        obs = getattr(self.kernel, "observability", None)
        if obs is not None and obs.tracer.recording:
            obs.tracer.event(stage, detail)

    # ------------------------------------------------------------------ RX

    def account_rx(self, n: int = 1) -> None:
        """Count ``n`` frames into the rx side of the ledger on the executing
        CPU. Split out of :meth:`receive` because a frame refused at softirq
        enqueue (``backlog_overflow``) never reaches :meth:`receive`, yet
        must still enter the ledger so it can settle as a drop. Batched
        delivery (:meth:`receive_batch`) accounts a whole burst at once."""
        self.rx_packets += n
        self.rx_by_cpu[self._ledger_cpu()] += n

    def receive(self, dev: NetDevice, frame: bytes, queue: int = 0) -> None:
        """Entry point for a frame arriving on ``dev``."""
        self.account_rx()
        obs = getattr(self.kernel, "observability", None)
        token = None
        if obs is not None and obs.tracer.armed:
            pkt = None
            try:
                pkt = Packet.from_bytes(frame)
            except PacketError:
                pass
            token = obs.tracer.begin("rx", dev.name, pkt)
        try:
            self._receive(dev, frame, queue)
        finally:
            if token is not None:
                obs.tracer.end(token)

    def _receive(self, dev: NetDevice, frame: bytes, queue: int) -> None:
        kernel = self.kernel
        if isinstance(dev, PhysicalDevice):
            kernel.costs_charge("driver_rx")

        # --- XDP hook (driver level, raw frame, no sk_buff yet) ---
        if dev.xdp_prog is not None:
            watchdog = kernel.watchdog
            if watchdog is not None and watchdog.hook == "xdp" and watchdog.should_sample(dev):
                # Differential sampling: the fast path only *predicts*; the
                # plain kernel pipeline handles the packet authoritatively.
                watchdog.sample(self, dev, frame, queue)
                return
            cache = kernel.flow_cache
            if cache is not None and cache.enabled:
                result = cache.run_xdp(dev, frame)
            else:
                result = dev.xdp_prog.run_xdp(kernel, dev, frame)
            self._xdp_dispatch(dev, result, queue)
            return

        self.receive_after_xdp(dev, frame, queue)

    def _xdp_dispatch(self, dev: NetDevice, result, queue: int) -> None:
        """Route one XDP verdict into the rest of the pipeline. Shared by
        the per-frame path (:meth:`_receive`) and batched delivery
        (:meth:`receive_batch`)."""
        kernel = self.kernel
        self.xdp_actions[result.verdict] += 1
        self._trace_event("xdp", XDP_ACTION_NAMES.get(result.verdict, str(result.verdict)))
        if result.verdict == XDP_DROP:
            self.drop("xdp_drop", dev)
            return
        if result.verdict == XDP_TX:
            dev.transmit(result.frame)
            self.finish("xdp_tx", dev)
            return
        if result.verdict == XDP_REDIRECT:
            kernel.costs_charge("xdp_redirect")
            target = kernel.devices.by_index(result.redirect_ifindex)
            target.transmit(result.frame)
            self.finish("xdp_redirect", target)
            return
        if result.verdict == XDP_CONSUMED:
            self.finish("xdp_consumed", dev)
            return  # e.g. delivered to an AF_XDP socket
        if result.verdict == XDP_PASS:
            kernel.costs_charge("xdp_pass_to_stack")
            self.receive_after_xdp(dev, result.frame, queue)
            return
        # XDP_ABORTED or garbage
        self.drop("xdp_aborted", dev)

    def receive_batch(self, dev: NetDevice, frames: List[bytes], queue: int = 0) -> None:
        """Batched driver entry: the GRO / ``xdp_do_flush`` analogue.

        Accounts and charges driver work once for the whole burst and runs
        the XDP program over all frames before dispatching verdicts, so the
        per-frame bookkeeping (ledger attribution, engine lookup, zero-copy
        chain facts) amortizes over the batch. Observationally identical to
        calling :meth:`receive` per frame; any machinery that makes
        per-frame decisions — an armed tracer, a differential watchdog, the
        flow cache — forces the per-frame path.
        """
        kernel = self.kernel
        obs = getattr(kernel, "observability", None)
        if (
            dev.xdp_prog is None
            or kernel.watchdog is not None
            or (obs is not None and obs.tracer.armed)
            or (kernel.flow_cache is not None and kernel.flow_cache.enabled)
        ):
            for frame in frames:
                self.receive(dev, frame, queue)
            return
        n = len(frames)
        self.account_rx(n)
        if isinstance(dev, PhysicalDevice):
            kernel.charge_ns(kernel.costs.driver_rx * n)
        results = dev.xdp_prog.run_xdp_burst(kernel, dev, frames, queue)
        for result in results:
            self._xdp_dispatch(dev, result, queue)

    def receive_after_xdp(self, dev: NetDevice, frame: bytes, queue: int = 0) -> None:
        """The pipeline from sk_buff allocation onward (no XDP fast path).

        Split out so the watchdog can run a sampled frame through the plain
        kernel while predicting separately with the fast path.
        """
        kernel = self.kernel

        # --- sk_buff allocation + parse ---
        kernel.costs_charge("skb_alloc")
        try:
            pkt = Packet.from_bytes(frame)
        except PacketError:
            self.drop("malformed", dev)
            return
        skb = SKBuff(pkt=pkt, ifindex=dev.ifindex, rx_queue=queue)

        # --- TC ingress hook ---
        if dev.tc_ingress_prog is not None:
            watchdog = kernel.watchdog
            if watchdog is not None and watchdog.hook == "tc" and watchdog.should_sample(dev):
                watchdog.sample_tc(self, dev, skb, frame, queue)
                return
            cache = kernel.flow_cache
            if cache is not None and cache.enabled:
                result = cache.run_tc(dev, skb)
            else:
                result = dev.tc_ingress_prog.run_tc(kernel, dev, skb)
            self.tc_actions[result.verdict] += 1
            self._trace_event("tc", TC_ACTION_NAMES.get(result.verdict, str(result.verdict)))
            if result.verdict == TC_ACT_SHOT:
                if getattr(result, "aborted", False):
                    self.drop("tc_aborted", dev, skb)
                else:
                    self.drop("tc_shot", dev, skb)
                return
            if result.verdict == TC_ACT_REDIRECT:
                kernel.costs_charge("tc_redirect")
                target = kernel.devices.by_index(result.redirect_ifindex)
                self.emit_tx(target, result.frame)
                target.transmit(result.frame)
                self.finish("tc_redirect", target, skb)
                return
            if result.frame != frame:
                try:
                    skb = SKBuff(pkt=Packet.from_bytes(result.frame), ifindex=dev.ifindex, rx_queue=queue)
                except PacketError:
                    self.drop("malformed", dev)
                    return

        self.netif_receive(dev, skb)

    def netif_receive(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("__netif_receive_skb_core"):
            kernel.costs_charge("netif_receive")

            # Frames arriving on an enslaved port go through the bridge.
            if dev.master is not None:
                master = kernel.devices.by_index(dev.master)
                if isinstance(master, BridgeDevice):
                    with kernel.profiler.frame("br_handle_frame"):
                        passed_up = master.bridge.handle_frame(dev, skb)
                    if passed_up is None:
                        return  # the bridge settled it (forwarded or dropped)
                    skb = passed_up
                    dev = master

            ethertype = skb.pkt.eth.ethertype
            if skb.pkt.vlan is not None:
                ethertype = skb.pkt.vlan.ethertype

            if ethertype == ETH_P_ARP and skb.pkt.arp is not None:
                with kernel.profiler.frame("arp_rcv"):
                    self.arp_rcv(dev, skb)
                return
            if ethertype == ETH_P_IP and skb.pkt.ip is not None:
                with kernel.profiler.frame("ip_rcv"):
                    self.ip_rcv(dev, skb)
                return
            self.drop("unknown_ethertype", dev, skb)

    # ----------------------------------------------------------------- ARP

    def arp_rcv(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        arp = skb.pkt.arp
        if arp.opcode == ARP_REQUEST:
            if dev.has_address(arp.target_ip):
                # Learn the requester and answer.
                kernel.neighbors.update(dev.ifindex, arp.sender_ip, arp.sender_mac)
                reply = make_arp_reply(dev.mac, arp.target_ip, arp.sender_mac, arp.sender_ip)
                raw = reply.to_bytes()
                self.emit_tx(dev, raw)
                dev.transmit(raw)
        elif arp.opcode == ARP_REPLY:
            drained = kernel.neighbors.update(dev.ifindex, arp.sender_ip, arp.sender_mac)
            for queued in drained:
                queued_skb, route = queued
                self.ip_finish_output(queued_skb, route)
        self.finish("arp_rx", dev, skb)

    def arp_solicit(self, out_dev: NetDevice, target_ip: IPv4Addr) -> None:
        source_ip = out_dev.addresses[0].address if out_dev.addresses else IPv4Addr(0)
        request = make_arp_request(out_dev.mac, source_ip, target_ip)
        raw = request.to_bytes()
        self.emit_tx(out_dev, raw)
        out_dev.transmit(raw)

    # ------------------------------------------------------------------ IP

    def ip_rcv(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        kernel.costs_charge("ip_rcv")
        ip = skb.pkt.ip

        # VXLAN termination: UDP to the vxlan port on a local address.
        if (
            ip.proto == IPPROTO_UDP
            and isinstance(skb.pkt.l4, UDP)
            and self._vxlan_for(skb) is not None
            and self._is_local(ip.dst)
        ):
            self.vxlan_rcv(skb, dev)
            return

        if self._is_local(ip.dst) or ip.dst.is_broadcast or self._is_local_broadcast(dev, ip.dst):
            # inbound fragments reassemble before local processing
            if ip.is_fragment:
                with kernel.profiler.frame("ip_defrag"):
                    kernel.costs_charge("ip_rcv")
                    whole = self.reassembler.push(skb.pkt)
                if whole is None:
                    # waiting for more fragments: this frame settles here;
                    # the completing fragment carries the packet onward
                    self.finish("reasm_hold", dev, skb)
                    return
                skb.pkt = whole
                skb.invalidate_wire()
                ip = skb.pkt.ip
            # ipvs virtual services intercept at local-in.
            if self._ipvs_intercept(dev, skb):
                return
            with kernel.profiler.frame("nf_hook_slow[INPUT]"):
                verdict, __ = kernel.netfilter.evaluate("INPUT", skb, in_name=dev.name)
            if verdict != "ACCEPT":
                self.drop("nf_input", dev, skb)
                return
            self.local_deliver(skb)
            return

        if not kernel.sysctl.get_bool("net.ipv4.ip_forward"):
            self.drop("not_forwarding", dev, skb)
            return
        if kernel.sysctl.get_bool("net.ipv4.conf.all.rp_filter") and _is_martian_source(ip.src):
            self.drop("martian_source", dev, skb)
            return
        self.ip_forward(dev, skb)

    def ip_forward(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        ip = skb.pkt.ip
        if ip.ttl <= 1:
            self.drop("ttl_exceeded", dev, skb)
            self._icmp_time_exceeded(dev, skb)
            return
        if ip.is_fragment:
            # Fragment reassembly is slow-path-only work; we account the cost
            # and forward fragments independently (sufficient for the eval).
            kernel.costs_charge("ip_rcv")

        with kernel.profiler.frame("fib_table_lookup"):
            kernel.costs_charge("fib_lookup")
            route = kernel.fib.lookup(ip.dst)
            route = self._multipath_resolve(route, skb)
        if route is None:
            self.drop("no_route", dev, skb)
            self._icmp_unreachable(dev, skb)
            return

        out_dev = kernel.devices.by_index(route.oif)
        with kernel.profiler.frame("nf_hook_slow[FORWARD]"):
            if kernel.netfilter.has_stateful_rules("FORWARD"):
                # stateful filtering needs conntrack on the forward path
                kernel.costs_charge("conntrack_lookup")
                kernel.conntrack.track(skb)
            verdict, __ = kernel.netfilter.evaluate("FORWARD", skb, in_name=dev.name, out_name=out_dev.name)
        if verdict != "ACCEPT":
            self.drop("nf_forward", dev, skb)
            return

        with kernel.profiler.frame("ip_forward"):
            kernel.costs_charge("ip_forward")
            skb.pkt.ip = ip.decrement_ttl()
            skb.invalidate_wire()
        self.forwarded += 1
        self.ip_finish_output(skb, route)

    def ip_finish_output(self, skb: SKBuff, route: Route) -> None:
        kernel = self.kernel
        out_dev = kernel.devices.by_index(route.oif)
        next_hop = route.next_hop or skb.pkt.ip.dst

        with kernel.profiler.frame("ip_output"):
            kernel.costs_charge("ip_output")

            if skb.pkt.eth.dst.is_broadcast or skb.pkt.ip.dst.is_broadcast:
                self._xmit(out_dev, skb)
                return

            with kernel.profiler.frame("neigh_resolve"):
                kernel.costs_charge("neigh_lookup")
                mac = kernel.neighbors.resolved(out_dev.ifindex, next_hop)
            if mac is None:
                entry = kernel.neighbors.create_incomplete(out_dev.ifindex, next_hop)
                if kernel.neighbors.queue_packet(entry, (skb, route)):
                    # not settled: the packet is pending until ARP resolves
                    self._trace_event("neigh_queued", str(next_hop))
                    self.arp_solicit(out_dev, next_hop)
                else:
                    self.drop("neigh_queue_full", out_dev, skb)
                return

            skb.pkt.eth.src = out_dev.mac
            skb.pkt.eth.dst = mac
            skb.invalidate_wire()
            self._xmit(out_dev, skb)

    def _xmit(self, out_dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        # fragment oversized IP datagrams at the egress MTU (slow-path work,
        # per Table I; fast paths never see frames above MTU). wire_frame()
        # memoizes the serialization the TC-egress hook and dev_queue_xmit
        # reuse below.
        if skb.pkt.ip is not None and len(skb.wire_frame()) - 14 > out_dev.mtu:
            from repro.kernel.fragments import fragment

            with kernel.profiler.frame("ip_fragment"):
                kernel.costs_charge("ip_output")
                pieces = fragment(skb.pkt, out_dev.mtu)
            if not pieces:
                self.drop("frag_needed_df", out_dev, skb)
                return
            # the original datagram settles here; the pieces are already
            # accounted so their transmits/drops don't settle again
            self.finish("fragmented", out_dev, skb)
            for piece in pieces:
                piece_skb = SKBuff(pkt=piece, ifindex=skb.ifindex)
                piece_skb.accounted = True
                self._xmit_frame(out_dev, piece_skb)
            return
        self._xmit_frame(out_dev, skb)

    def _xmit_frame(self, out_dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("dev_queue_xmit"):
            kernel.costs_charge("dev_queue_xmit")
            frame = skb.wire_frame()
            if out_dev.tc_egress_prog is not None:
                result = out_dev.tc_egress_prog.run_tc(kernel, out_dev, skb)
                self.tc_actions[result.verdict] += 1
                if result.verdict == TC_ACT_SHOT:
                    self.drop("tc_egress_shot", out_dev, skb)
                    return
                frame = result.frame
            self.emit_tx(out_dev, frame)
            out_dev.transmit(frame)
            self.finish("tx", out_dev, skb)

    # --------------------------------------------------------- local paths

    def local_deliver(self, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("ip_local_deliver"):
            kernel.costs_charge("local_deliver")
            kernel.costs_charge("conntrack_lookup")
            kernel.conntrack.track(skb)
            ip = skb.pkt.ip
            if ip.proto == IPPROTO_ICMP and isinstance(skb.pkt.l4, ICMP):
                if skb.pkt.l4.icmp_type == ICMP_ECHO_REQUEST:
                    self._icmp_echo_reply(skb)
                    self.finish("local_icmp", skb=skb)
                    return
            kernel.costs_charge("socket_wakeup")
            if kernel.sockets.deliver(skb):
                self.delivered_local += 1
                self.finish("local_socket", skb=skb)
            else:
                self.drop("no_socket", skb=skb)

    def send_ip(self, ip: IPv4, l4, payload: bytes = b"") -> None:
        """Transmit a locally-generated IP packet (the socket TX path)."""
        kernel = self.kernel
        self.tx_local_packets += 1
        self.tx_local_by_cpu[self._ledger_cpu()] += 1
        pkt = Packet(
            eth=_placeholder_eth(),
            ip=ip,
            l4=l4,
            payload=payload,
        )
        obs = getattr(kernel, "observability", None)
        token = None
        if obs is not None and obs.tracer.armed:
            token = obs.tracer.begin("tx", None, pkt)
        try:
            self._send_ip(pkt)
        finally:
            if token is not None:
                obs.tracer.end(token)

    def _send_ip(self, pkt: Packet) -> None:
        kernel = self.kernel
        skb = SKBuff(pkt=pkt)
        ip = pkt.ip
        with kernel.profiler.frame("nf_hook_slow[OUTPUT]"):
            verdict, __ = kernel.netfilter.evaluate("OUTPUT", skb)
        if verdict != "ACCEPT":
            self.drop("nf_output", skb=skb)
            return
        if self._is_local(ip.dst):
            # loopback delivery
            self.local_deliver(skb)
            return
        kernel.costs_charge("fib_lookup")
        route = self._multipath_resolve(kernel.fib.lookup(ip.dst), skb)
        if route is None:
            self.drop("no_route_out", skb=skb)
            return
        self.ip_finish_output(skb, route)

    def _icmp_echo_reply(self, skb: SKBuff) -> None:
        request_ip = skb.pkt.ip
        request_icmp = skb.pkt.l4
        self.send_ip(
            IPv4(src=request_ip.dst, dst=request_ip.src, proto=IPPROTO_ICMP),
            ICMP(ICMP_ECHO_REPLY, ident=request_icmp.ident, seq=request_icmp.seq),
            skb.pkt.payload,
        )

    def _icmp_time_exceeded(self, dev: NetDevice, skb: SKBuff) -> None:
        if not dev.addresses:
            return
        from repro.netsim.packet import ICMP_TIME_EXCEEDED

        self.send_ip(
            IPv4(src=dev.addresses[0].address, dst=skb.pkt.ip.src, proto=IPPROTO_ICMP),
            ICMP(ICMP_TIME_EXCEEDED),
            skb.pkt.ip.pack(0)[:20],
        )

    def _icmp_unreachable(self, dev: NetDevice, skb: SKBuff) -> None:
        """ICMP destination unreachable (type 3, net unreachable)."""
        if not dev.addresses or skb.pkt.ip is None:
            return
        self.send_ip(
            IPv4(src=dev.addresses[0].address, dst=skb.pkt.ip.src, proto=IPPROTO_ICMP),
            ICMP(3, code=0),
            skb.pkt.ip.pack(0)[:20],
        )

    # --------------------------------------------------------------- vxlan

    def vxlan_rcv(self, skb: SKBuff, dev: Optional[NetDevice] = None) -> None:
        kernel = self.kernel
        kernel.costs_charge("vxlan_encap")
        payload = skb.pkt.payload
        if len(payload) < VXLAN_HDR.size:
            self.drop("vxlan_malformed", dev, skb)
            return
        flags, vni_field = VXLAN_HDR.unpack_from(payload)
        if not flags & VXLAN_FLAG_VNI:
            self.drop("vxlan_malformed", dev, skb)
            return
        vni = vni_field >> 8
        inner = payload[VXLAN_HDR.size :]
        vxlan_dev = self._vxlan_by_vni(vni)
        if vxlan_dev is None or not vxlan_dev.up:
            self.drop("vxlan_no_vni", dev, skb)
            return
        # Learn the remote vtep for the inner source MAC.
        try:
            src_mac = MacAddr.from_bytes(inner[6:12])
            vxlan_dev.fdb_add(src_mac, skb.pkt.ip.src)
        except Exception:
            pass
        # the outer packet terminates here; the decapsulated inner frame
        # re-enters the pipeline as its own rx
        self.finish("vxlan_decap", vxlan_dev, skb)
        vxlan_dev.deliver(inner)

    def vxlan_encap_out(self, vxlan_dev: VxlanDevice, inner_frame: bytes, remote: IPv4Addr) -> None:
        kernel = self.kernel
        kernel.costs_charge("vxlan_encap")
        header = VXLAN_HDR.pack(VXLAN_FLAG_VNI, vxlan_dev.vni << 8)
        self.send_ip(
            IPv4(src=vxlan_dev.local, dst=remote, proto=IPPROTO_UDP),
            UDP(sport=49152 + (vxlan_dev.vni & 0x3FFF), dport=vxlan_dev.port),
            header + inner_frame,
        )

    def _vxlan_for(self, skb: SKBuff) -> Optional[VxlanDevice]:
        udp = skb.pkt.l4
        for dev in self.kernel.devices.all():
            if isinstance(dev, VxlanDevice) and udp.dport == dev.port:
                return dev
        return None

    def _vxlan_by_vni(self, vni: int) -> Optional[VxlanDevice]:
        for dev in self.kernel.devices.all():
            if isinstance(dev, VxlanDevice) and dev.vni == vni:
                return dev
        return None

    # -------------------------------------------------------------- ipvs

    def _ipvs_intercept(self, dev: NetDevice, skb: SKBuff) -> bool:
        """DNAT packets addressed to an ipvs virtual service. Returns True
        when the packet was consumed (rescheduled toward a real server)."""
        kernel = self.kernel
        from repro.kernel.conntrack import ConnTuple, ConntrackFull

        tup = ConnTuple.from_skb(skb)
        if tup is None or kernel.ipvs.match(tup) is None:
            return False
        kernel.costs_charge("conntrack_lookup")
        entry = kernel.conntrack.lookup(tup)
        if entry is None or entry.dnat_to is None:
            kernel.costs_charge("ipvs_schedule")
            kernel.costs_charge("conntrack_create")
            try:
                dnat = kernel.ipvs.connect(tup)
            except ConntrackFull:
                # NAT pinning needs a conntrack entry; without one later
                # packets could reach a different real server, so drop.
                self.drop("conntrack_full", dev, skb)
                return True
            if dnat is None:
                self.drop("ipvs_no_dest", dev, skb)
                return True
        else:
            dnat = entry.dnat_to
        new_ip, new_port = dnat
        skb.pkt.ip.dst = new_ip
        skb.invalidate_wire()
        skb.pkt.l4.dport = new_port
        kernel.costs_charge("fib_lookup")
        route = self._multipath_resolve(kernel.fib.lookup(new_ip), skb)
        if route is None:
            self.drop("no_route", dev, skb)
            return True
        self.forwarded += 1
        self.ip_finish_output(skb, route)
        return True

    # ------------------------------------------------------------- helpers

    def _multipath_resolve(self, route: Optional[Route], skb: SKBuff) -> Optional[Route]:
        """Collapse an ECMP multipath route to one concrete next hop.

        Uses the symmetric 5-tuple flow hash (the same one RPS steering and
        conntrack sharding use), so both directions of a flow pick the same
        member and the choice is stable for the flow's lifetime under the
        resilient policy. ``None`` (no usable member) is treated by callers
        exactly like a FIB miss.
        """
        if route is None or route.nhg is None:
            return route
        from repro.netsim.rss import symmetric_flow_hash

        kernel = self.kernel
        ip = skb.pkt.ip
        l4 = skb.pkt.l4
        sport = getattr(l4, "sport", 0) or 0
        dport = getattr(l4, "dport", 0) or 0
        kernel.costs_charge("fib_lookup")  # bucket-table indirection cost
        flow_hash = symmetric_flow_hash(ip.src.value, ip.dst.value, ip.proto, sport, dport)
        return kernel.fib.resolve(route, flow_hash, kernel.clock.now_ns)

    def _is_local(self, addr: IPv4Addr) -> bool:
        for dev in self.kernel.devices.all():
            if dev.has_address(addr):
                return True
        return False

    def _is_local_broadcast(self, dev: NetDevice, addr: IPv4Addr) -> bool:
        return any(a.broadcast == addr for a in dev.addresses)


def _placeholder_eth():
    from repro.netsim.packet import Ethernet

    zero = MacAddr(0)
    return Ethernet(dst=zero, src=zero, ethertype=ETH_P_IP)
