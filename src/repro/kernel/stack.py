"""The packet pipeline: the LinuxFP *slow path*.

``Stack.receive`` mirrors the structure of the real Linux receive path —
driver → XDP hook → sk_buff allocation → TC ingress → bridge handling →
``ip_rcv`` → routing decision → forward / local deliver → neighbor output →
TC egress → driver. Stage names recorded in the profiler match the kernel
functions a flame graph of real Linux forwarding shows (paper Fig 1), and
every stage charges its calibrated cost to the simulated clock.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.kernel.fib import Route
from repro.kernel.hooks_api import (
    TC_ACT_REDIRECT,
    TC_ACT_SHOT,
    XDP_CONSUMED,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XDP_TX,
)
from repro.kernel.interfaces import BridgeDevice, NetDevice, PhysicalDevice, VxlanDevice
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.packet import (
    ARP_REPLY,
    ARP_REQUEST,
    ETH_P_ARP,
    ETH_P_IP,
    ICMP,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IPPROTO_ICMP,
    IPPROTO_UDP,
    IPv4,
    Packet,
    PacketError,
    UDP,
    make_arp_reply,
    make_arp_request,
)
from repro.netsim.skbuff import SKBuff

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

VXLAN_HDR = struct.Struct("!B3xI")  # flags, reserved, (vni << 8)
VXLAN_FLAG_VNI = 0x08


class Stack:
    """The receive/transmit pipeline for one kernel."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.drops: Counter = Counter()
        self.forwarded = 0
        self.delivered_local = 0
        self.xdp_actions: Counter = Counter()
        self.tc_actions: Counter = Counter()
        # Transmit observation taps: called as tap(ifindex, frame) for every
        # slow-path transmit. The differential watchdog installs one to
        # capture the plain kernel's output for a sampled packet.
        self.tx_taps: List[Callable[[int, bytes], None]] = []
        from repro.kernel.fragments import Reassembler

        self.reassembler = Reassembler(kernel.clock)

    def emit_tx(self, dev: NetDevice, frame: bytes) -> None:
        """Report a slow-path transmit to the installed taps."""
        for tap in self.tx_taps:
            tap(dev.ifindex, frame)

    # ------------------------------------------------------------------ RX

    def receive(self, dev: NetDevice, frame: bytes, queue: int = 0) -> None:
        """Entry point for a frame arriving on ``dev``."""
        kernel = self.kernel
        if isinstance(dev, PhysicalDevice):
            kernel.costs_charge("driver_rx")

        # --- XDP hook (driver level, raw frame, no sk_buff yet) ---
        if dev.xdp_prog is not None:
            watchdog = kernel.watchdog
            if watchdog is not None and watchdog.hook == "xdp" and watchdog.should_sample(dev):
                # Differential sampling: the fast path only *predicts*; the
                # plain kernel pipeline handles the packet authoritatively.
                watchdog.sample(self, dev, frame, queue)
                return
            cache = kernel.flow_cache
            if cache is not None and cache.enabled:
                result = cache.run_xdp(dev, frame)
            else:
                result = dev.xdp_prog.run_xdp(kernel, dev, frame)
            self.xdp_actions[result.verdict] += 1
            if result.verdict == XDP_DROP:
                self.drops["xdp_drop"] += 1
                return
            if result.verdict == XDP_TX:
                dev.transmit(result.frame)
                return
            if result.verdict == XDP_REDIRECT:
                kernel.costs_charge("xdp_redirect")
                target = kernel.devices.by_index(result.redirect_ifindex)
                target.transmit(result.frame)
                return
            if result.verdict == XDP_CONSUMED:
                return  # e.g. delivered to an AF_XDP socket
            if result.verdict == XDP_PASS:
                kernel.costs_charge("xdp_pass_to_stack")
                frame = result.frame
            else:  # XDP_ABORTED or garbage
                self.drops["xdp_aborted"] += 1
                return

        self.receive_after_xdp(dev, frame, queue)

    def receive_after_xdp(self, dev: NetDevice, frame: bytes, queue: int = 0) -> None:
        """The pipeline from sk_buff allocation onward (no XDP fast path).

        Split out so the watchdog can run a sampled frame through the plain
        kernel while predicting separately with the fast path.
        """
        kernel = self.kernel

        # --- sk_buff allocation + parse ---
        kernel.costs_charge("skb_alloc")
        try:
            pkt = Packet.from_bytes(frame)
        except PacketError:
            self.drops["malformed"] += 1
            return
        skb = SKBuff(pkt=pkt, ifindex=dev.ifindex, rx_queue=queue)

        # --- TC ingress hook ---
        if dev.tc_ingress_prog is not None:
            watchdog = kernel.watchdog
            if watchdog is not None and watchdog.hook == "tc" and watchdog.should_sample(dev):
                watchdog.sample_tc(self, dev, skb, frame, queue)
                return
            cache = kernel.flow_cache
            if cache is not None and cache.enabled:
                result = cache.run_tc(dev, skb)
            else:
                result = dev.tc_ingress_prog.run_tc(kernel, dev, skb)
            self.tc_actions[result.verdict] += 1
            if result.verdict == TC_ACT_SHOT:
                self.drops["tc_shot"] += 1
                return
            if result.verdict == TC_ACT_REDIRECT:
                kernel.costs_charge("tc_redirect")
                target = kernel.devices.by_index(result.redirect_ifindex)
                self.emit_tx(target, result.frame)
                target.transmit(result.frame)
                return
            if result.frame != frame:
                try:
                    skb = SKBuff(pkt=Packet.from_bytes(result.frame), ifindex=dev.ifindex, rx_queue=queue)
                except PacketError:
                    self.drops["malformed"] += 1
                    return

        self.netif_receive(dev, skb)

    def netif_receive(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("__netif_receive_skb_core"):
            kernel.costs_charge("netif_receive")

            # Frames arriving on an enslaved port go through the bridge.
            if dev.master is not None:
                master = kernel.devices.by_index(dev.master)
                if isinstance(master, BridgeDevice):
                    with kernel.profiler.frame("br_handle_frame"):
                        passed_up = master.bridge.handle_frame(dev, skb)
                    if passed_up is None:
                        return
                    skb = passed_up
                    dev = master

            ethertype = skb.pkt.eth.ethertype
            if skb.pkt.vlan is not None:
                ethertype = skb.pkt.vlan.ethertype

            if ethertype == ETH_P_ARP and skb.pkt.arp is not None:
                with kernel.profiler.frame("arp_rcv"):
                    self.arp_rcv(dev, skb)
                return
            if ethertype == ETH_P_IP and skb.pkt.ip is not None:
                with kernel.profiler.frame("ip_rcv"):
                    self.ip_rcv(dev, skb)
                return
            self.drops["unknown_ethertype"] += 1

    # ----------------------------------------------------------------- ARP

    def arp_rcv(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        arp = skb.pkt.arp
        if arp.opcode == ARP_REQUEST:
            if dev.has_address(arp.target_ip):
                # Learn the requester and answer.
                kernel.neighbors.update(dev.ifindex, arp.sender_ip, arp.sender_mac)
                reply = make_arp_reply(dev.mac, arp.target_ip, arp.sender_mac, arp.sender_ip)
                raw = reply.to_bytes()
                self.emit_tx(dev, raw)
                dev.transmit(raw)
            return
        if arp.opcode == ARP_REPLY:
            drained = kernel.neighbors.update(dev.ifindex, arp.sender_ip, arp.sender_mac)
            for queued in drained:
                queued_skb, route = queued
                self.ip_finish_output(queued_skb, route)

    def arp_solicit(self, out_dev: NetDevice, target_ip: IPv4Addr) -> None:
        source_ip = out_dev.addresses[0].address if out_dev.addresses else IPv4Addr(0)
        request = make_arp_request(out_dev.mac, source_ip, target_ip)
        raw = request.to_bytes()
        self.emit_tx(out_dev, raw)
        out_dev.transmit(raw)

    # ------------------------------------------------------------------ IP

    def ip_rcv(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        kernel.costs_charge("ip_rcv")
        ip = skb.pkt.ip

        # VXLAN termination: UDP to the vxlan port on a local address.
        if (
            ip.proto == IPPROTO_UDP
            and isinstance(skb.pkt.l4, UDP)
            and self._vxlan_for(skb) is not None
            and self._is_local(ip.dst)
        ):
            self.vxlan_rcv(skb)
            return

        if self._is_local(ip.dst) or ip.dst.is_broadcast or self._is_local_broadcast(dev, ip.dst):
            # inbound fragments reassemble before local processing
            if ip.is_fragment:
                with kernel.profiler.frame("ip_defrag"):
                    kernel.costs_charge("ip_rcv")
                    whole = self.reassembler.push(skb.pkt)
                if whole is None:
                    return  # waiting for more fragments
                skb.pkt = whole
                ip = skb.pkt.ip
            # ipvs virtual services intercept at local-in.
            if self._ipvs_intercept(dev, skb):
                return
            with kernel.profiler.frame("nf_hook_slow[INPUT]"):
                verdict, __ = kernel.netfilter.evaluate("INPUT", skb, in_name=dev.name)
            if verdict != "ACCEPT":
                self.drops["nf_input"] += 1
                return
            self.local_deliver(skb)
            return

        if not kernel.sysctl.get_bool("net.ipv4.ip_forward"):
            self.drops["not_forwarding"] += 1
            return
        self.ip_forward(dev, skb)

    def ip_forward(self, dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        ip = skb.pkt.ip
        if ip.ttl <= 1:
            self.drops["ttl_exceeded"] += 1
            self._icmp_time_exceeded(dev, skb)
            return
        if ip.is_fragment:
            # Fragment reassembly is slow-path-only work; we account the cost
            # and forward fragments independently (sufficient for the eval).
            kernel.costs_charge("ip_rcv")

        with kernel.profiler.frame("fib_table_lookup"):
            kernel.costs_charge("fib_lookup")
            route = kernel.fib.lookup(ip.dst)
        if route is None:
            self.drops["no_route"] += 1
            self._icmp_unreachable(dev, skb)
            return

        out_dev = kernel.devices.by_index(route.oif)
        with kernel.profiler.frame("nf_hook_slow[FORWARD]"):
            if kernel.netfilter.has_stateful_rules("FORWARD"):
                # stateful filtering needs conntrack on the forward path
                kernel.costs_charge("conntrack_lookup")
                kernel.conntrack.track(skb)
            verdict, __ = kernel.netfilter.evaluate("FORWARD", skb, in_name=dev.name, out_name=out_dev.name)
        if verdict != "ACCEPT":
            self.drops["nf_forward"] += 1
            return

        with kernel.profiler.frame("ip_forward"):
            kernel.costs_charge("ip_forward")
            skb.pkt.ip = ip.decrement_ttl()
        self.forwarded += 1
        self.ip_finish_output(skb, route)

    def ip_finish_output(self, skb: SKBuff, route: Route) -> None:
        kernel = self.kernel
        out_dev = kernel.devices.by_index(route.oif)
        next_hop = route.next_hop or skb.pkt.ip.dst

        with kernel.profiler.frame("ip_output"):
            kernel.costs_charge("ip_output")

            if skb.pkt.eth.dst.is_broadcast or skb.pkt.ip.dst.is_broadcast:
                self._xmit(out_dev, skb)
                return

            with kernel.profiler.frame("neigh_resolve"):
                kernel.costs_charge("neigh_lookup")
                mac = kernel.neighbors.resolved(out_dev.ifindex, next_hop)
            if mac is None:
                entry = kernel.neighbors.create_incomplete(out_dev.ifindex, next_hop)
                if kernel.neighbors.queue_packet(entry, (skb, route)):
                    self.arp_solicit(out_dev, next_hop)
                else:
                    self.drops["neigh_queue_full"] += 1
                return

            skb.pkt.eth.src = out_dev.mac
            skb.pkt.eth.dst = mac
            self._xmit(out_dev, skb)

    def _xmit(self, out_dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        # fragment oversized IP datagrams at the egress MTU (slow-path work,
        # per Table I; fast paths never see frames above MTU)
        if skb.pkt.ip is not None and skb.pkt.frame_len - 14 > out_dev.mtu:
            from repro.kernel.fragments import fragment

            with kernel.profiler.frame("ip_fragment"):
                kernel.costs_charge("ip_output")
                pieces = fragment(skb.pkt, out_dev.mtu)
            if not pieces:
                self.drops["frag_needed_df"] += 1
                return
            for piece in pieces:
                self._xmit_frame(out_dev, SKBuff(pkt=piece, ifindex=skb.ifindex))
            return
        self._xmit_frame(out_dev, skb)

    def _xmit_frame(self, out_dev: NetDevice, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("dev_queue_xmit"):
            kernel.costs_charge("dev_queue_xmit")
            frame = skb.pkt.to_bytes()
            if out_dev.tc_egress_prog is not None:
                result = out_dev.tc_egress_prog.run_tc(kernel, out_dev, skb)
                self.tc_actions[result.verdict] += 1
                if result.verdict == TC_ACT_SHOT:
                    self.drops["tc_egress_shot"] += 1
                    return
                frame = result.frame
            self.emit_tx(out_dev, frame)
            out_dev.transmit(frame)

    # --------------------------------------------------------- local paths

    def local_deliver(self, skb: SKBuff) -> None:
        kernel = self.kernel
        with kernel.profiler.frame("ip_local_deliver"):
            kernel.costs_charge("local_deliver")
            kernel.costs_charge("conntrack_lookup")
            kernel.conntrack.track(skb)
            ip = skb.pkt.ip
            if ip.proto == IPPROTO_ICMP and isinstance(skb.pkt.l4, ICMP):
                if skb.pkt.l4.icmp_type == ICMP_ECHO_REQUEST:
                    self._icmp_echo_reply(skb)
                    return
            kernel.costs_charge("socket_wakeup")
            if kernel.sockets.deliver(skb):
                self.delivered_local += 1
            else:
                self.drops["no_socket"] += 1

    def send_ip(self, ip: IPv4, l4, payload: bytes = b"") -> None:
        """Transmit a locally-generated IP packet (the socket TX path)."""
        kernel = self.kernel
        pkt = Packet(
            eth=_placeholder_eth(),
            ip=ip,
            l4=l4,
            payload=payload,
        )
        skb = SKBuff(pkt=pkt)
        with kernel.profiler.frame("nf_hook_slow[OUTPUT]"):
            verdict, __ = kernel.netfilter.evaluate("OUTPUT", skb)
        if verdict != "ACCEPT":
            self.drops["nf_output"] += 1
            return
        if self._is_local(ip.dst):
            # loopback delivery
            self.local_deliver(skb)
            return
        kernel.costs_charge("fib_lookup")
        route = kernel.fib.lookup(ip.dst)
        if route is None:
            self.drops["no_route_out"] += 1
            return
        self.ip_finish_output(skb, route)

    def _icmp_echo_reply(self, skb: SKBuff) -> None:
        request_ip = skb.pkt.ip
        request_icmp = skb.pkt.l4
        self.send_ip(
            IPv4(src=request_ip.dst, dst=request_ip.src, proto=IPPROTO_ICMP),
            ICMP(ICMP_ECHO_REPLY, ident=request_icmp.ident, seq=request_icmp.seq),
            skb.pkt.payload,
        )

    def _icmp_time_exceeded(self, dev: NetDevice, skb: SKBuff) -> None:
        if not dev.addresses:
            return
        from repro.netsim.packet import ICMP_TIME_EXCEEDED

        self.send_ip(
            IPv4(src=dev.addresses[0].address, dst=skb.pkt.ip.src, proto=IPPROTO_ICMP),
            ICMP(ICMP_TIME_EXCEEDED),
            skb.pkt.ip.pack(0)[:20],
        )

    def _icmp_unreachable(self, dev: NetDevice, skb: SKBuff) -> None:
        """ICMP destination unreachable (type 3, net unreachable)."""
        if not dev.addresses or skb.pkt.ip is None:
            return
        self.send_ip(
            IPv4(src=dev.addresses[0].address, dst=skb.pkt.ip.src, proto=IPPROTO_ICMP),
            ICMP(3, code=0),
            skb.pkt.ip.pack(0)[:20],
        )

    # --------------------------------------------------------------- vxlan

    def vxlan_rcv(self, skb: SKBuff) -> None:
        kernel = self.kernel
        kernel.costs_charge("vxlan_encap")
        payload = skb.pkt.payload
        if len(payload) < VXLAN_HDR.size:
            self.drops["vxlan_malformed"] += 1
            return
        flags, vni_field = VXLAN_HDR.unpack_from(payload)
        if not flags & VXLAN_FLAG_VNI:
            self.drops["vxlan_malformed"] += 1
            return
        vni = vni_field >> 8
        inner = payload[VXLAN_HDR.size :]
        vxlan_dev = self._vxlan_by_vni(vni)
        if vxlan_dev is None or not vxlan_dev.up:
            self.drops["vxlan_no_vni"] += 1
            return
        # Learn the remote vtep for the inner source MAC.
        try:
            src_mac = MacAddr.from_bytes(inner[6:12])
            vxlan_dev.fdb_add(src_mac, skb.pkt.ip.src)
        except Exception:
            pass
        vxlan_dev.deliver(inner)

    def vxlan_encap_out(self, vxlan_dev: VxlanDevice, inner_frame: bytes, remote: IPv4Addr) -> None:
        kernel = self.kernel
        kernel.costs_charge("vxlan_encap")
        header = VXLAN_HDR.pack(VXLAN_FLAG_VNI, vxlan_dev.vni << 8)
        self.send_ip(
            IPv4(src=vxlan_dev.local, dst=remote, proto=IPPROTO_UDP),
            UDP(sport=49152 + (vxlan_dev.vni & 0x3FFF), dport=vxlan_dev.port),
            header + inner_frame,
        )

    def _vxlan_for(self, skb: SKBuff) -> Optional[VxlanDevice]:
        udp = skb.pkt.l4
        for dev in self.kernel.devices.all():
            if isinstance(dev, VxlanDevice) and udp.dport == dev.port:
                return dev
        return None

    def _vxlan_by_vni(self, vni: int) -> Optional[VxlanDevice]:
        for dev in self.kernel.devices.all():
            if isinstance(dev, VxlanDevice) and dev.vni == vni:
                return dev
        return None

    # -------------------------------------------------------------- ipvs

    def _ipvs_intercept(self, dev: NetDevice, skb: SKBuff) -> bool:
        """DNAT packets addressed to an ipvs virtual service. Returns True
        when the packet was consumed (rescheduled toward a real server)."""
        kernel = self.kernel
        from repro.kernel.conntrack import ConnTuple

        tup = ConnTuple.from_skb(skb)
        if tup is None or kernel.ipvs.match(tup) is None:
            return False
        kernel.costs_charge("conntrack_lookup")
        entry = kernel.conntrack.lookup(tup)
        if entry is None or entry.dnat_to is None:
            kernel.costs_charge("ipvs_schedule")
            kernel.costs_charge("conntrack_create")
            dnat = kernel.ipvs.connect(tup)
            if dnat is None:
                self.drops["ipvs_no_dest"] += 1
                return True
        else:
            dnat = entry.dnat_to
        new_ip, new_port = dnat
        skb.pkt.ip.dst = new_ip
        skb.pkt.l4.dport = new_port
        kernel.costs_charge("fib_lookup")
        route = kernel.fib.lookup(new_ip)
        if route is None:
            self.drops["no_route"] += 1
            return True
        self.forwarded += 1
        self.ip_finish_output(skb, route)
        return True

    # ------------------------------------------------------------- helpers

    def _is_local(self, addr: IPv4Addr) -> bool:
        for dev in self.kernel.devices.all():
            if dev.has_address(addr):
                return True
        return False

    def _is_local_broadcast(self, dev: NetDevice, addr: IPv4Addr) -> bool:
        return any(a.broadcast == addr for a in dev.addresses)


def _placeholder_eth():
    from repro.netsim.packet import Ethernet

    zero = MacAddr(0)
    return Ethernet(dst=zero, src=zero, ethertype=ETH_P_IP)
