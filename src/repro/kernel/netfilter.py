"""Netfilter: iptables-style tables, chains, and linearly-scanned rules.

Only the ``filter`` table semantics the paper exercises are modelled:
built-in chains INPUT / FORWARD / OUTPUT with a default policy, rules with
the classic 5-tuple-ish matches (src/dst prefix, protocol, ports, in/out
interface) plus ipset matches. Rule evaluation is intentionally a linear
scan — the paper's Fig 8 measures exactly this cost, and LinuxFP's
``bpf_ipt_lookup`` helper inherits it (while ipset aggregation avoids it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Prefix
from repro.netsim.packet import IPv4, TCP, UDP
from repro.netsim.skbuff import SKBuff

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.ipset import IpsetRegistry

# hook names (filter table)
INPUT = "INPUT"
FORWARD = "FORWARD"
OUTPUT = "OUTPUT"
BUILTIN_CHAINS = (INPUT, FORWARD, OUTPUT)

ACCEPT = "ACCEPT"
DROP = "DROP"
RETURN = "RETURN"


class NetfilterError(ValueError):
    """Raised for invalid rule/chain operations."""


@dataclass
class Rule:
    """One iptables rule. ``None`` fields are wildcards."""

    target: str
    src: Optional[IPv4Prefix] = None
    dst: Optional[IPv4Prefix] = None
    proto: Optional[int] = None
    sport: Optional[int] = None
    dport: Optional[int] = None
    in_iface: Optional[str] = None
    out_iface: Optional[str] = None
    match_set: Optional[str] = None  # ipset name
    set_dir: str = "src"  # which address the set matches
    ct_state: Optional[str] = None  # "NEW" | "ESTABLISHED" (stateful match)
    handle: int = 0
    packets: int = 0

    def __post_init__(self) -> None:
        if self.target not in (ACCEPT, DROP, RETURN):
            raise NetfilterError(f"unsupported target {self.target!r}")
        if self.set_dir not in ("src", "dst"):
            raise NetfilterError(f"bad set direction {self.set_dir!r}")
        if self.ct_state is not None and self.ct_state not in ("NEW", "ESTABLISHED"):
            raise NetfilterError(f"unsupported conntrack state {self.ct_state!r}")

    def matches(
        self,
        ip: IPv4,
        skb: SKBuff,
        in_name: Optional[str],
        out_name: Optional[str],
        ipsets: "IpsetRegistry",
    ) -> bool:
        if self.src is not None and not self.src.contains(ip.src):
            return False
        if self.dst is not None and not self.dst.contains(ip.dst):
            return False
        if self.proto is not None and ip.proto != self.proto:
            return False
        if self.sport is not None or self.dport is not None:
            l4 = skb.pkt.l4
            if not isinstance(l4, (TCP, UDP)):
                return False
            if self.sport is not None and l4.sport != self.sport:
                return False
            if self.dport is not None and l4.dport != self.dport:
                return False
        if self.in_iface is not None and in_name != self.in_iface:
            return False
        if self.out_iface is not None and out_name != self.out_iface:
            return False
        if self.match_set is not None:
            ipset = ipsets.get(self.match_set)
            if ipset is None:
                return False
            addr = ip.src if self.set_dir == "src" else ip.dst
            if not ipset.test(addr):
                return False
        if self.ct_state is not None:
            entry = skb.conntrack
            state = getattr(entry, "state", None)
            if self.ct_state == "ESTABLISHED":
                if state != "ESTABLISHED":
                    return False
            else:  # NEW: untracked or explicitly new connections
                if state not in (None, "NEW"):
                    return False
        return True


@dataclass
class Chain:
    name: str
    policy: str = ACCEPT
    rules: List[Rule] = field(default_factory=list)


class Netfilter:
    """The filter table for one kernel."""

    def __init__(self, kernel) -> None:
        self._kernel = kernel
        self.chains: Dict[str, Chain] = {name: Chain(name) for name in BUILTIN_CHAINS}
        self._next_handle = 1
        # Generation tag for the flow cache: bumped on every ruleset mutation.
        self.gen = 0
        # Per-chain verdict counters (observability): chain -> verdict -> n.
        from collections import Counter

        self.verdicts: Dict[str, Counter] = {name: Counter() for name in BUILTIN_CHAINS}

    def chain(self, name: str) -> Chain:
        try:
            return self.chains[name]
        except KeyError:
            raise NetfilterError(f"no chain {name!r}") from None

    def set_policy(self, chain_name: str, policy: str) -> None:
        if policy not in (ACCEPT, DROP):
            raise NetfilterError(f"bad policy {policy!r}")
        self.chain(chain_name).policy = policy
        self.gen += 1

    def append_rule(self, chain_name: str, rule: Rule) -> Rule:
        rule.handle = self._next_handle
        self._next_handle += 1
        self.chain(chain_name).rules.append(rule)
        self.gen += 1
        return rule

    def insert_rule(self, chain_name: str, rule: Rule, position: int = 0) -> Rule:
        rule.handle = self._next_handle
        self._next_handle += 1
        self.chain(chain_name).rules.insert(position, rule)
        self.gen += 1
        return rule

    def delete_rule(self, chain_name: str, handle: int) -> Rule:
        chain = self.chain(chain_name)
        for i, rule in enumerate(chain.rules):
            if rule.handle == handle:
                self.gen += 1
                return chain.rules.pop(i)
        raise NetfilterError(f"no rule with handle {handle} in {chain_name}")

    def flush(self, chain_name: Optional[str] = None) -> None:
        for chain in self.chains.values():
            if chain_name is None or chain.name == chain_name:
                if chain.rules:
                    self.gen += 1
                chain.rules.clear()

    def rule_count(self, chain_name: Optional[str] = None) -> int:
        if chain_name is not None:
            return len(self.chain(chain_name).rules)
        return sum(len(c.rules) for c in self.chains.values())

    def has_stateful_rules(self, chain_name: str) -> bool:
        """True when the chain needs conntrack state to evaluate."""
        return any(r.ct_state is not None for r in self.chain(chain_name).rules)

    def evaluate(
        self,
        chain_name: str,
        skb: SKBuff,
        in_name: Optional[str] = None,
        out_name: Optional[str] = None,
    ) -> Tuple[str, int]:
        """Traverse a chain; returns (verdict, rules_scanned).

        Charges the per-hook overhead plus the per-rule linear-scan cost to
        the simulated clock, which is what makes Fig 8's rule-count scaling
        measurable.
        """
        kernel = self._kernel
        kernel.costs_charge("nf_hook_overhead")
        chain = self.chain(chain_name)
        ip = skb.pkt.ip
        if ip is None:
            self.verdicts[chain_name][ACCEPT] += 1
            return ACCEPT, 0
        scanned = 0
        for rule in chain.rules:
            scanned += 1
            kernel.costs_charge("nf_rule_cost")
            if rule.match_set is not None:
                kernel.costs_charge("ipset_lookup")
            if rule.matches(ip, skb, in_name, out_name, kernel.ipsets):
                rule.packets += 1
                if rule.target == RETURN:
                    break
                self.verdicts[chain_name][rule.target] += 1
                return rule.target, scanned
        self.verdicts[chain_name][chain.policy] += 1
        return chain.policy, scanned
