"""ipset: named sets of addresses/networks matched in O(1)-ish time.

The paper's virtual-gateway experiment aggregates a 100-address blacklist
into one ipset-backed rule, turning iptables' linear scan into a single hash
lookup (Fig 8, Table IV). We support the two types that experiment needs:
``hash:ip`` (exact addresses) and ``hash:net`` (prefixes, matched per stored
prefix length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.netsim.addresses import AddrLike, IPv4Addr, IPv4Prefix, ipv4

SET_TYPES = ("hash:ip", "hash:net")


class IpsetError(ValueError):
    """Raised for invalid ipset operations."""


class IpSet:
    """One named set."""

    def __init__(self, name: str, set_type: str = "hash:ip", registry: "Optional[IpsetRegistry]" = None) -> None:
        if set_type not in SET_TYPES:
            raise IpsetError(f"unsupported set type {set_type!r}")
        self.name = name
        self.set_type = set_type
        self._registry = registry
        self._ips: Set[int] = set()
        # hash:net - one hash set per prefix length present
        self._nets: Dict[int, Set[int]] = {}

    def _bump(self) -> None:
        if self._registry is not None:
            self._registry.gen += 1

    def add(self, entry: AddrLike, prefixlen: int = 32) -> None:
        if self.set_type == "hash:ip":
            if prefixlen != 32:
                raise IpsetError("hash:ip sets hold /32 addresses only")
            value = ipv4(entry).value
            if value not in self._ips:
                self._ips.add(value)
                self._bump()
        else:
            prefix = IPv4Prefix(ipv4(entry), prefixlen)
            bucket = self._nets.setdefault(prefixlen, set())
            if prefix.address.value not in bucket:
                bucket.add(prefix.address.value)
                self._bump()

    def remove(self, entry: AddrLike, prefixlen: int = 32) -> None:
        if self.set_type == "hash:ip":
            value = ipv4(entry).value
            if value in self._ips:
                self._ips.discard(value)
                self._bump()
        else:
            prefix = IPv4Prefix(ipv4(entry), prefixlen)
            bucket = self._nets.get(prefixlen)
            if bucket is not None and prefix.address.value in bucket:
                bucket.discard(prefix.address.value)
                if not bucket:
                    del self._nets[prefixlen]
                self._bump()

    def test(self, addr: AddrLike) -> bool:
        value = ipv4(addr).value
        if self.set_type == "hash:ip":
            return value in self._ips
        for length, bucket in self._nets.items():
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            if (value & mask) in bucket:
                return True
        return False

    def entries(self) -> List[Tuple[IPv4Addr, int]]:
        if self.set_type == "hash:ip":
            return [(IPv4Addr(v), 32) for v in sorted(self._ips)]
        out = []
        for length in sorted(self._nets):
            out.extend((IPv4Addr(v), length) for v in sorted(self._nets[length]))
        return out

    def __len__(self) -> int:
        if self.set_type == "hash:ip":
            return len(self._ips)
        return sum(len(b) for b in self._nets.values())


class IpsetRegistry:
    """All sets on a kernel, by name."""

    def __init__(self) -> None:
        self._sets: Dict[str, IpSet] = {}
        # Generation tag for the flow cache: bumped whenever any set's
        # membership (or the set of sets) changes.
        self.gen = 0

    def create(self, name: str, set_type: str = "hash:ip") -> IpSet:
        if name in self._sets:
            raise IpsetError(f"set {name!r} exists")
        ipset = IpSet(name, set_type, registry=self)
        self._sets[name] = ipset
        self.gen += 1
        return ipset

    def destroy(self, name: str) -> None:
        if name not in self._sets:
            raise IpsetError(f"no set {name!r}")
        del self._sets[name]
        self.gen += 1

    def get(self, name: str) -> Optional[IpSet]:
        return self._sets.get(name)

    def require(self, name: str) -> IpSet:
        ipset = self._sets.get(name)
        if ipset is None:
            raise IpsetError(f"no set {name!r}")
        return ipset

    def names(self) -> List[str]:
        return sorted(self._sets)
