"""ipset: named sets of addresses/networks matched in O(1)-ish time.

The paper's virtual-gateway experiment aggregates a 100-address blacklist
into one ipset-backed rule, turning iptables' linear scan into a single hash
lookup (Fig 8, Table IV). We support the two types that experiment needs:
``hash:ip`` (exact addresses) and ``hash:net`` (prefixes, matched per stored
prefix length).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.netsim.addresses import AddrLike, IPv4Addr, IPv4Prefix, ipv4

SET_TYPES = ("hash:ip", "hash:net")


class IpsetError(ValueError):
    """Raised for invalid ipset operations."""


class IpSet:
    """One named set."""

    def __init__(self, name: str, set_type: str = "hash:ip") -> None:
        if set_type not in SET_TYPES:
            raise IpsetError(f"unsupported set type {set_type!r}")
        self.name = name
        self.set_type = set_type
        self._ips: Set[int] = set()
        # hash:net - one hash set per prefix length present
        self._nets: Dict[int, Set[int]] = {}

    def add(self, entry: AddrLike, prefixlen: int = 32) -> None:
        if self.set_type == "hash:ip":
            if prefixlen != 32:
                raise IpsetError("hash:ip sets hold /32 addresses only")
            self._ips.add(ipv4(entry).value)
        else:
            prefix = IPv4Prefix(ipv4(entry), prefixlen)
            self._nets.setdefault(prefixlen, set()).add(prefix.address.value)

    def remove(self, entry: AddrLike, prefixlen: int = 32) -> None:
        if self.set_type == "hash:ip":
            self._ips.discard(ipv4(entry).value)
        else:
            prefix = IPv4Prefix(ipv4(entry), prefixlen)
            bucket = self._nets.get(prefixlen)
            if bucket is not None:
                bucket.discard(prefix.address.value)
                if not bucket:
                    del self._nets[prefixlen]

    def test(self, addr: AddrLike) -> bool:
        value = ipv4(addr).value
        if self.set_type == "hash:ip":
            return value in self._ips
        for length, bucket in self._nets.items():
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            if (value & mask) in bucket:
                return True
        return False

    def entries(self) -> List[Tuple[IPv4Addr, int]]:
        if self.set_type == "hash:ip":
            return [(IPv4Addr(v), 32) for v in sorted(self._ips)]
        out = []
        for length in sorted(self._nets):
            out.extend((IPv4Addr(v), length) for v in sorted(self._nets[length]))
        return out

    def __len__(self) -> int:
        if self.set_type == "hash:ip":
            return len(self._ips)
        return sum(len(b) for b in self._nets.values())


class IpsetRegistry:
    """All sets on a kernel, by name."""

    def __init__(self) -> None:
        self._sets: Dict[str, IpSet] = {}

    def create(self, name: str, set_type: str = "hash:ip") -> IpSet:
        if name in self._sets:
            raise IpsetError(f"set {name!r} exists")
        ipset = IpSet(name, set_type)
        self._sets[name] = ipset
        return ipset

    def destroy(self, name: str) -> None:
        if name not in self._sets:
            raise IpsetError(f"no set {name!r}")
        del self._sets[name]

    def get(self, name: str) -> Optional[IpSet]:
        return self._sets.get(name)

    def require(self, name: str) -> IpSet:
        ipset = self._sets.get(name)
        if ipset is None:
            raise IpsetError(f"no set {name!r}")
        return ipset

    def names(self) -> List[str]:
        return sorted(self._sets)
