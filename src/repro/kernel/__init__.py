"""The simulated Linux kernel networking stack (the LinuxFP *slow path*).

This package models the parts of Linux networking that LinuxFP introspects
and accelerates:

- :mod:`repro.kernel.interfaces` — net devices (physical/veth/bridge/vxlan/
  loopback), enslavement, addresses.
- :mod:`repro.kernel.fib` — the forwarding information base (LPM routing).
- :mod:`repro.kernel.neighbor` — ARP/neighbor table with entry states.
- :mod:`repro.kernel.bridge` — L2 bridging: FDB learning/aging, flooding,
  VLAN filtering, simplified STP.
- :mod:`repro.kernel.netfilter` — iptables-style tables/chains/rules with
  linear rule evaluation, plus :mod:`repro.kernel.ipset` set matching.
- :mod:`repro.kernel.conntrack` — connection tracking.
- :mod:`repro.kernel.ipvs` — L4 load balancing (the paper's future-work item).
- :mod:`repro.kernel.sysctl` — ``net.ipv4.ip_forward`` and friends.
- :mod:`repro.kernel.stack` — the packet pipeline itself, including the XDP
  and TC eBPF hook points.
- :mod:`repro.kernel.rtnetlink` — the netlink management surface.
- :mod:`repro.kernel.kernel` — :class:`Kernel`, tying it all together.

Every pipeline stage charges simulated nanoseconds (see
:mod:`repro.netsim.cost`) and records profiler frames, so both the paper's
flame-graph motivation (Fig 1) and all throughput/latency results are
measurable against this stack.
"""

from repro.kernel.kernel import Kernel

__all__ = ["Kernel"]
