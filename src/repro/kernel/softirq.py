"""Per-CPU softirq contexts: queue→CPU ownership, RPS steering, backlogs.

This is the kernel half of ``Documentation/networking/scaling.rst``. Each
NIC RX queue is owned by one logical CPU (``queue % num_cpus`` — the
"one queue per CPU" IRQ-affinity configuration, remapped onto the *online*
CPUs after a hotplug event), and every frame is then RPS-steered by a
*symmetric* flow hash so all packets of a flow — in both directions — are
processed on a single CPU. That invariant is what lets the conntrack table
and flow cache shard per CPU without cross-CPU locking on the fast path.

Overload semantics mirror ``enqueue_to_backlog``: each CPU has a bounded
backlog queue governed by the ``net.core.netdev_max_backlog`` sysctl. A
frame steered at a CPU whose backlog is full is *dropped at enqueue* under
the ``backlog_overflow`` drop reason — it still enters the conservation
ledger (rx + tx_local == settled + pending survives saturation), it just
settles as a drop instead of doing unbounded work. Single-frame delivery
(`rx`) enqueues and immediately drains, reproducing the pre-backlog
behavior exactly; burst delivery (`rx_burst`, the NAPI-poll model) enqueues
the whole burst before draining, which is where overflow actually bites.

The simulation is single-threaded, so "processing on CPU n" means running
the stack under :meth:`repro.netsim.cpu.CpuSet.on`, which attributes every
charged cost to that CPU's busy-time counter. Per-flow packet order is
preserved (a flow always maps to one CPU and each CPU's backlog is FIFO);
what multi-core buys is that *busy time* accumulates in parallel counters,
and throughput is bounded by the bottleneck CPU only.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Deque, Iterable, List, Tuple

from repro.netsim.flowkey import extract_flow_key
from repro.netsim.rss import symmetric_flow_hash
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.interfaces import NetDevice
    from repro.kernel.kernel import Kernel

#: Fallback when the sysctl holds a non-numeric value (Linux default).
DEFAULT_MAX_BACKLOG = 1000

#: Frames one CPU may process per softirq round before yielding to the
#: next CPU (the NAPI poll budget; ``net/core/dev.c`` uses 64 too).
NAPI_BUDGET = 64


def batching_env_default() -> bool:
    """Batched backlog draining is on unless ``LINUXFP_NO_BATCH`` kills it."""
    return os.environ.get("LINUXFP_NO_BATCH", "").lower() not in ("1", "true", "on")


class SoftirqSet:
    """Per-kernel NET_RX dispatch: picks the CPU a frame is processed on."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        num_cpus = kernel.cpus.num_cpus
        #: frames whose RPS target differed from their RX-queue CPU (each
        #: paid a backlog-enqueue + IPI cost)
        self.rps_steered = 0
        #: frames that arrived while already inside a softirq context for
        #: this kernel (loopback, veth, vxlan decap re-injection) and were
        #: processed inline on the current CPU
        self.nested_rx = 0
        #: per-CPU bounded backlog queues (``softnet_data.input_pkt_queue``)
        self.backlogs: List[Deque[Tuple["NetDevice", bytes, int]]] = [
            deque() for _ in range(num_cpus)
        ]
        #: frames refused at enqueue because the CPU's backlog was full
        self.backlog_drops: List[int] = [0] * num_cpus
        #: deepest the backlog ever got, per CPU (reliability scorecard)
        self.backlog_high_water: List[int] = [0] * num_cpus
        # re-entrancy latch: process_backlogs() must not recurse when a
        # drained frame's processing triggers another enqueue+drain
        self._draining = False
        #: batched draining (NAPI budget + same-(dev,queue) run coalescing);
        #: the per-frame drain survives behind ``LINUXFP_NO_BATCH``
        self.batching = batching_env_default()

    # ------------------------------------------------------------ tunables

    @property
    def max_backlog(self) -> int:
        """``net.core.netdev_max_backlog`` (live; non-numeric writes fall
        back to the Linux default)."""
        try:
            value = int(self.kernel.sysctl.get("net.core.netdev_max_backlog"))
        except (KeyError, ValueError):
            return DEFAULT_MAX_BACKLOG
        return value if value > 0 else DEFAULT_MAX_BACKLOG

    def backlog_depths(self) -> List[int]:
        return [len(q) for q in self.backlogs]

    # ------------------------------------------------------------ steering

    def rx_queue_cpu(self, queue: int) -> int:
        """The CPU whose IRQ affinity owns an RX queue.

        The default "one queue per CPU" spread; when that CPU is offline the
        IRQ has been migrated: ownership re-spreads over the online set.
        """
        cpus = self.kernel.cpus
        base = queue % cpus.num_cpus
        if cpus.is_online(base):
            return base
        online = cpus.online_cpus()
        return online[queue % len(online)]

    def steer(self, frame: bytes, rx_cpu: int) -> int:
        """The RPS target CPU for a frame (``get_rps_cpu``).

        Keyable frames steer by the symmetric flow hash over the *online*
        CPUs; everything else (ARP, fragments, non-TCP/UDP) stays on the RX
        queue's CPU.
        """
        key = extract_flow_key(frame, 0)
        if key is None:
            return rx_cpu
        flow_hash = symmetric_flow_hash(key.src, key.dst, key.proto, key.sport, key.dport)
        cpus = self.kernel.cpus
        if cpus.num_online == cpus.num_cpus:
            return flow_hash % cpus.num_cpus
        online = cpus.online_cpus()
        return online[flow_hash % len(online)]

    # ------------------------------------------------------------- enqueue

    def enqueue(self, dev: "NetDevice", frame: bytes, queue: int = 0) -> bool:
        """Steer a frame onto its target CPU's backlog (``enqueue_to_backlog``).

        Returns True when the frame was queued; False when it was dropped
        (backlog full, or an armed ``backlog_overflow`` fault). A dropped
        frame is fully accounted: it enters the rx ledger on the target CPU
        and settles under the ``backlog_overflow`` reason.
        """
        kernel = self.kernel
        cpus = kernel.cpus

        # Chaos hook: hot-unplug the frame's CPU mid-traffic. Guarded so the
        # last online CPU survives — Linux refuses that too.
        if faults.active() and cpus.num_online > 1:
            rx_cpu = self.rx_queue_cpu(queue)
            victim = self.steer(frame, rx_cpu)
            if faults.decide("cpu_offline", f"cpu{victim}") is not None:
                kernel.cpu_offline(victim)

        rx_cpu = self.rx_queue_cpu(queue)
        target = self.steer(frame, rx_cpu)
        with cpus.on(rx_cpu):
            # The IRQ-owning CPU runs the hash + rps_map lookup; a cross-CPU
            # steer additionally pays the backlog enqueue + IPI.
            kernel.costs_charge("rss_hash")
            kernel.costs_charge("rps_steer")
            if target != rx_cpu:
                kernel.costs_charge("rps_ipi")
                self.rps_steered += 1

        backlog = self.backlogs[target]
        overflow = len(backlog) >= self.max_backlog
        if not overflow and faults.decide("backlog_overflow", dev.name) is not None:
            overflow = True
        if overflow:
            self.backlog_drops[target] += 1
            with cpus.on(target):
                # The frame entered the machine: it must enter the ledger
                # (on the CPU that refused it) and settle as a named drop.
                kernel.stack.account_rx()
                kernel.stack.drop("backlog_overflow", dev)
            return False
        backlog.append((dev, frame, queue))
        if len(backlog) > self.backlog_high_water[target]:
            self.backlog_high_water[target] = len(backlog)
        return True

    # -------------------------------------------------------------- drain

    def process_backlogs(self) -> int:
        """Drain every CPU's backlog to empty (the NET_RX softirq loop).

        Round-robins across CPUs so one hot backlog cannot starve the
        others; each CPU gets up to :data:`NAPI_BUDGET` frames per round
        (the NAPI poll budget), and within that budget consecutive frames
        of the same ``(dev, queue)`` are coalesced into one
        :meth:`~repro.kernel.stack.Stack.receive_batch` call under a single
        CPU context — the GRO-style amortization the fast path feeds on.
        Frames a drained packet re-injects arrive nested (processed inline
        by :meth:`rx`), so draining always terminates. Returns the number
        of frames processed.
        """
        if self._draining:
            return 0
        self._draining = True
        processed = 0
        cpus = self.kernel.cpus
        stack = self.kernel.stack
        try:
            while True:
                busy = False
                for cpu, backlog in enumerate(self.backlogs):
                    if not backlog:
                        continue
                    busy = True
                    if not self.batching:
                        dev, frame, queue = backlog.popleft()
                        with cpus.on(cpu):
                            cpus.packets[cpu] += 1
                            stack.receive(dev, frame, queue)
                        processed += 1
                        continue
                    budget = NAPI_BUDGET
                    while backlog and budget > 0:
                        dev, frame, queue = backlog.popleft()
                        frames = [frame]
                        budget -= 1
                        while (
                            backlog
                            and budget > 0
                            and backlog[0][0] is dev
                            and backlog[0][2] == queue
                        ):
                            frames.append(backlog.popleft()[1])
                            budget -= 1
                        with cpus.on(cpu):
                            cpus.packets[cpu] += len(frames)
                            if len(frames) == 1:
                                stack.receive(dev, frame, queue)
                            else:
                                stack.receive_batch(dev, frames, queue)
                        processed += len(frames)
                if not busy:
                    return processed
        finally:
            self._draining = False

    def drain_cpu(self, cpu: int) -> int:
        """Drain one CPU's backlog to empty (the hotplug-offline path runs
        this while the CPU is still online, like ``dev_cpu_dead`` replaying
        the dead CPU's queue). Returns frames processed."""
        cpus = self.kernel.cpus
        processed = 0
        backlog = self.backlogs[cpu]
        while backlog:
            dev, frame, queue = backlog.popleft()
            with cpus.on(cpu):
                cpus.packets[cpu] += 1
                self.kernel.stack.receive(dev, frame, queue)
            processed += 1
        return processed

    # ----------------------------------------------------------------- rx

    def rx(self, dev: "NetDevice", frame: bytes, queue: int = 0) -> None:
        """Process one received frame on the CPU that owns it."""
        kernel = self.kernel
        cpus = kernel.cpus

        # Nested delivery: the frame was re-injected while this kernel is
        # already mid-softirq (veth crossing, loopback, tunnel decap). Linux
        # processes these on the current CPU's backlog without another
        # steering decision; re-steering here could also recurse forever.
        current = cpus.current_cpu
        if current is not None:
            self.nested_rx += 1
            cpus.packets[current] += 1
            kernel.stack.receive(dev, frame, queue)
            return

        if cpus.num_cpus == 1:
            with cpus.on(0):
                cpus.packets[0] += 1
                kernel.stack.receive(dev, frame, queue)
            return

        if self.enqueue(dev, frame, queue) and not self._draining:
            self.process_backlogs()

    def rx_burst(self, dev: "NetDevice", frames: Iterable[Tuple[bytes, int]]) -> int:
        """Deliver a coalesced burst: enqueue every frame, then drain.

        This is the NAPI-poll arrival model — an interrupt-coalesced batch
        lands on the backlogs faster than softirq drains them, which is what
        makes ``netdev_max_backlog`` bite. Returns frames *queued* (the rest
        were accounted as ``backlog_overflow`` drops).
        """
        kernel = self.kernel
        cpus = kernel.cpus
        queued = 0
        if cpus.current_cpu is not None:
            # A nested burst (exotic): process inline like nested rx.
            for frame, queue in frames:
                self.rx(dev, frame, queue)
                queued += 1
            return queued
        for frame, queue in frames:
            if self.enqueue(dev, frame, queue):
                queued += 1
        if not self._draining:
            self.process_backlogs()
        return queued
