"""Per-CPU softirq contexts: queue→CPU ownership and RPS flow steering.

This is the kernel half of ``Documentation/networking/scaling.rst``. Each
NIC RX queue is owned by one logical CPU (``queue % num_cpus`` — the
"one queue per CPU" IRQ-affinity configuration), and every frame is then
RPS-steered by a *symmetric* flow hash so all packets of a flow — in both
directions — are processed on a single CPU. That invariant is what lets the
conntrack table and flow cache shard per CPU without cross-CPU locking on
the fast path.

The simulation is single-threaded, so "processing on CPU n" means running
the stack under :meth:`repro.netsim.cpu.CpuSet.on`, which attributes every
charged cost to that CPU's busy-time counter. Per-flow packet order is
preserved trivially (processing is synchronous and a flow always maps to
one CPU); what multi-core buys is that *busy time* accumulates in parallel
counters, and throughput is bounded by the bottleneck CPU only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.netsim.flowkey import extract_flow_key
from repro.netsim.rss import symmetric_flow_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.interfaces import NetDevice
    from repro.kernel.kernel import Kernel


class SoftirqSet:
    """Per-kernel NET_RX dispatch: picks the CPU a frame is processed on."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: frames whose RPS target differed from their RX-queue CPU (each
        #: paid a backlog-enqueue + IPI cost)
        self.rps_steered = 0
        #: frames that arrived while already inside a softirq context for
        #: this kernel (loopback, veth, vxlan decap re-injection) and were
        #: processed inline on the current CPU
        self.nested_rx = 0

    def steer(self, frame: bytes, rx_cpu: int) -> int:
        """The RPS target CPU for a frame (``get_rps_cpu``).

        Keyable frames steer by the symmetric flow hash; everything else
        (ARP, fragments, non-TCP/UDP) stays on the RX queue's CPU.
        """
        key = extract_flow_key(frame, 0)
        if key is None:
            return rx_cpu
        flow_hash = symmetric_flow_hash(key.src, key.dst, key.proto, key.sport, key.dport)
        return flow_hash % self.kernel.cpus.num_cpus

    def rx(self, dev: "NetDevice", frame: bytes, queue: int = 0) -> None:
        """Process one received frame on the CPU that owns it."""
        kernel = self.kernel
        cpus = kernel.cpus

        # Nested delivery: the frame was re-injected while this kernel is
        # already mid-softirq (veth crossing, loopback, tunnel decap). Linux
        # processes these on the current CPU's backlog without another
        # steering decision; re-steering here could also recurse forever.
        if cpus.current_cpu is not None:
            self.nested_rx += 1
            kernel.stack.receive(dev, frame, queue)
            return

        if cpus.num_cpus == 1:
            with cpus.on(0):
                cpus.packets[0] += 1
                kernel.stack.receive(dev, frame, queue)
            return

        rx_cpu = queue % cpus.num_cpus
        target = self.steer(frame, rx_cpu)
        with cpus.on(rx_cpu):
            # The IRQ-owning CPU runs the hash + rps_map lookup; a cross-CPU
            # steer additionally pays the backlog enqueue + IPI.
            kernel.costs_charge("rss_hash")
            kernel.costs_charge("rps_steer")
            if target != rx_cpu:
                kernel.costs_charge("rps_ipi")
                self.rps_steered += 1
        with cpus.on(target):
            cpus.packets[target] += 1
            kernel.stack.receive(dev, frame, queue)
