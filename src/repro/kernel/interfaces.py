"""Net devices: physical NIC-backed, loopback, veth, bridge, and vxlan.

Devices carry the attachment points for eBPF programs (XDP on the driver
side, TC ingress/egress around the stack) and the addressing/enslavement
state the LinuxFP controller introspects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.netsim.addresses import IfAddr, IPv4Addr, MacAddr
from repro.netsim.nic import NIC
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel

VXLAN_PORT = 8472
ETH_HDR_LEN = 14


class DeviceError(ValueError):
    """Raised for invalid device operations."""


class NetDevice:
    """Base class for all network interfaces."""

    kind = "generic"

    def __init__(self, kernel: "Kernel", ifindex: int, name: str, mac: MacAddr, num_queues: int = 1) -> None:
        self.kernel = kernel
        self.ifindex = ifindex
        self.name = name
        self.mac = mac
        self.mtu = 1500
        self.up = False
        self.master: Optional[int] = None  # bridge ifindex when enslaved
        self.addresses: List[IfAddr] = []
        self.num_queues = num_queues
        # eBPF attachment points (repro.ebpf.hooks attach here)
        self.xdp_prog: Optional[object] = None
        self.tc_ingress_prog: Optional[object] = None
        self.tc_egress_prog: Optional[object] = None
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped = 0

    # --- addressing ---

    def add_address(self, addr: IfAddr) -> None:
        if any(a.address == addr.address for a in self.addresses):
            raise DeviceError(f"{self.name}: address {addr.address} already assigned")
        self.addresses.append(addr)
        self.kernel.devices.gen += 1

    def remove_address(self, address: IPv4Addr) -> IfAddr:
        for i, a in enumerate(self.addresses):
            if a.address == address:
                self.kernel.devices.gen += 1
                return self.addresses.pop(i)
        raise DeviceError(f"{self.name}: address {address} not assigned")

    def has_address(self, address: IPv4Addr) -> bool:
        return any(a.address == address for a in self.addresses)

    # --- datapath ---

    def transmit(self, frame: bytes) -> None:
        """Send a frame out of this interface (subclass responsibility)."""
        raise NotImplementedError

    def drop(self, reason: str) -> None:
        """Device-level discard of a frame already settled by the IP stack.

        Mirrors a driver's ``kfree_skb`` after ``dev_queue_xmit`` accepted
        the packet: the ledger outcome stays ``tx`` (the stack handed the
        frame off), but the loss is recorded under a registered drop reason
        and the device's ``dropped`` counter — never a silent discard.
        """
        self.dropped += 1
        self.kernel.stack.drop(reason, self, terminal=False)

    def carrier_flapped(self) -> bool:
        """Fault site: an armed ``link_flap`` eats this transmit."""
        return faults.decide("link_flap", self.name) is not None

    def deliver(self, frame: bytes, queue: int = 0) -> None:
        """A frame arrives at this device from 'below' (wire/peer/overlay).

        Dispatch goes through the softirq layer, which picks the CPU that
        processes the frame (queue ownership + RPS flow steering)."""
        self.rx_packets += 1
        self.kernel.softirq.rx(self, frame, queue)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, ifindex={self.ifindex})"


class PhysicalDevice(NetDevice):
    """A NIC-backed interface."""

    kind = "physical"

    def __init__(self, kernel: "Kernel", ifindex: int, name: str, mac: MacAddr, num_queues: int = 1) -> None:
        super().__init__(kernel, ifindex, name, mac, num_queues)
        self.nic = NIC(name, num_queues=num_queues)
        self.nic.attach(self._on_nic_rx)
        self.nic.attach_burst(self._on_nic_rx_burst)

    def _on_nic_rx(self, frame: bytes, queue: int) -> None:
        self.deliver(frame, queue)

    def _on_nic_rx_burst(self, batch) -> None:
        """An interrupt-coalesced batch: hand the whole burst to softirq at
        once so per-CPU backlog bounds see its full depth."""
        self.rx_packets += len(batch)
        self.kernel.softirq.rx_burst(self, batch)

    def transmit(self, frame: bytes) -> None:
        self.tx_packets += 1
        if self.carrier_flapped():
            self.drop("dev_link_down")
            return
        self.kernel.costs_charge("driver_tx")
        self.nic.transmit(frame)


class LoopbackDevice(NetDevice):
    """``lo``: frames transmitted loop straight back into the stack."""

    kind = "loopback"

    def transmit(self, frame: bytes) -> None:
        self.tx_packets += 1
        self.deliver(frame)


class VethDevice(NetDevice):
    """One end of a virtual Ethernet pair; the peer may live in another kernel."""

    kind = "veth"

    def __init__(self, kernel: "Kernel", ifindex: int, name: str, mac: MacAddr) -> None:
        super().__init__(kernel, ifindex, name, mac)
        self.peer: Optional["VethDevice"] = None

    def connect(self, peer: "VethDevice") -> None:
        if self.peer is not None or peer.peer is not None:
            raise DeviceError("veth already paired")
        self.peer = peer
        peer.peer = self

    def transmit(self, frame: bytes) -> None:
        self.tx_packets += 1
        if self.peer is None or not self.peer.up:
            self.drop("dev_link_down")
            return
        if self.carrier_flapped():
            self.drop("dev_link_down")
            return
        self.kernel.costs_charge("veth_xmit")
        self.peer.deliver(frame)


class BridgeDevice(NetDevice):
    """A software bridge. L2 forwarding state lives in ``self.bridge``."""

    kind = "bridge"

    def __init__(self, kernel: "Kernel", ifindex: int, name: str, mac: MacAddr) -> None:
        super().__init__(kernel, ifindex, name, mac)
        from repro.kernel.bridge import Bridge  # local import: cycle guard

        self.bridge = Bridge(self)

    def transmit(self, frame: bytes) -> None:
        """IP output on the bridge interface: forward down into the bridge."""
        self.tx_packets += 1
        self.bridge.transmit_from_upper(frame)


class VxlanDevice(NetDevice):
    """A VXLAN tunnel endpoint (vtep), as used by the Flannel CNI backend.

    Egress frames are matched against the vtep FDB (dst MAC → remote underlay
    IP) and encapsulated in UDP toward that node; ingress VXLAN datagrams are
    demultiplexed by VNI in :mod:`repro.kernel.stack` and re-injected here.
    """

    kind = "vxlan"

    def __init__(
        self,
        kernel: "Kernel",
        ifindex: int,
        name: str,
        mac: MacAddr,
        vni: int,
        local: IPv4Addr,
        port: int = VXLAN_PORT,
        underlay_ifindex: int = 0,
    ) -> None:
        super().__init__(kernel, ifindex, name, mac)
        self.vni = vni
        self.local = local
        self.port = port
        self.underlay_ifindex = underlay_ifindex
        # vtep FDB: dst MAC → remote underlay IP (installed via `bridge fdb`)
        self.vtep_fdb: Dict[MacAddr, IPv4Addr] = {}

    def fdb_add(self, mac: MacAddr, remote: IPv4Addr) -> None:
        self.vtep_fdb[mac] = remote

    def fdb_del(self, mac: MacAddr) -> None:
        self.vtep_fdb.pop(mac, None)

    def transmit(self, frame: bytes) -> None:
        self.tx_packets += 1
        if len(frame) < ETH_HDR_LEN:
            self.drop("malformed")
            return
        dst_mac = MacAddr.from_bytes(frame[0:6])
        remote = self.vtep_fdb.get(dst_mac)
        if remote is None:
            if dst_mac.is_multicast and self.vtep_fdb:
                # head-end replication to every known vtep
                for unique_remote in sorted(set(self.vtep_fdb.values())):
                    self.kernel.stack.vxlan_encap_out(self, frame, unique_remote)
                return
            self.drop("vxlan_no_remote")
            return
        self.kernel.stack.vxlan_encap_out(self, frame, remote)


class DeviceTable:
    """Per-kernel device registry with ifindex allocation."""

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._by_index: Dict[int, NetDevice] = {}
        self._by_name: Dict[str, NetDevice] = {}
        self._next_ifindex = 1
        self._next_mac = 1
        # Generation tag for the flow cache: bumped on device add/remove,
        # address changes, link state, and enslavement changes.
        self.gen = 0

    def allocate_mac(self) -> MacAddr:
        mac = MacAddr.from_index(self._next_mac, oui=(0x02 << 16) | (self._kernel.host_id & 0xFFFF))
        self._next_mac += 1
        return mac

    def register(self, device: NetDevice) -> NetDevice:
        if device.name in self._by_name:
            raise DeviceError(f"device {device.name!r} exists")
        self._by_index[device.ifindex] = device
        self._by_name[device.name] = device
        self.gen += 1
        return device

    def next_ifindex(self) -> int:
        index = self._next_ifindex
        self._next_ifindex += 1
        return index

    def unregister(self, device: NetDevice) -> None:
        if self._by_index.pop(device.ifindex, None) is not None:
            self.gen += 1
        self._by_name.pop(device.name, None)

    def by_index(self, ifindex: int) -> NetDevice:
        try:
            return self._by_index[ifindex]
        except KeyError:
            raise DeviceError(f"no device with ifindex {ifindex}") from None

    def by_name(self, name: str) -> NetDevice:
        try:
            return self._by_name[name]
        except KeyError:
            raise DeviceError(f"no device named {name!r}") from None

    def get(self, name: str) -> Optional[NetDevice]:
        return self._by_name.get(name)

    def all(self) -> List[NetDevice]:
        return [self._by_index[i] for i in sorted(self._by_index)]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_index)
