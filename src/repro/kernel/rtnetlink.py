"""rtnetlink: the kernel-side netlink handlers and message builders.

``register(kernel)`` wires every management message type to the kernel's
mutators and dumpers. Tools in :mod:`repro.tools` and orchestration layers
(the Flannel CNI, FRR) operate exclusively through these handlers, and the
LinuxFP controller builds its view of the kernel from the same dumps plus
the multicast notifications the mutators emit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.netlink import messages as m
from repro.netlink.messages import NetlinkError, NetlinkMsg
from repro.netsim.addresses import IPv4Prefix, IfAddr
from repro.kernel.fib import Route
from repro.kernel.netfilter import Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.interfaces import NetDevice
    from repro.kernel.kernel import Kernel


# --------------------------------------------------------- message builders

def link_attrs(dev: "NetDevice") -> Dict[str, Any]:
    attrs: Dict[str, Any] = {
        "ifindex": dev.ifindex,
        "ifname": dev.name,
        "kind": dev.kind,
        "operstate": 1 if dev.up else 0,
        "address": dev.mac,
        "mtu": dev.mtu,
        "num_queues": dev.num_queues,
    }
    if dev.master is not None:
        attrs["master"] = dev.master
    from repro.kernel.interfaces import BridgeDevice, VethDevice, VxlanDevice

    if isinstance(dev, BridgeDevice):
        attrs["bridge"] = {
            "stp_state": 1 if dev.bridge.stp_enabled else 0,
            "vlan_filtering": 1 if dev.bridge.vlan_filtering else 0,
            "ageing_time": dev.bridge.ageing_time_ns // 1_000_000_000,
        }
    elif isinstance(dev, VxlanDevice):
        attrs["vxlan"] = {
            "vni": dev.vni,
            "local": dev.local,
            "port": dev.port,
            "underlay_ifindex": dev.underlay_ifindex,
        }
    elif isinstance(dev, VethDevice) and dev.peer is not None:
        attrs["veth"] = {"peer_ifindex": dev.peer.ifindex}
    return attrs


def route_attrs(route: Route) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {
        "dst": route.prefix.address,
        "dst_len": route.prefix.length,
        "oif": route.oif,
        "table": route.table,
        "scope": route.scope,
        "metric": route.metric,
    }
    if route.gateway is not None:
        attrs["gateway"] = route.gateway
    if route.nhg is not None:
        attrs["nhg"] = route.nhg
    return attrs


def rule_attrs(chain: str, rule: Rule) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {
        "table": "filter",
        "chain": chain,
        "handle": rule.handle,
        "target": rule.target,
    }
    if rule.src is not None:
        attrs["src"] = rule.src.address
        attrs["src_len"] = rule.src.length
    if rule.dst is not None:
        attrs["dst"] = rule.dst.address
        attrs["dst_len"] = rule.dst.length
    if rule.proto is not None:
        attrs["proto"] = rule.proto
    if rule.sport is not None:
        attrs["sport"] = rule.sport
    if rule.dport is not None:
        attrs["dport"] = rule.dport
    if rule.in_iface is not None:
        attrs["in_iface"] = rule.in_iface
    if rule.out_iface is not None:
        attrs["out_iface"] = rule.out_iface
    if rule.match_set is not None:
        attrs["match_set"] = rule.match_set
        attrs["set_dir"] = rule.set_dir
    if rule.ct_state is not None:
        attrs["ct_state"] = rule.ct_state
    return attrs


def rule_from_attrs(attrs: Dict[str, Any]) -> Rule:
    src = IPv4Prefix(attrs["src"], attrs.get("src_len", 32)) if "src" in attrs else None
    dst = IPv4Prefix(attrs["dst"], attrs.get("dst_len", 32)) if "dst" in attrs else None
    return Rule(
        target=attrs.get("target", "ACCEPT"),
        src=src,
        dst=dst,
        proto=attrs.get("proto"),
        sport=attrs.get("sport"),
        dport=attrs.get("dport"),
        in_iface=attrs.get("in_iface"),
        out_iface=attrs.get("out_iface"),
        match_set=attrs.get("match_set"),
        set_dir=attrs.get("set_dir", "src"),
        ct_state=attrs.get("ct_state"),
    )


# ----------------------------------------------------------------- handlers

def register(kernel: "Kernel") -> None:
    bus = kernel.bus

    def wrap(fn):
        def handler(req: NetlinkMsg) -> List[NetlinkMsg]:
            try:
                return fn(req) or []
            except NetlinkError:
                raise
            except (ValueError, KeyError) as exc:
                raise NetlinkError(-22, str(exc)) from exc

        return handler

    # --- links ---

    def get_link(req: NetlinkMsg) -> List[NetlinkMsg]:
        name = req.attrs.get("ifname")
        devices = kernel.devices.all()
        if name is not None:
            devices = [d for d in devices if d.name == name]
            if not devices:
                raise NetlinkError(-19, f"no device {name!r}")
        return [NetlinkMsg(m.RTM_NEWLINK, link_attrs(d)) for d in devices]

    def new_link(req: NetlinkMsg) -> List[NetlinkMsg]:
        attrs = req.attrs
        name = attrs.get("ifname")
        if name is None:
            raise NetlinkError(-22, "ifname required")
        if name in kernel.devices:
            if "kind" in attrs:
                raise NetlinkError(-17, f"device {name!r} exists")  # EEXIST
            return set_link(req)
        kind = attrs.get("kind", "bridge")
        if kind == "bridge":
            kernel.add_bridge(name)
        elif kind == "veth":
            peer = attrs.get("netns") or f"{name}-peer"
            kernel.add_veth_pair(name, peer)
        elif kind == "vxlan":
            info = attrs.get("vxlan") or {}
            underlay = None
            if info.get("underlay_ifindex"):
                underlay = kernel.devices.by_index(info["underlay_ifindex"]).name
            kernel.add_vxlan(
                name,
                vni=info.get("vni", 0),
                local=info.get("local"),
                port=info.get("port", 8472),
                underlay=underlay,
            )
        elif kind == "physical":
            kernel.add_physical(name, num_queues=attrs.get("num_queues", 1))
        else:
            raise NetlinkError(-95, f"cannot create links of kind {kind!r}")
        if attrs.get("operstate"):
            kernel.set_link(name, up=True)
        return []

    def set_link(req: NetlinkMsg) -> List[NetlinkMsg]:
        attrs = req.attrs
        name = attrs.get("ifname")
        if name is None and "ifindex" in attrs:
            name = kernel.devices.by_index(attrs["ifindex"]).name
        if name is None:
            raise NetlinkError(-22, "ifname or ifindex required")
        dev = kernel.devices.by_name(name)
        if "operstate" in attrs:
            kernel.set_link(name, up=bool(attrs["operstate"]))
        if "master" in attrs:
            master = attrs["master"]
            if master == 0:
                kernel.release(name)
            else:
                bridge_name = kernel.devices.by_index(master).name
                kernel.enslave(name, bridge_name)
        if "mtu" in attrs:
            dev.mtu = attrs["mtu"]
        if "bridge" in attrs:
            info = attrs["bridge"]
            kernel.set_bridge_attrs(
                name,
                stp=bool(info["stp_state"]) if "stp_state" in info else None,
                vlan_filtering=bool(info["vlan_filtering"]) if "vlan_filtering" in info else None,
                ageing_time_s=info.get("ageing_time"),
            )
        return []

    def del_link(req: NetlinkMsg) -> List[NetlinkMsg]:
        name = req.attrs.get("ifname")
        if name is None:
            raise NetlinkError(-22, "ifname required")
        kernel.del_device(name)
        return []

    # --- addresses ---

    def get_addr(req: NetlinkMsg) -> List[NetlinkMsg]:
        out = []
        for dev in kernel.devices.all():
            for addr in dev.addresses:
                out.append(
                    NetlinkMsg(
                        m.RTM_NEWADDR,
                        {"ifindex": dev.ifindex, "address": addr.address, "prefixlen": addr.length},
                    )
                )
        return out

    def new_addr(req: NetlinkMsg) -> List[NetlinkMsg]:
        dev = kernel.devices.by_index(req.attrs["ifindex"])
        kernel.add_address(dev.name, IfAddr(req.attrs["address"], req.attrs.get("prefixlen", 32)))
        return []

    def del_addr(req: NetlinkMsg) -> List[NetlinkMsg]:
        dev = kernel.devices.by_index(req.attrs["ifindex"])
        kernel.del_address(dev.name, req.attrs["address"])
        return []

    # --- routes ---

    def get_route(req: NetlinkMsg) -> List[NetlinkMsg]:
        return [NetlinkMsg(m.RTM_NEWROUTE, route_attrs(r)) for r in kernel.fib.routes()]

    def new_route(req: NetlinkMsg) -> List[NetlinkMsg]:
        attrs = req.attrs
        dst = IPv4Prefix(attrs["dst"], attrs.get("dst_len", 32))
        dev_name = None
        if "oif" in attrs and attrs["oif"]:
            dev_name = kernel.devices.by_index(attrs["oif"]).name
        add = kernel.route_replace if attrs.get("replace") else kernel.route_add
        add(
            dst,
            via=attrs.get("gateway"),
            dev=dev_name,
            metric=attrs.get("metric", 0),
            nhg=attrs.get("nhg"),
        )
        return []

    def del_route(req: NetlinkMsg) -> List[NetlinkMsg]:
        attrs = req.attrs
        dst = IPv4Prefix(attrs["dst"], attrs.get("dst_len", 32))
        kernel.route_del(dst, metric=attrs.get("metric"))
        return []

    # --- neighbors ---

    def get_neigh(req: NetlinkMsg) -> List[NetlinkMsg]:
        out = []
        for entry in kernel.neighbors.entries():
            attrs: Dict[str, Any] = {"ifindex": entry.ifindex, "dst": entry.ip, "state": entry.state}
            if entry.lladdr is not None:
                attrs["lladdr"] = entry.lladdr
            out.append(NetlinkMsg(m.RTM_NEWNEIGH, attrs))
        return out

    def new_neigh(req: NetlinkMsg) -> List[NetlinkMsg]:
        dev = kernel.devices.by_index(req.attrs["ifindex"])
        kernel.neigh_add(dev.name, req.attrs["dst"], req.attrs["lladdr"])
        return []

    def del_neigh(req: NetlinkMsg) -> List[NetlinkMsg]:
        dev = kernel.devices.by_index(req.attrs["ifindex"])
        kernel.neigh_del(dev.name, req.attrs["dst"])
        return []

    # --- fdb ---

    def get_fdb(req: NetlinkMsg) -> List[NetlinkMsg]:
        from repro.kernel.interfaces import BridgeDevice, VxlanDevice

        out = []
        for dev in kernel.devices.all():
            if isinstance(dev, BridgeDevice):
                for (mac, vlan), entry in sorted(dev.bridge.fdb.items(), key=lambda kv: (kv[0][1], kv[0][0].value)):
                    out.append(
                        NetlinkMsg(
                            m.RTM_NEWFDB,
                            {
                                "ifindex": entry.port_ifindex,
                                "master": dev.ifindex,
                                "lladdr": mac,
                                "vlan": vlan,
                                "state": (1 if entry.is_local else 0) | (2 if entry.is_static else 0),
                            },
                        )
                    )
            elif isinstance(dev, VxlanDevice):
                for mac in sorted(dev.vtep_fdb, key=lambda mm: mm.value):
                    out.append(
                        NetlinkMsg(
                            m.RTM_NEWFDB,
                            {"ifindex": dev.ifindex, "master": 0, "lladdr": mac, "vlan": 0, "state": 2},
                        )
                    )
        return out

    def new_fdb(req: NetlinkMsg) -> List[NetlinkMsg]:
        from repro.kernel.interfaces import VxlanDevice

        dev = kernel.devices.by_index(req.attrs["ifindex"])
        dst = None
        if isinstance(dev, VxlanDevice):
            # the remote vtep IP rides in the neigh-style dst attribute via
            # a second message field; tools pass it through "master" being 0
            dst = req.attrs.get("dst")
        kernel.fdb_add(dev.name, req.attrs["lladdr"], dst=dst, vlan=req.attrs.get("vlan", 1))
        return []

    # --- iptables ---

    def get_rule(req: NetlinkMsg) -> List[NetlinkMsg]:
        out = []
        for chain_name in ("INPUT", "FORWARD", "OUTPUT"):
            chain = kernel.netfilter.chain(chain_name)
            out.append(
                NetlinkMsg(m.NFT_SETPOLICY, {"table": "filter", "chain": chain_name, "policy": chain.policy})
            )
            for rule in chain.rules:
                out.append(NetlinkMsg(m.NFT_NEWRULE, rule_attrs(chain_name, rule)))
        return out

    def new_rule(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipt_append(req.attrs["chain"], rule_from_attrs(req.attrs))
        return []

    def del_rule(req: NetlinkMsg) -> List[NetlinkMsg]:
        chain = req.attrs["chain"]
        if "handle" in req.attrs:
            kernel.ipt_delete(chain, req.attrs["handle"])
        else:
            kernel.ipt_flush(None if chain == "*" else chain)
        return []

    def set_policy(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipt_policy(req.attrs["chain"], req.attrs["policy"])
        return []

    # --- ipset ---

    def ipset_new(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipset_create(req.attrs["name"], req.attrs.get("set_type", "hash:ip"))
        return []

    def ipset_del(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipset_destroy(req.attrs["name"])
        return []

    def ipset_get(req: NetlinkMsg) -> List[NetlinkMsg]:
        out = []
        for name in kernel.ipsets.names():
            ipset = kernel.ipsets.require(name)
            out.append(
                NetlinkMsg(
                    m.IPSET_NEWSET,
                    {
                        "name": name,
                        "set_type": ipset.set_type,
                        "entries": [{"ip": ip, "prefixlen": length} for ip, length in ipset.entries()],
                    },
                )
            )
        return out

    def ipset_add_entry(req: NetlinkMsg) -> List[NetlinkMsg]:
        for entry in req.attrs.get("entries", []):
            kernel.ipset_add(req.attrs["name"], entry["ip"], entry.get("prefixlen", 32))
        return []

    def ipset_del_entry(req: NetlinkMsg) -> List[NetlinkMsg]:
        for entry in req.attrs.get("entries", []):
            kernel.ipset_del(req.attrs["name"], entry["ip"], entry.get("prefixlen", 32))
        return []

    # --- ipvs ---

    def ipvs_new_service(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipvs_add_service(
            req.attrs["vip"], req.attrs["vport"], req.attrs["proto"], req.attrs.get("scheduler", "rr")
        )
        return []

    def ipvs_del_service(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipvs.del_service(req.attrs["vip"], req.attrs["vport"], req.attrs["proto"])
        return []

    def ipvs_get_service(req: NetlinkMsg) -> List[NetlinkMsg]:
        out = []
        for service in kernel.ipvs.services():
            out.append(
                NetlinkMsg(
                    m.IPVS_NEWSERVICE,
                    {
                        "vip": service.vip,
                        "vport": service.port,
                        "proto": service.proto,
                        "scheduler": service.scheduler,
                    },
                )
            )
            for dest in service.dests:
                out.append(
                    NetlinkMsg(
                        m.IPVS_NEWDEST,
                        {
                            "vip": service.vip,
                            "vport": service.port,
                            "proto": service.proto,
                            "rs": dest.ip,
                            "rport": dest.port,
                            "weight": dest.weight,
                        },
                    )
                )
        return out

    def ipvs_new_dest(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipvs_add_dest(
            req.attrs["vip"],
            req.attrs["vport"],
            req.attrs["proto"],
            req.attrs["rs"],
            req.attrs["rport"],
            req.attrs.get("weight", 1),
        )
        return []

    def ipvs_del_dest(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.ipvs.del_dest(
            req.attrs["vip"], req.attrs["vport"], req.attrs["proto"], req.attrs["rs"], req.attrs["rport"]
        )
        return []

    # --- sysctl ---

    def sysctl_set(req: NetlinkMsg) -> List[NetlinkMsg]:
        kernel.sysctl_set(req.attrs["name"], req.attrs["value"])
        return []

    def sysctl_get(req: NetlinkMsg) -> List[NetlinkMsg]:
        name = req.attrs.get("name")
        names = [name] if name else kernel.sysctl.known_keys()
        return [NetlinkMsg(m.SYSCTL_GET, {"name": n, "value": kernel.sysctl.get(n)}) for n in names]

    bus.register_handler(m.RTM_GETLINK, wrap(get_link))
    bus.register_handler(m.RTM_NEWLINK, wrap(new_link))
    bus.register_handler(m.RTM_SETLINK, wrap(set_link))
    bus.register_handler(m.RTM_DELLINK, wrap(del_link))
    bus.register_handler(m.RTM_GETADDR, wrap(get_addr))
    bus.register_handler(m.RTM_NEWADDR, wrap(new_addr))
    bus.register_handler(m.RTM_DELADDR, wrap(del_addr))
    bus.register_handler(m.RTM_GETROUTE, wrap(get_route))
    bus.register_handler(m.RTM_NEWROUTE, wrap(new_route))
    bus.register_handler(m.RTM_DELROUTE, wrap(del_route))
    bus.register_handler(m.RTM_GETNEIGH, wrap(get_neigh))
    bus.register_handler(m.RTM_NEWNEIGH, wrap(new_neigh))
    bus.register_handler(m.RTM_DELNEIGH, wrap(del_neigh))
    bus.register_handler(m.RTM_GETFDB, wrap(get_fdb))
    bus.register_handler(m.RTM_NEWFDB, wrap(new_fdb))
    bus.register_handler(m.NFT_GETRULE, wrap(get_rule))
    bus.register_handler(m.NFT_NEWRULE, wrap(new_rule))
    bus.register_handler(m.NFT_DELRULE, wrap(del_rule))
    bus.register_handler(m.NFT_SETPOLICY, wrap(set_policy))
    bus.register_handler(m.IPSET_NEWSET, wrap(ipset_new))
    bus.register_handler(m.IPSET_DELSET, wrap(ipset_del))
    bus.register_handler(m.IPSET_GETSET, wrap(ipset_get))
    bus.register_handler(m.IPSET_ADDENTRY, wrap(ipset_add_entry))
    bus.register_handler(m.IPSET_DELENTRY, wrap(ipset_del_entry))
    bus.register_handler(m.IPVS_NEWSERVICE, wrap(ipvs_new_service))
    bus.register_handler(m.IPVS_DELSERVICE, wrap(ipvs_del_service))
    bus.register_handler(m.IPVS_GETSERVICE, wrap(ipvs_get_service))
    bus.register_handler(m.IPVS_NEWDEST, wrap(ipvs_new_dest))
    bus.register_handler(m.IPVS_DELDEST, wrap(ipvs_del_dest))
    bus.register_handler(m.SYSCTL_SET, wrap(sysctl_set))
    bus.register_handler(m.SYSCTL_GET, wrap(sysctl_get))
