"""IPVS: L4 load balancing (the paper's future-work acceleration target).

Virtual services map a (VIP, port, proto) to a pool of real servers chosen by
a scheduler (``rr``/``wrr``/``lc``). Forwarding is NAT-mode: the first packet
of a flow is scheduled in the slow path and the chosen destination is pinned
in conntrack; subsequent packets only need the conntrack lookup + rewrite —
the part LinuxFP's prototype ipvs FPM accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import AddrLike, IPv4Addr, ipv4
from repro.kernel.conntrack import ConnTuple, Conntrack

SCHEDULERS = ("rr", "wrr", "lc")


class IpvsError(ValueError):
    """Raised for invalid ipvs configuration."""


@dataclass
class RealServer:
    ip: IPv4Addr
    port: int
    weight: int = 1
    active_conns: int = 0


@dataclass
class VirtualService:
    vip: IPv4Addr
    port: int
    proto: int
    scheduler: str = "rr"
    dests: List[RealServer] = field(default_factory=list)
    _rr_index: int = 0
    _wrr_credit: Dict[int, int] = field(default_factory=dict)

    def key(self) -> Tuple[IPv4Addr, int, int]:
        return (self.vip, self.port, self.proto)

    def schedule(self) -> Optional[RealServer]:
        """Pick a real server per the configured scheduling algorithm."""
        candidates = [d for d in self.dests if d.weight > 0]
        if not candidates:
            return None
        if self.scheduler == "rr":
            chosen = candidates[self._rr_index % len(candidates)]
            self._rr_index += 1
            return chosen
        if self.scheduler == "wrr":
            # smooth weighted round robin
            best = None
            for i, dest in enumerate(candidates):
                credit = self._wrr_credit.get(i, 0) + dest.weight
                self._wrr_credit[i] = credit
                if best is None or credit > self._wrr_credit[best]:
                    best = i
            total = sum(d.weight for d in candidates)
            self._wrr_credit[best] -= total
            return candidates[best]
        # lc: least connections, weight-scaled
        return min(candidates, key=lambda d: (d.active_conns / d.weight, d.ip.value, d.port))


class Ipvs:
    """The ipvs service table for one kernel."""

    def __init__(self, conntrack: Conntrack) -> None:
        self._conntrack = conntrack
        self._services: Dict[Tuple[IPv4Addr, int, int], VirtualService] = {}

    def add_service(self, vip: AddrLike, port: int, proto: int, scheduler: str = "rr") -> VirtualService:
        if scheduler not in SCHEDULERS:
            raise IpvsError(f"unsupported scheduler {scheduler!r}")
        key = (ipv4(vip), port, proto)
        if key in self._services:
            raise IpvsError(f"service {key} exists")
        service = VirtualService(vip=ipv4(vip), port=port, proto=proto, scheduler=scheduler)
        self._services[key] = service
        return service

    def del_service(self, vip: AddrLike, port: int, proto: int) -> None:
        key = (ipv4(vip), port, proto)
        if key not in self._services:
            raise IpvsError(f"no service {key}")
        del self._services[key]

    def add_dest(self, vip: AddrLike, port: int, proto: int, rs: AddrLike, rport: int, weight: int = 1) -> RealServer:
        service = self.require(vip, port, proto)
        dest = RealServer(ip=ipv4(rs), port=rport, weight=weight)
        service.dests.append(dest)
        return dest

    def del_dest(self, vip: AddrLike, port: int, proto: int, rs: AddrLike, rport: int) -> None:
        service = self.require(vip, port, proto)
        for i, dest in enumerate(service.dests):
            if dest.ip == ipv4(rs) and dest.port == rport:
                service.dests.pop(i)
                return
        raise IpvsError(f"no destination {rs}:{rport}")

    def get(self, vip: AddrLike, port: int, proto: int) -> Optional[VirtualService]:
        return self._services.get((ipv4(vip), port, proto))

    def require(self, vip: AddrLike, port: int, proto: int) -> VirtualService:
        service = self.get(vip, port, proto)
        if service is None:
            raise IpvsError(f"no service {vip}:{port}")
        return service

    def services(self) -> List[VirtualService]:
        return [self._services[k] for k in sorted(self._services, key=lambda k: (k[0].value, k[1], k[2]))]

    def match(self, tup: ConnTuple) -> Optional[VirtualService]:
        return self._services.get((tup.dst, tup.dport, tup.proto))

    def connect(self, tup: ConnTuple) -> Optional[Tuple[IPv4Addr, int]]:
        """Slow-path scheduling for a flow's first packet.

        Pins the chosen real server into conntrack so the rest of the flow
        (fast path) only needs a lookup. The pin is a *required* allocation:
        a full conntrack table raises
        :class:`~repro.kernel.conntrack.ConntrackFull` (the stack drops the
        packet with reason ``conntrack_full``), because forwarding the flow
        without the pin would let later packets reach a different real
        server.
        """
        service = self.match(tup)
        if service is None:
            return None
        existing = self._conntrack.lookup(tup)
        if existing is not None and existing.dnat_to is not None:
            return existing.dnat_to
        dest = service.schedule()
        if dest is None:
            return None
        entry = self._conntrack.create(tup)
        dest.active_conns += 1
        entry.dnat_to = (dest.ip, dest.port)
        self._conntrack.gen += 1  # pinning the NAT rewrite changes flow fate
        return entry.dnat_to
