"""The forwarding information base: longest-prefix-match routing.

Routes live in a binary trie keyed by prefix bits (the same structure Linux's
``fib_trie`` approximates). A lookup walks from the most-specific candidate
outward, honoring route metrics when several routes share a prefix.

ECMP multipath mirrors Linux's *resilient nexthop groups*
(``net/ipv4/nexthop.c``): a multipath route references a ``NexthopGroup``
whose bucket table maps ``flow_hash % num_buckets`` to a member next hop.
On membership change only the affected member's buckets are reassigned, so
roughly 1/N of flows churn — versus the naive ``hash % N`` rehash (also
implemented here as the ``modn`` policy, for the failover scorecard's
baseline) which remaps (N-1)/N of flows. Buckets remember when they last
carried traffic; a *draining* member keeps its non-idle buckets until the
flows on them go quiet, which is what makes graceful connection draining
possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.addresses import AddrLike, IPv4Addr, IPv4Prefix, ipv4

# Route scopes (mirroring rtnetlink values)
SCOPE_UNIVERSE = 0  # via a gateway
SCOPE_LINK = 253  # directly connected

MAIN_TABLE = 254

# Nexthop-group selection policies
POLICY_RESILIENT = "resilient"  # consistent-hash bucket table (~1/N churn)
POLICY_MODN = "modn"  # naive hash % N (disrupts (N-1)/N on change)

# Sentinel for "this bucket never carried traffic": always idle.
_NEVER_USED = -(1 << 62)


class RouteError(ValueError):
    """Raised for invalid route operations."""


@dataclass(frozen=True)
class Route:
    """One FIB entry."""

    prefix: IPv4Prefix
    oif: int  # egress interface index
    gateway: Optional[IPv4Addr] = None
    scope: int = SCOPE_UNIVERSE
    metric: int = 0
    table: int = MAIN_TABLE
    nhg: Optional[int] = None  # nexthop-group id for ECMP multipath routes

    def __post_init__(self) -> None:
        if self.nhg is not None:
            # Multipath routes resolve through their group per-flow; the
            # placeholder oif/gateway carry no forwarding meaning.
            return
        if self.gateway is None and self.scope == SCOPE_UNIVERSE and self.prefix.length != 32:
            # A gateway-less universe route is only meaningful as an onlink
            # host/interface route; normalize to link scope.
            object.__setattr__(self, "scope", SCOPE_LINK)

    @property
    def next_hop(self) -> Optional[IPv4Addr]:
        """The IP whose MAC we need: the gateway, or None for onlink routes."""
        return self.gateway

    @property
    def is_multipath(self) -> bool:
        return self.nhg is not None


@dataclass(frozen=True)
class NextHop:
    """One member of an ECMP nexthop group."""

    oif: int
    gateway: IPv4Addr
    weight: int = 1


class _Member:
    """Mutable per-member state inside a group."""

    __slots__ = ("nexthop", "alive", "draining")

    def __init__(self, nexthop: NextHop) -> None:
        self.nexthop = nexthop
        self.alive = True
        self.draining = False

    @property
    def active(self) -> bool:
        """Eligible to receive (new) buckets."""
        return self.alive and not self.draining and self.nexthop.weight > 0


class NexthopGroup:
    """A resilient-hash (or mod-N baseline) ECMP next-hop group.

    The resilient policy keeps a fixed-size bucket table; each bucket is
    owned by one member and records when it last forwarded a packet.
    Membership changes only reassign buckets whose owner became unusable
    (dead/removed) — or, for a *draining* owner, buckets that have been idle
    for ``idle_timer_ns`` — so established flows keep their mapping.
    """

    def __init__(
        self,
        group_id: int,
        nexthops: Sequence[NextHop],
        policy: str = POLICY_RESILIENT,
        num_buckets: int = 64,
        idle_timer_ns: int = 1_000_000_000,
    ) -> None:
        if not nexthops:
            raise RouteError("nexthop group needs at least one next hop")
        if policy not in (POLICY_RESILIENT, POLICY_MODN):
            raise RouteError(f"unknown nexthop policy {policy!r}")
        gateways = [nh.gateway for nh in nexthops]
        if len(set(gateways)) != len(gateways):
            raise RouteError("nexthop group gateways must be unique")
        if num_buckets < len(nexthops):
            raise RouteError("fewer buckets than next hops")
        self.group_id = group_id
        self.policy = policy
        self.num_buckets = num_buckets
        self.idle_timer_ns = idle_timer_ns
        self._members: List[_Member] = [_Member(nh) for nh in nexthops]
        self._buckets: List[Optional[_Member]] = [None] * num_buckets
        self._last_used: List[int] = [_NEVER_USED] * num_buckets
        # Fib wires this to its generation bump so any group mutation
        # invalidates cached forwarding decisions.
        self._on_change: Optional[Callable[[], None]] = None
        self._rebalance(now_ns=0)

    # ------------------------------------------------------------ selection

    def select(self, flow_hash: int, now_ns: int = 0) -> Optional[NextHop]:
        """Pick the next hop for a flow; None when no member can serve."""
        if self.policy == POLICY_MODN:
            active = [m for m in self._members if m.active]
            if not active:
                return None
            return active[flow_hash % len(active)].nexthop
        bucket = flow_hash % self.num_buckets
        owner = self._buckets[bucket]
        if owner is None or not owner.alive:
            # Stale table (owner died without an explicit weight-out yet).
            self._rebalance(now_ns)
            owner = self._buckets[bucket]
            if owner is None or not owner.alive:
                return None
        self._last_used[bucket] = now_ns
        return owner.nexthop

    # ----------------------------------------------------------- membership

    def member_gateways(self) -> List[IPv4Addr]:
        return [m.nexthop.gateway for m in self._members]

    def active_gateways(self) -> List[IPv4Addr]:
        return [m.nexthop.gateway for m in self._members if m.active]

    def set_alive(self, gateway: AddrLike, alive: bool, now_ns: int = 0) -> None:
        """Weight a member out (dead) or back in; dead buckets move at once."""
        member = self._member_for(gateway)
        if member.alive == alive:
            return
        member.alive = alive
        self._rebalance(now_ns)
        self._changed()

    def set_draining(self, gateway: AddrLike, draining: bool, now_ns: int = 0) -> None:
        """Start/stop graceful drain: no new buckets, idle buckets migrate."""
        member = self._member_for(gateway)
        if member.draining == draining:
            return
        member.draining = draining
        self._rebalance(now_ns)
        self._changed()

    def add_nexthop(self, nexthop: NextHop, now_ns: int = 0) -> None:
        if any(m.nexthop.gateway == nexthop.gateway for m in self._members):
            raise RouteError(f"nexthop {nexthop.gateway} already in group {self.group_id}")
        self._members.append(_Member(nexthop))
        self._rebalance(now_ns)
        self._changed()

    def remove_nexthop(self, gateway: AddrLike, now_ns: int = 0) -> NextHop:
        member = self._member_for(gateway)
        self._members.remove(member)
        removed_buckets = [i for i, owner in enumerate(self._buckets) if owner is member]
        for i in removed_buckets:
            self._buckets[i] = None
        self._rebalance(now_ns)
        self._changed()
        return member.nexthop

    def maintain(self, now_ns: int) -> None:
        """Periodic upkeep: migrate draining members' now-idle buckets."""
        if self._rebalance(now_ns):
            self._changed()

    # -------------------------------------------------------- introspection

    def buckets_owned(self, gateway: AddrLike) -> int:
        addr = ipv4(gateway)
        return sum(
            1 for owner in self._buckets if owner is not None and owner.nexthop.gateway == addr
        )

    def is_drained(self, gateway: AddrLike) -> bool:
        """A draining member with no buckets left carries no flows."""
        return self.buckets_owned(gateway) == 0

    def owner_map(self) -> Tuple[Optional[IPv4Addr], ...]:
        """Bucket → owning gateway snapshot (for churn measurement)."""
        return tuple(owner.nexthop.gateway if owner is not None else None for owner in self._buckets)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.group_id,
            "policy": self.policy,
            "num_buckets": self.num_buckets,
            "members": [
                {
                    "gateway": str(m.nexthop.gateway),
                    "oif": m.nexthop.oif,
                    "weight": m.nexthop.weight,
                    "alive": m.alive,
                    "draining": m.draining,
                    "buckets": self.buckets_owned(m.nexthop.gateway),
                }
                for m in self._members
            ],
        }

    # ------------------------------------------------------------ internals

    def _member_for(self, gateway: AddrLike) -> _Member:
        addr = ipv4(gateway)
        for member in self._members:
            if member.nexthop.gateway == addr:
                return member
        raise RouteError(f"no nexthop {addr} in group {self.group_id}")

    def _changed(self) -> None:
        if self._on_change is not None:
            self._on_change()

    def _is_idle(self, bucket: int, now_ns: int) -> bool:
        return now_ns - self._last_used[bucket] >= self.idle_timer_ns

    def _wants(self) -> Dict[int, int]:
        """Fair bucket share per member index, proportional to weight."""
        active = [(i, m) for i, m in enumerate(self._members) if m.active]
        if not active:
            return {}
        total_weight = sum(m.nexthop.weight for _, m in active)
        shares = [
            (i, self.num_buckets * m.nexthop.weight / total_weight, m.nexthop.weight)
            for i, m in active
        ]
        wants = {i: int(share) for i, share, _ in shares}
        remainder = self.num_buckets - sum(wants.values())
        # Hand leftover buckets to the largest fractional shares (stable
        # tie-break on member index keeps the layout deterministic).
        by_frac = sorted(shares, key=lambda t: (-(t[1] - int(t[1])), t[0]))
        for i, _, _ in by_frac[:remainder]:
            wants[i] += 1
        return wants

    def _rebalance(self, now_ns: int) -> bool:
        """Reassign buckets that must (or may) move. Returns True on change.

        Buckets move when their owner is gone/dead, when a draining owner's
        bucket has gone idle, or — for weight fairness — when an overfull
        member's *idle* bucket can satisfy an underfilled member. Non-idle
        buckets of live members never move: that is the resilience property.
        """
        wants = self._wants()
        if not wants:
            return False
        members = self._members
        has: Dict[int, int] = {i: 0 for i in wants}
        for owner in self._buckets:
            if owner is None:
                continue
            try:
                idx = members.index(owner)
            except ValueError:
                continue
            if idx in has:
                has[idx] += 1

        def underfilled() -> Optional[int]:
            for i in sorted(wants):
                if has[i] < wants[i]:
                    return i
            # Everyone at fair share; any active member may absorb extras.
            return min(wants) if wants else None

        changed = False
        for bucket, owner in enumerate(self._buckets):
            idx = members.index(owner) if owner in members else None
            usable = idx is not None and owner.alive
            if usable and not owner.draining:
                continue
            if usable and owner.draining and not self._is_idle(bucket, now_ns):
                continue  # graceful: flows still using this bucket stay put
            target = underfilled()
            if target is None:
                continue
            self._buckets[bucket] = members[target]
            self._last_used[bucket] = _NEVER_USED
            has[target] += 1
            changed = True
        # Fairness pass: migrate idle buckets from overfull to underfilled
        # members (this is how a revived/added member earns buckets back
        # without disturbing active flows).
        for bucket, owner in enumerate(self._buckets):
            if owner is None:
                continue
            idx = members.index(owner) if owner in members else None
            if idx is None or idx not in has:
                continue
            if has[idx] <= wants.get(idx, 0):
                continue
            if not self._is_idle(bucket, now_ns):
                continue
            target = None
            for i in sorted(wants):
                if has[i] < wants[i]:
                    target = i
                    break
            if target is None:
                break
            self._buckets[bucket] = members[target]
            self._last_used[bucket] = _NEVER_USED
            has[idx] -= 1
            has[target] += 1
            changed = True
        return changed


@dataclass
class _TrieNode:
    routes: List[Route] = field(default_factory=list)
    children: Dict[int, "_TrieNode"] = field(default_factory=dict)


class Fib:
    """A routing table with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._count = 0
        # Bumped on every semantic mutation; the flow cache keys entry
        # validity off this (generation-tag invalidation). Nexthop-group
        # mutations bump it too (they change forwarding decisions just as
        # surely as a route replace does).
        self.gen = 0
        self.nexthop_groups: Dict[int, NexthopGroup] = {}

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------ nexthop groups

    def _bump(self) -> None:
        self.gen += 1

    def nexthop_group_add(self, group: NexthopGroup, replace: bool = False) -> None:
        if group.group_id in self.nexthop_groups and not replace:
            raise RouteError(f"nexthop group {group.group_id} exists")
        group._on_change = self._bump
        self.nexthop_groups[group.group_id] = group
        self.gen += 1

    def nexthop_group_del(self, group_id: int) -> NexthopGroup:
        try:
            group = self.nexthop_groups.pop(group_id)
        except KeyError:
            raise RouteError(f"no nexthop group {group_id}") from None
        group._on_change = None
        self.gen += 1
        return group

    def nexthop_group(self, group_id: int) -> Optional[NexthopGroup]:
        return self.nexthop_groups.get(group_id)

    def resolve(self, route: Route, flow_hash: int, now_ns: int = 0) -> Optional[Route]:
        """Collapse a (possibly multipath) route to one concrete next hop.

        Single-path routes come back unchanged. Multipath routes consult
        their nexthop group with the flow's symmetric hash; ``None`` means
        no member can serve (group missing or every hop weighted out), which
        callers treat exactly like a FIB miss.
        """
        if route.nhg is None:
            return route
        group = self.nexthop_groups.get(route.nhg)
        if group is None:
            return None
        nexthop = group.select(flow_hash, now_ns)
        if nexthop is None:
            return None
        return Route(
            prefix=route.prefix,
            oif=nexthop.oif,
            gateway=nexthop.gateway,
            scope=SCOPE_UNIVERSE,
            metric=route.metric,
            table=route.table,
        )

    def add(self, route: Route, replace: bool = True) -> None:
        """Insert a route; same-prefix same-metric routes are replaced."""
        node = self._node_for(route.prefix, create=True)
        for i, existing in enumerate(node.routes):
            if existing.metric == route.metric:
                if not replace:
                    raise RouteError(f"route {route.prefix} metric {route.metric} exists")
                node.routes[i] = route
                self.gen += 1
                return
        node.routes.append(route)
        node.routes.sort(key=lambda r: r.metric)
        self._count += 1
        self.gen += 1

    def remove(self, prefix: IPv4Prefix, metric: Optional[int] = None) -> Route:
        node = self._node_for(prefix, create=False)
        if node is None or not node.routes:
            raise RouteError(f"no route for {prefix}")
        if metric is None:
            removed = node.routes.pop(0)
        else:
            for i, existing in enumerate(node.routes):
                if existing.metric == metric:
                    removed = node.routes.pop(i)
                    break
            else:
                raise RouteError(f"no route for {prefix} with metric {metric}")
        self._count -= 1
        self.gen += 1
        return removed

    def remove_for_oif(self, ifindex: int) -> List[Route]:
        """Drop every route using an interface (mirrors link-down flushing)."""
        removed = [r for r in self.routes() if r.oif == ifindex]
        for route in removed:
            self.remove(route.prefix, route.metric)
        return removed

    def lookup(self, dst: AddrLike) -> Optional[Route]:
        """Longest-prefix match; returns the best (lowest-metric) route."""
        addr = ipv4(dst).value
        best: Optional[Route] = None
        node = self._root
        depth = 0
        while node is not None:
            if node.routes:
                best = node.routes[0]
            if depth == 32:
                break
            bit = (addr >> (31 - depth)) & 1
            node = node.children.get(bit)
            depth += 1
        return best

    def routes(self) -> List[Route]:
        """All routes, most-specific first (stable order for dumps)."""
        out: List[Route] = []

        def walk(node: _TrieNode) -> None:
            out.extend(node.routes)
            for bit in (0, 1):
                child = node.children.get(bit)
                if child is not None:
                    walk(child)

        walk(self._root)
        out.sort(key=lambda r: (-r.prefix.length, r.prefix.address.value, r.metric))
        return out

    def _node_for(self, prefix: IPv4Prefix, create: bool) -> Optional[_TrieNode]:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.address.value >> (31 - depth)) & 1
            child = node.children.get(bit)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node
