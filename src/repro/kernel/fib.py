"""The forwarding information base: longest-prefix-match routing.

Routes live in a binary trie keyed by prefix bits (the same structure Linux's
``fib_trie`` approximates). A lookup walks from the most-specific candidate
outward, honoring route metrics when several routes share a prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netsim.addresses import AddrLike, IPv4Addr, IPv4Prefix, ipv4

# Route scopes (mirroring rtnetlink values)
SCOPE_UNIVERSE = 0  # via a gateway
SCOPE_LINK = 253  # directly connected

MAIN_TABLE = 254


class RouteError(ValueError):
    """Raised for invalid route operations."""


@dataclass(frozen=True)
class Route:
    """One FIB entry."""

    prefix: IPv4Prefix
    oif: int  # egress interface index
    gateway: Optional[IPv4Addr] = None
    scope: int = SCOPE_UNIVERSE
    metric: int = 0
    table: int = MAIN_TABLE

    def __post_init__(self) -> None:
        if self.gateway is None and self.scope == SCOPE_UNIVERSE and self.prefix.length != 32:
            # A gateway-less universe route is only meaningful as an onlink
            # host/interface route; normalize to link scope.
            object.__setattr__(self, "scope", SCOPE_LINK)

    @property
    def next_hop(self) -> Optional[IPv4Addr]:
        """The IP whose MAC we need: the gateway, or None for onlink routes."""
        return self.gateway


@dataclass
class _TrieNode:
    routes: List[Route] = field(default_factory=list)
    children: Dict[int, "_TrieNode"] = field(default_factory=dict)


class Fib:
    """A routing table with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._count = 0
        # Bumped on every semantic mutation; the flow cache keys entry
        # validity off this (generation-tag invalidation).
        self.gen = 0

    def __len__(self) -> int:
        return self._count

    def add(self, route: Route, replace: bool = True) -> None:
        """Insert a route; same-prefix same-metric routes are replaced."""
        node = self._node_for(route.prefix, create=True)
        for i, existing in enumerate(node.routes):
            if existing.metric == route.metric:
                if not replace:
                    raise RouteError(f"route {route.prefix} metric {route.metric} exists")
                node.routes[i] = route
                self.gen += 1
                return
        node.routes.append(route)
        node.routes.sort(key=lambda r: r.metric)
        self._count += 1
        self.gen += 1

    def remove(self, prefix: IPv4Prefix, metric: Optional[int] = None) -> Route:
        node = self._node_for(prefix, create=False)
        if node is None or not node.routes:
            raise RouteError(f"no route for {prefix}")
        if metric is None:
            removed = node.routes.pop(0)
        else:
            for i, existing in enumerate(node.routes):
                if existing.metric == metric:
                    removed = node.routes.pop(i)
                    break
            else:
                raise RouteError(f"no route for {prefix} with metric {metric}")
        self._count -= 1
        self.gen += 1
        return removed

    def remove_for_oif(self, ifindex: int) -> List[Route]:
        """Drop every route using an interface (mirrors link-down flushing)."""
        removed = [r for r in self.routes() if r.oif == ifindex]
        for route in removed:
            self.remove(route.prefix, route.metric)
        return removed

    def lookup(self, dst: AddrLike) -> Optional[Route]:
        """Longest-prefix match; returns the best (lowest-metric) route."""
        addr = ipv4(dst).value
        best: Optional[Route] = None
        node = self._root
        depth = 0
        while node is not None:
            if node.routes:
                best = node.routes[0]
            if depth == 32:
                break
            bit = (addr >> (31 - depth)) & 1
            node = node.children.get(bit)
            depth += 1
        return best

    def routes(self) -> List[Route]:
        """All routes, most-specific first (stable order for dumps)."""
        out: List[Route] = []

        def walk(node: _TrieNode) -> None:
            out.extend(node.routes)
            for bit in (0, 1):
                child = node.children.get(bit)
                if child is not None:
                    walk(child)

        walk(self._root)
        out.sort(key=lambda r: (-r.prefix.length, r.prefix.address.value, r.metric))
        return out

    def _node_for(self, prefix: IPv4Prefix, create: bool) -> Optional[_TrieNode]:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.address.value >> (31 - depth)) & 1
            child = node.children.get(bit)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node
