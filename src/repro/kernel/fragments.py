"""IPv4 fragmentation and reassembly.

Table I assigns "IP (de)fragmentation" to the slow path; this module makes
that row real: the stack fragments oversized egress datagrams at the
interface MTU and reassembles inbound fragments before local delivery,
with the usual 30 s reassembly timeout. Fast paths always punt fragments
(``frag != 0`` checks in the FPM templates), so every fragment exercises
this code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.packet import IPv4, Packet

REASSEMBLY_TIMEOUT_NS = 30 * 1_000_000_000
MAX_FRAGMENT_QUEUES = 256

FragKey = Tuple[IPv4Addr, IPv4Addr, int, int]  # src, dst, proto, ident


@dataclass
class _FragmentQueue:
    created_ns: int
    # offset (bytes) -> payload bytes
    pieces: Dict[int, bytes] = field(default_factory=dict)
    total_len: Optional[int] = None  # set by the last fragment
    first_header: Optional[IPv4] = None

    def add(self, ip: IPv4, body: bytes) -> None:
        offset = ip.frag_offset * 8
        self.pieces[offset] = body
        if ip.frag_offset == 0:
            self.first_header = ip
        if not ip.more_fragments:
            self.total_len = offset + len(body)

    def complete(self) -> bool:
        if self.total_len is None or self.first_header is None:
            return False
        have = 0
        for offset in sorted(self.pieces):
            if offset > have:
                return False  # hole
            have = max(have, offset + len(self.pieces[offset]))
        return have >= self.total_len

    def payload(self) -> bytes:
        out = bytearray(self.total_len)
        for offset, body in self.pieces.items():
            out[offset : offset + len(body)] = body[: self.total_len - offset]
        return bytes(out)


class Reassembler:
    """Per-kernel inbound fragment reassembly."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._queues: Dict[FragKey, _FragmentQueue] = {}
        self.reassembled = 0
        self.timed_out = 0

    def push(self, pkt: Packet) -> Optional[Packet]:
        """Feed one fragment; returns the reassembled packet when complete."""
        ip = pkt.ip
        key: FragKey = (ip.src, ip.dst, ip.proto, ip.ident)
        queue = self._queues.get(key)
        if queue is None:
            if len(self._queues) >= MAX_FRAGMENT_QUEUES:
                self.gc(force_oldest=True)
            queue = _FragmentQueue(created_ns=self._clock.now_ns)
            self._queues[key] = queue
        # the L4 header of the first fragment is parsed into pkt.l4; fold it
        # back into the raw body so offsets line up
        body = pkt.payload
        if ip.frag_offset == 0 and pkt.l4 is not None:
            raw = pkt.to_bytes()
            header_len = 14 + (4 if pkt.vlan else 0) + IPv4.HDR_LEN
            body = raw[header_len:]
        queue.add(ip, body)
        if not queue.complete():
            return None
        payload = queue.payload()
        del self._queues[key]
        self.reassembled += 1
        header = queue.first_header
        whole = Packet(
            eth=pkt.eth,
            vlan=pkt.vlan,
            ip=IPv4(src=header.src, dst=header.dst, proto=header.proto, ttl=header.ttl,
                    tos=header.tos, ident=header.ident),
            payload=payload,
        )
        # reparse so the L4 header materializes
        return Packet.from_bytes(whole.to_bytes())

    def gc(self, force_oldest: bool = False) -> int:
        """Expire stale queues; returns the number dropped."""
        now = self._clock.now_ns
        stale = [k for k, q in self._queues.items() if now - q.created_ns > REASSEMBLY_TIMEOUT_NS]
        if force_oldest and not stale and self._queues:
            stale = [min(self._queues, key=lambda k: self._queues[k].created_ns)]
        for key in stale:
            del self._queues[key]
            self.timed_out += 1
        return len(stale)

    def pending(self) -> int:
        return len(self._queues)


def fragment(pkt: Packet, mtu: int) -> List[Packet]:
    """Split an IPv4 packet into MTU-sized fragments (DF honored)."""
    raw = pkt.to_bytes()
    header_len = 14 + (4 if pkt.vlan else 0) + IPv4.HDR_LEN
    body = raw[header_len:]
    ip = pkt.ip
    if len(body) + IPv4.HDR_LEN <= mtu:
        return [pkt]
    if ip.flags & 0x2:  # DF
        return []
    chunk = ((mtu - IPv4.HDR_LEN) // 8) * 8
    fragments: List[Packet] = []
    offset = 0
    while offset < len(body):
        piece = body[offset : offset + chunk]
        more = offset + len(piece) < len(body)
        frag_ip = IPv4(
            src=ip.src, dst=ip.dst, proto=ip.proto, ttl=ip.ttl, tos=ip.tos,
            ident=ip.ident, flags=0x1 if more else 0x0, frag_offset=offset // 8,
        )
        fragments.append(Packet(eth=pkt.eth, vlan=pkt.vlan, ip=frag_ip, payload=piece))
        offset += len(piece)
    return fragments
