"""The :class:`Kernel`: one simulated Linux host.

A Kernel owns every networking subsystem plus the netlink bus. All
configuration mutators live here and *always* emit the corresponding netlink
notification — exactly like Linux, where the kernel announces changes no
matter which tool made them. Management tools (:mod:`repro.tools`) reach
these mutators through netlink messages (:mod:`repro.kernel.rtnetlink`);
the LinuxFP controller only ever observes the netlink surface.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple, Union

from repro.kernel import rtnetlink
from repro.kernel.bridge import Bridge
from repro.kernel.conntrack import Conntrack
from repro.kernel.fib import Fib, Route, SCOPE_LINK, SCOPE_UNIVERSE
from repro.kernel.interfaces import (
    BridgeDevice,
    DeviceError,
    DeviceTable,
    LoopbackDevice,
    NetDevice,
    PhysicalDevice,
    VethDevice,
    VxlanDevice,
)
from repro.kernel.ipset import IpsetRegistry
from repro.kernel.ipvs import Ipvs
from repro.kernel.neighbor import NeighborTable, NUD_PERMANENT
from repro.kernel.netfilter import Netfilter, Rule
from repro.kernel.sockets import SocketTable
from repro.kernel.stack import Stack
from repro.kernel.sysctl import Sysctl
from repro.netlink.bus import NetlinkBus
from repro.netlink.messages import (
    GRP_IPVS,
    GRP_SYSCTL,
    NFNLGRP_IPSET,
    NFNLGRP_IPTABLES,
    RTNLGRP_FDB,
    RTNLGRP_IPV4_IFADDR,
    RTNLGRP_IPV4_ROUTE,
    RTNLGRP_LINK,
    RTNLGRP_NEIGH,
    NetlinkMsg,
)
from repro.netlink import messages as msg
from repro.netsim.addresses import (
    AddrLike,
    IfAddr,
    IPv4Prefix,
    MacAddr,
    ifaddr,
    ipv4,
    prefix as parse_prefix,
)
from repro.netsim.clock import Clock
from repro.netsim.cost import CostModel
from repro.netsim.profiler import Profiler

_host_ids = itertools.count(1)


class Kernel:
    """One simulated host: devices, stack state, and the netlink surface."""

    def __init__(
        self,
        hostname: str = "host",
        clock: Optional[Clock] = None,
        costs: Optional[CostModel] = None,
        num_cores: int = 1,
    ) -> None:
        self.hostname = hostname
        self.host_id = next(_host_ids)
        self.clock = clock if clock is not None else Clock()
        self.costs = costs if costs is not None else CostModel()
        self.num_cores = num_cores
        from repro.netsim.cpu import CpuSet

        self.cpus = CpuSet(num_cores)
        self.profiler = Profiler(self.clock, enabled=False)
        self.bus = NetlinkBus()
        self.devices = DeviceTable(self)
        self.fib = Fib()
        self.neighbors = NeighborTable(self.clock)
        self.ipsets = IpsetRegistry()
        self.netfilter = Netfilter(self)
        self.conntrack = Conntrack(self.clock, num_shards=num_cores)
        self.ipvs = Ipvs(self.conntrack)
        self.sysctl = Sysctl()
        self.sockets = SocketTable(self)
        from repro.observability.monitor import Observability

        self.observability = Observability(self)
        # the profiler feeds the packet tracer (stage events) and the
        # per-stage latency histograms
        self.profiler.tracer = self.observability.tracer
        self.profiler.stage_observer = self.observability.record_stage
        self.stack = Stack(self)
        from repro.kernel.softirq import SoftirqSet

        self.softirq = SoftirqSet(self)
        from repro.fastpath import FlowCache  # local import: cycle guard

        self.flow_cache = FlowCache(self)
        from repro.ebpf.jit import JitEngine  # local import: cycle guard

        self.jit = JitEngine(self)
        # The controller's differential watchdog, installed by Controller.start().
        self.watchdog = None

        self.sysctl.add_listener(
            lambda name, value: self.bus.notify(
                GRP_SYSCTL, NetlinkMsg(msg.SYSCTL_SET, {"name": name, "value": value})
            )
        )
        self.conntrack.max_entries = int(self.sysctl.get("net.netfilter.nf_conntrack_max"))
        self.sysctl.add_listener(self._on_conntrack_sysctl)
        rtnetlink.register(self)

        lo = LoopbackDevice(self, self.devices.next_ifindex(), "lo", MacAddr(0))
        self.devices.register(lo)
        lo.up = True
        lo.add_address(IfAddr.parse("127.0.0.1/8"))

    def _on_conntrack_sysctl(self, name: str, value: str) -> None:
        if name != "net.netfilter.nf_conntrack_max":
            return
        try:
            self.conntrack.max_entries = int(value)
        except ValueError:
            pass  # non-numeric write: keep the previous limit

    # ----------------------------------------------------------- accounting

    def costs_charge(self, name: str) -> None:
        """Charge one named operation's cost to the simulated clock."""
        self.charge_ns(getattr(self.costs, name))

    def charge_ns(self, ns: float) -> None:
        """Charge ``ns`` of work: the global clock always advances (it
        orders timeouts across the simulation); the busy time additionally
        lands on whichever of this kernel's CPUs is executing, which is what
        multi-core throughput is measured from."""
        self.clock.advance(ns)
        self.cpus.charge(ns)

    # ------------------------------------------------------------- devices

    def add_physical(self, name: str, num_queues: int = 1, mac: Optional[MacAddr] = None) -> PhysicalDevice:
        dev = PhysicalDevice(
            self, self.devices.next_ifindex(), name, mac or self.devices.allocate_mac(), num_queues
        )
        self.devices.register(dev)
        self._notify_link(dev)
        return dev

    def add_bridge(self, name: str) -> BridgeDevice:
        dev = BridgeDevice(self, self.devices.next_ifindex(), name, self.devices.allocate_mac())
        self.devices.register(dev)
        self._notify_link(dev)
        return dev

    def add_veth_pair(
        self, name: str, peer_name: str, peer_kernel: Optional["Kernel"] = None
    ) -> Tuple[VethDevice, VethDevice]:
        peer_kernel = peer_kernel or self
        dev = VethDevice(self, self.devices.next_ifindex(), name, self.devices.allocate_mac())
        peer = VethDevice(
            peer_kernel, peer_kernel.devices.next_ifindex(), peer_name, peer_kernel.devices.allocate_mac()
        )
        dev.connect(peer)
        self.devices.register(dev)
        peer_kernel.devices.register(peer)
        self._notify_link(dev)
        peer_kernel._notify_link(peer)
        return dev, peer

    def add_vxlan(
        self,
        name: str,
        vni: int,
        local: AddrLike,
        port: int = 8472,
        underlay: Optional[str] = None,
    ) -> VxlanDevice:
        underlay_ifindex = self.devices.by_name(underlay).ifindex if underlay else 0
        dev = VxlanDevice(
            self,
            self.devices.next_ifindex(),
            name,
            self.devices.allocate_mac(),
            vni=vni,
            local=ipv4(local),
            port=port,
            underlay_ifindex=underlay_ifindex,
        )
        self.devices.register(dev)
        self._notify_link(dev)
        return dev

    def del_device(self, name: str) -> None:
        dev = self.devices.by_name(name)
        if isinstance(dev, BridgeDevice):
            for port in list(dev.bridge.ports.values()):
                dev.bridge.remove_port(port.device)
        if dev.master is not None:
            self.release(name)
        for route in self.fib.remove_for_oif(dev.ifindex):
            self._notify_route(msg.RTM_DELROUTE, route)
        self.neighbors.flush_ifindex(dev.ifindex)
        if isinstance(dev, VethDevice) and dev.peer is not None:
            dev.peer.peer = None
        self.devices.unregister(dev)
        self.bus.notify(RTNLGRP_LINK, NetlinkMsg(msg.RTM_DELLINK, rtnetlink.link_attrs(dev)))

    def set_link(self, name: str, up: bool) -> NetDevice:
        dev = self.devices.by_name(name)
        if dev.up != up:
            dev.up = up
            self.devices.gen += 1
            if not up:
                for route in self.fib.remove_for_oif(dev.ifindex):
                    self._notify_route(msg.RTM_DELROUTE, route)
            self._notify_link(dev)
        return dev

    def enslave(self, port_name: str, bridge_name: str) -> None:
        port = self.devices.by_name(port_name)
        bridge_dev = self.devices.by_name(bridge_name)
        if not isinstance(bridge_dev, BridgeDevice):
            raise DeviceError(f"{bridge_name} is not a bridge")
        bridge_dev.bridge.add_port(port)
        self._notify_link(port)

    def release(self, port_name: str) -> None:
        port = self.devices.by_name(port_name)
        if port.master is None:
            raise DeviceError(f"{port_name} has no master")
        bridge_dev = self.devices.by_index(port.master)
        bridge_dev.bridge.remove_port(port)
        self._notify_link(port)

    def set_bridge_attrs(
        self,
        name: str,
        stp: Optional[bool] = None,
        vlan_filtering: Optional[bool] = None,
        ageing_time_s: Optional[int] = None,
    ) -> Bridge:
        dev = self.devices.by_name(name)
        if not isinstance(dev, BridgeDevice):
            raise DeviceError(f"{name} is not a bridge")
        if stp is not None or vlan_filtering is not None or ageing_time_s is not None:
            dev.bridge.gen += 1
        if stp is not None:
            dev.bridge.stp_enabled = stp
        if vlan_filtering is not None:
            dev.bridge.vlan_filtering = vlan_filtering
        if ageing_time_s is not None:
            dev.bridge.ageing_time_ns = ageing_time_s * 1_000_000_000
        self._notify_link(dev)
        return dev.bridge

    # ----------------------------------------------------------- addressing

    def add_address(self, dev_name: str, addr: Union[str, IfAddr]) -> IfAddr:
        dev = self.devices.by_name(dev_name)
        addr = ifaddr(addr)
        dev.add_address(addr)
        self.bus.notify(
            RTNLGRP_IPV4_IFADDR,
            NetlinkMsg(msg.RTM_NEWADDR, {"ifindex": dev.ifindex, "address": addr.address, "prefixlen": addr.length}),
        )
        # Linux installs the connected (link-scope) route automatically.
        if addr.length < 32:
            self.route_add(addr.network, dev=dev_name, _quiet_exists=True)
        return addr

    def del_address(self, dev_name: str, address: AddrLike) -> None:
        dev = self.devices.by_name(dev_name)
        removed = dev.remove_address(ipv4(address))
        self.bus.notify(
            RTNLGRP_IPV4_IFADDR,
            NetlinkMsg(
                msg.RTM_DELADDR,
                {"ifindex": dev.ifindex, "address": removed.address, "prefixlen": removed.length},
            ),
        )
        if removed.length < 32:
            try:
                self.route_del(removed.network)
            except Exception:
                pass

    # -------------------------------------------------------------- routing

    def route_add(
        self,
        dst: Union[str, IPv4Prefix],
        via: Optional[AddrLike] = None,
        dev: Optional[str] = None,
        metric: int = 0,
        onlink: bool = False,
        nhg: Optional[int] = None,
        _replace: bool = False,
        _quiet_exists: bool = False,
    ) -> Route:
        dst = parse_prefix(dst) if isinstance(dst, str) else dst
        if nhg is not None:
            if self.fib.nexthop_group(nhg) is None:
                raise DeviceError(f"nexthop group {nhg} does not exist")
            route = Route(prefix=dst, oif=0, metric=metric, nhg=nhg)
            self.fib.add(route, replace=_replace or _quiet_exists)
            self._notify_route(msg.RTM_NEWROUTE, route)
            return route
        gateway = ipv4(via) if via is not None else None
        if dev is not None:
            oif = self.devices.by_name(dev).ifindex
        elif gateway is not None:
            connected = self.fib.lookup(gateway)
            if connected is None:
                raise DeviceError(f"gateway {gateway} is unreachable")
            oif = connected.oif
        else:
            raise DeviceError("route needs a device or gateway")
        scope = SCOPE_LINK if gateway is None else SCOPE_UNIVERSE
        route = Route(prefix=dst, oif=oif, gateway=gateway, scope=scope, metric=metric)
        try:
            self.fib.add(route, replace=_replace or _quiet_exists)
        except Exception:
            if _quiet_exists:
                return route
            raise
        self._notify_route(msg.RTM_NEWROUTE, route)
        return route

    def route_replace(
        self,
        dst: Union[str, IPv4Prefix],
        via: Optional[AddrLike] = None,
        dev: Optional[str] = None,
        metric: int = 0,
        onlink: bool = False,
        nhg: Optional[int] = None,
    ) -> Route:
        """``ip route replace``: add-or-overwrite the same-prefix same-metric
        entry. The FIB bumps its generation either way, so flow-cache entries
        forwarding via the old next hop are invalidated."""
        return self.route_add(dst, via=via, dev=dev, metric=metric, onlink=onlink, nhg=nhg, _replace=True)

    def route_del(self, dst: Union[str, IPv4Prefix], metric: Optional[int] = None) -> Route:
        dst = parse_prefix(dst) if isinstance(dst, str) else dst
        removed = self.fib.remove(dst, metric)
        self._notify_route(msg.RTM_DELROUTE, removed)
        return removed

    # -------------------------------------------------------- nexthop groups

    def nexthop_group_add(
        self,
        group_id: int,
        nexthops,
        policy: str = "resilient",
        num_buckets: int = 64,
        idle_timer_ns: int = 1_000_000_000,
    ):
        """Create an ECMP nexthop group (``ip nexthop add group ...``)."""
        from repro.kernel.fib import NexthopGroup

        group = NexthopGroup(
            group_id, nexthops, policy=policy, num_buckets=num_buckets, idle_timer_ns=idle_timer_ns
        )
        self.fib.nexthop_group_add(group)
        self.bus.notify(
            RTNLGRP_IPV4_ROUTE,
            NetlinkMsg(
                msg.RTM_NEWROUTE,
                {"nhg": group_id, "nhg_policy": group.policy, "nhg_buckets": group.num_buckets},
            ),
        )
        return group

    def nexthop_group_del(self, group_id: int):
        group = self.fib.nexthop_group_del(group_id)
        self.bus.notify(RTNLGRP_IPV4_ROUTE, NetlinkMsg(msg.RTM_DELROUTE, {"nhg": group_id}))
        return group

    # ------------------------------------------------------------ neighbors

    def neigh_add(self, dev_name: str, ip: AddrLike, lladdr: MacAddr, permanent: bool = True) -> None:
        dev = self.devices.by_name(dev_name)
        state = NUD_PERMANENT if permanent else 0x02
        self.neighbors.update(dev.ifindex, ip, lladdr, state=state)
        self.bus.notify(
            RTNLGRP_NEIGH,
            NetlinkMsg(
                msg.RTM_NEWNEIGH,
                {"ifindex": dev.ifindex, "dst": ipv4(ip), "lladdr": lladdr, "state": state},
            ),
        )

    def neigh_del(self, dev_name: str, ip: AddrLike) -> None:
        dev = self.devices.by_name(dev_name)
        self.neighbors.remove(dev.ifindex, ip)
        self.bus.notify(
            RTNLGRP_NEIGH,
            NetlinkMsg(msg.RTM_DELNEIGH, {"ifindex": dev.ifindex, "dst": ipv4(ip)}),
        )

    # ------------------------------------------------------------------ fdb

    def fdb_add(self, dev_name: str, mac: MacAddr, dst: Optional[AddrLike] = None, vlan: int = 1) -> None:
        """``bridge fdb add``: static bridge FDB entry, or a vtep entry when
        ``dev`` is a vxlan device and ``dst`` (the remote vtep IP) is given."""
        dev = self.devices.by_name(dev_name)
        if isinstance(dev, VxlanDevice) and dst is not None:
            dev.fdb_add(mac, ipv4(dst))
            master = dev.master
        elif dev.master is not None:
            bridge_dev = self.devices.by_index(dev.master)
            bridge_dev.bridge.fdb_learn(mac, vlan, dev.ifindex, static=True)
            master = dev.master
        else:
            raise DeviceError(f"{dev_name}: fdb entries need a bridge port or vxlan device")
        self.bus.notify(
            RTNLGRP_FDB,
            NetlinkMsg(
                msg.RTM_NEWFDB,
                {"ifindex": dev.ifindex, "master": master or 0, "lladdr": mac, "vlan": vlan, "state": 0},
            ),
        )

    # ------------------------------------------------------------- iptables

    def ipt_append(self, chain: str, rule: Rule) -> Rule:
        appended = self.netfilter.append_rule(chain, rule)
        self.bus.notify(NFNLGRP_IPTABLES, NetlinkMsg(msg.NFT_NEWRULE, rtnetlink.rule_attrs(chain, appended)))
        return appended

    def ipt_delete(self, chain: str, handle: int) -> Rule:
        removed = self.netfilter.delete_rule(chain, handle)
        self.bus.notify(NFNLGRP_IPTABLES, NetlinkMsg(msg.NFT_DELRULE, rtnetlink.rule_attrs(chain, removed)))
        return removed

    def ipt_policy(self, chain: str, policy: str) -> None:
        self.netfilter.set_policy(chain, policy)
        self.bus.notify(
            NFNLGRP_IPTABLES,
            NetlinkMsg(msg.NFT_SETPOLICY, {"table": "filter", "chain": chain, "policy": policy}),
        )

    def ipt_flush(self, chain: Optional[str] = None) -> None:
        self.netfilter.flush(chain)
        self.bus.notify(
            NFNLGRP_IPTABLES,
            NetlinkMsg(msg.NFT_DELRULE, {"table": "filter", "chain": chain or "*"}),
        )

    # ---------------------------------------------------------------- ipset

    def ipset_create(self, name: str, set_type: str = "hash:ip"):
        created = self.ipsets.create(name, set_type)
        self.bus.notify(NFNLGRP_IPSET, NetlinkMsg(msg.IPSET_NEWSET, {"name": name, "set_type": set_type}))
        return created

    def ipset_destroy(self, name: str) -> None:
        self.ipsets.destroy(name)
        self.bus.notify(NFNLGRP_IPSET, NetlinkMsg(msg.IPSET_DELSET, {"name": name}))

    def ipset_add(self, name: str, entry: AddrLike, prefixlen: int = 32) -> None:
        self.ipsets.require(name).add(entry, prefixlen)
        self.bus.notify(
            NFNLGRP_IPSET,
            NetlinkMsg(msg.IPSET_ADDENTRY, {"name": name, "entries": [{"ip": ipv4(entry), "prefixlen": prefixlen}]}),
        )

    def ipset_del(self, name: str, entry: AddrLike, prefixlen: int = 32) -> None:
        self.ipsets.require(name).remove(entry, prefixlen)
        self.bus.notify(
            NFNLGRP_IPSET,
            NetlinkMsg(msg.IPSET_DELENTRY, {"name": name, "entries": [{"ip": ipv4(entry), "prefixlen": prefixlen}]}),
        )

    # ----------------------------------------------------------------- ipvs

    def ipvs_add_service(self, vip: AddrLike, port: int, proto: int, scheduler: str = "rr"):
        service = self.ipvs.add_service(vip, port, proto, scheduler)
        self.bus.notify(
            GRP_IPVS,
            NetlinkMsg(msg.IPVS_NEWSERVICE, {"vip": ipv4(vip), "vport": port, "proto": proto, "scheduler": scheduler}),
        )
        return service

    def ipvs_add_dest(self, vip: AddrLike, port: int, proto: int, rs: AddrLike, rport: int, weight: int = 1):
        dest = self.ipvs.add_dest(vip, port, proto, rs, rport, weight)
        self.bus.notify(
            GRP_IPVS,
            NetlinkMsg(
                msg.IPVS_NEWDEST,
                {"vip": ipv4(vip), "vport": port, "proto": proto, "rs": ipv4(rs), "rport": rport, "weight": weight},
            ),
        )
        return dest

    # --------------------------------------------------------------- sysctl

    def sysctl_set(self, name: str, value: str) -> None:
        self.sysctl.set(name, value)  # listener emits the notification

    # ---------------------------------------------------------- CPU hotplug

    def cpu_offline(self, cpu: int) -> None:
        """Hot-unplug a data-plane CPU (the ``cpuhp`` teardown path).

        Ordering matters for conservation: the CPU's backlog is drained
        *while it is still online* (``dev_cpu_dead`` replays the dead CPU's
        queue), so no queued frame is lost; then steering, RSS indirection,
        the conntrack shard, and the flow-cache shard are all retargeted at
        the surviving CPUs. The controller hears about it via a ``CPU_OFFLINE``
        notification and rehomes deployed per-CPU map state.
        """
        self.softirq.drain_cpu(cpu)
        self.cpus.offline(cpu)  # raises on the last online CPU / mid-execution
        target = self._hotplug_target(cpu)
        self._retarget_rss()
        self.conntrack.merge_shard(cpu % self.conntrack.num_shards, target % self.conntrack.num_shards)
        self.flow_cache.drop_shard(cpu)
        self.bus.notify(
            msg.GRP_CPU,
            NetlinkMsg(msg.CPU_OFFLINE, {"cpu": cpu, "num_online": self.cpus.num_online}),
        )

    def cpu_online(self, cpu: int) -> None:
        """Bring a hot-unplugged CPU back: restore its conntrack shard and
        the default RSS spread, and announce ``CPU_ONLINE``."""
        self.cpus.online(cpu)
        self.conntrack.split_shard(cpu % self.conntrack.num_shards)
        self._retarget_rss()
        self.bus.notify(
            msg.GRP_CPU,
            NetlinkMsg(msg.CPU_ONLINE, {"cpu": cpu, "num_online": self.cpus.num_online}),
        )

    def _hotplug_target(self, dead: int) -> int:
        """The surviving CPU that inherits a dead CPU's sharded state."""
        online = self.cpus.online_cpus()
        return online[dead % len(online)]

    def _retarget_rss(self) -> None:
        """Point every physical NIC's RSS indirection table at queues whose
        owning CPU is online (IRQ-affinity migration). With every CPU online
        this restores the default even spread."""
        for dev in self.devices.all():
            nic = getattr(dev, "nic", None)
            if nic is None or nic.num_queues <= 1:
                continue
            if self.cpus.num_online == self.cpus.num_cpus:
                nic.indirection.reset()
                continue
            dead_queues = [
                q for q in range(nic.num_queues)
                if not self.cpus.is_online(q % self.cpus.num_cpus)
            ]
            live_queues = [q for q in range(nic.num_queues) if q not in dead_queues]
            if dead_queues and live_queues:
                nic.indirection.retarget(dead_queues, live_queues)

    # ----------------------------------------------------------- primitives

    def send_ip(self, ip, l4, payload: bytes = b"") -> None:
        self.stack.send_ip(ip, l4, payload)

    def run_housekeeping(self) -> Dict[str, int]:
        """Periodic slow-path maintenance (what kernel timers do): bridge
        FDB aging, conntrack expiry, fragment-queue timeouts."""
        from repro.kernel.interfaces import BridgeDevice as _Bridge

        aged = sum(d.bridge.age_fdb() for d in self.devices.all() if isinstance(d, _Bridge))
        timed_out = self.stack.reassembler.gc()
        # fragments settled as reasm_hold when received; record the reason
        # without re-settling
        for __ in range(timed_out):
            self.stack.drop("frag_timeout", terminal=False)
        return {
            "fdb_aged": aged,
            "conntrack_expired": self.conntrack.gc(),
            "fragments_timed_out": timed_out,
        }

    def _notify_link(self, dev: NetDevice) -> None:
        self.bus.notify(RTNLGRP_LINK, NetlinkMsg(msg.RTM_NEWLINK, rtnetlink.link_attrs(dev)))

    def _notify_route(self, msg_type: int, route: Route) -> None:
        self.bus.notify(RTNLGRP_IPV4_ROUTE, NetlinkMsg(msg_type, rtnetlink.route_attrs(route)))

    def __repr__(self) -> str:
        return f"Kernel({self.hostname!r}, devices={len(self.devices)})"
