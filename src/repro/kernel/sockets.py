"""A minimal in-kernel socket layer for local delivery.

Enough to host the measurement workloads: servers register on
(protocol, port) and receive delivered SKBuffs; they reply through the
kernel's IP output path. This models the part of the stack the paper's
Kubernetes pods exercise (netperf's netserver / TCP_RR clients).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, IPv4, TCP, UDP
from repro.netsim.skbuff import SKBuff

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

# Handler receives (kernel, skb); return value is ignored.
SocketHandler = Callable[["Kernel", SKBuff], None]


class SocketError(ValueError):
    """Raised for invalid socket operations."""


class SocketTable:
    """Registered local endpoints keyed by (proto, port)."""

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._handlers: Dict[Tuple[int, int], SocketHandler] = {}
        self.delivered = 0
        self.unclaimed = 0

    def bind(self, proto: int, port: int, handler: SocketHandler) -> None:
        key = (proto, port)
        if key in self._handlers:
            raise SocketError(f"port {port}/proto {proto} already bound")
        self._handlers[key] = handler

    def unbind(self, proto: int, port: int) -> None:
        self._handlers.pop((proto, port), None)

    def deliver(self, skb: SKBuff) -> bool:
        l4 = skb.pkt.l4
        if not isinstance(l4, (TCP, UDP)):
            self.unclaimed += 1
            return False
        handler = self._handlers.get((skb.pkt.ip.proto, l4.dport))
        if handler is None:
            self.unclaimed += 1
            return False
        self.delivered += 1
        handler(self._kernel, skb)
        return True


def udp_echo_server(kernel: "Kernel", port: int) -> None:
    """Bind a UDP server that echoes payloads back to the sender."""

    def handle(k: "Kernel", skb: SKBuff) -> None:
        req_ip, req_udp = skb.pkt.ip, skb.pkt.l4
        k.send_ip(
            IPv4(src=req_ip.dst, dst=req_ip.src, proto=IPPROTO_UDP),
            UDP(sport=req_udp.dport, dport=req_udp.sport),
            skb.pkt.payload,
        )

    kernel.sockets.bind(IPPROTO_UDP, port, handle)


def tcp_rr_server(kernel: "Kernel", port: int, response_size: int = 1) -> None:
    """Bind a netperf-style TCP_RR responder: fixed-size reply per request.

    The payload is opaque (measurement harnesses embed timestamps); we echo
    the first ``response_size`` bytes (padding with zeros) so round-trip
    correlation data survives.
    """

    def handle(k: "Kernel", skb: SKBuff) -> None:
        req_ip, req_tcp = skb.pkt.ip, skb.pkt.l4
        body = skb.pkt.payload[:response_size].ljust(response_size, b"\x00")
        k.send_ip(
            IPv4(src=req_ip.dst, dst=req_ip.src, proto=IPPROTO_TCP),
            TCP(sport=req_tcp.dport, dport=req_tcp.sport, flags=TCP.ACK | TCP.PSH),
            body,
        )

    kernel.sockets.bind(IPPROTO_TCP, port, handle)
