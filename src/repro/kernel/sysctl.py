"""Sysctl registry (``net.*`` keys only).

Real Linux exposes these via procfs; the LinuxFP controller needs change
notifications, so writes are also announced on the netlink bus under the
``sysctl`` group (a documented divergence — see DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List

DEFAULTS = {
    "net.ipv4.ip_forward": "0",
    "net.ipv4.conf.all.rp_filter": "1",
    "net.bridge.bridge-nf-call-iptables": "1",
    "net.ipv4.vs.conntrack": "1",
    "net.netfilter.nf_conntrack_max": "65536",
    # Per-CPU softirq backlog bound (frames queued awaiting NET_RX
    # processing); the Linux default. Overflow drops the frame under the
    # ``backlog_overflow`` drop reason.
    "net.core.netdev_max_backlog": "1000",
}


class SysctlError(KeyError):
    """Raised for unknown sysctl keys."""


class Sysctl:
    """String-valued kernel tunables with change listeners."""

    def __init__(self) -> None:
        self._values: Dict[str, str] = dict(DEFAULTS)
        self._listeners: List[Callable[[str, str], None]] = []

    def get(self, name: str) -> str:
        try:
            return self._values[name]
        except KeyError:
            raise SysctlError(f"unknown sysctl {name!r}") from None

    def get_bool(self, name: str) -> bool:
        return self.get(name) not in ("0", "")

    def set(self, name: str, value: str) -> None:
        if name not in self._values:
            raise SysctlError(f"unknown sysctl {name!r}")
        value = str(value)
        if self._values[name] == value:
            return
        self._values[name] = value
        for listener in self._listeners:
            listener(name, value)

    def add_listener(self, callback: Callable[[str, str], None]) -> None:
        self._listeners.append(callback)

    def known_keys(self) -> List[str]:
        return sorted(self._values)
