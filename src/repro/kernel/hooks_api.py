"""The kernel's eBPF hook API: verdict codes and attachment contracts.

This is the simulator's equivalent of ``uapi/linux/bpf.h``: the kernel
defines what an attached program may return and what context it receives;
:mod:`repro.ebpf` implements programs against this contract.

An attached XDP program object must expose::

    run_xdp(kernel, dev, frame: bytes) -> XdpResult

and a TC program::

    run_tc(kernel, dev, skb) -> TcResult
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# XDP verdicts (mirroring enum xdp_action)
XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3
XDP_REDIRECT = 4
# frame consumed inside the eBPF layer (e.g. delivered to an AF_XDP socket);
# not part of the kernel enum — the real kernel folds this into REDIRECT
XDP_CONSUMED = 5

# TC verdicts (subset of TC_ACT_*)
TC_ACT_OK = 0
TC_ACT_SHOT = 2
TC_ACT_REDIRECT = 7

XDP_ACTION_NAMES = {
    XDP_ABORTED: "XDP_ABORTED",
    XDP_DROP: "XDP_DROP",
    XDP_PASS: "XDP_PASS",
    XDP_TX: "XDP_TX",
    XDP_REDIRECT: "XDP_REDIRECT",
    XDP_CONSUMED: "XDP_CONSUMED",
}

TC_ACTION_NAMES = {
    TC_ACT_OK: "TC_ACT_OK",
    TC_ACT_SHOT: "TC_ACT_SHOT",
    TC_ACT_REDIRECT: "TC_ACT_REDIRECT",
}


@dataclass
class XdpResult:
    verdict: int
    frame: bytes  # possibly rewritten
    redirect_ifindex: Optional[int] = None
    # True when the verdict came from a program fault rather than policy;
    # lets drop accounting distinguish xdp_aborted from xdp_drop.
    aborted: bool = False


@dataclass
class TcResult:
    verdict: int
    frame: bytes  # possibly rewritten
    redirect_ifindex: Optional[int] = None
    aborted: bool = False
