"""Connection tracking.

Tracks flows by 5-tuple with the usual NEW → ESTABLISHED lifecycle and
timeout-based expiry on the simulated clock. Used by ipvs (NAT'd flows must
hit the same real server) and available to stateful filtering. Per Table I
of the paper, conntrack *lookup/update* is fast-path work while entry
creation and lifecycle handling stay in the slow path.

Pressure semantics mirror ``nf_conntrack_max``: the table has an optional
capacity (wired to the ``net.netfilter.nf_conntrack_max`` sysctl by the
kernel). At capacity, new insertions first attempt a Linux-style *early
drop* — evicting a closing or unreplied (non-ESTABLISHED) entry — before
giving up. Advisory tracking (:meth:`Conntrack.track`) fails *open*: the
packet proceeds untracked and the refusal is counted in ``insert_failed``.
Required allocation (:meth:`Conntrack.create`, used by ipvs NAT pinning)
raises :class:`ConntrackFull`, which the stack converts to a counted
``conntrack_full`` drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_TCP, TCP, UDP
from repro.netsim.skbuff import SKBuff

CT_NEW = "NEW"
CT_ESTABLISHED = "ESTABLISHED"
CT_CLOSED = "CLOSED"

UDP_TIMEOUT_NS = 30 * 1_000_000_000
TCP_TIMEOUT_NS = 300 * 1_000_000_000
# FIN/RST-closed flows must not linger for the full established timeout;
# mirrors nf_conntrack_tcp_timeout_close.
TCP_CLOSE_TIMEOUT_NS = 10 * 1_000_000_000


@dataclass(frozen=True)
class ConnTuple:
    src: IPv4Addr
    dst: IPv4Addr
    proto: int
    sport: int
    dport: int

    def reversed(self) -> "ConnTuple":
        return ConnTuple(self.dst, self.src, self.proto, self.dport, self.sport)

    @classmethod
    def from_skb(cls, skb: SKBuff) -> Optional["ConnTuple"]:
        ip = skb.pkt.ip
        l4 = skb.pkt.l4
        if ip is None or not isinstance(l4, (TCP, UDP)):
            return None
        return cls(ip.src, ip.dst, ip.proto, l4.sport, l4.dport)


@dataclass
class ConnEntry:
    tuple: ConnTuple
    state: str = CT_NEW
    created_ns: int = 0
    updated_ns: int = 0
    packets: int = 0
    # NAT rewrite installed by ipvs: packets of this flow go to (ip, port)
    dnat_to: Optional[Tuple[IPv4Addr, int]] = None

    def timeout_ns(self) -> int:
        if self.tuple.proto != IPPROTO_TCP:
            return UDP_TIMEOUT_NS
        if self.state == CT_CLOSED:
            return TCP_CLOSE_TIMEOUT_NS
        return TCP_TIMEOUT_NS


class ConntrackFull(RuntimeError):
    """The table is at ``nf_conntrack_max`` and early-drop found no victim."""


class Conntrack:
    """The conntrack table for one kernel, sharded per data-plane CPU.

    Shard choice uses the *symmetric* flow hash — the same one RPS steering
    uses to pick a CPU (:mod:`repro.netsim.rss`) — so with ``num_shards ==
    num_cpus`` every data-plane access is shard-local: the CPU processing a
    flow only ever touches its own shard, and both directions of a
    connection land in one shard (the hash is direction-insensitive, which
    is what keeps the bidirectional ``lookup`` shard-local too). Capacity
    (``nf_conntrack_max``) stays a *global* budget across shards, like the
    kernel's.
    """

    def __init__(self, clock: Clock, max_entries: Optional[int] = None, num_shards: int = 1) -> None:
        if num_shards < 1:
            raise ValueError("conntrack needs at least one shard")
        self._clock = clock
        self.num_shards = num_shards
        self._shards: List[Dict[ConnTuple, ConnEntry]] = [{} for _ in range(num_shards)]
        # Hash-slot → shard indirection. Normally the identity map; CPU
        # hotplug repoints a dead CPU's slot at a live shard so lookups for
        # its flows keep resolving (see merge_shard / split_shard).
        self._shard_map: List[int] = list(range(num_shards))
        # Generation tag for the flow cache: bumped on entry create/remove
        # and state transitions, NOT on per-packet timestamp/counter updates.
        self.gen = 0
        #: ``nf_conntrack_max``; None = unlimited.
        self.max_entries = max_entries
        #: Entries evicted early (closing/unreplied) to admit new flows.
        self.early_drops = 0
        #: Advisory insertions refused because the table was full.
        self.insert_failed = 0

    def shard_of(self, tup: ConnTuple) -> int:
        """The shard index for a tuple (same for both flow directions)."""
        if self.num_shards == 1:
            return 0
        from repro.netsim.rss import symmetric_flow_hash

        slot = symmetric_flow_hash(
            tup.src.value, tup.dst.value, tup.proto, tup.sport, tup.dport
        ) % self.num_shards
        return self._shard_map[slot]

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def merge_shard(self, dead: int, target: int) -> int:
        """CPU hotplug: rehome the ``dead`` CPU's shard into ``target``.

        Moves every entry and repoints all hash slots that resolved to
        ``dead`` (its own slot plus any earlier-merged ones) at ``target``,
        so both directions of every flow keep resolving. Returns entries
        moved.
        """
        if dead == target:
            raise ValueError("cannot merge a shard into itself")
        moved = len(self._shards[dead])
        self._shards[target].update(self._shards[dead])
        self._shards[dead] = {}
        for slot, shard in enumerate(self._shard_map):
            if shard == dead:
                self._shard_map[slot] = target
        if moved:
            self.gen += 1
        return moved

    def split_shard(self, cpu: int) -> int:
        """CPU back online: restore its hash slot and pull home the entries
        that hash there (the inverse of :meth:`merge_shard`). Returns
        entries moved."""
        self._shard_map[cpu] = cpu
        moved = 0
        for index, shard in enumerate(self._shards):
            misplaced = [tup for tup in shard if self.shard_of(tup) != index]
            for tup in misplaced:
                self._shards[self.shard_of(tup)][tup] = shard.pop(tup)
                moved += 1
        if moved:
            self.gen += 1
        return moved

    def _has_room(self) -> bool:
        """True once there is room for one more entry, early-dropping a
        closing or unreplied victim if the table is at capacity.

        Mirrors nf_conntrack's early_drop(): ESTABLISHED entries are never
        victims; among the rest, CLOSED flows go before unreplied NEW ones,
        oldest (least-recently updated) first. The victim scan walks every
        shard — the global ``nf_conntrack_max`` budget is shared, so a full
        table must be relievable from any shard.
        """
        if self.max_entries is None or len(self) < self.max_entries:
            return True
        victim = None
        for shard in self._shards:
            for entry in shard.values():
                if entry.state == CT_ESTABLISHED:
                    continue
                rank = (0 if entry.state == CT_CLOSED else 1, entry.updated_ns)
                if victim is None or rank < victim[0]:
                    victim = (rank, entry)
        if victim is None:
            return False
        self.remove(victim[1].tuple)
        self.early_drops += 1
        return len(self) < self.max_entries

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def lookup(self, tup: ConnTuple) -> Optional[ConnEntry]:
        """Find the entry for a tuple in either direction, expiring stale ones."""
        shard = self._shards[self.shard_of(tup)]
        entry = shard.get(tup) or shard.get(tup.reversed())
        if entry is None:
            return None
        if self._clock.now_ns - entry.updated_ns > entry.timeout_ns():
            self.remove(entry.tuple)
            return None
        return entry

    def track(self, skb: SKBuff) -> Optional[ConnEntry]:
        """Slow-path tracking: create/confirm the entry for this packet."""
        tup = ConnTuple.from_skb(skb)
        if tup is None:
            return None
        entry = self.lookup(tup)
        now = self._clock.now_ns
        if entry is None:
            if not self._has_room():
                # Advisory tracking fails open: the packet proceeds
                # untracked (matches ct_state NEW deterministically) and the
                # refusal stays visible in the pressure counter.
                self.insert_failed += 1
                return None
            entry = ConnEntry(tuple=tup, created_ns=now, updated_ns=now)
            self._shards[self.shard_of(tup)][tup] = entry
            self.gen += 1
        else:
            # A packet in the reverse direction confirms the connection.
            if entry.state == CT_NEW and tup == entry.tuple.reversed():
                entry.state = CT_ESTABLISHED
                self.gen += 1
            entry.updated_ns = now
        entry.packets += 1
        skb.conntrack = entry
        if isinstance(skb.pkt.l4, TCP) and skb.pkt.l4.has(TCP.FIN | TCP.RST):
            if entry.state != CT_CLOSED:
                self.gen += 1
            entry.state = CT_CLOSED
        return entry

    def create(self, tup: ConnTuple) -> ConnEntry:
        """Required allocation (ipvs NAT pinning): the caller cannot proceed
        without an entry, so a full table raises :class:`ConntrackFull`
        instead of failing open."""
        entry = self.lookup(tup)
        if entry is not None:
            return entry
        if not self._has_room():
            self.insert_failed += 1
            raise ConntrackFull(
                f"conntrack table full ({self.max_entries} entries) and no early-drop victim"
            )
        now = self._clock.now_ns
        entry = ConnEntry(tuple=tup, created_ns=now, updated_ns=now)
        self._shards[self.shard_of(tup)][tup] = entry
        self.gen += 1
        return entry

    def remove(self, tup: ConnTuple) -> None:
        shard = self._shards[self.shard_of(tup)]
        removed = shard.pop(tup, None)
        removed_rev = shard.pop(tup.reversed(), None)
        if removed is not None or removed_rev is not None:
            self.gen += 1

    def gc(self) -> int:
        """Expire timed-out entries; returns count removed."""
        now = self._clock.now_ns
        count = 0
        for shard in self._shards:
            expired = [t for t, e in shard.items() if now - e.updated_ns > e.timeout_ns()]
            for tup in expired:
                del shard[tup]
            count += len(expired)
        if count:
            self.gen += 1
        return count

    def entries(self) -> List[ConnEntry]:
        return [entry for shard in self._shards for entry in shard.values()]
