"""Connection tracking.

Tracks flows by 5-tuple with the usual NEW → ESTABLISHED lifecycle and
timeout-based expiry on the simulated clock. Used by ipvs (NAT'd flows must
hit the same real server) and available to stateful filtering. Per Table I
of the paper, conntrack *lookup/update* is fast-path work while entry
creation and lifecycle handling stay in the slow path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import IPv4Addr
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_TCP, TCP, UDP
from repro.netsim.skbuff import SKBuff

CT_NEW = "NEW"
CT_ESTABLISHED = "ESTABLISHED"
CT_CLOSED = "CLOSED"

UDP_TIMEOUT_NS = 30 * 1_000_000_000
TCP_TIMEOUT_NS = 300 * 1_000_000_000
# FIN/RST-closed flows must not linger for the full established timeout;
# mirrors nf_conntrack_tcp_timeout_close.
TCP_CLOSE_TIMEOUT_NS = 10 * 1_000_000_000


@dataclass(frozen=True)
class ConnTuple:
    src: IPv4Addr
    dst: IPv4Addr
    proto: int
    sport: int
    dport: int

    def reversed(self) -> "ConnTuple":
        return ConnTuple(self.dst, self.src, self.proto, self.dport, self.sport)

    @classmethod
    def from_skb(cls, skb: SKBuff) -> Optional["ConnTuple"]:
        ip = skb.pkt.ip
        l4 = skb.pkt.l4
        if ip is None or not isinstance(l4, (TCP, UDP)):
            return None
        return cls(ip.src, ip.dst, ip.proto, l4.sport, l4.dport)


@dataclass
class ConnEntry:
    tuple: ConnTuple
    state: str = CT_NEW
    created_ns: int = 0
    updated_ns: int = 0
    packets: int = 0
    # NAT rewrite installed by ipvs: packets of this flow go to (ip, port)
    dnat_to: Optional[Tuple[IPv4Addr, int]] = None

    def timeout_ns(self) -> int:
        if self.tuple.proto != IPPROTO_TCP:
            return UDP_TIMEOUT_NS
        if self.state == CT_CLOSED:
            return TCP_CLOSE_TIMEOUT_NS
        return TCP_TIMEOUT_NS


class Conntrack:
    """The conntrack table for one kernel."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._table: Dict[ConnTuple, ConnEntry] = {}
        # Generation tag for the flow cache: bumped on entry create/remove
        # and state transitions, NOT on per-packet timestamp/counter updates.
        self.gen = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, tup: ConnTuple) -> Optional[ConnEntry]:
        """Find the entry for a tuple in either direction, expiring stale ones."""
        entry = self._table.get(tup) or self._table.get(tup.reversed())
        if entry is None:
            return None
        if self._clock.now_ns - entry.updated_ns > entry.timeout_ns():
            self.remove(entry.tuple)
            return None
        return entry

    def track(self, skb: SKBuff) -> Optional[ConnEntry]:
        """Slow-path tracking: create/confirm the entry for this packet."""
        tup = ConnTuple.from_skb(skb)
        if tup is None:
            return None
        entry = self.lookup(tup)
        now = self._clock.now_ns
        if entry is None:
            entry = ConnEntry(tuple=tup, created_ns=now, updated_ns=now)
            self._table[tup] = entry
            self.gen += 1
        else:
            # A packet in the reverse direction confirms the connection.
            if entry.state == CT_NEW and tup == entry.tuple.reversed():
                entry.state = CT_ESTABLISHED
                self.gen += 1
            entry.updated_ns = now
        entry.packets += 1
        skb.conntrack = entry
        if isinstance(skb.pkt.l4, TCP) and skb.pkt.l4.has(TCP.FIN | TCP.RST):
            if entry.state != CT_CLOSED:
                self.gen += 1
            entry.state = CT_CLOSED
        return entry

    def remove(self, tup: ConnTuple) -> None:
        removed = self._table.pop(tup, None)
        removed_rev = self._table.pop(tup.reversed(), None)
        if removed is not None or removed_rev is not None:
            self.gen += 1

    def gc(self) -> int:
        """Expire timed-out entries; returns count removed."""
        now = self._clock.now_ns
        expired = [t for t, e in self._table.items() if now - e.updated_ns > e.timeout_ns()]
        for tup in expired:
            del self._table[tup]
        if expired:
            self.gen += 1
        return len(expired)

    def entries(self) -> List[ConnEntry]:
        return list(self._table.values())
