"""Linux-style software bridging: FDB, learning, flooding, VLAN, STP.

The split between fast and slow path follows Table I of the paper exactly:
FDB lookup and L2 forwarding are simple per-packet work (acceleratable);
learning refresh, aging, FDB-miss flooding, and STP BPDU processing stay in
this slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.netsim.addresses import MacAddr
from repro.netsim.packet import Packet
from repro.netsim.skbuff import SKBuff

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.interfaces import BridgeDevice, NetDevice

# STP port states
STP_DISABLED = 0
STP_BLOCKING = 1
STP_LEARNING = 3
STP_FORWARDING = 4

STP_MULTICAST = MacAddr.parse("01:80:c2:00:00:00")

DEFAULT_AGEING_NS = 300 * 1_000_000_000  # 300s, the Linux default
DEFAULT_PRIORITY = 0x8000


class BridgeError(ValueError):
    """Raised for invalid bridge operations."""


@dataclass
class BridgePort:
    device: "NetDevice"
    state: int = STP_FORWARDING
    pvid: int = 1
    allowed_vlans: Set[int] = field(default_factory=lambda: {1})
    path_cost: int = 100
    # best BPDU heard on this port: (root_id, cost, sender_bridge_id)
    best_bpdu: Optional[Tuple[int, int, int]] = None

    @property
    def forwarding(self) -> bool:
        return self.state == STP_FORWARDING

    @property
    def learning(self) -> bool:
        return self.state in (STP_LEARNING, STP_FORWARDING)


@dataclass
class FdbEntry:
    mac: MacAddr
    vlan: int
    port_ifindex: int
    updated_ns: int = 0
    is_local: bool = False  # the bridge/port's own MAC
    is_static: bool = False  # installed by management, exempt from aging


class Bridge:
    """Bridge state and slow-path frame handling for one bridge device."""

    def __init__(self, device: "BridgeDevice") -> None:
        self.device = device
        self.ports: Dict[int, BridgePort] = {}
        self.fdb: Dict[Tuple[MacAddr, int], FdbEntry] = {}
        self.stp_enabled = False
        self.vlan_filtering = False
        self.ageing_time_ns = DEFAULT_AGEING_NS
        self.priority = DEFAULT_PRIORITY
        # learned-root state for the simplified STP
        self.root_id = self.bridge_id
        self.root_cost = 0
        self.root_port: Optional[int] = None
        self.flood_count = 0
        self.fdb_miss_count = 0
        # Generation tag for the flow cache: bumped on semantically visible
        # changes (new/moved FDB entries, port membership, STP role changes),
        # NOT on per-packet learning refreshes of an unchanged entry.
        self.gen = 0

    @property
    def kernel(self):
        return self.device.kernel

    @property
    def bridge_id(self) -> int:
        return (self.priority << 48) | self.device.mac.value

    # --- port management ---

    def add_port(self, device: "NetDevice") -> BridgePort:
        if device.ifindex in self.ports:
            raise BridgeError(f"{device.name} already enslaved")
        if device.master is not None:
            raise BridgeError(f"{device.name} already has a master")
        port = BridgePort(device=device)
        self.ports[device.ifindex] = port
        device.master = self.device.ifindex
        self.fdb[(device.mac, port.pvid)] = FdbEntry(
            mac=device.mac, vlan=port.pvid, port_ifindex=device.ifindex, is_local=True
        )
        self.gen += 1
        return port

    def remove_port(self, device: "NetDevice") -> None:
        if device.ifindex not in self.ports:
            raise BridgeError(f"{device.name} is not a port of {self.device.name}")
        del self.ports[device.ifindex]
        device.master = None
        for key in [k for k, e in self.fdb.items() if e.port_ifindex == device.ifindex]:
            del self.fdb[key]
        self.gen += 1

    # --- FDB ---

    def fdb_lookup(self, mac: MacAddr, vlan: int) -> Optional[FdbEntry]:
        self.kernel.costs_charge("bridge_fdb_lookup")
        entry = self.fdb.get((mac, vlan))
        if entry is None:
            return None
        if (
            not entry.is_local
            and not entry.is_static
            and self.kernel.clock.now_ns - entry.updated_ns > self.ageing_time_ns
        ):
            del self.fdb[(mac, vlan)]
            self.gen += 1
            return None
        return entry

    def fdb_learn(self, mac: MacAddr, vlan: int, port_ifindex: int, static: bool = False) -> None:
        if mac.is_multicast:
            return
        self.kernel.costs_charge("bridge_fdb_learn")
        prior = self.fdb.get((mac, vlan))
        if (
            prior is None
            or prior.port_ifindex != port_ifindex
            or prior.is_static != static
            or (
                not prior.is_local
                and not prior.is_static
                and self.kernel.clock.now_ns - prior.updated_ns > self.ageing_time_ns
            )
        ):
            self.gen += 1
        self.fdb[(mac, vlan)] = FdbEntry(
            mac=mac,
            vlan=vlan,
            port_ifindex=port_ifindex,
            updated_ns=self.kernel.clock.now_ns,
            is_static=static,
        )

    def fdb_delete(self, mac: MacAddr, vlan: int) -> None:
        if self.fdb.pop((mac, vlan), None) is not None:
            self.gen += 1

    def age_fdb(self) -> int:
        """Expire dynamic entries past the ageing time; returns count removed."""
        now = self.kernel.clock.now_ns
        expired = [
            key
            for key, entry in self.fdb.items()
            if not entry.is_local and not entry.is_static and now - entry.updated_ns > self.ageing_time_ns
        ]
        for key in expired:
            del self.fdb[key]
        if expired:
            self.gen += 1
        return len(expired)

    # --- VLAN helpers ---

    def classify_vlan(self, port: BridgePort, skb: SKBuff) -> Optional[int]:
        """The VLAN a frame belongs to, or None when it must be filtered."""
        if not self.vlan_filtering:
            return port.pvid
        self.kernel.costs_charge("bridge_vlan_filter")
        if skb.pkt.vlan is None:
            return port.pvid
        vid = skb.pkt.vlan.vid
        return vid if vid in port.allowed_vlans else None

    def egress_allowed(self, port: BridgePort, vlan: int) -> bool:
        if not self.vlan_filtering:
            return True
        return vlan in port.allowed_vlans

    # --- frame handling (called from the stack's slow path) ---

    def handle_frame(self, ingress: "NetDevice", skb: SKBuff) -> Optional[SKBuff]:
        """Process a frame arriving on an enslaved port.

        Returns the skb when it should continue up the stack (L3 processing
        on the bridge interface); returns None when the bridge consumed it
        (forwarded, flooded, or dropped).
        """
        self.kernel.costs_charge("bridge_rx")
        stack = self.kernel.stack
        port = self.ports.get(ingress.ifindex)
        if port is None or port.state == STP_DISABLED:
            stack.drop("bridge_port_disabled", ingress, skb)
            return None

        dst = skb.pkt.eth.dst
        src = skb.pkt.eth.src

        # Link-local control traffic (BPDUs) always goes to the control plane.
        if dst == STP_MULTICAST:
            self.process_bpdu(port, skb)
            stack.finish("bridge_bpdu", ingress, skb)
            return None

        if self.stp_enabled:
            self.kernel.costs_charge("bridge_stp_check")
            if not port.learning:
                stack.drop("bridge_stp_blocked", ingress, skb)
                return None

        vlan = self.classify_vlan(port, skb)
        if vlan is None:
            stack.drop("bridge_vlan_filtered", ingress, skb)
            return None

        self.fdb_learn(src, vlan, ingress.ifindex)

        if self.stp_enabled and not port.forwarding:
            # learning-only state: absorb data frames
            stack.drop("bridge_stp_blocked", ingress, skb)
            return None

        # Traffic addressed to the bridge itself continues up the stack.
        if dst == self.device.mac:
            skb.bridge_port = ingress.ifindex
            skb.ifindex = self.device.ifindex
            return skb

        if dst.is_multicast:
            self.flood(skb, vlan, exclude_ifindex=ingress.ifindex)
            # Broadcast/multicast is also delivered locally (e.g. ARP requests
            # for an IP configured on the bridge interface).
            skb.bridge_port = ingress.ifindex
            skb.ifindex = self.device.ifindex
            return skb

        entry = self.fdb_lookup(dst, vlan)
        if entry is None:
            self.fdb_miss_count += 1
            if self.flood(skb, vlan, exclude_ifindex=ingress.ifindex):
                stack.finish("bridge_flood", ingress, skb)
            else:
                stack.drop("bridge_flood_empty", ingress, skb)
            return None
        if entry.is_local:
            skb.bridge_port = ingress.ifindex
            skb.ifindex = self.device.ifindex
            return skb
        if entry.port_ifindex != ingress.ifindex:
            if self.forward(skb, vlan, entry.port_ifindex):
                stack.finish("bridge_forward", ingress, skb)
            else:
                stack.drop("bridge_egress_filtered", ingress, skb)
        else:
            # FDB says the destination lives where the frame came from
            stack.drop("bridge_same_port", ingress, skb)
        return None

    def forward(self, skb: SKBuff, vlan: int, port_ifindex: int) -> bool:
        """Forward out one port; False when egress is blocked/filtered."""
        port = self.ports.get(port_ifindex)
        if port is None or not port.forwarding or not self.egress_allowed(port, vlan):
            return False
        frame = self._egress_frame(skb, vlan, port)
        self.kernel.stack.emit_tx(port.device, frame)
        port.device.transmit(frame)
        return True

    def flood(self, skb: SKBuff, vlan: int, exclude_ifindex: Optional[int] = None) -> int:
        """Flood to all eligible ports; returns the number of transmits."""
        self.flood_count += 1
        sent = 0
        for ifindex, port in sorted(self.ports.items()):
            if ifindex == exclude_ifindex or not port.forwarding:
                continue
            if not self.egress_allowed(port, vlan):
                continue
            frame = self._egress_frame(skb, vlan, port)
            self.kernel.stack.emit_tx(port.device, frame)
            port.device.transmit(frame)
            sent += 1
        return sent

    def transmit_from_upper(self, frame: bytes) -> None:
        """IP output on the bridge interface: FDB-forward or flood."""
        skb = SKBuff(pkt=Packet.from_bytes(frame), ifindex=self.device.ifindex)
        vlan = 1
        dst = skb.pkt.eth.dst
        entry = self.fdb_lookup(dst, vlan) if not dst.is_multicast else None
        if entry is not None and not entry.is_local:
            self.forward(skb, vlan, entry.port_ifindex)
        else:
            self.flood(skb, vlan)

    def _egress_frame(self, skb: SKBuff, vlan: int, port: BridgePort) -> bytes:
        pkt = skb.pkt
        if self.vlan_filtering:
            if vlan == port.pvid:
                if pkt.vlan is not None:
                    pkt = pkt.clone()
                    pkt.vlan = None
            else:
                if pkt.vlan is None or pkt.vlan.vid != vlan:
                    from repro.netsim.packet import VlanTag

                    pkt = pkt.clone()
                    pkt.vlan = VlanTag(vid=vlan)
        return pkt.to_bytes()

    # --- simplified spanning tree ---

    def make_bpdu_payload(self) -> bytes:
        """Config BPDU: root id, root cost, sender bridge id (8+4+8 bytes)."""
        return (
            self.root_id.to_bytes(8, "big")
            + self.root_cost.to_bytes(4, "big")
            + self.bridge_id.to_bytes(8, "big")
        )

    def send_bpdus(self) -> None:
        """Emit a config BPDU on every enabled port (one STP hello round)."""
        if not self.stp_enabled:
            return
        from repro.netsim.packet import Ethernet, Packet as Pkt

        for port in self.ports.values():
            if port.state == STP_DISABLED:
                continue
            frame = Pkt(
                eth=Ethernet(dst=STP_MULTICAST, src=port.device.mac, ethertype=0x0027),
                payload=self.make_bpdu_payload(),
            ).to_bytes()
            port.device.transmit(frame)

    def process_bpdu(self, port: BridgePort, skb: SKBuff) -> None:
        if not self.stp_enabled:
            return  # STP off: BPDUs are silently absorbed, as in Linux
        payload = skb.pkt.payload
        if len(payload) < 20:
            return
        root_id = int.from_bytes(payload[0:8], "big")
        cost = int.from_bytes(payload[8:12], "big")
        sender = int.from_bytes(payload[12:20], "big")
        port.best_bpdu = (root_id, cost + port.path_cost, sender)
        self.recompute_stp()

    def recompute_stp(self) -> None:
        """Re-elect root and assign port roles from the best BPDUs heard."""
        best: Tuple[int, int, int] = (self.bridge_id, 0, self.bridge_id)
        best_port: Optional[int] = None
        for ifindex, port in sorted(self.ports.items()):
            if port.best_bpdu is None:
                continue
            root_id, cost, sender = port.best_bpdu
            if (root_id, cost, sender) < best:
                best = (root_id, cost, sender)
                best_port = ifindex
        self.root_id, self.root_cost, __ = best
        self.root_port = best_port
        changed = False
        for ifindex, port in self.ports.items():
            prior_state = port.state
            if self.root_id == self.bridge_id:
                port.state = STP_FORWARDING  # we are root: all designated
            elif ifindex == self.root_port:
                port.state = STP_FORWARDING
            elif port.best_bpdu is None:
                port.state = STP_FORWARDING  # no competing bridge: designated
            else:
                heard_root, heard_cost, heard_sender = port.best_bpdu
                our_offer = (self.root_id, self.root_cost + port.path_cost, self.bridge_id)
                their_offer = (heard_root, heard_cost, heard_sender)
                port.state = STP_FORWARDING if our_offer < their_offer else STP_BLOCKING
            if port.state != prior_state:
                changed = True
        if changed:
            self.gen += 1

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.device.name,
            "ports": sorted(p.device.name for p in self.ports.values()),
            "stp": self.stp_enabled,
            "vlan_filtering": self.vlan_filtering,
            "fdb_size": len(self.fdb),
        }


def stp_converge(bridges: List[Bridge], rounds: int = 4) -> None:
    """Run enough synchronous hello rounds for the topology to stabilize."""
    for __ in range(rounds):
        for bridge in bridges:
            bridge.send_bpdus()
