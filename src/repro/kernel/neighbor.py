"""The neighbor (ARP) table.

Entries move through a simplified version of the Linux neighbor state
machine: ``INCOMPLETE`` (resolution in flight, packets queued) →
``REACHABLE`` → ``STALE`` (after the reachable timeout) and can fail. The
fast path reads this table through the ``bpf_fib_lookup`` helper; resolution
itself (sending ARP requests, queueing packets) is slow-path work, exactly as
Table I of the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.addresses import AddrLike, IPv4Addr, MacAddr, ipv4
from repro.netsim.clock import Clock

NUD_INCOMPLETE = 0x01
NUD_REACHABLE = 0x02
NUD_STALE = 0x04
NUD_FAILED = 0x20
NUD_PERMANENT = 0x80

REACHABLE_TIME_NS = 30 * 1_000_000_000
MAX_QUEUE = 101  # packets parked per unresolved neighbor (Linux queues ~101)


@dataclass
class NeighborEntry:
    ip: IPv4Addr
    ifindex: int
    lladdr: Optional[MacAddr] = None
    state: int = NUD_INCOMPLETE
    updated_ns: int = 0
    queued: List[object] = field(default_factory=list)


class NeighborTable:
    """Per-kernel ARP cache keyed by (ifindex, ip)."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._entries: Dict[Tuple[int, IPv4Addr], NeighborEntry] = {}
        # Generation tag for the flow cache. Bumped only on semantically
        # visible changes (lladdr/state), not on same-value refreshes.
        self.gen = 0

    def lookup(self, ifindex: int, ip: AddrLike) -> Optional[NeighborEntry]:
        entry = self._entries.get((ifindex, ipv4(ip)))
        if entry is None:
            return None
        if (
            entry.state == NUD_REACHABLE
            and self._clock.now_ns - entry.updated_ns > REACHABLE_TIME_NS
        ):
            entry.state = NUD_STALE
        return entry

    def resolved(self, ifindex: int, ip: AddrLike) -> Optional[MacAddr]:
        """The MAC for a neighbor if usable (REACHABLE/STALE/PERMANENT)."""
        entry = self.lookup(ifindex, ip)
        if entry is None or entry.lladdr is None:
            return None
        if entry.state & (NUD_REACHABLE | NUD_STALE | NUD_PERMANENT):
            return entry.lladdr
        return None

    def create_incomplete(self, ifindex: int, ip: AddrLike) -> NeighborEntry:
        key = (ifindex, ipv4(ip))
        entry = self._entries.get(key)
        if entry is None:
            entry = NeighborEntry(ip=ipv4(ip), ifindex=ifindex, updated_ns=self._clock.now_ns)
            self._entries[key] = entry
        return entry

    def queue_packet(self, entry: NeighborEntry, skb: object) -> bool:
        """Park a packet awaiting resolution; False when the queue is full."""
        if len(entry.queued) >= MAX_QUEUE:
            return False
        entry.queued.append(skb)
        return True

    def update(
        self,
        ifindex: int,
        ip: AddrLike,
        lladdr: MacAddr,
        state: int = NUD_REACHABLE,
    ) -> List[object]:
        """Confirm a neighbor; returns any packets queued awaiting it."""
        key = (ifindex, ipv4(ip))
        entry = self._entries.get(key)
        if entry is None:
            entry = NeighborEntry(ip=ipv4(ip), ifindex=ifindex)
            self._entries[key] = entry
        if entry.lladdr != lladdr or entry.state != state:
            self.gen += 1
        entry.lladdr = lladdr
        entry.state = state
        entry.updated_ns = self._clock.now_ns
        drained, entry.queued = entry.queued, []
        return drained

    def fail(self, ifindex: int, ip: AddrLike) -> List[object]:
        """Mark resolution failed; returns (and drops) queued packets."""
        entry = self._entries.get((ifindex, ipv4(ip)))
        if entry is None:
            return []
        if entry.state != NUD_FAILED:
            self.gen += 1
        entry.state = NUD_FAILED
        dropped, entry.queued = entry.queued, []
        return dropped

    def remove(self, ifindex: int, ip: AddrLike) -> None:
        if self._entries.pop((ifindex, ipv4(ip)), None) is not None:
            self.gen += 1

    def flush_ifindex(self, ifindex: int) -> None:
        stale = [k for k in self._entries if k[0] == ifindex]
        for key in stale:
            del self._entries[key]
        if stale:
            self.gen += 1

    def entries(self) -> List[NeighborEntry]:
        return list(self._entries.values())
