"""The VPP-like platform: kernel-bypass vector processing.

VPP takes over NICs entirely (DPDK-style kernel bypass), dedicates worker
cores to 100 %-utilization busy polling, and processes packets as *vectors*
through a node graph (ethernet-input → ip4-input → ip4-lookup →
ip4-rewrite → interface-output), amortizing per-batch overhead across the
vector — which is why the paper's Figs 5–7 show it above the eBPF systems.

Modeling notes: vectors are charged as amortized per-packet cost
(``vpp_per_packet + vpp_per_vector_overhead / vector_size``), which is
exact in the saturated regime the throughput figures measure. The ACL
plugin adds a small per-rule cost. VPP keeps its own FIB and static
neighbor table, configured ONLY through ``vppctl`` — the Linux kernel on
the same host no longer sees this traffic at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.fib import Fib, Route
from repro.kernel.interfaces import PhysicalDevice
from repro.netsim.addresses import IPv4Addr, IPv4Prefix, MacAddr
from repro.netsim.packet import ETH_P_IP
from repro.platforms.polycube.classifier import ACCEPT, BitvectorClassifier, ClassifierRule, DROP


class VppError(ValueError):
    """Bad vppctl usage."""


class VppInterface:
    def __init__(self, dev: PhysicalDevice, sw_if_index: int) -> None:
        self.dev = dev
        self.sw_if_index = sw_if_index
        self.up = False
        self.addresses: List[IPv4Prefix] = []


class Vpp:
    """One VPP instance; owns the NICs it is given."""

    def __init__(self, kernel, workers: int = 1) -> None:
        self.kernel = kernel
        self.workers = workers  # dedicated cores at 100% utilization
        self.interfaces: Dict[str, VppInterface] = {}
        self.fib = Fib()  # VPP's own FIB, not the kernel's
        self.neighbors: Dict[Tuple[int, IPv4Addr], MacAddr] = {}
        self.acl = BitvectorClassifier([])
        self.acl_rules: List[ClassifierRule] = []
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped = 0

    # ----------------------------------------------------------- dataplane

    def take_over(self, dev_name: str) -> VppInterface:
        """DPDK-style NIC claim: the kernel stops seeing this device."""
        dev = self.kernel.devices.by_name(dev_name)
        if not isinstance(dev, PhysicalDevice):
            raise VppError(f"{dev_name} is not a physical NIC")
        iface = VppInterface(dev, sw_if_index=len(self.interfaces) + 1)
        self.interfaces[dev_name] = iface
        dev.nic.attach(lambda frame, queue: self._rx(iface, frame))
        return iface

    def _charge(self) -> None:
        costs = self.kernel.costs
        amortized = costs.vpp_per_packet + costs.vpp_per_vector_overhead / costs.vpp_vector_size
        if self.acl_rules:
            amortized += len(self.acl_rules) * costs.vpp_per_rule
        self.kernel.clock.advance(amortized)

    def _rx(self, iface: VppInterface, frame: bytes) -> None:
        """The worker graph: parse → (acl) → lookup → rewrite → output."""
        self.rx_packets += 1
        self._charge()
        if not iface.up or len(frame) < 34:
            self.dropped += 1
            return
        if int.from_bytes(frame[12:14], "big") != ETH_P_IP:
            self.dropped += 1  # VPP handles ARP itself; static in our model
            return
        if self.acl_rules and self.acl.classify_frame(frame) == DROP:
            self.dropped += 1
            return
        dst = IPv4Addr.from_bytes(frame[30:34])
        route = self.fib.lookup(dst)
        if route is None:
            self.dropped += 1
            return
        out = self._iface_by_index(route.oif)
        if out is None or not out.up:
            self.dropped += 1
            return
        next_hop = route.next_hop or dst
        mac = self.neighbors.get((route.oif, next_hop))
        if mac is None:
            self.dropped += 1
            return
        ttl = frame[22]
        if ttl <= 1:
            self.dropped += 1
            return
        rewritten = bytearray(frame)
        rewritten[0:6] = mac.to_bytes()
        rewritten[6:12] = out.dev.mac.to_bytes()
        rewritten[22] = ttl - 1
        csum = int.from_bytes(rewritten[24:26], "big") + 0x100
        csum = (csum & 0xFFFF) + (csum >> 16)
        rewritten[24:26] = csum.to_bytes(2, "big")
        self.tx_packets += 1
        out.dev.nic.transmit(bytes(rewritten))

    def _iface_by_index(self, sw_if_index: int) -> Optional[VppInterface]:
        for iface in self.interfaces.values():
            if iface.sw_if_index == sw_if_index:
                return iface
        return None

    # ----------------------------------------------------------------- CLI

    def vppctl(self, command: str) -> List[str]:
        args = command.split()
        if args[:3] == ["set", "interface", "state"]:
            if len(args) != 5 or args[4] not in ("up", "down"):
                raise VppError("set interface state IFACE up|down")
            self._iface(args[3]).up = args[4] == "up"
            return []
        if args[:3] == ["set", "interface", "ip"] and len(args) >= 6 and args[3] == "address":
            iface = self._iface(args[4])
            iface.addresses.append(IPv4Prefix.parse(args[5]))
            return []
        if args[:3] == ["ip", "route", "add"]:
            # ip route add PREFIX via NH_IP IFACE mac NH_MAC
            if len(args) != 9 or args[4] != "via" or args[7] != "mac":
                raise VppError("ip route add PREFIX via NH_IP IFACE mac NH_MAC")
            prefix = IPv4Prefix.parse(args[3])
            next_hop = IPv4Addr.parse(args[5])
            iface = self._iface(args[6])
            self.fib.add(Route(prefix=prefix, oif=iface.sw_if_index, gateway=next_hop))
            self.neighbors[(iface.sw_if_index, next_hop)] = MacAddr.parse(args[8])
            return []
        if args[:3] == ["ip", "route", "del"]:
            self.fib.remove(IPv4Prefix.parse(args[3]))
            return []
        if args[:2] == ["acl", "add"]:
            # acl add deny|permit [src CIDR] [dst CIDR] [proto N] [dport N]
            rule = ClassifierRule(action=DROP if args[2] == "deny" else ACCEPT)
            i = 3
            while i < len(args):
                if args[i] == "src":
                    rule.src = IPv4Prefix.parse(args[i + 1])
                elif args[i] == "dst":
                    rule.dst = IPv4Prefix.parse(args[i + 1])
                elif args[i] == "proto":
                    rule.proto = int(args[i + 1])
                elif args[i] == "dport":
                    rule.dport = int(args[i + 1])
                else:
                    raise VppError(f"unknown acl option {args[i]!r}")
                i += 2
            self.acl_rules.append(rule)
            self.acl = BitvectorClassifier(self.acl_rules)
            return []
        if args[:2] == ["show", "interface"]:
            return [
                f"{name} (sw_if_index {iface.sw_if_index}) {'up' if iface.up else 'down'}"
                for name, iface in sorted(self.interfaces.items())
            ]
        raise VppError(f"unknown vppctl command {command!r}")

    def _iface(self, name: str) -> VppInterface:
        iface = self.interfaces.get(name)
        if iface is None:
            raise VppError(f"unknown interface {name!r}")
        return iface
