"""VPP-like baseline: user-space vector packet processing."""

from repro.platforms.vpp.platform import Vpp

__all__ = ["Vpp"]
