"""Baseline packet-processing platforms the paper compares against.

- :mod:`repro.platforms.polycube` — a Polycube-like platform: eBPF data
  planes with their *own* map-based state and custom CLIs (``pcn-*``),
  chained with tail calls. It is fast, but opaque to the Linux ecosystem:
  nothing configured through iproute2/iptables reaches it.
- :mod:`repro.platforms.vpp` — a VPP-like platform: user-space vector
  packet processing over kernel-bypass NICs with dedicated busy-polling
  cores and its own CLI.

Both illustrate the paper's Table II: high performance, no Linux-API
transparency.
"""

from repro.platforms.polycube.platform import Polycube
from repro.platforms.vpp.platform import Vpp

__all__ = ["Polycube", "Vpp"]
