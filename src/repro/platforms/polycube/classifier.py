"""Bitvector packet classifier (Lakshman–Stiliadis style).

Polycube's iptables replacement compiles the ruleset into per-dimension
match tables whose results are intersected as bitvectors, making
classification cost nearly independent of rule count — the flat Polycube
curve in the paper's Fig 8. We implement the same scheme with Python ints
as bitsets.

The compiled classifier lives in a :class:`ClassifierMap` (a custom BpfMap
subclass) owned by Polycube's control plane — precisely the duplicated
state LinuxFP's helper-based design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ebpf.maps import BpfMap
from repro.netsim.addresses import IPv4Prefix
from repro.netsim.packet import Packet, PacketError

ACCEPT = 0
DROP = 1


@dataclass
class ClassifierRule:
    action: int  # ACCEPT | DROP
    src: Optional[IPv4Prefix] = None
    dst: Optional[IPv4Prefix] = None
    proto: Optional[int] = None
    dport: Optional[int] = None


class BitvectorClassifier:
    """Compiled ruleset: per-dimension tables → bitvector intersection."""

    def __init__(self, rules: List[ClassifierRule], default_action: int = ACCEPT) -> None:
        self.rules = list(rules)
        self.default_action = default_action
        n = len(rules)
        self._all = (1 << n) - 1
        # dimension tables: for prefixes, one bucket dict per distinct length
        self._src_tables: Dict[int, Dict[int, int]] = {}
        self._src_wild = 0
        self._dst_tables: Dict[int, Dict[int, int]] = {}
        self._dst_wild = 0
        self._proto: Dict[int, int] = {}
        self._proto_wild = 0
        self._dport: Dict[int, int] = {}
        self._dport_wild = 0
        for i, rule in enumerate(rules):
            bit = 1 << i
            if rule.src is None:
                self._src_wild |= bit
            else:
                bucket = self._src_tables.setdefault(rule.src.length, {})
                bucket[rule.src.address.value] = bucket.get(rule.src.address.value, 0) | bit
            if rule.dst is None:
                self._dst_wild |= bit
            else:
                bucket = self._dst_tables.setdefault(rule.dst.length, {})
                bucket[rule.dst.address.value] = bucket.get(rule.dst.address.value, 0) | bit
            if rule.proto is None:
                self._proto_wild |= bit
            else:
                self._proto[rule.proto] = self._proto.get(rule.proto, 0) | bit
            if rule.dport is None:
                self._dport_wild |= bit
            else:
                self._dport[rule.dport] = self._dport.get(rule.dport, 0) | bit

    @staticmethod
    def _mask(length: int) -> int:
        return 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    def _prefix_vector(self, tables: Dict[int, Dict[int, int]], wild: int, addr: int) -> int:
        vector = wild
        for length, bucket in tables.items():
            vector |= bucket.get(addr & self._mask(length), 0)
        return vector

    def classify_fields(
        self, src: int, dst: int, proto: int, dport: Optional[int]
    ) -> Tuple[int, Optional[int]]:
        """Returns (action, matched_rule_index)."""
        if not self.rules:
            return self.default_action, None
        vector = (
            self._prefix_vector(self._src_tables, self._src_wild, src)
            & self._prefix_vector(self._dst_tables, self._dst_wild, dst)
            & (self._proto.get(proto, 0) | self._proto_wild)
            & ((self._dport.get(dport, 0) if dport is not None else 0) | self._dport_wild)
        )
        if vector == 0:
            return self.default_action, None
        first = (vector & -vector).bit_length() - 1  # lowest set bit: first rule
        return self.rules[first].action, first

    def classify_frame(self, frame: bytes) -> int:
        try:
            pkt = Packet.from_bytes(frame)
        except PacketError:
            return self.default_action
        if pkt.ip is None:
            return ACCEPT
        dport = getattr(pkt.l4, "dport", None)
        action, __ = self.classify_fields(pkt.ip.src.value, pkt.ip.dst.value, pkt.ip.proto, dport)
        return action

    def __len__(self) -> int:
        return len(self.rules)


class ClassifierMap(BpfMap):
    """The eBPF-visible handle to a compiled classifier.

    Polycube embeds classification logic in its generated datapath; we model
    it as an opaque map consulted by the ``pcn_classify`` helper, with cost
    ``polycube_classifier + rules × polycube_classifier_per_rule``.
    """

    map_type = "pcn_classifier"
    byte_addressable = False  # consulted via pcn_classify, never byte-read

    def __init__(self, name: str) -> None:
        super().__init__(name, key_size=4, value_size=4, max_entries=1)
        self.classifier = BitvectorClassifier([])

    def recompile(self, rules: List[ClassifierRule], default_action: int = ACCEPT) -> None:
        self.classifier = BitvectorClassifier(rules, default_action)

    def lookup(self, key: bytes) -> Optional[bytes]:
        raise NotImplementedError("classifier maps are consulted via pcn_classify")

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError("classifier maps are compiled by the control plane")

    def delete(self, key: bytes) -> None:
        raise NotImplementedError("classifier maps are compiled by the control plane")
