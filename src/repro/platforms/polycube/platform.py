"""The Polycube-like platform: services, chaining, and the pcn CLI.

Architecture (mirrors the real Polycube):

- each *cube* (service) is an eBPF program with its **own map-based state**
  maintained by Polycube's control-plane daemon — routes live in an LPM
  map the daemon fills (including resolved next-hop MACs), the firewall is
  a compiled classifier, the bridge learns into its own FDB map;
- cubes on one port are chained with **tail calls** through a prog array
  (the paper's Fig 10 contrasts this with LinuxFP's inlined calls);
- configuration happens exclusively through the custom ``pcn-*`` CLIs.
  Nothing configured via iproute2/iptables reaches a cube, and vice versa —
  the transparency gap LinuxFP closes.
"""

from __future__ import annotations

from typing import Dict, List, Optional
from repro.ebpf.loader import Loader
from repro.ebpf.maps import ArrayMap, HashMap, LpmTrieMap, ProgArray
from repro.ebpf.minic import compile_c
from repro.netsim.addresses import IPv4Prefix, MacAddr
from repro.platforms.polycube.classifier import ACCEPT, DROP, ClassifierMap, ClassifierRule

FIREWALL_SLOT = 0
ROUTER_SLOT = 1
BRIDGE_SLOT = 2

# Polycube's generic, full-featured datapaths carry more code than a
# LinuxFP-synthesized minimal path: always-on VLAN handling, per-port
# counters, ECMP bookkeeping. The counters-map update per packet models the
# control-plane-visible state its services maintain.
ROUTER_CUBE_C = """
extern map rib;
extern map counters;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 34) { return 2; }
    u64 ethertype = ld16(pkt, 12);
    u64 l3 = 14;
    if (ethertype == 0x8100) {                  // generic VLAN handling, always compiled in
        if (len < 38) { return 2; }
        ethertype = ld16(pkt, 16);
        l3 = 18;
    }
    if (ethertype != 0x0800) { return 2; }
    u64 ttl = ld8(pkt, l3 + 8);
    if (ttl <= 1) { return 2; }
    u64 frag = ld16(pkt, l3 + 6) & 0x3fff;
    if (frag != 0) { return 2; }
    u64 key[1];
    st64(key, 0, 0);
    st8(key, 0, 32);                            // LPM key: prefixlen (LE u32) = 32
    st32(key, 4, ld32(pkt, l3 + 16));
    u64 val[2];
    if (map_read(rib, key, val) == 0) { return 2; }
    u64 cnt_key[1];
    st64(cnt_key, 0, 0);
    u64 cnt[1];
    map_read(counters, cnt_key, cnt);           // per-port stats, like pcn services keep
    st64(cnt, 0, ld64(cnt, 0) + 1);
    map_update(counters, cnt_key, cnt);
    st48(pkt, 0, ld48(val, 10));                // dmac (resolved by the pcn daemon)
    st48(pkt, 6, ld48(val, 4));                 // smac
    st8(pkt, l3 + 8, ttl - 1);
    u64 csum = ld16(pkt, l3 + 10) + 0x100;
    csum = (csum & 0xffff) + (csum >> 16);
    st16(pkt, l3 + 10, csum);
    return redirect(ld32(val, 0), 0);
}
"""

FIREWALL_CUBE_C = """
extern map acl;
extern map jmp;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 34) { return 2; }
    u64 v = pcn_classify(acl, pkt, len);
    if (v == 1) { return 1; }
    tail_call(pkt, jmp, {{ next_slot }});
    return 2;
}
"""

BRIDGE_CUBE_C = """
extern map fdb;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 14) { return 2; }
    u64 dmac = ld48(pkt, 0);
    u64 smac = ld48(pkt, 6);
    u64 key[1];
    u64 val[1];
    st64(key, 0, 0);
    st48(key, 0, smac);
    st64(val, 0, ifindex);
    map_update(fdb, key, val);                  // Polycube learns in the datapath
    if (((dmac >> 40) & 1) == 1) { return 2; }  // bcast/mcast: flood in slow path
    st48(key, 0, dmac);
    if (map_read(fdb, key, val) == 0) { return 2; }
    u64 out = ld64(val, 0);
    if (out == ifindex) { return 1; }
    return redirect(out, 0);
}
"""


class PcnError(ValueError):
    """Bad pcn CLI usage."""


class Polycube:
    """The platform daemon bound to one kernel (deploys on XDP)."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.loader = Loader(kernel)
        # custom control-plane state (Polycube's own, not the kernel's)
        self.rib = LpmTrieMap("pcn_rib", value_size=16, max_entries=4096)
        self.counters = ArrayMap("pcn_counters", value_size=8, max_entries=4)
        self.fdb = HashMap("pcn_fdb", key_size=8, value_size=8, max_entries=4096)
        self.acl = ClassifierMap("pcn_acl")
        self.acl_rules: List[ClassifierRule] = []
        self.jmp = ProgArray("pcn_chain", max_entries=8)
        self.ports: List[str] = []
        self.services: List[str] = []

    # --------------------------------------------------------------- ports

    def attach_port(self, dev_name: str) -> None:
        if dev_name not in self.ports:
            self.ports.append(dev_name)

    def _deploy_chain(self) -> None:
        """(Re)build the tail-call chain and attach its head to every port."""
        if not self.services:
            return
        from repro.core.templates import render

        head: Optional[object] = None
        programs: Dict[str, object] = {}
        if "router" in self.services:
            programs["router"] = compile_c(
                ROUTER_CUBE_C, name="pcn_router", hook="xdp", maps={"rib": self.rib, "counters": self.counters}
            )
            self.jmp.set_prog(ROUTER_SLOT, programs["router"])
        if "bridge" in self.services:
            programs["bridge"] = compile_c(BRIDGE_CUBE_C, name="pcn_bridge", hook="xdp", maps={"fdb": self.fdb})
            self.jmp.set_prog(BRIDGE_SLOT, programs["bridge"])
        if "firewall" in self.services:
            next_slot = ROUTER_SLOT if "router" in self.services else BRIDGE_SLOT
            source = render(FIREWALL_CUBE_C, next_slot=next_slot)
            programs["firewall"] = compile_c(
                source, name="pcn_firewall", hook="xdp", maps={"acl": self.acl, "jmp": self.jmp}
            )
            self.jmp.set_prog(FIREWALL_SLOT, programs["firewall"])
            head = programs["firewall"]
        if head is None:
            head = programs.get("router") or programs.get("bridge")
        attachment = self.loader.load(head)
        for port in self.ports:
            self.loader.attach_xdp(port, attachment)

    # ------------------------------------------------------------ pcn-router

    def pcn_router(self, command: str) -> None:
        """``pcn-router add route PREFIX NEXTHOP_IP NEXTHOP_MAC DEV`` /
        ``pcn-router del route PREFIX``"""
        args = command.split()
        if args[:2] == ["add", "route"]:
            if len(args) != 6:
                raise PcnError("pcn-router add route PREFIX NH_IP NH_MAC DEV")
            prefix = IPv4Prefix.parse(args[2])
            nh_mac = MacAddr.parse(args[4])
            dev = self.kernel.devices.by_name(args[5])
            value = dev.ifindex.to_bytes(4, "big") + dev.mac.to_bytes() + nh_mac.to_bytes()
            self.rib.update(LpmTrieMap.make_key(prefix.length, prefix.address), value)
        elif args[:2] == ["del", "route"]:
            prefix = IPv4Prefix.parse(args[2])
            self.rib.delete(LpmTrieMap.make_key(prefix.length, prefix.address))
        else:
            raise PcnError(f"unknown pcn-router command {command!r}")
        # routes are map state: only a *new service* needs a chain deploy
        if "router" not in self.services:
            self.services.append("router")
            self._deploy_chain()

    # --------------------------------------------------------- pcn-iptables

    def pcn_iptables(self, command: str) -> None:
        """``pcn-iptables -A FORWARD [-s CIDR] [-d CIDR] [-p tcp|udp]
        [--dport N] -j ACCEPT|DROP`` (plus ``-F``)."""
        args = command.split()
        if args[:1] == ["-F"]:
            self.acl_rules.clear()
            self.acl.recompile(self.acl_rules)
            return
        if args[:2] != ["-A", "FORWARD"]:
            raise PcnError("pcn-iptables -A FORWARD ... -j TARGET")
        rule = ClassifierRule(action=ACCEPT)
        i = 2
        proto_ids = {"tcp": 6, "udp": 17, "icmp": 1}
        while i < len(args):
            word = args[i]
            if word == "-s":
                rule.src = IPv4Prefix.parse(args[i + 1])
            elif word == "-d":
                rule.dst = IPv4Prefix.parse(args[i + 1])
            elif word == "-p":
                rule.proto = proto_ids[args[i + 1]]
            elif word == "--dport":
                rule.dport = int(args[i + 1])
            elif word == "-j":
                rule.action = DROP if args[i + 1] == "DROP" else ACCEPT
            else:
                raise PcnError(f"unknown pcn-iptables option {word!r}")
            i += 2
        self.acl_rules.append(rule)
        self.acl.recompile(self.acl_rules)  # classifier state, not a redeploy
        if "firewall" not in self.services:
            self.services.append("firewall")
            self._deploy_chain()

    # ------------------------------------------------------------ pcn-bridge

    def pcn_bridge(self, command: str) -> None:
        """``pcn-bridge enable``"""
        if command.strip() != "enable":
            raise PcnError(f"unknown pcn-bridge command {command!r}")
        if "bridge" not in self.services:
            self.services.append("bridge")
            self._deploy_chain()
