"""Polycube-like baseline: eBPF services with custom state and CLIs."""

from repro.platforms.polycube.platform import Polycube

__all__ = ["Polycube"]
