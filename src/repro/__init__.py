"""LinuxFP reproduction: transparently accelerating (simulated) Linux networking.

A complete Python reproduction of "LinuxFP: Transparently Accelerating
Linux Networking" (Abranches et al., ICDCS 2024) — the controller, every
substrate it depends on, the baseline platforms, and the paper's full
evaluation. See README.md for the tour and DESIGN.md for the
paper-environment → simulation substitution table.

Top-level convenience imports::

    from repro import Controller, Kernel, LineTopology

Package map:

- :mod:`repro.netsim` — packets, NICs, simulated clock + cost model
- :mod:`repro.netlink` — the management-plane protocol
- :mod:`repro.kernel` — the simulated Linux stack (the slow path)
- :mod:`repro.ebpf` — VM, verifier, maps, helpers, minic compiler
- :mod:`repro.tools` — iproute2/brctl/iptables/ipset/sysctl/ipvsadm/FRR
- :mod:`repro.core` — the LinuxFP controller (the paper's contribution)
- :mod:`repro.platforms` — Polycube-like and VPP-like baselines
- :mod:`repro.k8s` — cluster + Flannel CNI + kube-proxy substrate
- :mod:`repro.measure` — pktgen/netperf/scenarios/flame graphs
"""

__version__ = "1.0.0"
__paper__ = "LinuxFP: Transparently Accelerating Linux Networking (ICDCS 2024)"

from repro.core import Controller
from repro.kernel import Kernel
from repro.measure import LineTopology

__all__ = ["Controller", "Kernel", "LineTopology", "__version__", "__paper__"]
