"""The Topology Manager and the JSON processing-graph model (paper §IV-C2).

For each candidate interface the manager derives which FPMs the current
configuration needs, each node's configuration sub-keys, and ``next_nf``
chaining — following the same ordering the kernel applies:

- frames on a bridge port hit the **bridge** FPM first; if the bridge holds
  IP addresses or routes point at it, ``next_nf: router``;
- L3 interfaces get a **router** FPM when ``net.ipv4.ip_forward=1`` and
  routes exist; if FORWARD-chain filtering is configured, the **filter**
  FPM runs before forwarding (``next_nf`` from filter to router);
- configured ipvs services add an **ipvs** node ahead of the router
  (optional; the paper's future-work item).

The resulting model is JSON-serializable (Fig 3) and is the synthesizer's
only input: identical graphs ⇒ identical fast paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.objects import InterfaceObject, KernelView


@dataclass
class GraphNode:
    nf: str  # bridge | filter | router | ipvs
    conf: Dict[str, Any] = field(default_factory=dict)
    next_nf: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"conf": dict(self.conf)}
        if self.next_nf:
            out["next_nf"] = self.next_nf
        return out


@dataclass
class InterfaceGraph:
    ifname: str
    ifindex: int
    nodes: List[GraphNode] = field(default_factory=list)

    def node(self, nf: str) -> Optional[GraphNode]:
        for node in self.nodes:
            if node.nf == nf:
                return node
        return None

    def to_json(self) -> Dict[str, Any]:
        return {node.nf: node.to_json() for node in self.nodes}

    @property
    def empty(self) -> bool:
        return not self.nodes


class ProcessingGraph:
    """The full data-plane model: one ordered FPM chain per interface."""

    def __init__(self) -> None:
        self.interfaces: Dict[str, InterfaceGraph] = {}

    def to_json(self) -> str:
        return json.dumps(
            {name: g.to_json() for name, g in sorted(self.interfaces.items()) if not g.empty},
            indent=2,
            sort_keys=True,
        )

    def signature(self) -> str:
        """Stable identity: deploys are skipped when the graph is unchanged."""
        return self.to_json()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProcessingGraph) and self.signature() == other.signature()


class TopologyManager:
    """Derives the processing graph from the introspected kernel view."""

    def __init__(self, enable_ipvs: bool = False) -> None:
        self.enable_ipvs = enable_ipvs

    def build(self, view: KernelView, target_interfaces: Optional[List[str]] = None) -> ProcessingGraph:
        graph = ProcessingGraph()
        for iface in sorted(view.interfaces.values(), key=lambda i: i.ifindex):
            if not iface.up or iface.kind == "loopback":
                continue
            if target_interfaces is not None and iface.name not in target_interfaces:
                continue
            if iface.kind not in ("physical", "veth"):
                continue  # fast paths attach at packet-entry interfaces
            iface_graph = self._build_interface(view, iface)
            graph.interfaces[iface.name] = iface_graph
        return graph

    def _build_interface(self, view: KernelView, iface: InterfaceObject) -> InterfaceGraph:
        iface_graph = InterfaceGraph(ifname=iface.name, ifindex=iface.ifindex)
        nodes = iface_graph.nodes

        routing = view.routing_configured()
        filtering = view.filter.forward_configured()
        ipvs = self.enable_ipvs and bool(view.ipvs_services)

        if iface.master is not None:
            bridge = view.interfaces.get(iface.master)
            if bridge is not None and bridge.is_bridge and bridge.up:
                # NOTE: the port list is deliberately NOT part of the conf —
                # port membership is read through bpf_fdb_lookup at run time,
                # so enslaving another port must not resynthesize siblings.
                bridge_node = GraphNode(
                    nf="bridge",
                    conf={
                        "bridge_ifindex": bridge.ifindex,
                        "STP_enabled": bridge.stp_enabled,
                        "VLAN_enabled": bridge.vlan_filtering,
                    },
                )
                # routes on/through the bridge interface chain into L3
                bridge_has_l3 = bridge.has_l3 or any(r.oif == bridge.ifindex for r in view.routes.values())
                if routing and bridge_has_l3:
                    bridge_node.conf["bridge_mac"] = str(bridge.mac) if bridge.mac else None
                    bridge_node.next_nf = "filter" if filtering else "router"
                nodes.append(bridge_node)
                if bridge_node.next_nf is None:
                    return iface_graph  # pure L2: nothing else on this path

        if not routing:
            return iface_graph

        if ipvs:
            nodes.append(
                GraphNode(
                    nf="ipvs",
                    conf={
                        "services": [
                            {"vip": str(s.vip), "port": s.port, "proto": s.proto} for s in view.ipvs_services
                        ]
                    },
                    next_nf="filter" if filtering else "router",
                )
            )

        if filtering:
            # NOTE: no rule counts here — rules are read by bpf_ipt_lookup at
            # run time, so adding/removing rules does not resynthesize the
            # fast path; only the *presence* of filtering does. The same goes
            # for routes below (bpf_fib_lookup reads the live FIB).
            nodes.append(
                GraphNode(
                    nf="filter",
                    conf={"chain": "FORWARD"},
                    next_nf="router",
                )
            )

        nodes.append(
            GraphNode(
                nf="router",
                conf={"decrement_ttl": True},
            )
        )
        return iface_graph
