"""LinuxFP: the transparent fast-path controller (the paper's contribution).

The controller continuously introspects the kernel's networking
configuration over netlink, derives a *processing graph* of the
functionality currently configured, synthesizes minimal fast-path modules
(FPMs) as C source from templates, compiles them with
:mod:`repro.ebpf.minic`, verifies and loads the bytecode, and atomically
swaps it into the XDP or TC hook through a tail-call dispatcher.

Component map (mirrors §V "Implementation"):

- :mod:`repro.core.objects` — *LinuxFP objects*: typed views of kernel
  services built from netlink messages.
- :mod:`repro.core.introspection` — Service Introspection: initial netlink
  dumps plus multicast subscriptions.
- :mod:`repro.core.graph` — Topology Manager + the JSON processing graph.
- :mod:`repro.core.templates` — the Jinja-like template engine.
- :mod:`repro.core.fpm` — the FPM template library (bridge, router,
  filter, ipvs, dispatcher, snippets).
- :mod:`repro.core.synthesizer` — Fast Path Synthesizer: graph → C source.
- :mod:`repro.core.capability` — Capability Manager: available helpers.
- :mod:`repro.core.deployer` — Fast Path Deployer: compile, verify, load,
  atomic tail-call swap.
- :mod:`repro.core.controller` — the daemon tying it all together, with
  reaction-time measurement (Table VI).
"""

from repro.core.controller import Controller

__all__ = ["Controller"]
