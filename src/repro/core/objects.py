"""LinuxFP objects: the controller's typed view of kernel network services.

Service Introspection converts netlink messages into these objects
(paper §IV-C1). They are plain data — everything here was learned through
the management API, never by touching kernel internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netsim.addresses import IPv4Addr, MacAddr


@dataclass
class InterfaceObject:
    ifindex: int
    name: str
    kind: str  # physical | veth | bridge | vxlan | loopback
    up: bool = False
    mac: Optional[MacAddr] = None
    master: Optional[int] = None  # bridge ifindex when enslaved
    mtu: int = 1500
    num_queues: int = 1
    addresses: List[Tuple[IPv4Addr, int]] = field(default_factory=list)
    # bridge-specific
    stp_enabled: bool = False
    vlan_filtering: bool = False
    ageing_time_s: int = 300
    # vxlan-specific
    vni: Optional[int] = None

    @property
    def is_bridge(self) -> bool:
        return self.kind == "bridge"

    @property
    def has_l3(self) -> bool:
        return bool(self.addresses)


@dataclass
class RouteObject:
    dst: IPv4Addr
    dst_len: int
    oif: int
    gateway: Optional[IPv4Addr] = None
    metric: int = 0

    def key(self) -> Tuple[int, int, int]:
        return (self.dst.value, self.dst_len, self.metric)


@dataclass
class RuleObject:
    chain: str
    handle: int
    target: str
    uses_set: bool = False
    # features the fast path cannot honor force slow-path fallback
    unsupported: bool = False


@dataclass
class FilterState:
    policies: Dict[str, str] = field(default_factory=lambda: {"INPUT": "ACCEPT", "FORWARD": "ACCEPT", "OUTPUT": "ACCEPT"})
    rules: Dict[str, List[RuleObject]] = field(default_factory=lambda: {"INPUT": [], "FORWARD": [], "OUTPUT": []})

    def forward_configured(self) -> bool:
        return bool(self.rules["FORWARD"]) or self.policies["FORWARD"] != "ACCEPT"


@dataclass
class IpvsServiceObject:
    vip: IPv4Addr
    port: int
    proto: int
    scheduler: str
    dest_count: int = 0


@dataclass
class KernelView:
    """Everything the controller currently believes about one kernel."""

    interfaces: Dict[int, InterfaceObject] = field(default_factory=dict)
    routes: Dict[Tuple[int, int, int], RouteObject] = field(default_factory=dict)
    neighbors: int = 0
    filter: FilterState = field(default_factory=FilterState)
    ipsets: Set[str] = field(default_factory=set)
    ipvs_services: List[IpvsServiceObject] = field(default_factory=list)
    ip_forward: bool = False

    def interface_by_name(self, name: str) -> Optional[InterfaceObject]:
        for iface in self.interfaces.values():
            if iface.name == name:
                return iface
        return None

    def bridge_ports(self, bridge_ifindex: int) -> List[InterfaceObject]:
        return sorted(
            (i for i in self.interfaces.values() if i.master == bridge_ifindex),
            key=lambda i: i.ifindex,
        )

    def routing_configured(self) -> bool:
        """L3 forwarding is on and there is at least one non-connected route
        (mirrors the paper's 'ip_forward=1 and routes configured')."""
        return self.ip_forward and len(self.routes) > 0

    def summary(self) -> Dict[str, object]:
        return {
            "interfaces": sorted(i.name for i in self.interfaces.values()),
            "bridges": sorted(i.name for i in self.interfaces.values() if i.is_bridge),
            "routes": len(self.routes),
            "forward_rules": len(self.filter.rules["FORWARD"]),
            "ip_forward": self.ip_forward,
            "ipvs_services": len(self.ipvs_services),
        }
