"""The Capability Manager (paper §V).

Before synthesis, the controller checks that the running kernel exposes the
helpers each FPM needs. Mainline kernels have ``bpf_fib_lookup`` but not the
paper's ``bpf_fdb_lookup``/``bpf_ipt_lookup`` (those are the ~260 LoC the
authors add); on such a kernel LinuxFP can still accelerate routing while
bridging/filtering stay on the slow path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ebpf.helpers import HELPER_IDS, LINUXFP_HELPERS, MAINLINE_HELPERS

# helpers each FPM requires
FPM_REQUIREMENTS: Dict[str, Set[str]] = {
    "router": {"fib_lookup", "redirect"},
    "bridge": {"fdb_lookup", "redirect"},
    "filter": {"ipt_lookup"},
    "ipvs": {"conntrack_lookup"},
}


class CapabilityManager:
    """Knows which helpers the target kernel provides."""

    def __init__(self, available_helpers: Iterable[str] = None) -> None:
        if available_helpers is None:
            available_helpers = set(HELPER_IDS)  # our kernel ships everything
        self.available = set(available_helpers)
        unknown = self.available - set(HELPER_IDS)
        if unknown:
            raise ValueError(f"unknown helpers: {sorted(unknown)}")

    @classmethod
    def mainline(cls) -> "CapabilityManager":
        """A kernel without the paper's added helpers."""
        return cls(MAINLINE_HELPERS)

    @classmethod
    def linuxfp(cls) -> "CapabilityManager":
        """A kernel with the LinuxFP helper patch applied."""
        return cls(MAINLINE_HELPERS | LINUXFP_HELPERS)

    def supports(self, nf: str) -> bool:
        return FPM_REQUIREMENTS.get(nf, set()) <= self.available

    def filter_nodes(self, nf_names: Iterable[str]) -> List[str]:
        """The subset of FPMs the kernel can host; order preserved."""
        return [nf for nf in nf_names if self.supports(nf)]

    def missing_for(self, nf: str) -> Set[str]:
        return FPM_REQUIREMENTS.get(nf, set()) - self.available
