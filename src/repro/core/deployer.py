"""The Fast Path Deployer: compile → verify → load → atomic swap.

Re-attaching an XDP/TC program can lose packets for seconds (paper §IV-A2);
LinuxFP instead attaches a stable *dispatcher* once per interface whose only
job is to tail-call through a prog array. Deploying a new fast path is then
a single prog-array slot update — atomic, no loss window (Fig 4). Clearing
the slot makes the dispatcher fall through to Linux, so teardown is equally
safe.

Deployment is **transactional**: every fallible stage (verify, dispatcher
build, load, prog-array swap) runs before the serving slot is touched, so a
failure anywhere leaves the interface exactly where it was. What "where it
was" means depends on whether the last-good program is still semantically
current:

- If the staged program has the *same source* as the serving one (a retry
  of an identical build), the serving program is still correct — keep it.
- If the source differs, the kernel configuration changed and the old
  program now computes stale answers. Keeping it would *diverge* from the
  kernel, which is worse than being slow — so the interface is withdrawn to
  the (always-correct) Linux slow path.

Either way ``deploy()`` never raises: it records a :class:`DeployFailure`
and returns ``False``, leaving retry policy to the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fpm.library import render_dispatcher
from repro.core.synthesizer import SynthesizedPath
from repro.ebpf.loader import Loader
from repro.ebpf.maps import BpfMap, MapError, ProgArray
from repro.ebpf.minic import compile_c
from repro.ebpf.verifier import VerifierError, verify
from repro.testing import faults


@dataclass
class DeployedInterface:
    ifname: str
    hook: str
    prog_array: ProgArray
    dispatcher: object  # attachment handle
    current: Optional[SynthesizedPath] = None
    swaps: int = 0


@dataclass
class DeployFailure:
    """Why an interface is degraded (serving last-good or slow path)."""

    ifname: str
    stage: str  # verify | dispatcher | load | swap | synthesize
    error: str
    at_ns: int
    #: structured verifier diagnostics (program/pc/code/insn), when the
    #: failure came from the static verifier
    detail: Optional[Dict[str, object]] = None


@dataclass
class MigrationReport:
    """What happened to the old program's map state during a redeploy.

    Maps migrate when the old and new programs carry *distinct* map objects
    whose schemas (type + key/value size + ``schema_version``) match by
    name. Pinned (shared-object) maps need no migration — the state never
    left. Per-entry copy failures (injected faults, pressure in the target)
    degrade to a count, never a failed deploy.
    """

    ifname: str
    at_ns: int
    #: map name → entries copied into the new program's map
    migrated: Dict[str, int] = field(default_factory=dict)
    #: maps that could not (or did not need to) migrate, with the reason
    skipped: List[str] = field(default_factory=list)
    #: entries lost in the copy (target refused the update)
    dropped: int = 0

    @property
    def total_entries(self) -> int:
        return sum(self.migrated.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "ifname": self.ifname,
            "at_ns": self.at_ns,
            "migrated": dict(self.migrated),
            "skipped": list(self.skipped),
            "dropped": self.dropped,
            "total_entries": self.total_entries,
        }


@dataclass
class Quarantine:
    """A watchdog-imposed withdrawal with a hold-off before resynthesis."""

    ifname: str
    reason: str
    at_ns: int
    until_ns: int


class Deployer:
    def __init__(self, kernel, hook: str = "xdp") -> None:
        if hook not in ("xdp", "tc"):
            raise ValueError(f"bad hook {hook!r}")
        self.kernel = kernel
        self.hook = hook
        self.loader = Loader(kernel)
        self.deployed: Dict[str, DeployedInterface] = {}
        #: Interfaces whose last deploy attempt failed, by name. Presence
        #: here means "degraded": the interface serves last-good or slow path.
        self.failures: Dict[str, DeployFailure] = {}
        #: Interfaces the watchdog pulled out of the fast path.
        self.quarantined: Dict[str, Quarantine] = {}
        #: Latest state-migration report per interface (redeploys only).
        self.migrations: Dict[str, MigrationReport] = {}

    def _now_ns(self) -> int:
        return self.kernel.clock.now_ns

    def _ensure_dispatcher(self, ifname: str) -> DeployedInterface:
        entry = self.deployed.get(ifname)
        if entry is not None:
            return entry
        prog_array = ProgArray(f"linuxfp_jmp_{ifname}", max_entries=4)
        source = render_dispatcher(ifname, self.hook)
        dispatcher_prog = compile_c(
            source, name=f"linuxfp_dispatch_{ifname}", hook=self.hook, maps={"jmp": prog_array}
        )
        attachment = self.loader.load(dispatcher_prog)
        if self.hook == "xdp":
            self.loader.attach_xdp(ifname, attachment)
        else:
            self.loader.attach_tc(ifname, attachment)
        entry = DeployedInterface(ifname=ifname, hook=self.hook, prog_array=prog_array, dispatcher=attachment)
        self.deployed[ifname] = entry
        return entry

    def deploy(self, path: SynthesizedPath) -> bool:
        """Stage verify+load, then atomically swap; never raises.

        Returns True on success. On failure the interface keeps serving
        whatever it served before — last-good if still semantically current,
        otherwise the slow path — and the failure is recorded in
        :attr:`failures` for the controller's retry loop.
        """
        stage = "verify"
        frozen: List[BpfMap] = []
        report: Optional[MigrationReport] = None
        try:
            verify(path.program)
            stage = "dispatcher"
            entry = self._ensure_dispatcher(path.ifname)
            stage = "load"
            self.loader.load(path.program)
            stage = "migrate"
            report, frozen = self._migrate_maps(entry, path)
            stage = "swap"
            entry.prog_array.set_prog(0, path.program)  # the atomic pointer update
        except Exception as exc:  # noqa: BLE001 — degrade, never crash the control plane
            # The old program keeps serving (or we withdraw): its maps must
            # accept writes again.
            for frozen_map in frozen:
                frozen_map.frozen = False
            self.note_failure(path.ifname, stage, exc)
            entry = self.deployed.get(path.ifname)
            if entry is not None and entry.current is not None and entry.current.source != path.source:
                # Last-good is stale relative to the kernel config that
                # produced ``path`` — serving it would diverge. Fall all the
                # way back to the slow path, which is always correct.
                self.withdraw(path.ifname)
            return False
        entry.current = path
        entry.swaps += 1
        if report is not None:
            self.migrations[path.ifname] = report
        path.rebind_custom_maps()  # userspace now reads the live (migrated) maps
        self.failures.pop(path.ifname, None)
        self.quarantined.pop(path.ifname, None)
        self._flush_flow_cache(path.ifname, reason="swap")
        return True

    def _migrate_maps(self, entry: DeployedInterface, path: SynthesizedPath) -> Tuple[MigrationReport, List[BpfMap]]:
        """Copy the serving program's map state into the staged program.

        The old maps are *frozen* for the copy (writes refused, so the
        snapshot cannot tear) and stay frozen once the swap retires the old
        program; the caller unfreezes them if the swap fails. Never raises:
        a map that cannot migrate is skipped with a reason, a rejected entry
        is counted in ``dropped``.
        """
        report = MigrationReport(ifname=path.ifname, at_ns=self._now_ns())
        frozen: List[BpfMap] = []
        old_path = entry.current
        if old_path is None:
            return report, frozen  # first deploy (or serving slow path): nothing to carry
        old_maps = {m.name: m for m in getattr(old_path.program, "maps", [])}
        for new_map in getattr(path.program, "maps", []):
            old_map = old_maps.get(new_map.name)
            if old_map is None:
                report.skipped.append(f"{new_map.name}: no map of that name in the old program")
                continue
            if old_map is new_map:
                report.skipped.append(f"{new_map.name}: pinned (shared object, state never left)")
                continue
            if not old_map.byte_addressable:
                report.skipped.append(f"{new_map.name}: holds control-plane objects, not bytes")
                continue
            if old_map.schema() != new_map.schema():
                report.skipped.append(
                    f"{new_map.name}: schema mismatch {old_map.schema()} -> {new_map.schema()}"
                )
                continue
            old_map.frozen = True
            frozen.append(old_map)
            copied = 0
            if old_map.percpu and new_map.percpu and old_map.num_cpus == new_map.num_cpus:
                # Slot-wise freeze-copy: each CPU's private values land in
                # the same CPU's slot of the successor, so per-CPU locality
                # (and the aggregate) survive the swap exactly.
                for key, slots in old_map.percpu_items():
                    ok = True
                    for cpu, value in enumerate(slots):
                        if value is None:
                            continue
                        try:
                            new_map.update_cpu(cpu, key, value)
                        except (MapError, faults.InjectedFault):
                            ok = False
                    if ok:
                        copied += 1
                    else:
                        report.dropped += 1
            else:
                # Aggregate copy. For a percpu→percpu pair with differing
                # CPU counts the summed value lands on the new map's CPU 0:
                # totals are preserved even though locality is not.
                for key, value in old_map.items():
                    try:
                        new_map.update(key, value)
                        copied += 1
                    except (MapError, faults.InjectedFault):
                        report.dropped += 1
            report.migrated[new_map.name] = copied
        return report, frozen

    def optimizer_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-interface superoptimizer outcome for the *serving* program.

        ``status`` is ``"baseline"`` when the serving path carries no
        optimization report (the pass was not enabled for its synthesis).
        Withdrawn interfaces (``current is None``) are omitted — there is no
        serving bytecode to describe.
        """
        out: Dict[str, Dict[str, object]] = {}
        for ifname, entry in sorted(self.deployed.items()):
            if entry.current is None:
                continue
            report = entry.current.opt_report
            if report is None:
                out[ifname] = {
                    "status": "baseline",
                    "insns": len(entry.current.program),
                    "insns_removed": 0,
                    "rejected": 0,
                    "unproven": 0,
                }
            else:
                out[ifname] = {
                    "status": report.status,
                    "insns": len(entry.current.program),
                    "insns_removed": report.insns_removed,
                    "rejected": len(report.rejected),
                    "unproven": report.unproven,
                }
        return out

    def jit_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-interface JIT outcome for the *serving* program.

        ``status`` is ``"interpreter"`` when the serving path carries no JIT
        report (the JIT was not enabled for its synthesis); ``"fallback"``
        means compilation failed and the interpreter serves, fail-closed.
        Withdrawn interfaces are omitted.
        """
        out: Dict[str, Dict[str, object]] = {}
        for ifname, entry in sorted(self.deployed.items()):
            if entry.current is None:
                continue
            report = entry.current.jit_report
            if report is None:
                out[ifname] = {
                    "status": "interpreter",
                    "insns": len(entry.current.program),
                    "inline_mem_ops": 0,
                    "folded_null_checks": 0,
                    "writes_packet": True,
                }
            else:
                out[ifname] = {
                    "status": report.status,
                    "insns": len(entry.current.program),
                    "inline_mem_ops": report.inline_mem_ops,
                    "folded_null_checks": report.folded_null_checks,
                    "writes_packet": report.writes_packet,
                }
        return out

    def note_failure(self, ifname: str, stage: str, error: Exception) -> DeployFailure:
        """Record a deploy-pipeline failure (also used for synthesis errors)."""
        detail = error.to_dict() if isinstance(error, VerifierError) else None
        failure = DeployFailure(
            ifname=ifname, stage=stage, error=str(error), at_ns=self._now_ns(), detail=detail
        )
        self.failures[ifname] = failure
        return failure

    def withdraw(self, ifname: str) -> None:
        """Clear the fast path; the dispatcher falls through to Linux.

        Idempotent: withdrawing an interface that is already on the slow
        path (or was never deployed) is a no-op.
        """
        entry = self.deployed.get(ifname)
        if entry is None or entry.current is None:
            return
        entry.prog_array.clear(0)  # clearing a slot cannot fail
        entry.current = None
        entry.swaps += 1
        self._flush_flow_cache(ifname, reason="withdraw")

    def quarantine(self, ifname: str, reason: str, holdoff_ns: int) -> Optional[Quarantine]:
        """Watchdog verdict: withdraw and hold off resynthesis briefly."""
        self.withdraw(ifname)
        now = self._now_ns()
        record = Quarantine(ifname=ifname, reason=reason, at_ns=now, until_ns=now + holdoff_ns)
        self.quarantined[ifname] = record
        self._flush_flow_cache(ifname, reason="quarantine")
        return record

    def in_holdoff(self, ifname: str) -> bool:
        q = self.quarantined.get(ifname)
        return q is not None and self._now_ns() < q.until_ns

    def drain_cpu(self, dead: int, target: int) -> int:
        """CPU hotplug: rehome per-CPU map slots of every deployed program.

        The dead CPU will never execute again, so flow state parked in its
        slots would be invisible to single-CPU fast-path probes from the new
        owner (aggregate control-plane reads stay correct regardless). Walks
        every serving program's per-CPU maps; per-map failures degrade to a
        skip, never an exception. Returns total values moved.
        """
        moved = 0
        for entry in self.deployed.values():
            if entry.current is None:
                continue
            for bpf_map in getattr(entry.current.program, "maps", []):
                drain = getattr(bpf_map, "drain_cpu", None)
                if drain is None:
                    continue
                try:
                    moved += drain(dead, target)
                except Exception:  # noqa: BLE001 — a frozen/faulted map must not wedge hotplug
                    continue
        return moved

    def teardown(self) -> None:
        """Detach every dispatcher (full LinuxFP removal).

        Exception-safe and idempotent: a device that vanished after its
        dispatcher was attached must not wedge removal of the others.
        """
        for ifname in list(self.deployed):
            try:
                if self.hook == "xdp":
                    self.loader.detach_xdp(ifname)
                else:
                    self.loader.detach_tc(ifname)
            except Exception:  # noqa: BLE001 — device already gone
                pass
            del self.deployed[ifname]
        self.failures.clear()
        self.quarantined.clear()
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is not None:
            cache.flush(hook=self.hook, reason="teardown")

    def _flush_flow_cache(self, ifname: str, reason: str = "swap") -> None:
        """Swapping a program invalidates that interface's cached verdicts."""
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is None:
            return
        dev = self.kernel.devices.get(ifname)
        if dev is None:
            cache.flush(hook=self.hook, reason=reason)
        else:
            cache.flush(hook=self.hook, ifindex=dev.ifindex, reason=reason)
