"""The Fast Path Deployer: compile → verify → load → atomic swap.

Re-attaching an XDP/TC program can lose packets for seconds (paper §IV-A2);
LinuxFP instead attaches a stable *dispatcher* once per interface whose only
job is to tail-call through a prog array. Deploying a new fast path is then
a single prog-array slot update — atomic, no loss window (Fig 4). Clearing
the slot makes the dispatcher fall through to Linux, so teardown is equally
safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.fpm.library import render_dispatcher
from repro.core.synthesizer import SynthesizedPath
from repro.ebpf.loader import Loader
from repro.ebpf.maps import ProgArray
from repro.ebpf.minic import compile_c
from repro.ebpf.verifier import verify


@dataclass
class DeployedInterface:
    ifname: str
    hook: str
    prog_array: ProgArray
    dispatcher: object  # attachment handle
    current: Optional[SynthesizedPath] = None
    swaps: int = 0


class Deployer:
    def __init__(self, kernel, hook: str = "xdp") -> None:
        if hook not in ("xdp", "tc"):
            raise ValueError(f"bad hook {hook!r}")
        self.kernel = kernel
        self.hook = hook
        self.loader = Loader(kernel)
        self.deployed: Dict[str, DeployedInterface] = {}

    def _ensure_dispatcher(self, ifname: str) -> DeployedInterface:
        entry = self.deployed.get(ifname)
        if entry is not None:
            return entry
        prog_array = ProgArray(f"linuxfp_jmp_{ifname}", max_entries=4)
        source = render_dispatcher(ifname, self.hook)
        dispatcher_prog = compile_c(
            source, name=f"linuxfp_dispatch_{ifname}", hook=self.hook, maps={"jmp": prog_array}
        )
        attachment = self.loader.load(dispatcher_prog)
        if self.hook == "xdp":
            self.loader.attach_xdp(ifname, attachment)
        else:
            self.loader.attach_tc(ifname, attachment)
        entry = DeployedInterface(ifname=ifname, hook=self.hook, prog_array=prog_array, dispatcher=attachment)
        self.deployed[ifname] = entry
        return entry

    def deploy(self, path: SynthesizedPath) -> DeployedInterface:
        """Verify+load the new fast path, then atomically swap it in."""
        verify(path.program)
        entry = self._ensure_dispatcher(path.ifname)
        entry.prog_array.set_prog(0, path.program)  # the atomic pointer update
        entry.current = path
        entry.swaps += 1
        self._flush_flow_cache(path.ifname)
        return entry

    def withdraw(self, ifname: str) -> None:
        """Clear the fast path; the dispatcher falls through to Linux."""
        entry = self.deployed.get(ifname)
        if entry is not None:
            entry.prog_array.clear(0)
            entry.current = None
            entry.swaps += 1
            self._flush_flow_cache(ifname)

    def teardown(self) -> None:
        """Detach every dispatcher (full LinuxFP removal)."""
        for ifname in list(self.deployed):
            if self.hook == "xdp":
                self.loader.detach_xdp(ifname)
            else:
                self.loader.detach_tc(ifname)
            del self.deployed[ifname]
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is not None:
            cache.flush(hook=self.hook, reason="teardown")

    def _flush_flow_cache(self, ifname: str) -> None:
        """Swapping a program invalidates that interface's cached verdicts."""
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is None:
            return
        dev = self.kernel.devices.get(ifname)
        if dev is None:
            cache.flush(hook=self.hook, reason="swap")
        else:
            cache.flush(hook=self.hook, ifindex=dev.ifindex, reason="swap")
