"""A small Jinja-like template engine for FPM synthesis.

The paper renders FPM C code from Jinja templates; this offline environment
has no jinja2, so we implement the needed subset:

- ``{{ expr }}`` substitution (attribute/key access and formatting via
  Python ``eval`` over a restricted namespace);
- ``{% if expr %} … {% elif expr %} … {% else %} … {% endif %}``;
- ``{% for name in expr %} … {% endfor %}``;
- ``{# comments #}``.

Templates are trusted input (they ship with LinuxFP, like the paper's);
the restriction exists to catch mistakes, not adversaries.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

TOKEN_RE = re.compile(r"({%.*?%}|{{.*?}}|{#.*?#})", re.S)

SAFE_BUILTINS = {
    "len": len,
    "str": str,
    "int": int,
    "hex": hex,
    "enumerate": enumerate,
    "sorted": sorted,
    "range": range,
    "min": min,
    "max": max,
}


class TemplateError(ValueError):
    """Malformed template or failing expression."""


def _eval(expr: str, ctx: Dict[str, Any]) -> Any:
    try:
        return eval(expr, {"__builtins__": SAFE_BUILTINS}, ctx)  # noqa: S307 - trusted templates
    except Exception as exc:
        raise TemplateError(f"template expression {expr!r} failed: {exc}") from exc


class _Node:
    def render(self, ctx: Dict[str, Any], out: List[str]) -> None:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, ctx: Dict[str, Any], out: List[str]) -> None:
        out.append(self.text)


class _Expr(_Node):
    def __init__(self, expr: str) -> None:
        self.expr = expr

    def render(self, ctx: Dict[str, Any], out: List[str]) -> None:
        out.append(str(_eval(self.expr, ctx)))


class _If(_Node):
    def __init__(self) -> None:
        # list of (condition expr or None for else, body)
        self.branches: List[Tuple[Any, List[_Node]]] = []

    def render(self, ctx: Dict[str, Any], out: List[str]) -> None:
        for condition, body in self.branches:
            if condition is None or _eval(condition, ctx):
                for node in body:
                    node.render(ctx, out)
                return


class _For(_Node):
    def __init__(self, var: str, expr: str) -> None:
        self.var = var
        self.expr = expr
        self.body: List[_Node] = []

    def render(self, ctx: Dict[str, Any], out: List[str]) -> None:
        items = _eval(self.expr, ctx)
        inner = dict(ctx)
        for i, item in enumerate(items):
            inner[self.var] = item
            inner["loop_index"] = i
            for node in self.body:
                node.render(inner, out)


def _parse(tokens: List[str], pos: int, terminators: Tuple[str, ...]) -> Tuple[List[_Node], int, str]:
    nodes: List[_Node] = []
    while pos < len(tokens):
        token = tokens[pos]
        if token.startswith("{#"):
            pos += 1
            continue
        if token.startswith("{{"):
            nodes.append(_Expr(token[2:-2].strip()))
            pos += 1
            continue
        if token.startswith("{%"):
            tag = token[2:-2].strip()
            keyword = tag.split(None, 1)[0]
            if keyword in terminators:
                return nodes, pos, tag
            if keyword == "if":
                node = _If()
                condition = tag[2:].strip()
                while True:
                    body, pos, ended = _parse(tokens, pos + 1, ("elif", "else", "endif"))
                    node.branches.append((condition, body))
                    end_keyword = ended.split(None, 1)[0]
                    if end_keyword == "elif":
                        condition = ended[4:].strip()
                        continue
                    if end_keyword == "else":
                        body, pos, ended = _parse(tokens, pos + 1, ("endif",))
                        node.branches.append((None, body))
                    break
                nodes.append(node)
                pos += 1
                continue
            if keyword == "for":
                match = re.match(r"for\s+(\w+)\s+in\s+(.+)", tag)
                if not match:
                    raise TemplateError(f"bad for tag: {tag!r}")
                node = _For(match.group(1), match.group(2))
                node.body, pos, __ = _parse(tokens, pos + 1, ("endfor",))
                nodes.append(node)
                pos += 1
                continue
            raise TemplateError(f"unknown tag {tag!r}")
        nodes.append(_Text(token))
        pos += 1
    if terminators:
        raise TemplateError(f"unclosed block; expected one of {terminators}")
    return nodes, pos, ""


class Template:
    def __init__(self, source: str) -> None:
        tokens = [t for t in TOKEN_RE.split(source) if t]
        self.nodes, __, __ = _parse(tokens, 0, ())

    def render(self, **ctx: Any) -> str:
        out: List[str] = []
        for node in self.nodes:
            node.render(ctx, out)
        return "".join(out)


def render(source: str, **ctx: Any) -> str:
    return Template(source).render(**ctx)
