"""The differential watchdog: continuous fast-path / slow-path comparison.

The synthesized fast path is supposed to be observationally equivalent to
the plain kernel pipeline. The watchdog checks that property *in
production*: every Nth packet on an accelerated interface is handled by the
plain kernel (authoritative — so sampling can never itself change
behaviour), while the fast path runs only as a **shadow prediction**. The
prediction's verdict and output frame are compared against what the kernel
actually did, via the stack's transmit taps.

A mismatch means the deployed FPM computes something the kernel would not —
a synthesis bug, a stale view, a corrupted program. The response is
containment, not diagnosis: the controller quarantines the interface
(withdraw to the slow path, flush its flow-cache partition, bump the
partition epoch) and schedules a resynthesis after a hold-off.

The one verdict that cannot be shadowed is ``XDP_CONSUMED`` (AF_XDP): the
prediction run has already delivered the frame to the XSK socket, so the
reference run is skipped — running both would double-deliver.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.hooks_api import (
    TC_ACT_OK,
    TC_ACT_REDIRECT,
    TC_ACT_SHOT,
    XDP_ABORTED,
    XDP_CONSUMED,
    XDP_DROP,
    XDP_PASS,
    XDP_REDIRECT,
    XDP_TX,
)

DEFAULT_SAMPLE_EVERY = 16


class Watchdog:
    """Samples 1-in-``every`` packets on interfaces with a deployed FPM."""

    def __init__(self, controller, every: int = DEFAULT_SAMPLE_EVERY, hook: str = "xdp") -> None:
        if every < 1:
            raise ValueError("sampling period must be >= 1")
        self.controller = controller
        self.every = every
        self.hook = hook
        self._counter = 0
        self.sampled = 0
        self.agreements = 0
        self.mismatches = 0
        self.punts = 0  # prediction was PASS/OK — slow path authoritative anyway
        self.consumed = 0  # AF_XDP: prediction delivered, no reference run

    # -------------------------------------------------------------- sampling

    def should_sample(self, dev) -> bool:
        """True when this packet is the 1-in-N differential sample."""
        entry = self.controller.deployer.deployed.get(dev.name)
        if entry is None or entry.current is None:
            return False  # nothing deployed: nothing to check
        self._counter += 1
        return self._counter % self.every == 0

    def sample(self, stack, dev, frame: bytes, queue: int = 0) -> None:
        """Differentially check one XDP-hook packet.

        The fast path runs as a shadow to obtain its *prediction*; the plain
        kernel pipeline then handles the packet for real. Output frames are
        captured with a transmit tap and compared against the prediction.
        """
        self.sampled += 1
        prediction = dev.xdp_prog.run_xdp(stack.kernel, dev, frame)
        if prediction.verdict == XDP_CONSUMED:
            # Already delivered to the AF_XDP socket by the shadow run; no
            # reference run happens, so settle the packet here.
            self.consumed += 1
            stack.finish("xdp_consumed", dev)
            return
        captured = self._run_reference(stack, dev, frame, queue)
        if prediction.verdict == XDP_PASS:
            self.punts += 1  # the fast path declined; no claim to check
            return
        mismatch = self._judge_xdp(dev, prediction, captured)
        self._conclude(dev, mismatch)

    def sample_tc(self, stack, dev, skb, frame: bytes, queue: int = 0) -> None:
        """Differentially check one TC-ingress packet."""
        self.sampled += 1
        prediction = dev.tc_ingress_prog.run_tc(stack.kernel, dev, skb)
        captured: List[Tuple[int, bytes]] = []
        stack.tx_taps.append(lambda ifindex, out: captured.append((ifindex, out)))
        try:
            stack.netif_receive(dev, skb)
        finally:
            stack.tx_taps.pop()
        if prediction.verdict == TC_ACT_OK:
            self.punts += 1
            return
        mismatch = self._judge_tc(dev, prediction, captured)
        self._conclude(dev, mismatch)

    def _run_reference(self, stack, dev, frame: bytes, queue: int) -> List[Tuple[int, bytes]]:
        captured: List[Tuple[int, bytes]] = []
        stack.tx_taps.append(lambda ifindex, out: captured.append((ifindex, out)))
        try:
            stack.receive_after_xdp(dev, frame, queue)
        finally:
            stack.tx_taps.pop()
        return captured

    # --------------------------------------------------------------- judging

    def _judge_xdp(self, dev, prediction, captured) -> Optional[str]:
        """A mismatch description, or None when fast and slow path agree."""
        verdict = prediction.verdict
        if verdict == XDP_ABORTED:
            return "fast path aborted"
        if verdict == XDP_DROP:
            if captured:
                return f"predicted DROP but kernel transmitted {len(captured)} frame(s)"
            return None
        if verdict in (XDP_TX, XDP_REDIRECT):
            want_ifindex = dev.ifindex if verdict == XDP_TX else prediction.redirect_ifindex
            return self._expect_one_tx(captured, want_ifindex, prediction.frame)
        return f"unknown verdict {verdict}"

    def _judge_tc(self, dev, prediction, captured) -> Optional[str]:
        verdict = prediction.verdict
        if verdict == TC_ACT_SHOT:
            if captured:
                return f"predicted SHOT but kernel transmitted {len(captured)} frame(s)"
            return None
        if verdict == TC_ACT_REDIRECT:
            return self._expect_one_tx(captured, prediction.redirect_ifindex, prediction.frame)
        return f"unknown verdict {verdict}"

    @staticmethod
    def _expect_one_tx(captured, want_ifindex, want_frame) -> Optional[str]:
        if len(captured) != 1:
            return f"predicted one transmit, kernel made {len(captured)}"
        got_ifindex, got_frame = captured[0]
        if got_ifindex != want_ifindex:
            return f"predicted egress ifindex {want_ifindex}, kernel used {got_ifindex}"
        if got_frame != want_frame:
            return "output frame differs between fast path and kernel"
        return None

    def _conclude(self, dev, mismatch: Optional[str]) -> None:
        if mismatch is None:
            self.agreements += 1
            return
        self.mismatches += 1
        self.controller.on_watchdog_mismatch(dev.name, mismatch)

    # ----------------------------------------------------------------- stats

    def summary(self) -> dict:
        return {
            "every": self.every,
            "hook": self.hook,
            "sampled": self.sampled,
            "agreements": self.agreements,
            "mismatches": self.mismatches,
            "punts": self.punts,
            "consumed": self.consumed,
        }
