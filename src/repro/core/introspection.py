"""Service Introspection: building and maintaining the kernel view.

On start, issues netlink dumps for every subsystem (links, addresses,
routes, neighbors, FDB, filter rules, ipsets, ipvs, sysctl) to get the
initial view; then joins every multicast group so each configuration change
updates the view incrementally and triggers the controller (paper §IV-C1).
"""

from __future__ import annotations

from typing import Callable, List
from repro.core.objects import (
    InterfaceObject,
    IpvsServiceObject,
    KernelView,
    RouteObject,
    RuleObject,
)
from repro.netlink import messages as m
from repro.netlink.bus import NetlinkSocket
from repro.netlink.messages import ALL_GROUPS, NLM_F_DUMP, NLM_F_REQUEST, NetlinkMsg

ChangeListener = Callable[[NetlinkMsg], None]


class ServiceIntrospection:
    """Maintains a :class:`KernelView` over a netlink socket."""

    def __init__(self, socket: NetlinkSocket) -> None:
        self.socket = socket
        self.view = KernelView()
        self._listeners: List[ChangeListener] = []
        self.events_seen = 0
        self.resyncs = 0

    # ---------------------------------------------------------------- start

    def start(self) -> KernelView:
        """Initial dumps plus multicast subscriptions."""
        self.socket.subscribe(*ALL_GROUPS)
        self.socket.add_listener(self._on_notification)
        self._dump_all()
        return self.view

    def resync(self) -> KernelView:
        """Rebuild the view from scratch with a fresh round of dumps.

        The answer to a netlink overrun: incremental updates were lost, so
        the view can no longer be trusted — throw it away and re-dump, just
        as ``ip monitor`` restarts its dump after ENOBUFS.
        """
        self.view = KernelView()
        self._dump_all()
        self.resyncs += 1
        return self.view

    def _dump_all(self) -> None:
        for msg in self._dump(m.RTM_GETLINK):
            self._apply_link(msg.attrs, deleted=False)
        for msg in self._dump(m.RTM_GETADDR):
            self._apply_addr(msg.attrs, deleted=False)
        for msg in self._dump(m.RTM_GETROUTE):
            self._apply_route(msg.attrs, deleted=False)
        for msg in self._dump(m.RTM_GETNEIGH):
            self.view.neighbors += 1
        for msg in self._dump(m.NFT_GETRULE):
            if msg.msg_type == m.NFT_SETPOLICY:
                self._apply_policy(msg.attrs)
            else:
                self._apply_rule(msg.attrs, deleted=False)
        for msg in self._dump(m.IPSET_GETSET):
            self.view.ipsets.add(msg.attrs["name"])
        for msg in self._dump(m.IPVS_GETSERVICE):
            if msg.msg_type == m.IPVS_NEWSERVICE:
                self._apply_ipvs_service(msg.attrs, deleted=False)
            else:
                self._apply_ipvs_dest(msg.attrs, deleted=False)
        for msg in self._dump(m.SYSCTL_GET):
            if msg.attrs.get("name") == "net.ipv4.ip_forward":
                self.view.ip_forward = msg.attrs.get("value") not in ("0", "")

    def _dump(self, msg_type: int) -> List[NetlinkMsg]:
        return self.socket.request(NetlinkMsg(msg_type, flags=NLM_F_REQUEST | NLM_F_DUMP))

    # -------------------------------------------------------------- updates

    def add_listener(self, listener: ChangeListener) -> None:
        """Called after the view is updated for each notification."""
        self._listeners.append(listener)

    def _on_notification(self, msg: NetlinkMsg) -> None:
        self.events_seen += 1
        handler = {
            m.RTM_NEWLINK: lambda: self._apply_link(msg.attrs, deleted=False),
            m.RTM_DELLINK: lambda: self._apply_link(msg.attrs, deleted=True),
            m.RTM_NEWADDR: lambda: self._apply_addr(msg.attrs, deleted=False),
            m.RTM_DELADDR: lambda: self._apply_addr(msg.attrs, deleted=True),
            m.RTM_NEWROUTE: lambda: self._apply_route(msg.attrs, deleted=False),
            m.RTM_DELROUTE: lambda: self._apply_route(msg.attrs, deleted=True),
            m.RTM_NEWNEIGH: lambda: self._bump_neighbors(+1),
            m.RTM_DELNEIGH: lambda: self._bump_neighbors(-1),
            m.NFT_NEWRULE: lambda: self._apply_rule(msg.attrs, deleted=False),
            m.NFT_DELRULE: lambda: self._apply_rule(msg.attrs, deleted=True),
            m.NFT_SETPOLICY: lambda: self._apply_policy(msg.attrs),
            m.IPSET_NEWSET: lambda: self.view.ipsets.add(msg.attrs["name"]),
            m.IPSET_DELSET: lambda: self.view.ipsets.discard(msg.attrs["name"]),
            m.IPVS_NEWSERVICE: lambda: self._apply_ipvs_service(msg.attrs, deleted=False),
            m.IPVS_DELSERVICE: lambda: self._apply_ipvs_service(msg.attrs, deleted=True),
            m.IPVS_NEWDEST: lambda: self._apply_ipvs_dest(msg.attrs, deleted=False),
            m.IPVS_DELDEST: lambda: self._apply_ipvs_dest(msg.attrs, deleted=True),
            m.SYSCTL_SET: lambda: self._apply_sysctl(msg.attrs),
        }.get(msg.msg_type)
        if handler is not None:
            handler()
        for listener in self._listeners:
            listener(msg)

    # ------------------------------------------------------------- appliers

    def _apply_link(self, attrs: dict, deleted: bool) -> None:
        ifindex = attrs.get("ifindex")
        if ifindex is None:
            return
        if deleted:
            self.view.interfaces.pop(ifindex, None)
            return
        iface = self.view.interfaces.get(ifindex)
        if iface is None:
            iface = InterfaceObject(ifindex=ifindex, name=attrs.get("ifname", f"if{ifindex}"), kind=attrs.get("kind", "generic"))
            self.view.interfaces[ifindex] = iface
        iface.name = attrs.get("ifname", iface.name)
        iface.kind = attrs.get("kind", iface.kind)
        iface.up = bool(attrs.get("operstate", iface.up))
        if "operstate" in attrs:
            iface.up = bool(attrs["operstate"])
        iface.mac = attrs.get("address", iface.mac)
        iface.mtu = attrs.get("mtu", iface.mtu)
        iface.num_queues = attrs.get("num_queues", iface.num_queues)
        iface.master = attrs.get("master") if "master" in attrs else None
        bridge_info = attrs.get("bridge")
        if bridge_info:
            iface.stp_enabled = bool(bridge_info.get("stp_state", 0))
            iface.vlan_filtering = bool(bridge_info.get("vlan_filtering", 0))
            iface.ageing_time_s = bridge_info.get("ageing_time", iface.ageing_time_s)
        vxlan_info = attrs.get("vxlan")
        if vxlan_info:
            iface.vni = vxlan_info.get("vni")

    def _apply_addr(self, attrs: dict, deleted: bool) -> None:
        iface = self.view.interfaces.get(attrs.get("ifindex"))
        if iface is None:
            return
        entry = (attrs["address"], attrs.get("prefixlen", 32))
        if deleted:
            iface.addresses = [a for a in iface.addresses if a[0] != entry[0]]
        elif entry not in iface.addresses:
            iface.addresses.append(entry)

    def _apply_route(self, attrs: dict, deleted: bool) -> None:
        route = RouteObject(
            dst=attrs["dst"],
            dst_len=attrs.get("dst_len", 32),
            oif=attrs.get("oif", 0),
            gateway=attrs.get("gateway"),
            metric=attrs.get("metric", 0),
        )
        if deleted:
            self.view.routes.pop(route.key(), None)
        else:
            self.view.routes[route.key()] = route

    def _bump_neighbors(self, delta: int) -> None:
        self.view.neighbors = max(0, self.view.neighbors + delta)

    def _apply_rule(self, attrs: dict, deleted: bool) -> None:
        chain = attrs.get("chain", "FORWARD")
        if chain == "*":  # flush-all notification
            for rules in self.view.filter.rules.values():
                rules.clear()
            return
        if chain not in self.view.filter.rules:
            return
        if deleted:
            handle = attrs.get("handle")
            if handle is None:
                self.view.filter.rules[chain].clear()
            else:
                self.view.filter.rules[chain] = [
                    r for r in self.view.filter.rules[chain] if r.handle != handle
                ]
            return
        rule = RuleObject(
            chain=chain,
            handle=attrs.get("handle", 0),
            target=attrs.get("target", "ACCEPT"),
            uses_set="match_set" in attrs,
            unsupported=attrs.get("target") not in ("ACCEPT", "DROP"),
        )
        # Keyed replace, not append: netlink delivery can duplicate a
        # message, and NEW handlers must be idempotent on the object key
        # (here the rule handle) or a dup would double the rule.
        rules = self.view.filter.rules[chain]
        for i, existing in enumerate(rules):
            if existing.handle == rule.handle:
                rules[i] = rule
                return
        rules.append(rule)

    def _apply_policy(self, attrs: dict) -> None:
        chain = attrs.get("chain")
        if chain in self.view.filter.policies and "policy" in attrs:
            self.view.filter.policies[chain] = attrs["policy"]

    def _apply_ipvs_service(self, attrs: dict, deleted: bool) -> None:
        key = (attrs["vip"], attrs["vport"], attrs["proto"])
        services = self.view.ipvs_services
        existing = next((s for s in services if (s.vip, s.port, s.proto) == key), None)
        if deleted:
            if existing is not None:
                services.remove(existing)
            return
        if existing is None:
            services.append(
                IpvsServiceObject(
                    vip=attrs["vip"], port=attrs["vport"], proto=attrs["proto"], scheduler=attrs.get("scheduler", "rr")
                )
            )

    def _apply_ipvs_dest(self, attrs: dict, deleted: bool) -> None:
        key = (attrs["vip"], attrs["vport"], attrs["proto"])
        existing = next((s for s in self.view.ipvs_services if (s.vip, s.port, s.proto) == key), None)
        if existing is not None:
            existing.dest_count += -1 if deleted else 1

    def _apply_sysctl(self, attrs: dict) -> None:
        if attrs.get("name") == "net.ipv4.ip_forward":
            self.view.ip_forward = attrs.get("value") not in ("0", "")
