"""The LinuxFP controller daemon.

``Controller.start()`` introspects the kernel, builds the processing graph,
synthesizes the fast paths, and deploys them. Every subsequent netlink
notification re-derives the graph; when its signature changes, the affected
interfaces are re-synthesized and atomically swapped. Users keep using
iproute2/brctl/iptables/Kubernetes — the controller sees the resulting
kernel state changes and reacts (the paper's transparency claim).

Reaction time (Table VI) is measured in *wall-clock* time from notification
arrival to deployment completion, covering graph build + template render +
compile + verify + load + swap — the same span the paper measures.

The control plane is **self-healing**: a failure anywhere in the reaction
pipeline degrades the affected interface (last-good or slow path — see
:mod:`repro.core.deployer`) and never escapes to the netlink callback.
Failed work is retried with exponential backoff on the simulated clock
(driven by :meth:`tick`). A netlink overrun (lost notifications) triggers a
full introspection resync before the next rebuild. The differential
watchdog (:mod:`repro.core.watchdog`), when enabled, quarantines any
interface whose fast path disagrees with the kernel.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.capability import CapabilityManager
from repro.core.deployer import Deployer
from repro.core.graph import ProcessingGraph, TopologyManager
from repro.core.introspection import ServiceIntrospection
from repro.core.synthesizer import Synthesizer
from repro.core.watchdog import Watchdog
from repro.netlink.messages import NetlinkMsg

#: First retry delay after a failed rebuild/deploy; doubles per attempt.
RETRY_BASE_NS = 10_000_000  # 10 ms
#: Backoff ceiling.
RETRY_CAP_NS = 5_000_000_000  # 5 s
#: How long a watchdog-quarantined interface stays on the slow path before
#: the controller attempts resynthesis.
QUARANTINE_HOLDOFF_NS = 100_000_000  # 100 ms

MAX_INCIDENTS = 1000
#: How far back :meth:`Controller._incident` looks for a same-key incident to
#: coalesce into instead of appending a new entry (flap dedup).
INCIDENT_DEDUP_WINDOW = 8
#: Consecutive failed retry attempts before the controller stops hammering a
#: persistently-failing interface and quarantines it instead.
GIVE_UP_ATTEMPTS = 8
#: How long a given-up interface rests on the slow path before the next try.
#: Kept ≤ RETRY_CAP_NS so the effective retry cadence never exceeds the cap.
GIVE_UP_HOLDOFF_NS = 2_000_000_000  # 2 s


@dataclass
class ReactionRecord:
    trigger: str  # message type name of the notification
    seconds: float
    redeployed: List[str] = field(default_factory=list)


@dataclass
class Incident:
    """One entry in the controller's incident log."""

    # rebuild-error | synthesize-error | deploy-error | watchdog-mismatch |
    # netlink-overrun-resync | optimizer-fallback | optimizer-reject |
    # jit-fallback | cpu-* | router-* | retry-give-up
    kind: str
    detail: str
    at_ns: int
    ifname: Optional[str] = None
    #: Occurrence count: repeats of the same (kind, detail, ifname) within
    #: the dedup window coalesce here instead of growing the log.
    count: int = 1


class Controller:
    """The LinuxFP daemon for one kernel."""

    def __init__(
        self,
        kernel,
        hook: str = "xdp",
        interfaces: Optional[List[str]] = None,
        enable_ipvs: bool = False,
        capabilities: Optional[CapabilityManager] = None,
        custom_fpms: Optional[List] = None,
        flow_cache: Optional[bool] = None,
        watchdog_every: Optional[int] = None,
        optimize: Optional[bool] = None,
        jit: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.hook = hook
        if flow_cache is None:
            flow_cache = os.environ.get("LINUXFP_FLOW_CACHE", "").lower() in ("1", "true", "on")
        self.flow_cache_requested = flow_cache
        if watchdog_every is None:
            watchdog_every = int(os.environ.get("LINUXFP_WATCHDOG", "0") or "0")
        self.watchdog_every = watchdog_every
        self.watchdog: Optional[Watchdog] = None
        self.target_interfaces = interfaces
        self.topology = TopologyManager(enable_ipvs=enable_ipvs)
        # optimize=None defers to the LINUXFP_OPT env opt-in (Synthesizer);
        # jit=None likewise defers to LINUXFP_JIT.
        self.synthesizer = Synthesizer(
            capabilities,
            customs=custom_fpms,
            num_cpus=kernel.num_cores,
            optimize=optimize,
            jit=jit,
        )
        # The data plane's JIT engine follows the controller's decision, so
        # Controller(jit=True) works without the env opt-in (and jit=False
        # pins it off regardless of the environment).
        engine = getattr(kernel, "jit", None)
        if engine is not None:
            engine.enabled = self.synthesizer.jit
        self.deployer = Deployer(kernel, hook=hook)
        self.socket = kernel.bus.open_socket()
        self.introspection = ServiceIntrospection(self.socket)
        self.current_graph: Optional[ProcessingGraph] = None
        self.reactions: List[ReactionRecord] = []
        self.incidents: Deque[Incident] = deque(maxlen=MAX_INCIDENTS)
        #: Total incident occurrences ever recorded (dedup and the ring
        #: buffer cap the *log*, never this counter).
        self.incidents_total = 0
        self.rebuilds = 0
        self.resyncs = 0
        self.started = False
        self._reacting = False
        self._pending = False  # a notification arrived mid-reaction
        self._retry_at_ns: Optional[int] = None
        self._retry_attempts = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> ProcessingGraph:
        """Initial introspection + full deployment; begins watching changes."""
        self.introspection.start()
        self.introspection.add_listener(self._on_change)
        self.started = True
        if self.watchdog_every:
            self.watchdog = Watchdog(self, every=self.watchdog_every, hook=self.hook)
            self.kernel.watchdog = self.watchdog
        self._run_reaction("start", record=False)
        self._sync_flow_cache()
        return self.current_graph

    def add_custom_fpm(self, custom) -> None:
        """Inject a custom module (monitoring etc.) and resynthesize now."""
        self.synthesizer.customs.append(custom)
        self._sync_flow_cache()  # custom FPMs may carry per-packet state
        if self.started:
            self.current_graph = None  # force resynthesis of every interface
            self._run_reaction("custom-fpm", record=False)

    def stop(self) -> None:
        """Withdraw every fast path and stop watching."""
        self.started = False
        if self.kernel.watchdog is self.watchdog:
            self.kernel.watchdog = None
        self.watchdog = None
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is not None and cache.enabled:
            cache.enabled = False
            cache.flush(hook=self.hook, reason="stop")
        self.deployer.teardown()
        self.socket.close()

    def _sync_flow_cache(self) -> None:
        """Enable the flow cache iff requested and safe (no custom FPMs —
        their helpers may read per-packet state the cache cannot see)."""
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is None:
            return
        want = self.flow_cache_requested and not self.synthesizer.customs
        if cache.enabled and not want:
            cache.flush(hook=self.hook, reason="disable")
        cache.enabled = want

    # -------------------------------------------------------------- rebuild

    def _on_change(self, msg: NetlinkMsg) -> None:
        if not self.started:
            return
        if msg.type_name in ("CPU_OFFLINE", "CPU_ONLINE"):
            # Hotplug does not change the processing graph (programs are not
            # per-CPU), so no rebuild — but deployed per-CPU map state must
            # be rehomed, and operators need the incident on record.
            self._on_cpu_event(msg)
            return
        if self._reacting:
            # Deployment itself can cause notifications in exotic setups;
            # never recurse — but never *drop* the update either: latch it
            # and rebuild again once the current reaction finishes.
            self._pending = True
            return
        self._run_reaction(msg.type_name)

    def _on_cpu_event(self, msg: NetlinkMsg) -> None:
        cpu = msg.attrs.get("cpu", -1)
        online = msg.attrs.get("num_online", self.kernel.cpus.num_online)
        if msg.type_name == "CPU_OFFLINE":
            self._incident("cpu-offline", f"cpu{cpu} offline, {online} online")
            try:
                target = self.kernel._hotplug_target(cpu)
                moved = self.deployer.drain_cpu(cpu, target)
            except Exception as exc:  # noqa: BLE001 — survive anything
                self._incident("cpu-drain-error", f"{type(exc).__name__}: {exc}")
            else:
                if moved:
                    self._incident(
                        "cpu-map-drain", f"cpu{cpu} -> cpu{target}: {moved} map values rehomed"
                    )
        else:
            self._incident("cpu-online", f"cpu{cpu} online, {online} online")

    def _run_reaction(self, trigger: str, force: bool = False, record: bool = True) -> None:
        """One reaction plus any trailing rebuilds latched while reacting."""
        self._reacting = True
        try:
            self._guarded_react(trigger, force, record)
            rounds = 0
            while self._pending and rounds < 8:  # bounded: a reaction must converge
                self._pending = False
                rounds += 1
                self._guarded_react(trigger, force, record)
        finally:
            self._reacting = False
            self._pending = False

    def _guarded_react(self, trigger: str, force: bool, record: bool) -> None:
        """Rebuild without ever letting an exception reach the caller."""
        try:
            if self.socket.overrun:
                self._resync()
            t0 = time.perf_counter()
            redeployed = self._rebuild(force)
            elapsed = time.perf_counter() - t0
            if record:
                # every notification is evaluated; ones that change the graph
                # also carry the synthesize+deploy time (Table VI measures this)
                self.reactions.append(
                    ReactionRecord(trigger=trigger, seconds=elapsed, redeployed=redeployed or [])
                )
        except Exception as exc:  # noqa: BLE001 — the control plane must survive anything
            self._incident("rebuild-error", f"{type(exc).__name__}: {exc}")
            self._schedule_retry()
            return
        self._after_react()

    def _after_react(self) -> None:
        """Arm or clear the retry timer from the residual degradation."""
        if self.deployer.failures and self._retry_attempts >= GIVE_UP_ATTEMPTS:
            # Backoff exhausted: stop hammering the pipeline and park the
            # persistently-failing interfaces in quarantine (slow path) with
            # a longer hold-off. Attempts are deliberately NOT reset — only
            # an eventual success clears the streak.
            for ifname, failure in list(self.deployer.failures.items()):
                reason = f"gave up after {self._retry_attempts} attempts ({failure.stage}: {failure.error})"
                del self.deployer.failures[ifname]
                self.deployer.quarantine(ifname, reason, GIVE_UP_HOLDOFF_NS)
                self._incident("retry-give-up", reason, ifname)
        if self.deployer.failures:
            self._schedule_retry()
        elif self.deployer.quarantined:
            until = min(q.until_ns for q in self.deployer.quarantined.values())
            self._schedule_retry(at_ns=max(until, self.kernel.clock.now_ns + 1))
        else:
            self._retry_at_ns = None
            self._retry_attempts = 0

    def _schedule_retry(self, at_ns: Optional[int] = None) -> None:
        now = self.kernel.clock.now_ns
        if at_ns is None:
            self._retry_attempts += 1
            delay = min(RETRY_BASE_NS * (2 ** (self._retry_attempts - 1)), RETRY_CAP_NS)
            at_ns = now + delay
        if self._retry_at_ns is None or at_ns < self._retry_at_ns:
            self._retry_at_ns = at_ns

    def tick(self) -> bool:
        """The daemon's timer: call on simulated-clock advance.

        Fires a forced rebuild when the retry backoff is due or the netlink
        socket overran. Returns True when a reaction ran.
        """
        if not self.started or self._reacting:
            return False
        due = self._retry_at_ns is not None and self.kernel.clock.now_ns >= self._retry_at_ns
        if not due and not self.socket.overrun:
            return False
        if due:
            self._retry_at_ns = None
        self._run_reaction("tick", force=True, record=False)
        return True

    def _resync(self) -> None:
        """Full introspection re-dump after lost notifications (ENOBUFS)."""
        self.socket.clear_overrun()
        self.introspection.resync()
        self.resyncs += 1
        self._incident("netlink-overrun-resync", f"socket overruns={self.socket.overruns}")

    def on_watchdog_mismatch(self, ifname: str, detail: str) -> None:
        """Watchdog verdict: contain first (slow path is always correct),
        then schedule resynthesis after the hold-off."""
        self.deployer.quarantine(ifname, detail, QUARANTINE_HOLDOFF_NS)
        self._incident("watchdog-mismatch", detail, ifname)
        self._schedule_retry(at_ns=self.kernel.clock.now_ns + QUARANTINE_HOLDOFF_NS)

    def _incident(self, kind: str, detail: str, ifname: Optional[str] = None) -> None:
        """Record an incident, coalescing flaps.

        A repeat of the same (kind, detail, ifname) within the last
        :data:`INCIDENT_DEDUP_WINDOW` entries bumps that entry's ``count``
        and timestamp instead of appending, so a flapping router or probe
        cannot wash every other incident out of the bounded ring buffer.
        """
        self.incidents_total += 1
        now = self.kernel.clock.now_ns
        window = list(self.incidents)[-INCIDENT_DEDUP_WINDOW:]
        for incident in reversed(window):
            if incident.kind == kind and incident.detail == detail and incident.ifname == ifname:
                incident.count += 1
                incident.at_ns = now
                return
        self.incidents.append(Incident(kind=kind, detail=detail, at_ns=now, ifname=ifname))

    def notify_incident(self, kind: str, detail: str, ifname: Optional[str] = None) -> None:
        """Public incident intake for collaborating subsystems (the fleet's
        health monitor reports ``router-offline``/``router-drain`` here)."""
        self._incident(kind, detail, ifname)

    def _rebuild(self, force: bool = False) -> Optional[List[str]]:
        """Re-derive the graph; deploy deltas. Returns redeployed interface
        names, or None when there was nothing to do."""
        graph = self.topology.build(self.introspection.view, self.target_interfaces)
        unchanged = self.current_graph is not None and graph.signature() == self.current_graph.signature()
        if unchanged and not force and not self.deployer.failures and not self.deployer.quarantined:
            return None
        self.rebuilds += 1
        previous = self.current_graph
        self.current_graph = graph

        redeployed: List[str] = []
        active = set()
        for ifname, iface_graph in sorted(graph.interfaces.items()):
            if iface_graph.empty and not self.synthesizer.customs:
                continue  # nothing configured and no monitoring: pure Linux
            active.add(ifname)
            old = previous.interfaces.get(ifname) if previous is not None else None
            old_json = old.to_json() if old is not None else None
            new_json = iface_graph.to_json()
            entry = self.deployer.deployed.get(ifname)
            if (
                old_json is not None
                and entry is not None
                and entry.current is not None
                and old_json == new_json
                and ifname not in self.deployer.failures
                and ifname not in self.deployer.quarantined
            ):
                continue  # unchanged and healthy
            if self.deployer.in_holdoff(ifname):
                continue  # quarantined: wait out the hold-off on the slow path
            try:
                path = self.synthesizer.synthesize_interface(iface_graph, self.hook)
            except Exception as exc:  # noqa: BLE001 — degrade this interface only
                failure = self.deployer.note_failure(ifname, "synthesize", exc)
                detail = f"{type(exc).__name__}: {exc}"
                if failure.detail and failure.detail.get("code"):
                    detail = f"{detail} [{failure.detail['code']}]"
                self._incident("synthesize-error", detail, ifname)
                if entry is not None and entry.current is not None and old_json != new_json:
                    # Config changed but no current program exists: the
                    # last-good FPM now computes stale answers — withdraw.
                    self.deployer.withdraw(ifname)
                continue
            if path is None:
                continue
            if self.deployer.deploy(path):
                redeployed.append(ifname)
                report = path.opt_report
                if report is not None:
                    # Optimizer outcomes are incidents, not failures: the
                    # interface is serving either way (fail-closed).
                    if report.status == "fallback":
                        self._incident(
                            "optimizer-fallback", report.error or "optimizer failed", ifname
                        )
                    for cex in report.rejected:
                        self._incident("optimizer-reject", str(cex), ifname)
                jit_report = path.jit_report
                if jit_report is not None and jit_report.status == "fallback":
                    # Same contract as the optimizer: the interface serves
                    # under the interpreter, operators get told why.
                    self._incident(
                        "jit-fallback", jit_report.error or "jit compile failed", ifname
                    )
            else:
                failure = self.deployer.failures.get(ifname)
                detail = f"{failure.stage}: {failure.error}" if failure else "unknown"
                if failure and failure.detail and failure.detail.get("code"):
                    detail = f"{detail} [{failure.detail['code']}]"
                self._incident("deploy-error", detail, ifname)
        # withdraw interfaces that no longer need a fast path
        for ifname in list(self.deployer.deployed):
            if ifname not in active and self.deployer.deployed[ifname].current is not None:
                self.deployer.withdraw(ifname)
                redeployed.append(ifname)
        # drop degradation records for interfaces that no longer want one
        for ifname in list(self.deployer.failures):
            if ifname not in active:
                del self.deployer.failures[ifname]
        for ifname in list(self.deployer.quarantined):
            if ifname not in active:
                del self.deployer.quarantined[ifname]
        return redeployed

    # ------------------------------------------------------------- reporting

    def health(self) -> Dict[str, object]:
        """Operator view of the control plane's condition."""
        degraded = {n: f"{f.stage}: {f.error}" for n, f in sorted(self.deployer.failures.items())}
        quarantined = {n: q.reason for n, q in sorted(self.deployer.quarantined.items())}
        return {
            "ok": self.started and not degraded and not quarantined and not self.socket.overrun,
            "degraded": degraded,
            "quarantined": quarantined,
            "retry_at_ns": self._retry_at_ns,
            "retry_attempts": self._retry_attempts,
            "overruns": self.socket.overruns,
            "resyncs": self.resyncs,
            "incidents": len(self.incidents),
            "incidents_total": self.incidents_total,
            "offline_cpus": self.kernel.cpus.offline_cpus(),
            "watchdog": self.watchdog.summary() if self.watchdog is not None else None,
            "migrations": {
                n: r.to_dict() for n, r in sorted(self.deployer.migrations.items())
            },
        }

    def deployed_summary(self) -> Dict[str, str]:
        """ifname → chain of FPMs currently deployed."""
        out: Dict[str, str] = {}
        for ifname, entry in sorted(self.deployer.deployed.items()):
            if entry.current is None:
                out[ifname] = "(slow path)"
            else:
                graph = self.current_graph.interfaces.get(ifname)
                out[ifname] = " -> ".join(n.nf for n in graph.nodes) if graph else "?"
        return out

    def last_reaction_seconds(self) -> Optional[float]:
        return self.reactions[-1].seconds if self.reactions else None

    def metrics(self):
        """The unified metrics registry over this kernel + control plane."""
        from repro.observability.metrics import MetricsRegistry

        return MetricsRegistry(self.kernel, controller=self)

    def dump_fast_path(self, ifname: str) -> Optional[str]:
        """Operator debugging: the synthesized C source plus the verified
        bytecode disassembly currently deployed on an interface."""
        entry = self.deployer.deployed.get(ifname)
        if entry is None or entry.current is None:
            return None
        path = entry.current
        return (
            f"// ===== {ifname} ({self.hook} hook, swap #{entry.swaps}) =====\n"
            f"{path.source.strip()}\n\n"
            f"{path.program.disassemble()}"
        )
