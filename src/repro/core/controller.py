"""The LinuxFP controller daemon.

``Controller.start()`` introspects the kernel, builds the processing graph,
synthesizes the fast paths, and deploys them. Every subsequent netlink
notification re-derives the graph; when its signature changes, the affected
interfaces are re-synthesized and atomically swapped. Users keep using
iproute2/brctl/iptables/Kubernetes — the controller sees the resulting
kernel state changes and reacts (the paper's transparency claim).

Reaction time (Table VI) is measured in *wall-clock* time from notification
arrival to deployment completion, covering graph build + template render +
compile + verify + load + swap — the same span the paper measures.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.capability import CapabilityManager
from repro.core.deployer import Deployer
from repro.core.graph import ProcessingGraph, TopologyManager
from repro.core.introspection import ServiceIntrospection
from repro.core.synthesizer import Synthesizer
from repro.netlink.messages import NetlinkMsg


@dataclass
class ReactionRecord:
    trigger: str  # message type name of the notification
    seconds: float
    redeployed: List[str] = field(default_factory=list)


class Controller:
    """The LinuxFP daemon for one kernel."""

    def __init__(
        self,
        kernel,
        hook: str = "xdp",
        interfaces: Optional[List[str]] = None,
        enable_ipvs: bool = False,
        capabilities: Optional[CapabilityManager] = None,
        custom_fpms: Optional[List] = None,
        flow_cache: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.hook = hook
        if flow_cache is None:
            flow_cache = os.environ.get("LINUXFP_FLOW_CACHE", "").lower() in ("1", "true", "on")
        self.flow_cache_requested = flow_cache
        self.target_interfaces = interfaces
        self.topology = TopologyManager(enable_ipvs=enable_ipvs)
        self.synthesizer = Synthesizer(capabilities, customs=custom_fpms)
        self.deployer = Deployer(kernel, hook=hook)
        self.socket = kernel.bus.open_socket()
        self.introspection = ServiceIntrospection(self.socket)
        self.current_graph: Optional[ProcessingGraph] = None
        self.reactions: List[ReactionRecord] = []
        self.rebuilds = 0
        self.started = False
        self._reacting = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> ProcessingGraph:
        """Initial introspection + full deployment; begins watching changes."""
        view = self.introspection.start()
        self.introspection.add_listener(self._on_change)
        self.started = True
        self._rebuild()
        self._sync_flow_cache()
        return self.current_graph

    def add_custom_fpm(self, custom) -> None:
        """Inject a custom module (monitoring etc.) and resynthesize now."""
        self.synthesizer.customs.append(custom)
        self._sync_flow_cache()  # custom FPMs may carry per-packet state
        if self.started:
            self.current_graph = None  # force resynthesis of every interface
            self._rebuild()

    def stop(self) -> None:
        """Withdraw every fast path and stop watching."""
        self.started = False
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is not None and cache.enabled:
            cache.enabled = False
            cache.flush(hook=self.hook, reason="stop")
        self.deployer.teardown()
        self.socket.close()

    def _sync_flow_cache(self) -> None:
        """Enable the flow cache iff requested and safe (no custom FPMs —
        their helpers may read per-packet state the cache cannot see)."""
        cache = getattr(self.kernel, "flow_cache", None)
        if cache is None:
            return
        want = self.flow_cache_requested and not self.synthesizer.customs
        if cache.enabled and not want:
            cache.flush(hook=self.hook, reason="disable")
        cache.enabled = want

    # -------------------------------------------------------------- rebuild

    def _on_change(self, msg: NetlinkMsg) -> None:
        if not self.started or self._reacting:
            # _reacting guard: deployment itself can cause notifications in
            # exotic setups; never recurse.
            return
        self._reacting = True
        try:
            t0 = time.perf_counter()
            redeployed = self._rebuild()
            elapsed = time.perf_counter() - t0
            # every notification is evaluated; ones that change the graph
            # also carry the synthesize+deploy time (Table VI measures this)
            self.reactions.append(
                ReactionRecord(trigger=msg.type_name, seconds=elapsed, redeployed=redeployed or [])
            )
        finally:
            self._reacting = False

    def _rebuild(self) -> Optional[List[str]]:
        """Re-derive the graph; deploy deltas. Returns redeployed interface
        names, or None when the graph was unchanged."""
        graph = self.topology.build(self.introspection.view, self.target_interfaces)
        if self.current_graph is not None and graph.signature() == self.current_graph.signature():
            return None
        self.rebuilds += 1
        previous = self.current_graph
        self.current_graph = graph

        paths = self.synthesizer.synthesize(graph, self.hook)
        redeployed: List[str] = []
        # deploy new/changed interfaces
        for ifname, path in paths.items():
            if previous is not None:
                old = previous.interfaces.get(ifname)
                new = graph.interfaces.get(ifname)
                deployed = self.deployer.deployed.get(ifname)
                if (
                    old is not None
                    and deployed is not None
                    and deployed.current is not None
                    and old.to_json() == new.to_json()
                ):
                    continue  # unchanged
            self.deployer.deploy(path)
            redeployed.append(ifname)
        # withdraw interfaces that no longer need a fast path
        active = set(paths)
        for ifname in list(self.deployer.deployed):
            if ifname not in active and self.deployer.deployed[ifname].current is not None:
                self.deployer.withdraw(ifname)
                redeployed.append(ifname)
        return redeployed

    # ------------------------------------------------------------- reporting

    def deployed_summary(self) -> Dict[str, str]:
        """ifname → chain of FPMs currently deployed."""
        out: Dict[str, str] = {}
        for ifname, entry in sorted(self.deployer.deployed.items()):
            if entry.current is None:
                out[ifname] = "(slow path)"
            else:
                graph = self.current_graph.interfaces.get(ifname)
                out[ifname] = " -> ".join(n.nf for n in graph.nodes) if graph else "?"
        return out

    def last_reaction_seconds(self) -> Optional[float]:
        return self.reactions[-1].seconds if self.reactions else None

    def dump_fast_path(self, ifname: str) -> Optional[str]:
        """Operator debugging: the synthesized C source plus the verified
        bytecode disassembly currently deployed on an interface."""
        entry = self.deployer.deployed.get(ifname)
        if entry is None or entry.current is None:
            return None
        path = entry.current
        return (
            f"// ===== {ifname} ({self.hook} hook, swap #{entry.swaps}) =====\n"
            f"{path.source.strip()}\n\n"
            f"{path.program.disassemble()}"
        )
