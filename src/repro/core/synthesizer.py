"""The Fast Path Synthesizer (paper §IV-B3, §V).

Input: the processing graph. Output: one compiled, verified
:class:`~repro.ebpf.program.Program` per interface, built by rendering the
FPM template library into C and compiling it with minic. The Capability
Manager prunes FPMs the kernel cannot host; if an interface's graph prunes
to nothing, no program is synthesized (Linux handles everything, which is
always correct).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.capability import CapabilityManager
from repro.core.fpm.library import render_fast_path
from repro.core.graph import InterfaceGraph, ProcessingGraph
from repro.ebpf.analysis.lint import lint_program
from repro.ebpf.analysis.opt import OptimizationReport, optimize_program
from repro.ebpf.jit import JitReport, compile_program
from repro.ebpf.jit.engine import jit_env_default
from repro.ebpf.maps import BpfMap, HashMap, LruHashMap, PercpuLruHashMap
from repro.ebpf.minic import compile_c
from repro.ebpf.program import Program
from repro.ebpf.verifier import verify


@dataclass
class SynthesizedPath:
    ifname: str
    program: Program
    source: str
    pruned_nfs: List[str]
    #: lint diagnostics for the verified program (dead code, redundant
    #: checks, unused maps). Library templates synthesize clean; a finding
    #: here means a woven-in custom FPM carries code it does not need.
    lint_findings: List[str] = field(default_factory=list)
    #: (custom, clones) for unpinned customs: the maps this synthesis
    #: compiled against. The Deployer rebinds ``custom.maps`` to the clones
    #: once this path is serving, so userspace reads live state.
    custom_rebinds: List[tuple] = field(default_factory=list)
    #: What the superoptimizer did (None when optimization was not enabled).
    #: ``status == "fallback"`` means the pass failed and ``program`` is the
    #: unoptimized bytecode — fail-closed, the interface still deploys.
    opt_report: Optional[OptimizationReport] = None
    #: What the bytecode→Python JIT said about this program (None when the
    #: JIT was not enabled). ``status == "fallback"`` means the program will
    #: run under the interpreter — fail-closed, the interface still deploys.
    jit_report: Optional[JitReport] = None

    def rebind_custom_maps(self) -> None:
        for custom, clones in self.custom_rebinds:
            custom.maps = dict(clones)


class Synthesizer:
    def __init__(
        self,
        capabilities: Optional[CapabilityManager] = None,
        customs: Optional[list] = None,
        num_cpus: int = 1,
        optimize: Optional[bool] = None,
        jit: Optional[bool] = None,
    ) -> None:
        self.capabilities = capabilities or CapabilityManager.linuxfp()
        self.customs = list(customs or [])  # CustomFpm modules to weave in
        self.num_cpus = max(1, num_cpus)  # target kernel's data-plane CPUs
        if optimize is None:
            optimize = os.environ.get("LINUXFP_OPT", "").lower() in ("1", "true", "on")
        #: Opt-in superoptimization: equivalence-checked rewrites applied
        #: after verification, re-verified, fail-closed to the unoptimized
        #: bytecode (see :mod:`repro.ebpf.analysis.opt`).
        self.optimize = optimize
        if jit is None:
            jit = jit_env_default()
        #: Opt-in bytecode→Python JIT: compile-checked here so deploys
        #: surface a ``jit-fallback`` incident immediately instead of on
        #: the first packet (the engine itself also fails closed).
        self.jit = jit

    def _prepare_custom_maps(self) -> tuple:
        """The map set a synthesis compiles against.

        Flow-keyed maps are upgraded to LRU semantics first (in place on the
        custom, so the choice is stable across redeploys); on a multi-core
        kernel they are upgraded further to the *per-CPU* LRU flavour —
        per-flow counters are written on every packet, and RPS steering
        already confines each flow to one CPU, so per-CPU slots remove the
        only shared-map write on the fast path (the cross-CPU contention
        charge). Pinned customs contribute their own map objects — every
        synthesized program shares them. Unpinned customs get fresh clones
        per synthesis; the returned rebind list lets the Deployer point the
        custom at the clones that actually went live (after migrating the
        old program's state in).
        """
        custom_maps: Dict[str, BpfMap] = {}
        rebinds: List[tuple] = []
        for custom in self.customs:
            for name in getattr(custom, "flow_keyed", ()):
                m = custom.maps.get(name)
                if isinstance(m, HashMap) and not isinstance(m, LruHashMap):
                    m = custom.maps[name] = LruHashMap.from_hash(m)
                if (
                    self.num_cpus > 1
                    and isinstance(m, LruHashMap)
                    and not isinstance(m, PercpuLruHashMap)
                ):
                    custom.maps[name] = PercpuLruHashMap.from_lru(m, self.num_cpus)
            if getattr(custom, "pin_maps", True):
                custom_maps.update(custom.maps)
            else:
                clones = {name: m.clone_empty() for name, m in custom.maps.items()}
                custom_maps.update(clones)
                rebinds.append((custom, clones))
        return custom_maps, rebinds

    def synthesize_interface(self, iface_graph: InterfaceGraph, hook: str) -> Optional[SynthesizedPath]:
        nodes: Dict[str, dict] = {}
        pruned: List[str] = []
        for node in iface_graph.nodes:
            if self.capabilities.supports(node.nf):
                nodes[node.nf] = {"conf": node.conf, "next_nf": node.next_nf}
            else:
                pruned.append(node.nf)
        # Chaining integrity: if the bridge FPM was pruned, everything behind
        # it on the L2 path is unreachable from the fast path; if a filter
        # was pruned but routing kept, forwarding without filtering would be
        # INCORRECT — prune the router too (slow path keeps semantics).
        if pruned:
            if "bridge" in pruned:
                nodes.clear()
            if "filter" in pruned:
                nodes.pop("router", None)
                nodes.pop("ipvs", None)
        if not nodes and not self.customs:
            return None
        source = render_fast_path(iface_graph.ifname, hook, nodes, customs=self.customs)
        custom_maps, rebinds = self._prepare_custom_maps()
        program = compile_c(
            source, name=f"linuxfp_{iface_graph.ifname}_{hook}", hook=hook, maps=custom_maps
        )
        verify(program)
        opt_report = None
        if self.optimize:
            program, opt_report = optimize_program(program)
        jit_report = None
        if self.jit:
            __, jit_report = compile_program(program)
        return SynthesizedPath(
            ifname=iface_graph.ifname,
            program=program,
            source=source,
            pruned_nfs=pruned,
            lint_findings=[str(f) for f in lint_program(program)],
            custom_rebinds=rebinds,
            opt_report=opt_report,
            jit_report=jit_report,
        )

    def synthesize(self, graph: ProcessingGraph, hook: str) -> Dict[str, SynthesizedPath]:
        out: Dict[str, SynthesizedPath] = {}
        for ifname, iface_graph in sorted(graph.interfaces.items()):
            if iface_graph.empty and not self.customs:
                continue  # nothing configured and no monitoring: pure Linux
            path = self.synthesize_interface(iface_graph, hook)
            if path is not None:
                out[ifname] = path
        return out
