"""FPM templates and their rendering.

Verdict constants are hook-specific (XDP_PASS=2/XDP_DROP=1 at the XDP hook;
TC_ACT_OK=0/TC_ACT_SHOT=2 at TC) and substituted at render time, so one
template library serves both hooks (Table VII compares them).

IP-header offsets are relative to ``l3`` (the L3 header start): with VLAN
filtering disabled the offsets are compile-time constants and tagged frames
fall back to the slow path; with it enabled, tag parsing is synthesized in
and offsets become dynamic — exactly the specialization Fig 3 illustrates.

The CONTINUE sentinel (999) threads ``next_nf`` chaining through inlined
FPM functions: a value != 999 is a final verdict, 999 means "next FPM".
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.templates import render

CONTINUE = 999

# --- individual FPM bodies (inlined static functions = Fig 10's "function
# call" chaining) ---

ROUTER_FPM = """
static u64 fpm_router(u8* pkt, u64 len, u64 l3) {
    // LinuxFP router FPM: FIB lookup + rewrite via bpf_fib_lookup; ARP,
    // fragmentation and ICMP stay in the Linux slow path (Table I).
    u64 ttl = ld8(pkt, l3 + 8);
    if (ttl <= 1) { return {{ PASS }}; }            // ICMP time-exceeded: slow path
    u64 frag = ld16(pkt, l3 + 6) & 0x3fff;
    if (frag != 0) { return {{ PASS }}; }           // fragments: slow path
    u64 dst = ld32(pkt, l3 + 16);
    u64 fib[2];
    if (fib_lookup(dst, fib) != 0) { return {{ PASS }}; }  // miss/no-neigh
    st48(pkt, 0, ld48(fib, 10));                    // dmac = next hop
    st48(pkt, 6, ld48(fib, 4));                     // smac = egress port
    st8(pkt, l3 + 8, ttl - 1);
    u64 csum = ld16(pkt, l3 + 10) + 0x100;          // RFC 1624 incremental
    csum = (csum & 0xffff) + (csum >> 16);
    st16(pkt, l3 + 10, csum);
    return redirect(ld32(fib, 0), 0);
}
"""

FILTER_FPM = """
static u64 fpm_filter(u8* pkt, u64 len, u64 ifindex) {
    // LinuxFP filter FPM: evaluates the kernel's own FORWARD chain via the
    // bpf_ipt_lookup helper (ipset rules included). Unsupported rule
    // features punt to the slow path.
    u64 v = ipt_lookup(1, pkt, len, ifindex, 0);
    if (v == 1) { return {{ DROP }}; }
    if (v == 2) { return {{ PASS }}; }
    return {{ CONTINUE }};
}
"""

IPVS_FPM = """
static u64 fpm_ipvs(u8* pkt, u64 len, u64 l3) {
    // LinuxFP ipvs FPM (prototype): fast-path DNAT for flows already
    // scheduled and pinned in conntrack; first packets go to the slow path
    // where the scheduler runs (Table I).
    if (len < l3 + 24) { return {{ CONTINUE }}; }    // need L4 ports in view
    u64 proto = ld8(pkt, l3 + 9);
    if (proto != 6) { if (proto != 17) { return {{ CONTINUE }}; } }
    u64 dst = ld32(pkt, l3 + 16);
    u64 ports = ld32(pkt, l3 + 20);
    u64 is_vip = 0;
{% for svc in ipvs_services %}
    if (dst == {{ svc['vip_u32'] }}) { if ((ports & 0xffff) == {{ svc['port'] }}) { is_vip = 1; } }
{% endfor %}
    if (is_vip == 0) { return {{ CONTINUE }}; }
    u64 src = ld32(pkt, l3 + 12);
    u64 ct[1];
    if (conntrack_lookup(src, dst, proto, ports, ct) == 0) {
        return {{ PASS }};                           // unscheduled flow: slow path
    }
    st32(pkt, l3 + 16, ld32(ct, 0));                 // DNAT: new dst ip
    st16(pkt, l3 + 22, ld16(ct, 4));                 // DNAT: new dst port
    u64 csum = ld16(pkt, l3 + 10) + 0x100;
    csum = (csum & 0xffff) + (csum >> 16);
    st16(pkt, l3 + 10, csum);
    return {{ CONTINUE }};                           // router FPM forwards it
}
"""

BRIDGE_SNIPPET = """
    // LinuxFP bridge FPM: FDB lookup/forwarding via bpf_fdb_lookup; MAC
    // learning, aging, flooding and STP remain in the slow path (Table I).
    u64 dmac = ld48(pkt, 0);
    u64 smac = ld48(pkt, 6);
    if (fdb_lookup({{ bridge_ifindex }}, ifindex, vid, smac, 1) == 0) {
        return {{ PASS }};                           // unlearned/moved source
    }
    if (((dmac >> 40) & 1) == 1) { return {{ PASS }}; }  // bcast/mcast: flood in slow path
{% if bridge_mac_u48 is not None %}
    if (dmac == {{ bridge_mac_u48 }}) {
        goto_l3 = 1;                                 // to the bridge itself: L3 path
    }
    if (goto_l3 == 0) {
        u64 out_port = fdb_lookup({{ bridge_ifindex }}, ifindex, vid, dmac, 0);
        if (out_port == 0) { return {{ PASS }}; }    // FDB miss et al.: slow path
        return redirect(out_port, 0);
    }
{% else %}
    // no bridge MAC to divert to L3: every learned frame is forwarded here
    u64 out_port = fdb_lookup({{ bridge_ifindex }}, ifindex, vid, dmac, 0);
    if (out_port == 0) { return {{ PASS }}; }        // FDB miss et al.: slow path
    return redirect(out_port, 0);
{% endif %}
"""

MAIN_TEMPLATE = """
// synthesized by LinuxFP for {{ ifname }} ({{ hook }} hook)
// graph: {{ graph_summary }}
{% for decl in custom_decls %}{{ decl }}
{% endfor %}
{% if has_router %}{{ router_fpm }}{% endif %}
{% if has_filter %}{{ filter_fpm }}{% endif %}
{% if has_ipvs %}{{ ipvs_fpm }}{% endif %}
{% for fn in custom_fns %}{{ fn }}
{% endfor %}
u32 main(u8* pkt, u64 len, u64 ifindex) {
    if (len < 34) { return {{ PASS }}; }
    u64 ethertype = ld16(pkt, 12);
    u64 l3 = 14;
    u64 vid = 1;
{% if vlan_enabled %}
    if (ethertype == 0x8100) {
        vid = ld16(pkt, 14) & 0xfff;
        ethertype = ld16(pkt, 16);
        l3 = 18;
        if (len < 38) { return {{ PASS }}; }
    }
{% else %}
    if (ethertype == 0x8100) { return {{ PASS }}; }  // VLANs not configured
{% endif %}
{% for name in custom_ingress %}
    u64 cv_{{ name }} = fpm_{{ name }}(pkt, len, ifindex);
    if (cv_{{ name }} != {{ CONTINUE }}) { return cv_{{ name }}; }
{% endfor %}
{% if has_bridge %}
    u64 goto_l3 = 0;
{{ bridge_snippet }}
{% if not bridge_chains_l3 %}
    return {{ PASS }};
{% endif %}
{% endif %}
    if (ethertype != 0x0800) { return {{ PASS }}; }  // ARP etc.: slow path
{% if has_ipvs %}
    u64 lv = fpm_ipvs(pkt, len, l3);
    if (lv != {{ CONTINUE }}) { return lv; }
{% endif %}
{% if has_filter %}
    u64 fv = fpm_filter(pkt, len, ifindex);
    if (fv != {{ CONTINUE }}) { return fv; }
{% endif %}
{% for name in custom_pre_forward %}
    u64 pv_{{ name }} = fpm_{{ name }}(pkt, len, ifindex);
    if (pv_{{ name }} != {{ CONTINUE }}) { return pv_{{ name }}; }
{% endfor %}
{% if has_router %}
    return fpm_router(pkt, len, l3);
{% else %}
    return {{ PASS }};
{% endif %}
}
"""

DISPATCHER_TEMPLATE = """
// LinuxFP dispatcher for {{ ifname }}: a stable root program whose only job
// is to tail-call the current fast path. Swapping the prog-array slot is an
// atomic pointer update, so regenerating the data path never drops packets
// (paper Fig 4).
extern map jmp;
u32 main(u8* pkt, u64 len, u64 ifindex) {
    tail_call(pkt, jmp, 0);
    return {{ PASS }};   // empty slot: everything goes to Linux
}
"""

VERDICTS = {
    "xdp": {"PASS": 2, "DROP": 1},
    "tc": {"PASS": 0, "DROP": 2},
}


def render_fast_path(
    ifname: str,
    hook: str,
    nodes: Dict[str, Dict[str, Any]],
    customs: list = None,
) -> str:
    """Render the complete fast-path C source for one interface.

    ``nodes`` maps nf name → conf dict (the interface's processing graph).
    ``customs`` is a list of :class:`repro.core.custom.CustomFpm` to weave
    into the pipeline (the paper's future-work monitoring modules).
    """
    verdicts = VERDICTS[hook]
    customs = customs or []
    bridge_conf = nodes.get("bridge")
    filter_conf = nodes.get("filter")
    router_conf = nodes.get("router")
    ipvs_conf = nodes.get("ipvs")

    bridge_chains_l3 = bool(bridge_conf and bridge_conf.get("next_nf"))
    has_router = router_conf is not None or bridge_chains_l3
    vlan_enabled = bool(bridge_conf and bridge_conf["conf"].get("VLAN_enabled"))

    ctx: Dict[str, Any] = {
        "ifname": ifname,
        "hook": hook,
        "PASS": verdicts["PASS"],
        "DROP": verdicts["DROP"],
        "CONTINUE": CONTINUE,
        "graph_summary": " -> ".join(nodes.keys()) or "(empty)",
        "vlan_enabled": vlan_enabled,
        "has_bridge": bridge_conf is not None,
        "has_filter": filter_conf is not None,
        "has_router": has_router,
        "has_ipvs": ipvs_conf is not None,
        "bridge_chains_l3": bridge_chains_l3,
        "custom_decls": [decl for custom in customs for decl in custom.decls],
        "custom_fns": [
            render(custom.fn_source, PASS=verdicts["PASS"], DROP=verdicts["DROP"], CONTINUE=CONTINUE)
            for custom in customs
        ],
        "custom_ingress": [c.name for c in customs if c.point == "ingress"],
        "custom_pre_forward": [c.name for c in customs if c.point == "pre_forward"],
    }

    if bridge_conf is not None:
        conf = bridge_conf["conf"]
        mac_text = conf.get("bridge_mac")
        mac_u48 = None
        if bridge_chains_l3 and mac_text:
            mac_u48 = int(mac_text.replace(":", ""), 16)
        ctx["bridge_snippet"] = render(
            BRIDGE_SNIPPET,
            bridge_ifindex=conf["bridge_ifindex"],
            bridge_mac_u48=mac_u48,
            PASS=verdicts["PASS"],
        )
    if has_router:
        ctx["router_fpm"] = render(ROUTER_FPM, PASS=verdicts["PASS"])
    if filter_conf is not None:
        ctx["filter_fpm"] = render(FILTER_FPM, PASS=verdicts["PASS"], DROP=verdicts["DROP"], CONTINUE=CONTINUE)
    if ipvs_conf is not None:
        from repro.netsim.addresses import IPv4Addr

        services = [
            {"vip_u32": IPv4Addr.parse(s["vip"]).value, "port": s["port"]}
            for s in ipvs_conf["conf"].get("services", [])
        ]
        ctx["ipvs_fpm"] = render(
            IPVS_FPM, PASS=verdicts["PASS"], CONTINUE=CONTINUE, ipvs_services=services
        )

    return render(MAIN_TEMPLATE, **ctx)


def render_dispatcher(ifname: str, hook: str) -> str:
    return render(DISPATCHER_TEMPLATE, ifname=ifname, PASS=VERDICTS[hook]["PASS"])
