"""The FPM template library.

Each template renders to minic C (paper: Jinja → C → clang → eBPF; here:
:mod:`repro.core.templates` → minic → bytecode). Templates are specialized
by the processing graph's conf sub-keys, so disabled features contribute
**zero** instructions to the synthesized program — the paper's minimality
principle ("branching inside the fast path can be reduced to a minimum as
this logic is not included if not required", §IV-B1).
"""

from repro.core.fpm.library import (
    DISPATCHER_TEMPLATE,
    MAIN_TEMPLATE,
    render_dispatcher,
    render_fast_path,
)

__all__ = ["MAIN_TEMPLATE", "DISPATCHER_TEMPLATE", "render_fast_path", "render_dispatcher"]
