"""Custom FPM injection (the paper's future-work extension, §VIII).

The paper plans to "support the insertion of custom functionality, e.g.,
for monitoring modules … inject custom eBPF code at different points in
the XDP processing pipeline". This module implements that: a
:class:`CustomFpm` carries a minic function plus the maps it uses, and the
controller weaves it into every synthesized fast path at a chosen point:

- ``ingress`` — right after parsing, before any configured FPM (sees every
  frame the fast path sees);
- ``pre_forward`` — after filtering, immediately before the router FPM
  (sees only traffic about to be forwarded).

The function must be named ``fpm_<name>``, take ``(u8* pkt, u64 len,
u64 ifindex)``, and return ``{{ CONTINUE }}`` to keep the pipeline going or
a ``{{ PASS }}``/``{{ DROP }}`` verdict to end it. Maps declared in
``decls`` (``extern map <mapname>;``) are shared with userspace, which is
how a monitoring module exports its counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ebpf.maps import BpfMap

VALID_POINTS = ("ingress", "pre_forward")
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class CustomFpmError(ValueError):
    """Malformed custom FPM specification."""


@dataclass
class CustomFpm:
    """A user-supplied pipeline module."""

    name: str
    fn_source: str  # minic `static u64 fpm_<name>(...) { ... }` (template)
    point: str = "ingress"
    maps: Dict[str, BpfMap] = field(default_factory=dict)
    #: When True (the default), every synthesized program shares these map
    #: *objects* — state trivially survives redeploys, like a bpffs-pinned
    #: map. When False, each synthesis gets fresh clones and the Deployer
    #: live-migrates compatible state from the old program's maps.
    pin_maps: bool = True
    #: Names of maps keyed by flow identity. Flow arrival is unbounded, so
    #: the synthesizer upgrades these from plain hash to LRU-hash semantics
    #: (evict-oldest instead of wedging at ``max_entries``).
    flow_keyed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise CustomFpmError(f"bad custom FPM name {self.name!r}")
        if self.point not in VALID_POINTS:
            raise CustomFpmError(f"bad injection point {self.point!r}; use one of {VALID_POINTS}")
        if f"fpm_{self.name}" not in self.fn_source:
            raise CustomFpmError(f"fn_source must define fpm_{self.name}(...)")
        for map_name in self.flow_keyed:
            if map_name not in self.maps:
                raise CustomFpmError(f"flow_keyed names unknown map {map_name!r}")

    @property
    def decls(self) -> List[str]:
        return [f"extern map {map_name};" for map_name in sorted(self.maps)]


PROTO_COUNTER_TEMPLATE = """
static u64 fpm_{name}(u8* pkt, u64 len, u64 ifindex) {{
    // monitoring module: per-protocol packet counters in a shared map
    u64 proto = 0;
    if (ld16(pkt, 12) == 0x0800) {{ proto = ld8(pkt, 23); }}
    u64 key[1];
    st64(key, 0, 0);
    st8(key, 3, proto);
    u64 cnt[1];
    st64(cnt, 0, 0);
    map_read({map_name}, key, cnt);
    st64(cnt, 0, ld64(cnt, 0) + 1);
    map_update({map_name}, key, cnt);
    return {{{{ CONTINUE }}}};
}}
"""


def make_protocol_counter(name: str = "protomon") -> CustomFpm:
    """A ready-made monitoring FPM: counts packets per IP protocol.

    Counters land in a hash map readable from userspace — the AF_XDP-style
    monitoring use case of [18] in the paper, minus the userspace transport.
    """
    from repro.ebpf.maps import HashMap

    map_name = f"{name}_counters"
    counters = HashMap(map_name, key_size=4, value_size=8, max_entries=256)
    return CustomFpm(
        name=name,
        fn_source=PROTO_COUNTER_TEMPLATE.format(name=name, map_name=map_name),
        point="ingress",
        maps={map_name: counters},
    )


def read_protocol_counter(custom: CustomFpm, proto: int) -> int:
    """Userspace side: read one protocol's packet count."""
    counters = next(iter(custom.maps.values()))
    key = bytes([0, 0, 0, proto & 0xFF])
    value = counters.lookup(key)
    return int.from_bytes(value, "big") if value else 0


FLOW_COUNTER_TEMPLATE = """
static u64 fpm_{name}(u8* pkt, u64 len, u64 ifindex) {{
    // monitoring module: per-flow packet counters keyed by 4-tuple
    if (len < 38) {{ return {{{{ CONTINUE }}}}; }}
    if (ld16(pkt, 12) != 0x0800) {{ return {{{{ CONTINUE }}}}; }}
    u64 proto = ld8(pkt, 23);
    if (proto != 6) {{
        if (proto != 17) {{ return {{{{ CONTINUE }}}}; }}
    }}
    u64 key[2];
    st32(key, 0, ld32(pkt, 26));
    st32(key, 4, ld32(pkt, 30));
    st16(key, 8, ld16(pkt, 34));
    st16(key, 10, ld16(pkt, 36));
    u64 cnt[1];
    st64(cnt, 0, 0);
    map_read({map_name}, key, cnt);
    st64(cnt, 0, ld64(cnt, 0) + 1);
    map_update({map_name}, key, cnt);
    return {{{{ CONTINUE }}}};
}}
"""


def make_flow_counter(name: str = "flowmon", max_flows: int = 1024, pin_maps: bool = True) -> CustomFpm:
    """A monitoring FPM counting packets per TCP/UDP flow.

    The counter map is *flow-keyed* (src, dst, sport, dport — 12 bytes):
    flows arrive without bound, so the module declares it in ``flow_keyed``
    and the synthesizer upgrades the plain hash map to LRU semantics. With
    ``pin_maps=False`` each redeploy gets fresh maps and relies on the
    Deployer's live state migration instead of sharing.
    """
    from repro.ebpf.maps import HashMap

    map_name = f"{name}_flows"
    flows = HashMap(map_name, key_size=12, value_size=8, max_entries=max_flows)
    return CustomFpm(
        name=name,
        fn_source=FLOW_COUNTER_TEMPLATE.format(name=name, map_name=map_name),
        point="ingress",
        maps={map_name: flows},
        pin_maps=pin_maps,
        flow_keyed=(map_name,),
    )


def flow_counter_key(src, dst, sport: int, dport: int) -> bytes:
    """The map key ``fpm_flowmon`` builds for a flow (network byte order)."""
    return (
        src.to_bytes() + dst.to_bytes()
        + (sport & 0xFFFF).to_bytes(2, "big") + (dport & 0xFFFF).to_bytes(2, "big")
    )


def read_flow_counter(custom: CustomFpm, src, dst, sport: int, dport: int) -> int:
    """Userspace side: read one flow's packet count."""
    flows = next(iter(custom.maps.values()))
    value = flows.lookup(flow_counter_key(src, dst, sport, dport))
    return int.from_bytes(value, "big") if value else 0
