"""``python -m repro``: a 10-second self-demonstration.

Builds the paper's virtual-router testbed, measures Linux, starts the
LinuxFP controller, measures again, and prints the transparently obtained
speedup — the smallest possible end-to-end proof that the reproduction is
alive. For the full evaluation run ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys

from repro import Controller, LineTopology, __paper__, __version__
from repro.measure import Pktgen
from repro.tools import ip, iptables, sysctl


def main() -> int:
    print(f"repro {__version__} — reproduction of: {__paper__}\n")

    topo = LineTopology(dut_forwarding=False)
    sysctl(topo.dut, "-w net.ipv4.ip_forward=1")
    for i in range(50):
        ip(topo.dut, f"route add 10.{100 + i}.0.0/16 via 10.0.2.2")
    topo.prewarm_neighbors()

    linux = Pktgen(topo).throughput(cores=1, packets=1000)
    print(f"  Linux slow path          : {linux.mpps:6.3f} Mpps")

    controller = Controller(topo.dut, hook="xdp")
    controller.start()
    accelerated = Pktgen(topo).throughput(cores=1, packets=1000)
    print(f"  LinuxFP fast path        : {accelerated.mpps:6.3f} Mpps "
          f"({accelerated.pps / linux.pps:.2f}x, paper: 1.77x)")

    iptables(topo.dut, "-A FORWARD -s 172.16.0.0/24 -j DROP")
    print(f"  after iptables command   : {controller.deployed_summary()['eth0']} "
          f"(reacted in {controller.last_reaction_seconds() * 1e3:.1f} ms)")
    gateway = Pktgen(topo).throughput(cores=1, packets=1000)
    print(f"  gateway fast path        : {gateway.mpps:6.3f} Mpps")

    print("\nEverything configured with standard tools; LinuxFP watched netlink.")
    print("Full evaluation: pytest benchmarks/ --benchmark-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
