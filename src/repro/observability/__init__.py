"""Observability layer: drop reasons, packet tracing, latency histograms,
and the unified metrics registry (paper §IV-C counters / Fig 1 / Table VI
artifacts, regenerable via ``python -m repro.tools.fpmtool``)."""

from repro.observability.drop_reasons import (
    DropReason,
    UnknownDropReason,
    all_reasons,
    drop_reason,
    reason_names,
    register_drop_reason,
    scan_drop_sites,
    self_check,
)
from repro.observability.histogram import HistogramSet, Log2Histogram
from repro.observability.metrics import MetricsRegistry
from repro.observability.monitor import DropMonitor, Observability
from repro.observability.tracer import (
    PacketTrace,
    PacketTracer,
    TraceFilter,
    TraceFilterError,
    describe_packet,
)

__all__ = [
    "DropReason",
    "UnknownDropReason",
    "all_reasons",
    "drop_reason",
    "reason_names",
    "register_drop_reason",
    "scan_drop_sites",
    "self_check",
    "HistogramSet",
    "Log2Histogram",
    "MetricsRegistry",
    "DropMonitor",
    "Observability",
    "PacketTrace",
    "PacketTracer",
    "TraceFilter",
    "TraceFilterError",
    "describe_packet",
]
