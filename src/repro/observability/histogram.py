"""Power-of-two latency histograms (bpftrace ``hist()``-style).

Values are simulated nanoseconds. Bucket ``k`` (k >= 1) covers
``[2^(k-1), 2^k)``; bucket 0 holds zero/negative values. Rendering matches
the familiar bpftrace ASCII layout so per-stage and per-FPM latency
distributions read like production tracing output.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_MAX_BUCKETS = 64


def _fmt_pow2(value: int) -> str:
    """1024 -> ``1K``, 2097152 -> ``2M`` — bpftrace's bucket labels."""
    for threshold, suffix in ((1 << 30, "G"), (1 << 20, "M"), (1 << 10, "K")):
        if value >= threshold:
            return f"{value // threshold}{suffix}"
    return str(value)


class Log2Histogram:
    """A fixed-size log2 bucket array with count/sum tracking."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: List[int] = [0] * _MAX_BUCKETS
        self.count = 0
        self.total = 0

    def record(self, value: int) -> None:
        value = int(value)
        index = 0 if value <= 0 else min(value.bit_length(), _MAX_BUCKETS - 1)
        self.buckets[index] += 1
        self.count += 1
        self.total += max(0, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def rows(self) -> List[Tuple[str, int]]:
        """(interval label, count) rows spanning the occupied bucket range."""
        occupied = [i for i, n in enumerate(self.buckets) if n]
        if not occupied:
            return []
        rows: List[Tuple[str, int]] = []
        for i in range(occupied[0], occupied[-1] + 1):
            if i == 0:
                label = "(..., 0]"
            else:
                label = f"[{_fmt_pow2(1 << (i - 1))}, {_fmt_pow2(1 << i)})"
            rows.append((label, self.buckets[i]))
        return rows

    def render(self, width: int = 40) -> List[str]:
        """bpftrace-style ascii rows: ``[1K, 2K)  123 |@@@@@...|``."""
        rows = self.rows()
        if not rows:
            return []
        peak = max(n for _, n in rows)
        lines = []
        for label, n in rows:
            bar = "@" * int(round(width * n / peak)) if n else ""
            lines.append(f"{label:<14}{n:>8} |{bar:<{width}}|")
        return lines

    def prom_buckets(self) -> List[Tuple[str, int]]:
        """Cumulative (le, count) pairs for Prometheus exposition."""
        out: List[Tuple[str, int]] = []
        running = 0
        occupied = [i for i, n in enumerate(self.buckets) if n]
        top = occupied[-1] if occupied else 0
        for i in range(top + 1):
            running += self.buckets[i]
            le = "0" if i == 0 else str(1 << i)
            out.append((le, running))
        out.append(("+Inf", self.count))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {"count": self.count, "sum": self.total, "buckets": dict(self.rows())}


class HistogramSet:
    """A labelled family of histograms (per stage, per FPM, …)."""

    def __init__(self) -> None:
        self.hists: Dict[str, Log2Histogram] = {}

    def record(self, name: str, value: int) -> None:
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Log2Histogram()
        hist.record(value)

    def __len__(self) -> int:
        return len(self.hists)

    def __getitem__(self, name: str) -> Log2Histogram:
        return self.hists[name]

    def __contains__(self, name: str) -> bool:
        return name in self.hists

    def names(self) -> List[str]:
        return sorted(self.hists)

    def as_dict(self) -> Dict[str, object]:
        return {name: hist.as_dict() for name, hist in sorted(self.hists.items())}

    def render(self, width: int = 40) -> List[str]:
        lines: List[str] = []
        for name in self.names():
            hist = self.hists[name]
            lines.append(f"{name}: n={hist.count} mean={hist.mean():.0f}ns")
            lines.extend(f"  {row}" for row in hist.render(width))
        return lines
