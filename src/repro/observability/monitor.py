"""Per-device / per-subsystem drop accounting plus the kernel-wide
observability container that ties the registry, tracer, and histograms
together.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.observability.drop_reasons import DropReason
from repro.observability.histogram import HistogramSet
from repro.observability.tracer import PacketTracer


class DropMonitor:
    """Counters keyed the three ways operators actually ask the question:
    by reason, by (device, reason), and by subsystem."""

    def __init__(self) -> None:
        self.by_reason: Counter = Counter()
        self.by_device: Counter = Counter()  # (device, reason) -> count
        self.by_subsys: Counter = Counter()

    def record(self, reason: DropReason, device: Optional[str]) -> None:
        self.by_reason[reason.name] += 1
        self.by_subsys[reason.subsys] += 1
        if device is not None:
            self.by_device[(device, reason.name)] += 1

    def total(self) -> int:
        return sum(self.by_reason.values())

    def table(self) -> List[Tuple[str, str, int]]:
        """(subsys, reason, count) rows sorted by count descending."""
        from repro.observability.drop_reasons import drop_reason

        rows = [
            (drop_reason(name).subsys, name, count)
            for name, count in self.by_reason.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows

    def device_table(self) -> List[Tuple[str, str, int]]:
        """(device, reason, count) rows sorted by device then count."""
        rows = [
            (device, name, count)
            for (device, name), count in self.by_device.items()
        ]
        rows.sort(key=lambda row: (row[0], -row[2], row[1]))
        return rows


class Observability:
    """One per kernel: drop counters, the packet tracer, and latency
    histograms per pipeline stage and per deployed FPM."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.drops = DropMonitor()
        self.tracer = PacketTracer(kernel.clock)
        self.stage_latency = HistogramSet()
        self.fpm_latency = HistogramSet()
        self.hist_enabled = True

    def record_stage(self, name: str, elapsed_ns: int) -> None:
        if self.hist_enabled:
            self.stage_latency.record(name, elapsed_ns)

    def record_fpm(self, name: str, elapsed_ns: int) -> None:
        if self.hist_enabled:
            self.fpm_latency.record(name, elapsed_ns)
