"""The unified metrics registry: one snapshot over everything observable.

Collects the stack's packet ledger and drop counters, netfilter per-chain
verdicts, flow-cache statistics, conntrack occupancy, the latency
histograms, tracer state, and — when a controller is attached — control
plane health, incidents, and watchdog verdicts. Exported two ways:
Prometheus text exposition (``to_prometheus``) for scrape-style tooling and
JSON (``to_json``) for scripts.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional

from repro.observability.drop_reasons import drop_reason

_PROM_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_PROM_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _labels(**kwargs) -> str:
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in kwargs.items())
    return f"{{{inner}}}" if inner else ""


def _incidents_by_kind(ctl) -> Dict[str, int]:
    """Occurrences per incident kind; deduped entries weigh their count."""
    out: Counter = Counter()
    for incident in ctl.incidents:
        out[incident.kind] += getattr(incident, "count", 1)
    return dict(out)


class MetricsRegistry:
    """Snapshot/export facade over a kernel (and optional controller)."""

    def __init__(self, kernel, controller=None) -> None:
        self.kernel = kernel
        self.controller = controller

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, object]:
        kernel = self.kernel
        stack = kernel.stack
        obs = kernel.observability
        data: Dict[str, object] = {
            "host": kernel.hostname,
            "now_ns": kernel.clock.now_ns,
            "stack": {
                "rx_packets": stack.rx_packets,
                "tx_local_packets": stack.tx_local_packets,
                "settled": stack.settled,
                "pending": stack.pending_packets(),
                "forwarded": stack.forwarded,
                "delivered_local": stack.delivered_local,
                "outcomes": dict(stack.outcomes),
                "drops": dict(stack.drops),
            },
            "cpus": {
                "num_cpus": kernel.cpus.num_cpus,
                "num_online": kernel.cpus.num_online,
                "offline": kernel.cpus.offline_cpus(),
                "busy_ns": list(kernel.cpus.busy_ns),
                "packets": list(kernel.cpus.packets),
                "imbalance": kernel.cpus.imbalance(),
                "rps_steered": kernel.softirq.rps_steered,
                "nested_rx": kernel.softirq.nested_rx,
                "backlog_depths": kernel.softirq.backlog_depths(),
                "backlog_high_water": list(kernel.softirq.backlog_high_water),
                "backlog_drops": list(kernel.softirq.backlog_drops),
                "max_backlog": kernel.softirq.max_backlog,
                # Per-CPU ledger slices (cpu -1 = host/control context); each
                # global stack counter is the sum of its per-CPU family.
                "rx_by_cpu": {str(c): n for c, n in sorted(stack.rx_by_cpu.items())},
                "settled_by_cpu": {str(c): n for c, n in sorted(stack.settled_by_cpu.items())},
                "dropped_by_cpu": {str(c): n for c, n in sorted(stack.dropped_by_cpu.items())},
                "conntrack_shard_sizes": kernel.conntrack.shard_sizes(),
            },
            "drops_by_device": {
                f"{device}/{reason}": count
                for (device, reason), count in sorted(obs.drops.by_device.items())
            },
            "drops_by_subsys": dict(obs.drops.by_subsys),
            "netfilter": {
                chain: dict(verdicts)
                for chain, verdicts in sorted(kernel.netfilter.verdicts.items())
                if verdicts
            },
            "conntrack": {
                "entries": len(kernel.conntrack),
                "states": dict(Counter(e.state for e in kernel.conntrack.entries())),
                "max_entries": kernel.conntrack.max_entries,
                "early_drops": kernel.conntrack.early_drops,
                "insert_failed": kernel.conntrack.insert_failed,
            },
            "stage_latency": obs.stage_latency.as_dict(),
            "fpm_latency": obs.fpm_latency.as_dict(),
            "tracer": obs.tracer.summary(),
        }
        cache = getattr(kernel, "flow_cache", None)
        if cache is not None:
            from repro.measure.stats import flow_cache_summary

            data["flow_cache"] = {"enabled": cache.enabled, **flow_cache_summary(cache.stats)}
        engine = getattr(kernel, "jit", None)
        if engine is not None:
            data["jit_engine"] = engine.summary()
        if self.controller is not None:
            ctl = self.controller
            data["controller"] = {
                "health": ctl.health(),
                "rebuilds": ctl.rebuilds,
                "reactions": len(ctl.reactions),
                "incidents_by_kind": _incidents_by_kind(ctl),
                "deployed": ctl.deployed_summary(),
                "optimizer": ctl.deployer.optimizer_summary(),
                "jit": ctl.deployer.jit_summary(),
            }
            data["map_pressure"] = {
                name: stats for name, stats in self._map_pressure().items()
            }
        return data

    def _map_pressure(self) -> Dict[str, Dict[str, int]]:
        """Pressure counters for every map a deployed program references."""
        out: Dict[str, Dict[str, int]] = {}
        if self.controller is None:
            return out
        for entry in self.controller.deployer.deployed.values():
            if entry.current is None:
                continue
            for bpf_map in getattr(entry.current.program, "maps", []):
                out[bpf_map.name] = {
                    "update_errors": bpf_map.update_errors,
                    "evictions": bpf_map.evictions,
                }
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)

    # ------------------------------------------------------------ prometheus

    def to_prometheus(self) -> str:
        kernel = self.kernel
        stack = kernel.stack
        obs = kernel.observability
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        def sample(name: str, value, **labels) -> None:
            lines.append(f"{name}{_labels(**labels)} {value}")

        family("linuxfp_rx_packets_total", "counter", "Packets entering the pipeline at a driver.")
        sample("linuxfp_rx_packets_total", stack.rx_packets)
        family("linuxfp_tx_local_packets_total", "counter", "Locally-generated packets entering the output path.")
        sample("linuxfp_tx_local_packets_total", stack.tx_local_packets)
        family("linuxfp_settled_packets_total", "counter", "Packets that reached a terminal outcome (delivered, transmitted, or dropped).")
        sample("linuxfp_settled_packets_total", stack.settled)
        family("linuxfp_forwarded_packets_total", "counter", "Packets forwarded between interfaces.")
        sample("linuxfp_forwarded_packets_total", stack.forwarded)
        family("linuxfp_delivered_local_total", "counter", "Packets delivered to a local socket or ICMP handler.")
        sample("linuxfp_delivered_local_total", stack.delivered_local)

        family("linuxfp_cpu_busy_ns_total", "counter", "Simulated busy time per data-plane CPU.")
        for cpu, busy in enumerate(kernel.cpus.busy_ns):
            sample("linuxfp_cpu_busy_ns_total", busy, cpu=str(cpu))
        family("linuxfp_cpu_packets_total", "counter", "Packets processed per data-plane CPU (softirq dispatch).")
        for cpu, count in enumerate(kernel.cpus.packets):
            sample("linuxfp_cpu_packets_total", count, cpu=str(cpu))
        family("linuxfp_rps_steered_total", "counter", "Frames RPS-steered to a CPU other than their RX queue's owner.")
        sample("linuxfp_rps_steered_total", kernel.softirq.rps_steered)
        family("linuxfp_cpu_online", "gauge", "1 when the CPU is online, 0 after hot-unplug.")
        for cpu in range(kernel.cpus.num_cpus):
            sample("linuxfp_cpu_online", 1 if kernel.cpus.is_online(cpu) else 0, cpu=str(cpu))
        family("linuxfp_backlog_depth", "gauge", "Frames currently queued in the CPU's softirq backlog.")
        for cpu, depth in enumerate(kernel.softirq.backlog_depths()):
            sample("linuxfp_backlog_depth", depth, cpu=str(cpu))
        family("linuxfp_backlog_high_water", "gauge", "Deepest the CPU's softirq backlog has been.")
        for cpu, peak in enumerate(kernel.softirq.backlog_high_water):
            sample("linuxfp_backlog_high_water", peak, cpu=str(cpu))
        family("linuxfp_backlog_drops_total", "counter", "Frames refused at enqueue because the CPU's backlog was at netdev_max_backlog.")
        for cpu, count in enumerate(kernel.softirq.backlog_drops):
            sample("linuxfp_backlog_drops_total", count, cpu=str(cpu))
        family("linuxfp_rx_packets_by_cpu_total", "counter", "Per-CPU slice of the packet ledger's rx counter (cpu -1 = host context).")
        for cpu, count in sorted(stack.rx_by_cpu.items()):
            sample("linuxfp_rx_packets_by_cpu_total", count, cpu=str(cpu))
        family("linuxfp_settled_packets_by_cpu_total", "counter", "Per-CPU slice of the packet ledger's settled counter (cpu -1 = host context).")
        for cpu, count in sorted(stack.settled_by_cpu.items()):
            sample("linuxfp_settled_packets_by_cpu_total", count, cpu=str(cpu))

        family("linuxfp_outcomes_total", "counter", "Terminal non-drop outcomes by name.")
        for outcome, count in sorted(stack.outcomes.items()):
            sample("linuxfp_outcomes_total", count, outcome=outcome)

        family("linuxfp_drops_total", "counter", "Dropped packets by registered drop reason.")
        for name, count in sorted(stack.drops.items()):
            try:
                subsys = drop_reason(name).subsys
            except KeyError:
                subsys = "unknown"
            sample("linuxfp_drops_total", count, reason=name, subsys=subsys)

        family("linuxfp_device_drops_total", "counter", "Dropped packets by device and reason.")
        for (device, reason), count in sorted(obs.drops.by_device.items()):
            sample("linuxfp_device_drops_total", count, device=device, reason=reason)

        family("linuxfp_netfilter_verdicts_total", "counter", "Netfilter chain traversals by final verdict.")
        for chain, verdicts in sorted(kernel.netfilter.verdicts.items()):
            for verdict, count in sorted(verdicts.items()):
                sample("linuxfp_netfilter_verdicts_total", count, chain=chain, verdict=verdict)

        family("linuxfp_conntrack_entries", "gauge", "Conntrack table occupancy by state.")
        for state, count in sorted(Counter(e.state for e in kernel.conntrack.entries()).items()):
            sample("linuxfp_conntrack_entries", count, state=state)
        if kernel.conntrack.max_entries is not None:
            family("linuxfp_conntrack_max_entries", "gauge", "nf_conntrack_max table capacity.")
            sample("linuxfp_conntrack_max_entries", kernel.conntrack.max_entries)
        family("linuxfp_conntrack_early_drops_total", "counter", "Closing/unreplied entries evicted to admit new flows under pressure.")
        sample("linuxfp_conntrack_early_drops_total", kernel.conntrack.early_drops)
        family("linuxfp_conntrack_insert_failed_total", "counter", "Tracking refusals: table full and early-drop found no victim.")
        sample("linuxfp_conntrack_insert_failed_total", kernel.conntrack.insert_failed)
        if kernel.conntrack.num_shards > 1:
            family("linuxfp_conntrack_shard_entries", "gauge", "Conntrack occupancy per CPU shard.")
            for shard, count in enumerate(kernel.conntrack.shard_sizes()):
                sample("linuxfp_conntrack_shard_entries", count, shard=str(shard))

        cache = getattr(kernel, "flow_cache", None)
        if cache is not None:
            stats = cache.stats
            family("linuxfp_flow_cache_events_total", "counter", "Flow-cache lookups by hook and result.")
            for result, counter in (("hit", stats.hits), ("miss", stats.misses), ("bypass", stats.bypasses)):
                for hook, count in sorted(counter.items()):
                    sample("linuxfp_flow_cache_events_total", count, hook=hook, result=result)
            family("linuxfp_flow_cache_fpm_hits_total", "counter", "FPM executions avoided by flow-cache replay.")
            for fpm, count in sorted(stats.fpm_hits.items()):
                sample("linuxfp_flow_cache_fpm_hits_total", count, fpm=fpm)
            family("linuxfp_flow_cache_invalidations_total", "counter", "Flow-cache invalidations by reason.")
            for reason, count in sorted(stats.invalidations.items()):
                sample("linuxfp_flow_cache_invalidations_total", count, reason=reason)
            family("linuxfp_flow_cache_evictions_total", "counter", "Entries displaced by LRU capacity pressure.")
            sample("linuxfp_flow_cache_evictions_total", stats.evictions)

        self._prom_histograms(lines, family, sample)

        tracer = obs.tracer
        family("linuxfp_tracer_captured", "gauge", "Completed traces currently held in the ring.")
        sample("linuxfp_tracer_captured", len(tracer.ring))
        family("linuxfp_tracer_matched_total", "counter", "Packets that matched the armed trace filter.")
        sample("linuxfp_tracer_matched_total", tracer.matched)
        family("linuxfp_tracer_overflowed_total", "counter", "Completed traces evicted from the full ring.")
        sample("linuxfp_tracer_overflowed_total", tracer.overflowed)

        if self.controller is not None:
            ctl = self.controller
            health = ctl.health()
            family("linuxfp_controller_healthy", "gauge", "1 when no interface is degraded or quarantined.")
            sample("linuxfp_controller_healthy", 1 if health["ok"] else 0)
            family("linuxfp_controller_rebuilds_total", "counter", "Graph rebuilds executed.")
            sample("linuxfp_controller_rebuilds_total", ctl.rebuilds)
            family("linuxfp_controller_incidents_total", "counter", "Control-plane incidents by kind.")
            for kind, count in sorted(_incidents_by_kind(ctl).items()):
                sample("linuxfp_controller_incidents_total", count, kind=kind)
            if ctl.watchdog is not None:
                wd = ctl.watchdog.summary()
                family("linuxfp_watchdog_samples_total", "counter", "Differential watchdog samples by verdict.")
                for key in ("agreements", "mismatches", "punts", "consumed"):
                    sample("linuxfp_watchdog_samples_total", wd[key], verdict=key)
            pressure = self._map_pressure()
            engine = getattr(self.kernel, "jit", None)
            if engine is not None:
                stats = engine.summary()
                family("linuxfp_jit_engine_runs_total", "counter", "FPM invocations served by compiled code vs the interpreter.")
                sample("linuxfp_jit_engine_runs_total", stats["jit_runs"], mode="jit")
                sample("linuxfp_jit_engine_runs_total", stats["interp_runs"], mode="interpreter")
                family("linuxfp_jit_engine_zero_copy_frames_total", "counter", "Frames that ran the hook without a defensive packet copy.")
                sample("linuxfp_jit_engine_zero_copy_frames_total", stats["zero_copy_frames"])
                family("linuxfp_jit_engine_fallbacks_total", "counter", "Programs the JIT declined to compile (interpreter serves them).")
                sample("linuxfp_jit_engine_fallbacks_total", stats["fallbacks"])
            if pressure:
                family("linuxfp_map_update_errors_total", "counter", "Rejected fast-path map updates (full map, bad key, injected fault).")
                for name, stats in sorted(pressure.items()):
                    sample("linuxfp_map_update_errors_total", stats["update_errors"], map=name)
                family("linuxfp_map_evictions_total", "counter", "LRU-map entries displaced under capacity pressure.")
                for name, stats in sorted(pressure.items()):
                    sample("linuxfp_map_evictions_total", stats["evictions"], map=name)
            optimizer = ctl.deployer.optimizer_summary()
            if optimizer:
                family("linuxfp_optimizer_status", "gauge", "Serving-program superoptimizer outcome (1 for the active status label).")
                for ifname, info in sorted(optimizer.items()):
                    for status in ("baseline", "unchanged", "optimized", "fallback"):
                        sample("linuxfp_optimizer_status", 1 if info["status"] == status else 0, interface=ifname, status=status)
                family("linuxfp_optimizer_insns_removed", "gauge", "Instructions the equivalence-checked rewriter removed from the serving program.")
                for ifname, info in sorted(optimizer.items()):
                    sample("linuxfp_optimizer_insns_removed", info["insns_removed"], interface=ifname)
                family("linuxfp_optimizer_rejected_total", "counter", "Rewrite candidates refuted by the equivalence checker (counterexample recorded).")
                for ifname, info in sorted(optimizer.items()):
                    sample("linuxfp_optimizer_rejected_total", info["rejected"], interface=ifname)
                family("linuxfp_optimizer_unproven_total", "counter", "Rewrite candidates skipped because equivalence could not be proven.")
                for ifname, info in sorted(optimizer.items()):
                    sample("linuxfp_optimizer_unproven_total", info["unproven"], interface=ifname)
            jit = ctl.deployer.jit_summary()
            if jit:
                family("linuxfp_jit_status", "gauge", "Serving-program JIT outcome (1 for the active status label).")
                for ifname, info in sorted(jit.items()):
                    for status in ("interpreter", "compiled", "fallback"):
                        sample("linuxfp_jit_status", 1 if info["status"] == status else 0, interface=ifname, status=status)
                family("linuxfp_jit_inline_mem_ops", "gauge", "Packet/stack accesses the JIT emitted with no bounds or provenance checks.")
                for ifname, info in sorted(jit.items()):
                    sample("linuxfp_jit_inline_mem_ops", info["inline_mem_ops"], interface=ifname)
                family("linuxfp_jit_writes_packet", "gauge", "Whether the serving program may write the packet (0 enables zero-copy frames).")
                for ifname, info in sorted(jit.items()):
                    sample("linuxfp_jit_writes_packet", 1 if info["writes_packet"] else 0, interface=ifname)
            if ctl.deployer.migrations:
                family("linuxfp_migrated_entries_total", "counter", "Map entries carried into the new program at the last redeploy.")
                for ifname, report in sorted(ctl.deployer.migrations.items()):
                    sample("linuxfp_migrated_entries_total", report.total_entries, interface=ifname)
                family("linuxfp_migration_dropped_entries_total", "counter", "Map entries lost during the last redeploy's state migration.")
                for ifname, report in sorted(ctl.deployer.migrations.items()):
                    sample("linuxfp_migration_dropped_entries_total", report.dropped, interface=ifname)

        return "\n".join(lines) + "\n"

    def _prom_histograms(self, lines, family, sample) -> None:
        obs = self.kernel.observability
        for metric, label, hist_set in (
            ("linuxfp_stage_latency_ns", "stage", obs.stage_latency),
            ("linuxfp_fpm_latency_ns", "fpm", obs.fpm_latency),
        ):
            if not len(hist_set):
                continue
            family(metric, "histogram", f"Simulated per-{label} latency, log2 buckets.")
            for name in hist_set.names():
                hist = hist_set[name]
                for le, cumulative in hist.prom_buckets():
                    sample(f"{metric}_bucket", cumulative, **{label: name, "le": le})
                sample(f"{metric}_sum", hist.total, **{label: name})
                sample(f"{metric}_count", hist.count, **{label: name})
