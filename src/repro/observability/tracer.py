"""pwru-style packet tracing through the simulated pipeline.

Arm the tracer with a :class:`TraceFilter`; every matching packet then
accumulates its journey — profiler stage names, hook verdicts, FPM ids,
flow-cache hits/misses, and the terminal outcome or drop reason — into a
:class:`PacketTrace`. Completed traces land in a bounded ring buffer with
overflow accounting, so tracing a busy pipeline can never grow memory.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.netsim.addresses import IPv4Prefix
from repro.netsim.clock import Clock
from repro.netsim.packet import IPPROTO_TCP, IPPROTO_UDP, TCP, UDP

DEFAULT_RING_CAPACITY = 256
DEFAULT_MAX_EVENTS = 64

_PROTO_NAMES = {IPPROTO_TCP: "tcp", IPPROTO_UDP: "udp", 1: "icmp"}
_PROTO_NUMBERS = {name: num for num, name in _PROTO_NAMES.items()}


class TraceFilterError(ValueError):
    """Bad filter expression."""


class TraceFilter:
    """pwru-style match: src/dst prefix, proto, ports, ingress device."""

    def __init__(
        self,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        proto: Optional[int] = None,
        sport: Optional[int] = None,
        dport: Optional[int] = None,
        dev: Optional[str] = None,
    ) -> None:
        self.src = self._prefix(src)
        self.dst = self._prefix(dst)
        self.proto = proto
        self.sport = sport
        self.dport = dport
        self.dev = dev

    @staticmethod
    def _prefix(text: Optional[str]) -> Optional[IPv4Prefix]:
        if text is None:
            return None
        if "/" not in text:
            text = f"{text}/32"
        return IPv4Prefix.parse(text)

    @classmethod
    def parse(cls, expression: str) -> "TraceFilter":
        """``"src=10.0.0.0/8,proto=udp,dport=9,dev=eth0"`` → a filter."""
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in expression.split(","))):
            if "=" not in part:
                raise TraceFilterError(f"bad filter term {part!r} (want key=value)")
            key, value = part.split("=", 1)
            if key in ("src", "dst", "dev"):
                kwargs[key] = value
            elif key == "proto":
                kwargs[key] = _PROTO_NUMBERS.get(value.lower())
                if kwargs[key] is None:
                    try:
                        kwargs[key] = int(value)
                    except ValueError:
                        raise TraceFilterError(f"unknown proto {value!r}") from None
            elif key in ("sport", "dport"):
                kwargs[key] = int(value)
            else:
                raise TraceFilterError(f"unknown filter key {key!r}")
        return cls(**kwargs)

    def matches(self, pkt, dev_name: Optional[str]) -> bool:
        if self.dev is not None and dev_name != self.dev:
            return False
        needs_l3 = self.src or self.dst or self.proto is not None
        needs_l4 = self.sport is not None or self.dport is not None
        if pkt is None or pkt.ip is None:
            return not needs_l3 and not needs_l4
        ip = pkt.ip
        if self.src is not None and not self.src.contains(ip.src):
            return False
        if self.dst is not None and not self.dst.contains(ip.dst):
            return False
        if self.proto is not None and ip.proto != self.proto:
            return False
        if needs_l4:
            l4 = pkt.l4
            if not isinstance(l4, (TCP, UDP)):
                return False
            if self.sport is not None and l4.sport != self.sport:
                return False
            if self.dport is not None and l4.dport != self.dport:
                return False
        return True


class TraceEvent:
    __slots__ = ("ns", "stage", "detail")

    def __init__(self, ns: int, stage: str, detail: str = "") -> None:
        self.ns = ns
        self.stage = stage
        self.detail = detail

    def __repr__(self) -> str:
        return f"TraceEvent({self.ns}, {self.stage!r}, {self.detail!r})"


def describe_packet(pkt) -> str:
    """``10.0.1.2:1234 > 10.100.0.1:9 udp ttl=64`` — the trace headline."""
    if pkt is None:
        return "(unparsed frame)"
    if pkt.ip is None:
        if pkt.arp is not None:
            return f"arp {pkt.arp.sender_ip} > {pkt.arp.target_ip}"
        return f"ethertype 0x{pkt.eth.ethertype:04x}"
    ip = pkt.ip
    proto = _PROTO_NAMES.get(ip.proto, str(ip.proto))
    l4 = pkt.l4
    if isinstance(l4, (TCP, UDP)):
        return f"{ip.src}:{l4.sport} > {ip.dst}:{l4.dport} {proto} ttl={ip.ttl}"
    return f"{ip.src} > {ip.dst} {proto} ttl={ip.ttl}"


class PacketTrace:
    """One traced packet's journey through the pipeline."""

    __slots__ = ("trace_id", "kind", "dev", "summary", "start_ns", "end_ns",
                 "outcome", "events", "truncated_events")

    def __init__(self, trace_id: int, kind: str, dev: Optional[str], summary: str, start_ns: int) -> None:
        self.trace_id = trace_id
        self.kind = kind  # "rx" | "tx"
        self.dev = dev
        self.summary = summary
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.outcome: Optional[str] = None
        self.events: List[TraceEvent] = []
        self.truncated_events = 0

    def elapsed_ns(self) -> int:
        return (self.end_ns or self.start_ns) - self.start_ns

    def render(self) -> List[str]:
        header = f"#{self.trace_id} {self.kind} dev={self.dev or '-'} {self.summary}"
        header += f" -> {self.outcome or '?'} (+{self.elapsed_ns()}ns)"
        lines = [header]
        for event in self.events:
            offset = event.ns - self.start_ns
            detail = f" {event.detail}" if event.detail else ""
            lines.append(f"  {offset:>8}ns {event.stage}{detail}")
        if self.truncated_events:
            lines.append(f"  ... {self.truncated_events} event(s) truncated")
        return lines


class PacketTracer:
    """The armed filter, the in-flight trace stack, and the bounded ring."""

    def __init__(
        self,
        clock: Clock,
        capacity: int = DEFAULT_RING_CAPACITY,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.clock = clock
        self.capacity = capacity
        self.max_events = max_events
        self.armed = False
        self.filter: Optional[TraceFilter] = None
        self.ring: Deque[PacketTrace] = deque()
        self.overflowed = 0  # completed traces evicted from the full ring
        self.matched = 0
        self._active: List[PacketTrace] = []
        self._next_id = 1

    # -------------------------------------------------------------- control

    def arm(self, filter: Optional[TraceFilter] = None, capacity: Optional[int] = None) -> None:
        """Start capturing packets matching ``filter`` (None = everything)."""
        self.filter = filter
        if capacity is not None:
            if capacity < 1:
                raise ValueError("ring capacity must be >= 1")
            self.capacity = capacity
        self.armed = True

    def disarm(self) -> None:
        self.armed = False
        self.filter = None
        self._active.clear()

    def clear(self) -> None:
        self.ring.clear()
        self.overflowed = 0
        self.matched = 0

    @property
    def recording(self) -> bool:
        """True while a matched packet is in flight (events are welcome)."""
        return bool(self._active)

    # ------------------------------------------------------------- lifecycle

    def begin(self, kind: str, dev_name: Optional[str], pkt) -> Optional[PacketTrace]:
        """Open a trace for a pipeline entry; returns a token or None."""
        if not self.armed:
            return None
        if self.filter is not None and not self.filter.matches(pkt, dev_name):
            return None
        trace = PacketTrace(
            trace_id=self._next_id,
            kind=kind,
            dev=dev_name,
            summary=describe_packet(pkt),
            start_ns=self.clock.now_ns,
        )
        self._next_id += 1
        self.matched += 1
        self._active.append(trace)
        return trace

    def event(self, stage: str, detail: str = "") -> None:
        """Record an event against the innermost in-flight trace."""
        if not self._active:
            return
        trace = self._active[-1]
        if len(trace.events) >= self.max_events:
            trace.truncated_events += 1
            return
        trace.events.append(TraceEvent(self.clock.now_ns, stage, detail))

    def set_outcome(self, outcome: str) -> None:
        """The terminal verdict for the innermost trace (first one wins)."""
        if self._active and self._active[-1].outcome is None:
            self._active[-1].outcome = outcome

    def end(self, trace: PacketTrace) -> None:
        """Close a trace and commit it to the ring."""
        if trace not in self._active:
            return
        self._active.remove(trace)
        trace.end_ns = self.clock.now_ns
        while len(self.ring) >= self.capacity:
            self.ring.popleft()
            self.overflowed += 1
        self.ring.append(trace)

    # -------------------------------------------------------------- reading

    def traces(self) -> List[PacketTrace]:
        return list(self.ring)

    def summary(self) -> dict:
        return {
            "armed": self.armed,
            "captured": len(self.ring),
            "matched": self.matched,
            "overflowed": self.overflowed,
            "capacity": self.capacity,
        }
