"""The drop-reason registry: ``SKB_DROP_REASON`` for the simulated stack.

Every discard site in the pipeline names a registered reason when it throws
a packet away (``Stack.drop``), exactly like the kernel's ``kfree_skb``
drop-reason infrastructure. The registry is the single source of truth:
``Stack.drop`` refuses unregistered names at runtime, and the fpmtool
self-check (:func:`self_check`) statically greps the discard sites so a new
``drop("...")`` call without a registration — or a registered reason whose
site was deleted — fails CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional


class UnknownDropReason(KeyError):
    """A discard site named a reason the registry does not know."""


@dataclass(frozen=True)
class DropReason:
    name: str
    subsys: str  # the layer that discards: xdp, tc, l2, bridge, ip, netfilter, …
    description: str


_REGISTRY: Dict[str, DropReason] = {}


def register_drop_reason(name: str, subsys: str, description: str) -> DropReason:
    if name in _REGISTRY:
        raise ValueError(f"drop reason {name!r} already registered")
    reason = DropReason(name=name, subsys=subsys, description=description)
    _REGISTRY[name] = reason
    return reason


def drop_reason(name: str) -> DropReason:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownDropReason(
            f"unregistered drop reason {name!r}; add it to repro.observability.drop_reasons"
        ) from None


def all_reasons() -> List[DropReason]:
    return list(_REGISTRY.values())


def reason_names() -> List[str]:
    return list(_REGISTRY)


# --------------------------------------------------------------- the catalog

# driver / XDP hook
register_drop_reason("xdp_drop", "xdp", "attached XDP program returned XDP_DROP")
register_drop_reason("xdp_aborted", "xdp", "XDP program aborted (memory fault or bad verdict)")

# TC hooks
register_drop_reason("tc_shot", "tc", "TC ingress program returned TC_ACT_SHOT")
register_drop_reason("tc_aborted", "tc", "TC ingress program aborted; treated as SHOT")
register_drop_reason("tc_egress_shot", "tc", "TC egress program returned TC_ACT_SHOT")

# softirq dispatch
register_drop_reason(
    "backlog_overflow",
    "softirq",
    "per-CPU backlog queue at net.core.netdev_max_backlog; frame discarded at enqueue",
)

# L2
register_drop_reason("malformed", "l2", "frame failed to parse as ethernet/IPv4")
register_drop_reason("unknown_ethertype", "l2", "no handler for the frame's ethertype")
register_drop_reason("dev_link_down", "l2", "device transmit with no carrier (peer down or link flap)")

# bridging
register_drop_reason("bridge_port_disabled", "bridge", "ingress port missing or STP-disabled")
register_drop_reason("bridge_stp_blocked", "bridge", "STP holds the ingress port out of forwarding")
register_drop_reason("bridge_vlan_filtered", "bridge", "frame's VLAN not allowed on the ingress port")
register_drop_reason("bridge_egress_filtered", "bridge", "egress port blocked or VLAN-filtered")
register_drop_reason("bridge_flood_empty", "bridge", "FDB miss flooded to zero eligible ports")
register_drop_reason("bridge_same_port", "bridge", "FDB points back out the ingress port")

# IP receive / forward
register_drop_reason("not_forwarding", "ip", "ip_forward sysctl disabled for a transit packet")
register_drop_reason("martian_source", "ip", "rp_filter: loopback/multicast/broadcast source on the forward path")
register_drop_reason("ttl_exceeded", "ip", "TTL reached zero while forwarding")
register_drop_reason("no_route", "ip", "FIB lookup failed on the forward path")
register_drop_reason("no_route_out", "ip", "FIB lookup failed for locally-generated output")

# netfilter
register_drop_reason("nf_input", "netfilter", "filter/INPUT verdict DROP")
register_drop_reason("nf_forward", "netfilter", "filter/FORWARD verdict DROP")
register_drop_reason("nf_output", "netfilter", "filter/OUTPUT verdict DROP")
register_drop_reason("conntrack_full", "netfilter", "conntrack table at nf_conntrack_max and early-drop found no victim")

# neighbor resolution
register_drop_reason("neigh_queue_full", "neigh", "ARP resolution queue overflowed")

# fragmentation
register_drop_reason("frag_needed_df", "frag", "packet exceeds egress MTU and cannot fragment")
register_drop_reason("frag_timeout", "frag", "reassembly queue expired before completing")

# vxlan
register_drop_reason("vxlan_malformed", "vxlan", "VXLAN header truncated or VNI flag missing")
register_drop_reason("vxlan_no_vni", "vxlan", "no (up) vxlan device for the received VNI")
register_drop_reason("vxlan_no_remote", "vxlan", "vtep FDB miss: no remote for the frame's dst MAC")

# ipvs
register_drop_reason("ipvs_no_dest", "ipvs", "virtual service has no usable real server")

# local delivery
register_drop_reason("no_socket", "local", "no listening socket for a local packet")


# ------------------------------------------------------------- static check

#: Files whose ``drop("...")`` call sites the self-check audits.
DROP_SITE_GLOBS = (
    "kernel/*.py",
    "fastpath/*.py",
    "ebpf/hooks.py",
)

_SITE_RE = re.compile(r'\bdrop\(\s*["\']([a-z0-9_]+)["\']')


def scan_drop_sites(src_root: Optional[str] = None) -> Dict[str, List[str]]:
    """Grep the pipeline sources for ``drop("reason")`` call sites.

    Returns reason name -> list of ``file:line`` locations.
    """
    root = Path(src_root) if src_root is not None else Path(__file__).resolve().parent.parent
    sites: Dict[str, List[str]] = {}
    for pattern in DROP_SITE_GLOBS:
        for path in sorted(root.glob(pattern)):
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                for match in _SITE_RE.finditer(line):
                    sites.setdefault(match.group(1), []).append(f"{path.name}:{lineno}")
    return sites


def self_check(src_root: Optional[str] = None, extra_known: Iterable[str] = ()) -> List[str]:
    """Registry completeness audit; returns problem descriptions (empty = ok).

    Two-way check: every grep-discovered discard site must name a registered
    reason, and every registered reason must still have at least one site.
    """
    problems: List[str] = []
    sites = scan_drop_sites(src_root)
    known = set(extra_known)
    for name, locations in sorted(sites.items()):
        if name not in _REGISTRY:
            problems.append(
                f"unregistered drop reason {name!r} used at {', '.join(locations)}"
            )
    for name in _REGISTRY:
        if name not in sites and name not in known:
            problems.append(f"registered drop reason {name!r} has no discard site")
    return problems
