"""brctl: the legacy bridge administration tool.

Supported: ``addbr``, ``delbr``, ``addif``, ``delif``, ``stp BR on|off``,
``show``. Exactly the commands the paper's Table VI times.
"""

from __future__ import annotations

from typing import List

from repro.netlink import messages as m
from repro.tools.common import NetlinkTool, ToolError, split_args


class BrctlTool(NetlinkTool):
    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: brctl COMMAND [args]")
        action = args[0]
        if action == "addbr":
            self.request(m.RTM_NEWLINK, {"ifname": args[1], "kind": "bridge"})
            return []
        if action == "delbr":
            self.request(m.RTM_DELLINK, {"ifname": args[1]})
            return []
        if action == "addif":
            if len(args) != 3:
                raise ToolError("brctl addif BRIDGE IFACE")
            master = self.resolve_ifindex(args[1])
            self.request(m.RTM_SETLINK, {"ifname": args[2], "master": master})
            return []
        if action == "delif":
            if len(args) != 3:
                raise ToolError("brctl delif BRIDGE IFACE")
            self.request(m.RTM_SETLINK, {"ifname": args[2], "master": 0})
            return []
        if action == "stp":
            if len(args) != 3 or args[2] not in ("on", "off"):
                raise ToolError("brctl stp BRIDGE on|off")
            self.request(m.RTM_SETLINK, {"ifname": args[1], "bridge": {"stp_state": 1 if args[2] == "on" else 0}})
            return []
        if action == "show":
            out = []
            for reply in self.request(m.RTM_GETLINK, dump=True):
                a = reply.attrs
                if a.get("kind") == "bridge":
                    info = a.get("bridge", {})
                    out.append(f"{a['ifname']}\tstp {'yes' if info.get('stp_state') else 'no'}")
            return out
        raise ToolError(f"unknown brctl command {action!r}")


def brctl(kernel, command: str) -> List[str]:
    """One-shot ``brctl`` invocation."""
    tool = BrctlTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
