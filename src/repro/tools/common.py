"""Shared plumbing for the command-line-style tools."""

from __future__ import annotations

import shlex
from typing import Dict, List, Optional

from repro.netlink.bus import NetlinkSocket
from repro.netlink.messages import NLM_F_DUMP, NLM_F_REQUEST, NetlinkMsg


class ToolError(ValueError):
    """Bad command-line usage (what the real tool would print to stderr)."""


class NetlinkTool:
    """Base: owns a netlink socket on the kernel's bus."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.socket: NetlinkSocket = kernel.bus.open_socket()

    def request(self, msg_type: int, attrs: Optional[dict] = None, dump: bool = False) -> List[NetlinkMsg]:
        flags = NLM_F_REQUEST | (NLM_F_DUMP if dump else 0)
        return self.socket.request(NetlinkMsg(msg_type, attrs or {}, flags=flags))

    def resolve_ifindex(self, name: str) -> int:
        from repro.netlink.messages import RTM_GETLINK, RTM_NEWLINK

        replies = self.request(RTM_GETLINK, {"ifname": name})
        for reply in replies:
            if reply.msg_type == RTM_NEWLINK:
                return reply.attrs["ifindex"]
        raise ToolError(f"Cannot find device \"{name}\"")


def split_args(command: str) -> List[str]:
    return shlex.split(command)


def take_pairs(args: List[str], keywords: Dict[str, str]) -> Dict[str, str]:
    """Parse iproute2-style ``keyword value`` pairs; flags map to 'true'."""
    out: Dict[str, str] = {}
    i = 0
    while i < len(args):
        word = args[i]
        if word not in keywords:
            raise ToolError(f"unknown argument {word!r}")
        kind = keywords[word]
        if kind == "flag":
            out[word] = "true"
            i += 1
        else:
            if i + 1 >= len(args):
                raise ToolError(f"{word!r} requires a value")
            out[word] = args[i + 1]
            i += 2
    return out
