"""An FRR-like routing daemon.

Demonstrates the paper's "control-plane software works unmodified" claim: a
RIP-style distance-vector daemon that learns connected networks through
netlink dumps, exchanges advertisements with peers, and installs learned
routes back through netlink (``RTM_NEWROUTE``) — whereupon the LinuxFP
controller picks them up and re-synthesizes the fast path, with the daemon
none the wiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlink import messages as m
from repro.netsim.addresses import IPv4Addr, IPv4Prefix
from repro.tools.common import NetlinkTool

INFINITY_METRIC = 16


@dataclass
class RibEntry:
    prefix: IPv4Prefix
    metric: int
    next_hop: Optional[IPv4Addr]  # None for connected/originated routes
    learned_from: Optional[str] = None  # peer router-id


@dataclass
class Advertisement:
    origin: str
    prefix: IPv4Prefix
    metric: int
    next_hop: IPv4Addr


class FrrDaemon(NetlinkTool):
    """One routing daemon instance bound to a kernel."""

    def __init__(self, kernel, router_id: str) -> None:
        super().__init__(kernel)
        self.router_id = router_id
        self.rib: Dict[IPv4Prefix, RibEntry] = {}
        # peer daemon -> the address *we* are reachable at on the shared link
        self.peers: List[Tuple["FrrDaemon", IPv4Addr]] = []
        self.installed: Dict[IPv4Prefix, IPv4Addr] = {}

    # ------------------------------------------------------------- topology

    def add_peer(self, peer: "FrrDaemon", local_address: IPv4Addr) -> None:
        """Open a session; ``local_address`` is our IP on the shared subnet
        (what the peer will use as next hop for routes we advertise)."""
        self.peers.append((peer, local_address))

    def learn_connected(self) -> List[IPv4Prefix]:
        """Originate every connected network found via netlink."""
        originated = []
        for reply in self.request(m.RTM_GETADDR, dump=True):
            attrs = reply.attrs
            if attrs.get("prefixlen", 32) >= 32:
                continue
            prefix = IPv4Prefix(attrs["address"], attrs["prefixlen"])
            if str(prefix).startswith("127."):
                continue
            self.rib[prefix] = RibEntry(prefix=prefix, metric=0, next_hop=None)
            originated.append(prefix)
        return originated

    def originate(self, prefix: IPv4Prefix, metric: int = 0) -> None:
        """Manually originate a prefix (e.g. a static redistributed route)."""
        self.rib[prefix] = RibEntry(prefix=prefix, metric=metric, next_hop=None)

    # ------------------------------------------------------------- protocol

    def advertisements_for(self, peer_id: str) -> List[Advertisement]:
        """Split-horizon: never advertise back to the peer we learned from."""
        out = []
        for entry in self.rib.values():
            if entry.learned_from == peer_id:
                continue
            out.append(
                Advertisement(
                    origin=self.router_id,
                    prefix=entry.prefix,
                    metric=min(entry.metric + 1, INFINITY_METRIC),
                    next_hop=IPv4Addr(0),  # filled by the sender per-session
                )
            )
        return out

    def receive(self, adv: Advertisement) -> bool:
        """Process one advertisement; returns True when the RIB changed."""
        if adv.metric >= INFINITY_METRIC:
            existing = self.rib.get(adv.prefix)
            if existing is not None and existing.learned_from == adv.origin:
                del self.rib[adv.prefix]
                self._uninstall(adv.prefix)
                return True
            return False
        existing = self.rib.get(adv.prefix)
        if existing is not None:
            if existing.learned_from != adv.origin and existing.metric <= adv.metric:
                return False  # we already have a route at least as good
            if (
                existing.learned_from == adv.origin
                and existing.metric == adv.metric
                and existing.next_hop == adv.next_hop
            ):
                return False  # periodic re-advertisement: nothing new
        self.rib[adv.prefix] = RibEntry(
            prefix=adv.prefix, metric=adv.metric, next_hop=adv.next_hop, learned_from=adv.origin
        )
        self._install(adv.prefix, adv.next_hop)
        return True

    def exchange_round(self) -> bool:
        """Send our advertisements to every peer; returns True on any change."""
        changed = False
        for peer, local_address in self.peers:
            for adv in self.advertisements_for(peer.router_id):
                adv.next_hop = local_address
                changed |= peer.receive(adv)
        return changed

    # --------------------------------------------------------- FIB download

    def _install(self, prefix: IPv4Prefix, next_hop: IPv4Addr) -> None:
        if self.installed.get(prefix) == next_hop:
            return
        self.request(
            m.RTM_NEWROUTE,
            {"dst": prefix.address, "dst_len": prefix.length, "gateway": next_hop, "metric": 20},
        )
        self.installed[prefix] = next_hop

    def _uninstall(self, prefix: IPv4Prefix) -> None:
        if prefix in self.installed:
            self.request(m.RTM_DELROUTE, {"dst": prefix.address, "dst_len": prefix.length, "metric": 20})
            del self.installed[prefix]


def converge(daemons: List[FrrDaemon], max_rounds: int = 16) -> int:
    """Run exchange rounds until quiescent; returns rounds used."""
    for round_number in range(1, max_rounds + 1):
        changed = False
        for daemon in daemons:
            changed |= daemon.exchange_round()
        if not changed:
            return round_number
    return max_rounds
