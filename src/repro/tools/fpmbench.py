"""fpmbench: host wall-clock benchmark for the batched+JIT fast path.

The simulation's *simulated* clock is calibrated and must not move with
host performance — batching and the bytecode→Python JIT amortize only the
interpreter's Python overhead. This tool measures that host overhead
directly: it drives the canonical router scenario through three data-plane
modes and reports wall-clock packets/second for each:

- ``interpreter``   per-frame softirq drain, interpreter-served FPM
                    (the seed data plane);
- ``batched``       NAPI-budget batched drain + burst XDP dispatch,
                    still interpreted;
- ``batched_jit``   batched drain + compiled FPM programs + zero-copy
                    frames (``LINUXFP_JIT``-equivalent).

Each mode runs single-core and multi-core (RSS across ``--cores`` queues).
Every mode must forward the identical packet mix; the tool cross-checks the
conservation ledger and the *simulated* clock across modes — a divergence
means the fast path changed observable behaviour, and the run fails.

``--min-speedup`` gates CI: the single-core ``batched_jit`` mode must beat
``interpreter`` by at least that factor. The report lands in
``benchmarks/results/BENCH_fastpath.json``.

Usage::

    PYTHONPATH=src python -m repro.tools.fpmbench [--packets N] [--cores N] \\
        [--repeat N] [--min-speedup X] [--json] [--bench PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.measure.scenarios import setup_router
from repro.netsim.packet import make_udp

DEFAULT_BENCH = os.path.join("benchmarks", "results", "BENCH_fastpath.json")

MODES = ("interpreter", "batched", "batched_jit")

#: frames per NAPI-coalesced arrival burst
BURST = 64


def build_topology(mode: str, cores: int):
    topo = setup_router(
        "linuxfp", hook="xdp", num_queues=cores, jit=(mode == "batched_jit")
    )
    topo.dut.softirq.batching = mode != "interpreter"
    return topo


def make_frames(topo, packets: int) -> List[bytes]:
    src_mac, dst_mac = topo.src_eth.mac, topo.dut_in.mac
    frames = []
    for i in range(packets):
        pkt = make_udp(
            src_mac, dst_mac, "10.0.1.2", topo.flow_destination(i % 64),
            sport=1024 + (i % 64), dport=9,
        )
        frames.append(pkt.to_bytes())
    return frames


def run_mode(mode: str, cores: int, packets: int, repeat: int) -> Dict[str, object]:
    """Best-of-``repeat`` wall-clock run of one mode; fresh topology each rep
    so map/cache warm-up never leaks between repetitions."""
    best_s = None
    observed = None
    for _ in range(repeat):
        topo = build_topology(mode, cores)
        frames = make_frames(topo, packets)
        nic = topo.dut_in.nic
        t0 = time.perf_counter()
        for i in range(0, len(frames), BURST):
            nic.receive_burst(frames[i:i + BURST])
        elapsed = time.perf_counter() - t0
        stack = topo.dut.stack
        observed = {
            "rx": stack.rx_packets,
            "settled": stack.settled,
            "dropped": stack.dropped,
            "forwarded": topo.dut_out.nic.stats.tx_packets,
            "sim_clock_ns": topo.dut.clock.now_ns,
        }
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    jit_stats = topo.dut.jit.summary() if mode == "batched_jit" else None
    return {
        "mode": mode,
        "cores": cores,
        "packets": packets,
        "wall_s": round(best_s, 6),
        "wall_us_per_pkt": round(best_s * 1e6 / packets, 3),
        "host_kpps": round(packets / best_s / 1e3, 1),
        "observed": observed,
        "jit": jit_stats,
    }


def run_bench(
    packets: int = 4096, cores: int = 4, repeat: int = 3
) -> Dict[str, object]:
    """Benchmark every mode at 1 and ``cores`` cores. Pure: no exit."""
    results: List[Dict[str, object]] = []
    failures: List[str] = []
    for ncores in (1, cores):
        baseline = None
        for mode in MODES:
            entry = run_mode(mode, ncores, packets, repeat)
            if baseline is None:
                baseline = entry
            entry["speedup"] = round(baseline["wall_s"] / entry["wall_s"], 2)
            # observational equivalence across modes, simulated clock included
            if entry["observed"] != baseline["observed"]:
                failures.append(
                    f"{mode}@{ncores}c diverged from interpreter: "
                    f"{entry['observed']!r} != {baseline['observed']!r}"
                )
            results.append(entry)
    return {"tool": "fpmbench", "burst": BURST, "results": results, "failures": failures}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fpmbench", description="wall-clock benchmark: interpreter vs batched vs batched+JIT"
    )
    parser.add_argument("--packets", type=int, default=4096, help="frames per run")
    parser.add_argument("--cores", type=int, default=4, help="multi-core RSS width")
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0, metavar="X",
        help="fail unless single-core batched_jit >= X times interpreter",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument(
        "--bench", default=DEFAULT_BENCH, metavar="PATH",
        help=f"report output path (default {DEFAULT_BENCH})",
    )
    args = parser.parse_args(argv)

    report = run_bench(packets=args.packets, cores=args.cores, repeat=args.repeat)
    failures: List[str] = list(report["failures"])

    gated = [
        r for r in report["results"]
        if r["mode"] == "batched_jit" and r["cores"] == 1
    ][0]
    report["min_speedup"] = args.min_speedup
    if gated["speedup"] < args.min_speedup:
        failures.append(
            f"single-core batched_jit speedup {gated['speedup']}x "
            f"< required {args.min_speedup}x"
        )
    report["ok"] = not failures
    report["failures"] = failures

    if args.bench:
        os.makedirs(os.path.dirname(args.bench) or ".", exist_ok=True)
        with open(args.bench, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for line in failures:
            print(f"FAIL {line}")
        print(f"{'mode':14s} {'cores':>5s} {'us/pkt':>8s} {'kpps':>9s} {'speedup':>8s}")
        for r in report["results"]:
            print(
                f"{r['mode']:14s} {r['cores']:>5d} {r['wall_us_per_pkt']:>8.2f} "
                f"{r['host_kpps']:>9.1f} {r['speedup']:>7.2f}x"
            )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
