"""ipvsadm: IPVS service administration.

Supported: ``-A -t VIP:PORT [-s SCHED]``, ``-D -t VIP:PORT``,
``-a -t VIP:PORT -r RS:PORT [-w WEIGHT]``, ``-d -t VIP:PORT -r RS:PORT``,
``-L``. TCP (-t) and UDP (-u) services.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netlink import messages as m
from repro.netsim.addresses import IPv4Addr
from repro.tools.common import NetlinkTool, ToolError, split_args

TCP, UDP = 6, 17


def _endpoint(text: str) -> Tuple[IPv4Addr, int]:
    host, __, port = text.partition(":")
    if not port:
        raise ToolError(f"expected IP:PORT, got {text!r}")
    return IPv4Addr.parse(host), int(port)


class IpvsadmTool(NetlinkTool):
    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: ipvsadm -A|-D|-a|-d|-L ...")
        flag = args[0]
        if flag == "-L":
            out = []
            for reply in self.request(m.IPVS_GETSERVICE, dump=True):
                a = reply.attrs
                if reply.msg_type == m.IPVS_NEWSERVICE:
                    out.append(f"TCP {a['vip']}:{a['vport']} {a['scheduler']}")
                else:
                    out.append(f"  -> {a['rs']}:{a['rport']} weight {a.get('weight', 1)}")
            return out

        proto, vip, vport, rs, rport, weight, sched = TCP, None, None, None, None, 1, "rr"
        i = 1
        while i < len(args):
            word = args[i]
            if word == "-t":
                proto = TCP
                vip, vport = _endpoint(args[i + 1])
                i += 2
            elif word == "-u":
                proto = UDP
                vip, vport = _endpoint(args[i + 1])
                i += 2
            elif word == "-r":
                rs, rport = _endpoint(args[i + 1])
                i += 2
            elif word == "-s":
                sched = args[i + 1]
                i += 2
            elif word == "-w":
                weight = int(args[i + 1])
                i += 2
            elif word == "-m":
                i += 1  # NAT mode: the only mode we model
            else:
                raise ToolError(f"unknown ipvsadm option {word!r}")
        if vip is None:
            raise ToolError("missing -t/-u VIP:PORT")
        if flag == "-A":
            self.request(m.IPVS_NEWSERVICE, {"vip": vip, "vport": vport, "proto": proto, "scheduler": sched})
        elif flag == "-D":
            self.request(m.IPVS_DELSERVICE, {"vip": vip, "vport": vport, "proto": proto})
        elif flag == "-a":
            if rs is None:
                raise ToolError("missing -r RS:PORT")
            self.request(
                m.IPVS_NEWDEST,
                {"vip": vip, "vport": vport, "proto": proto, "rs": rs, "rport": rport, "weight": weight},
            )
        elif flag == "-d":
            if rs is None:
                raise ToolError("missing -r RS:PORT")
            self.request(m.IPVS_DELDEST, {"vip": vip, "vport": vport, "proto": proto, "rs": rs, "rport": rport})
        else:
            raise ToolError(f"unknown ipvsadm flag {flag!r}")
        return []


def ipvsadm(kernel, command: str) -> List[str]:
    """One-shot ``ipvsadm`` invocation."""
    tool = IpvsadmTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
