"""fpmlint: verify and lint every FPM template configuration.

CI gate for the synthesizer's template library: renders each representative
configuration at both hooks, compiles it, runs the range-tracking verifier
(which proves packet/map/stack safety), and reports lint findings — dead
code, redundant bounds checks, unused map slots. The library is expected to
be lint-clean; any finding (or verifier rejection) fails the run.

Usage::

    PYTHONPATH=src python -m repro.tools.fpmlint [-v] [--json]

``--json`` emits one machine-readable object (checked count plus a list of
``{program, pc, code, message}`` findings) for CI artifact collection.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.fpm.library import render_dispatcher, render_fast_path
from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.analysis.lint import LintFinding, lint_program
from repro.ebpf.maps import ProgArray
from repro.ebpf.minic import compile_c

HOOKS = ("xdp", "tc")


def _configurations() -> Dict[str, Dict]:
    bridge_conf = {
        "bridge_ifindex": 7,
        "STP_enabled": False,
        "VLAN_enabled": False,
        "ports": ["v0", "v1"],
    }
    vlan_conf = dict(bridge_conf, VLAN_enabled=True)
    chain_conf = dict(bridge_conf, bridge_mac="02:00:00:00:00:07")
    services = [
        {"vip": "10.96.0.1", "port": 80, "proto": 6},
        {"vip": "10.96.0.2", "port": 53, "proto": 17},
    ]
    return {
        "router": {"router": {"conf": {"decrement_ttl": True}, "next_nf": None}},
        "gateway": {
            "filter": {"conf": {"chain": "FORWARD"}, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
        "bridge": {"bridge": {"conf": bridge_conf, "next_nf": None}},
        "bridge-vlan": {"bridge": {"conf": vlan_conf, "next_nf": None}},
        "bridge-l3": {
            "bridge": {"conf": chain_conf, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
        "ipvs": {
            "ipvs": {"conf": {"services": services}, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
    }


def lint_library_structured(verbose: bool = False) -> Tuple[int, List[Dict[str, object]]]:
    """Returns (programs checked, structured findings).

    Each finding is ``{program, pc, code, message}``; verifier rejections
    use code ``verifier-rejection`` with ``pc`` None.
    """
    checked = 0
    problems: List[Dict[str, object]] = []

    def record(program: str, pc: Optional[int], code: str, message: str) -> None:
        problems.append({"program": program, "pc": pc, "code": code, "message": message})

    def check(label: str, source: str, hook: str, maps=None) -> None:
        nonlocal checked
        checked += 1
        name = f"{label}@{hook}"
        try:
            program = compile_c(source, name=name, hook=hook, maps=maps)
            findings: List[LintFinding] = lint_program(program)
        except VerifierError as exc:
            record(name, None, "verifier-rejection", str(exc))
            return
        for finding in findings:
            record(finding.program, finding.pc, finding.code, finding.message)
        if verbose and not findings:
            print(f"  ok {name} ({len(program.insns)} insns)")

    for label, nodes in _configurations().items():
        for hook in HOOKS:
            check(label, render_fast_path("eth0", hook, nodes), hook)
    for hook in HOOKS:
        check(
            "dispatcher",
            render_dispatcher("eth0", hook),
            hook,
            maps={"jmp": ProgArray("jmp")},
        )
    return checked, problems


def _format_problem(problem: Dict[str, object]) -> str:
    where = f"@{problem['pc']}" if problem["pc"] is not None else ""
    return f"{problem['program']}{where}: {problem['code']}: {problem['message']}"


def lint_library(verbose: bool = False) -> Tuple[int, List[str]]:
    """Returns (programs checked, failure lines) — the legacy text form."""
    checked, problems = lint_library_structured(verbose=verbose)
    return checked, [_format_problem(p) for p in problems]


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    verbose = "-v" in argv or "--verbose" in argv
    as_json = "--json" in argv
    checked, problems = lint_library_structured(verbose=verbose and not as_json)
    if as_json:
        print(
            json.dumps(
                {"tool": "fpmlint", "checked": checked, "findings": problems},
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if problems else 0
    if problems:
        for problem in problems:
            print(_format_problem(problem))
        print(f"fpmlint: {len(problems)} finding(s) across {checked} program(s)")
        return 1
    print(f"fpmlint: {checked} program(s) verified, no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
