"""fpmlint: verify and lint every FPM template configuration.

CI gate for the synthesizer's template library: renders each representative
configuration at both hooks, compiles it, runs the range-tracking verifier
(which proves packet/map/stack safety), and reports lint findings — dead
code, redundant bounds checks, unused map slots. The library is expected to
be lint-clean; any finding (or verifier rejection) fails the run.

Usage::

    PYTHONPATH=src python -m repro.tools.fpmlint [-v]
"""

from __future__ import annotations

import sys
from typing import Dict, List, Tuple

from repro.core.fpm.library import render_dispatcher, render_fast_path
from repro.ebpf.analysis.errors import VerifierError
from repro.ebpf.analysis.lint import LintFinding, lint_program
from repro.ebpf.maps import ProgArray
from repro.ebpf.minic import compile_c

HOOKS = ("xdp", "tc")


def _configurations() -> Dict[str, Dict]:
    bridge_conf = {
        "bridge_ifindex": 7,
        "STP_enabled": False,
        "VLAN_enabled": False,
        "ports": ["v0", "v1"],
    }
    vlan_conf = dict(bridge_conf, VLAN_enabled=True)
    chain_conf = dict(bridge_conf, bridge_mac="02:00:00:00:00:07")
    services = [
        {"vip": "10.96.0.1", "port": 80, "proto": 6},
        {"vip": "10.96.0.2", "port": 53, "proto": 17},
    ]
    return {
        "router": {"router": {"conf": {"decrement_ttl": True}, "next_nf": None}},
        "gateway": {
            "filter": {"conf": {"chain": "FORWARD"}, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
        "bridge": {"bridge": {"conf": bridge_conf, "next_nf": None}},
        "bridge-vlan": {"bridge": {"conf": vlan_conf, "next_nf": None}},
        "bridge-l3": {
            "bridge": {"conf": chain_conf, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
        "ipvs": {
            "ipvs": {"conf": {"services": services}, "next_nf": "router"},
            "router": {"conf": {"decrement_ttl": True}, "next_nf": None},
        },
    }


def lint_library(verbose: bool = False) -> Tuple[int, List[str]]:
    """Returns (programs checked, failure lines)."""
    checked = 0
    problems: List[str] = []

    def check(label: str, source: str, hook: str, maps=None) -> None:
        nonlocal checked
        checked += 1
        name = f"{label}@{hook}"
        try:
            program = compile_c(source, name=name, hook=hook, maps=maps)
            findings: List[LintFinding] = lint_program(program)
        except VerifierError as exc:
            problems.append(f"{name}: verifier rejection: {exc}")
            return
        for finding in findings:
            problems.append(str(finding))
        if verbose and not findings:
            print(f"  ok {name} ({len(program.insns)} insns)")

    for label, nodes in _configurations().items():
        for hook in HOOKS:
            check(label, render_fast_path("eth0", hook, nodes), hook)
    for hook in HOOKS:
        check(
            "dispatcher",
            render_dispatcher("eth0", hook),
            hook,
            maps={"jmp": ProgArray("jmp")},
        )
    return checked, problems


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    verbose = "-v" in argv or "--verbose" in argv
    checked, problems = lint_library(verbose=verbose)
    if problems:
        for line in problems:
            print(line)
        print(f"fpmlint: {len(problems)} finding(s) across {checked} program(s)")
        return 1
    print(f"fpmlint: {checked} program(s) verified, no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
