"""iproute2: the ``ip`` and ``bridge`` commands.

Supported subset (what the paper's experiments use):

- ``ip link add NAME type bridge|veth|vxlan [id VNI local IP dev UNDERLAY]``
- ``ip link del NAME``
- ``ip link set NAME up|down|master BRIDGE|nomaster|mtu N``
- ``ip link show [NAME]``
- ``ip addr add CIDR dev NAME`` / ``ip addr del CIDR dev NAME`` / ``ip addr show``
- ``ip route add PREFIX via GW [dev NAME] [metric N]`` / ``ip route del`` /
  ``ip route show``
- ``ip neigh add IP lladdr MAC dev NAME`` / ``ip neigh del`` / ``ip neigh show``
- ``bridge fdb add MAC dev NAME [dst IP] [vlan VID]`` / ``bridge fdb show``
- ``bridge link set dev NAME stp on|off / vlan_filtering on|off``
"""

from __future__ import annotations

from typing import List
from repro.netlink import messages as m
from repro.netsim.addresses import IfAddr, IPv4Addr, IPv4Prefix, MacAddr
from repro.tools.common import NetlinkTool, ToolError, split_args


class IpTool(NetlinkTool):
    """The ``ip`` command bound to one kernel."""

    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: ip OBJECT COMMAND")
        obj = args[0]
        handler = {
            "link": self._link,
            "addr": self._addr,
            "address": self._addr,
            "route": self._route,
            "neigh": self._neigh,
            "neighbor": self._neigh,
        }.get(obj)
        if handler is None:
            raise ToolError(f"unknown object {obj!r}")
        return handler(args[1:])

    # ------------------------------------------------------------------ link

    def _link(self, args: List[str]) -> List[str]:
        if not args or args[0] in ("show", "list"):
            name = args[1] if len(args) > 1 else None
            replies = self.request(m.RTM_GETLINK, {"ifname": name} if name else {}, dump=name is None)
            out = []
            for reply in replies:
                a = reply.attrs
                state = "UP" if a.get("operstate") else "DOWN"
                master = f" master {a['master']}" if "master" in a else ""
                out.append(f"{a['ifindex']}: {a['ifname']}: <{state}> mtu {a.get('mtu', 1500)}{master} kind {a.get('kind')}")
            return out
        action = args[0]
        if action == "add":
            return self._link_add(args[1:])
        if action == "del":
            if len(args) < 2:
                raise ToolError("ip link del NAME")
            self.request(m.RTM_DELLINK, {"ifname": args[1]})
            return []
        if action == "set":
            return self._link_set(args[1:])
        raise ToolError(f"unknown link action {action!r}")

    def _link_add(self, args: List[str]) -> List[str]:
        if len(args) < 3 or args[1] != "type":
            raise ToolError("ip link add NAME type TYPE [options]")
        name, kind = args[0], args[2]
        attrs = {"ifname": name, "kind": kind}
        rest = args[3:]
        if kind == "vxlan":
            info = {}
            i = 0
            while i < len(rest):
                if rest[i] == "id":
                    info["vni"] = int(rest[i + 1])
                elif rest[i] == "local":
                    info["local"] = IPv4Addr.parse(rest[i + 1])
                elif rest[i] == "dstport":
                    info["port"] = int(rest[i + 1])
                elif rest[i] == "dev":
                    info["underlay_ifindex"] = self.resolve_ifindex(rest[i + 1])
                else:
                    raise ToolError(f"unknown vxlan option {rest[i]!r}")
                i += 2
            attrs["vxlan"] = info
        elif kind == "veth":
            i = 0
            while i < len(rest):
                if rest[i : i + 3] == ["peer", "name", rest[i + 2] if i + 2 < len(rest) else ""]:
                    attrs["netns"] = rest[i + 2]  # peer name rides here
                    i += 3
                else:
                    raise ToolError(f"unknown veth option {rest[i]!r}")
        elif rest:
            raise ToolError(f"unexpected options for type {kind}: {rest}")
        self.request(m.RTM_NEWLINK, attrs)
        return []

    def _link_set(self, args: List[str]) -> List[str]:
        if not args:
            raise ToolError("ip link set NAME ...")
        offset = 1 if args[0] != "dev" else 2
        name = args[0] if args[0] != "dev" else args[1]
        attrs: dict = {"ifname": name}
        rest = args[offset:]
        i = 0
        while i < len(rest):
            word = rest[i]
            if word == "up":
                attrs["operstate"] = 1
                i += 1
            elif word == "down":
                attrs["operstate"] = 0
                i += 1
            elif word == "master":
                attrs["master"] = self.resolve_ifindex(rest[i + 1])
                i += 2
            elif word == "nomaster":
                attrs["master"] = 0
                i += 1
            elif word == "mtu":
                attrs["mtu"] = int(rest[i + 1])
                i += 2
            else:
                raise ToolError(f"unknown link set option {word!r}")
        self.request(m.RTM_SETLINK, attrs)
        return []

    # ------------------------------------------------------------------ addr

    def _addr(self, args: List[str]) -> List[str]:
        if not args or args[0] == "show":
            out = []
            for reply in self.request(m.RTM_GETADDR, dump=True):
                a = reply.attrs
                out.append(f"if{a['ifindex']}: {a['address']}/{a['prefixlen']}")
            return out
        action = args[0]
        if action in ("add", "del"):
            if len(args) != 4 or args[2] != "dev":
                raise ToolError(f"ip addr {action} CIDR dev NAME")
            addr = IfAddr.parse(args[1])
            ifindex = self.resolve_ifindex(args[3])
            msg_type = m.RTM_NEWADDR if action == "add" else m.RTM_DELADDR
            self.request(msg_type, {"ifindex": ifindex, "address": addr.address, "prefixlen": addr.length})
            return []
        raise ToolError(f"unknown addr action {action!r}")

    # ----------------------------------------------------------------- route

    def _route(self, args: List[str]) -> List[str]:
        if not args or args[0] == "show":
            out = []
            for reply in self.request(m.RTM_GETROUTE, dump=True):
                a = reply.attrs
                via = f" via {a['gateway']}" if "gateway" in a else ""
                out.append(f"{a['dst']}/{a['dst_len']}{via} dev if{a['oif']} metric {a.get('metric', 0)}")
            return out
        action = args[0]
        if action not in ("add", "del", "replace"):
            raise ToolError(f"unknown route action {action!r}")
        if len(args) < 2:
            raise ToolError("ip route add PREFIX [via GW] [dev NAME]")
        prefix_text = args[1]
        if prefix_text == "default":
            prefix = IPv4Prefix.parse("0.0.0.0/0")
        else:
            prefix = IPv4Prefix.parse(prefix_text)
        attrs: dict = {"dst": prefix.address, "dst_len": prefix.length}
        rest = args[2:]
        i = 0
        while i < len(rest):
            word = rest[i]
            if word == "via":
                attrs["gateway"] = IPv4Addr.parse(rest[i + 1])
                i += 2
            elif word == "dev":
                attrs["oif"] = self.resolve_ifindex(rest[i + 1])
                i += 2
            elif word == "metric":
                attrs["metric"] = int(rest[i + 1])
                i += 2
            elif word == "nhid":
                attrs["nhg"] = int(rest[i + 1])
                i += 2
            elif word == "onlink":
                i += 1
            else:
                raise ToolError(f"unknown route option {word!r}")
        if action == "replace":
            attrs["replace"] = True
        self.request(m.RTM_DELROUTE if action == "del" else m.RTM_NEWROUTE, attrs)
        return []

    # ----------------------------------------------------------------- neigh

    def _neigh(self, args: List[str]) -> List[str]:
        if not args or args[0] == "show":
            out = []
            for reply in self.request(m.RTM_GETNEIGH, dump=True):
                a = reply.attrs
                mac = a.get("lladdr", "(incomplete)")
                out.append(f"{a['dst']} dev if{a['ifindex']} lladdr {mac} state {a.get('state', 0):#x}")
            return out
        action = args[0]
        if action == "add":
            if len(args) != 6 or args[2] != "lladdr" or args[4] != "dev":
                raise ToolError("ip neigh add IP lladdr MAC dev NAME")
            self.request(
                m.RTM_NEWNEIGH,
                {
                    "ifindex": self.resolve_ifindex(args[5]),
                    "dst": IPv4Addr.parse(args[1]),
                    "lladdr": MacAddr.parse(args[3]),
                    "state": 0x80,
                },
            )
            return []
        if action == "del":
            if len(args) != 4 or args[2] != "dev":
                raise ToolError("ip neigh del IP dev NAME")
            self.request(
                m.RTM_DELNEIGH,
                {"ifindex": self.resolve_ifindex(args[3]), "dst": IPv4Addr.parse(args[1])},
            )
            return []
        raise ToolError(f"unknown neigh action {action!r}")


class BridgeTool(NetlinkTool):
    """The iproute2 ``bridge`` command (fdb + link subcommands)."""

    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: bridge OBJECT COMMAND")
        if args[0] == "fdb":
            return self._fdb(args[1:])
        if args[0] == "link":
            return self._bridge_link(args[1:])
        raise ToolError(f"unknown bridge object {args[0]!r}")

    def _fdb(self, args: List[str]) -> List[str]:
        if not args or args[0] == "show":
            out = []
            for reply in self.request(m.RTM_GETFDB, dump=True):
                a = reply.attrs
                out.append(f"{a['lladdr']} dev if{a['ifindex']} vlan {a.get('vlan', 0)} state {a.get('state', 0)}")
            return out
        if args[0] in ("add", "append"):
            mac = MacAddr.parse(args[1])
            attrs: dict = {"lladdr": mac}
            rest = args[2:]
            i = 0
            while i < len(rest):
                if rest[i] == "dev":
                    attrs["ifindex"] = self.resolve_ifindex(rest[i + 1])
                elif rest[i] == "dst":
                    attrs["dst"] = IPv4Addr.parse(rest[i + 1])
                elif rest[i] == "vlan":
                    attrs["vlan"] = int(rest[i + 1])
                elif rest[i] in ("permanent", "static"):
                    i -= 1  # flag
                else:
                    raise ToolError(f"unknown fdb option {rest[i]!r}")
                i += 2
            if "ifindex" not in attrs:
                raise ToolError("bridge fdb add MAC dev NAME [dst IP]")
            self.request(m.RTM_NEWFDB, attrs)
            return []
        raise ToolError(f"unknown fdb action {args[0]!r}")

    def _bridge_link(self, args: List[str]) -> List[str]:
        # bridge link set dev BRNAME stp on|off vlan_filtering on|off
        if len(args) < 3 or args[0] != "set" or args[1] != "dev":
            raise ToolError("bridge link set dev NAME [stp on|off] [vlan_filtering on|off]")
        name = args[2]
        info: dict = {}
        rest = args[3:]
        i = 0
        while i < len(rest):
            if rest[i] == "stp":
                info["stp_state"] = 1 if rest[i + 1] == "on" else 0
            elif rest[i] == "vlan_filtering":
                info["vlan_filtering"] = 1 if rest[i + 1] == "on" else 0
            elif rest[i] == "ageing_time":
                info["ageing_time"] = int(rest[i + 1])
            else:
                raise ToolError(f"unknown bridge option {rest[i]!r}")
            i += 2
        self.request(m.RTM_SETLINK, {"ifname": name, "bridge": info})
        return []


def ip(kernel, command: str) -> List[str]:
    """One-shot ``ip`` invocation."""
    tool = IpTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()


def bridge_tool(kernel, command: str) -> List[str]:
    """One-shot ``bridge`` invocation."""
    tool = BridgeTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
