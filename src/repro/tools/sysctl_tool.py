"""sysctl: kernel tunables (``sysctl -w key=value``, ``sysctl key``)."""

from __future__ import annotations

from typing import List

from repro.netlink import messages as m
from repro.tools.common import NetlinkTool, ToolError, split_args


class SysctlTool(NetlinkTool):
    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: sysctl [-w] KEY[=VALUE]")
        if args[0] == "-w":
            if len(args) != 2 or "=" not in args[1]:
                raise ToolError("sysctl -w KEY=VALUE")
            key, __, value = args[1].partition("=")
            self.request(m.SYSCTL_SET, {"name": key.strip(), "value": value.strip()})
            return []
        key = args[0]
        replies = self.request(m.SYSCTL_GET, {"name": key})
        return [f"{r.attrs['name']} = {r.attrs['value']}" for r in replies]


def sysctl(kernel, command: str) -> List[str]:
    """One-shot ``sysctl`` invocation."""
    tool = SysctlTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
