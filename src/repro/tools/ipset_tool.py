"""ipset: set administration (``create``, ``destroy``, ``add``, ``del``,
``list``)."""

from __future__ import annotations

from typing import List

from repro.netlink import messages as m
from repro.netsim.addresses import IPv4Prefix
from repro.tools.common import NetlinkTool, ToolError, split_args


class IpsetTool(NetlinkTool):
    def run(self, command: str) -> List[str]:
        args = split_args(command)
        if not args:
            raise ToolError("usage: ipset COMMAND ...")
        action = args[0]
        if action == "create":
            if len(args) != 3:
                raise ToolError("ipset create NAME TYPE")
            self.request(m.IPSET_NEWSET, {"name": args[1], "set_type": args[2]})
            return []
        if action == "destroy":
            self.request(m.IPSET_DELSET, {"name": args[1]})
            return []
        if action in ("add", "del"):
            if len(args) != 3:
                raise ToolError(f"ipset {action} NAME ENTRY")
            prefix = IPv4Prefix.parse(args[2])
            msg_type = m.IPSET_ADDENTRY if action == "add" else m.IPSET_DELENTRY
            self.request(
                msg_type,
                {"name": args[1], "entries": [{"ip": prefix.address, "prefixlen": prefix.length}]},
            )
            return []
        if action == "list":
            out = []
            for reply in self.request(m.IPSET_GETSET, dump=True):
                a = reply.attrs
                out.append(f"Name: {a['name']}  Type: {a['set_type']}  Entries: {len(a.get('entries', []))}")
            return out
        raise ToolError(f"unknown ipset command {action!r}")


def ipset(kernel, command: str) -> List[str]:
    """One-shot ``ipset`` invocation."""
    tool = IpsetTool(kernel)
    try:
        return tool.run(command)
    finally:
        tool.socket.close()
