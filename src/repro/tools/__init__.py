"""Standard Linux management tools, implemented over netlink only.

These are the unmodified interfaces the paper's transparency claim is
about: iproute2 (``ip``/``bridge``), ``brctl``, ``iptables``, ``ipset``,
``sysctl``, ``ipvsadm``, plus an FRR-like routing daemon. None of them know
LinuxFP exists — they configure the kernel through the same netlink
messages real tools emit, and the LinuxFP controller reacts to the
resulting kernel state changes.

Usage::

    from repro.tools import ip, brctl, iptables
    ip(kernel, "link add br0 type bridge")
    ip(kernel, "addr add 10.0.0.1/24 dev br0")
    brctl(kernel, "addif br0 veth0")
    iptables(kernel, "-A FORWARD -s 172.16.0.0/24 -j DROP")
"""

from repro.tools.iproute2 import IpTool, ip, bridge_tool
from repro.tools.brctl import brctl
from repro.tools.iptables import iptables
from repro.tools.ipset_tool import ipset
from repro.tools.sysctl_tool import sysctl
from repro.tools.ipvsadm import ipvsadm
from repro.tools.frr import FrrDaemon

__all__ = ["IpTool", "ip", "bridge_tool", "brctl", "iptables", "ipset", "sysctl", "ipvsadm", "FrrDaemon"]
