"""fpmopt: CI driver for the equivalence-checked bytecode superoptimizer.

Runs :func:`repro.ebpf.analysis.opt.optimize_program` over every FPM
template configuration (the same matrix :mod:`repro.tools.fpmlint` gates)
and audits the wins three ways:

1. **Static**: per-config instruction-count delta plus the optimizer's own
   accounting (rules applied, branches folded, dead writes/stores removed).
2. **Differential**: the optimized and unoptimized programs run over a
   seeded packet corpus — structured UDP/TCP frames, truncated headers,
   random bytes — on twin pristine kernels. Any divergence in verdict,
   output frame, or abort behaviour fails the run: the equivalence checker
   proved each window, this re-proves the composition end to end.
3. **Dynamic cost**: mean executed instructions per packet before/after,
   converted to simulated nanoseconds with :class:`repro.netsim.cost.
   CostModel` (``ebpf_insn`` per executed instruction).

Exit status is non-zero when any candidate was *refuted* (a counterexample
means a catalog rule matched unsoundly — never acceptable on the clean
template library), when any config fell back, when the differential suite
diverged, or when fewer than ``--min-reduced`` configs shrank.

Usage::

    PYTHONPATH=src python -m repro.tools.fpmopt [-v] [--json] \\
        [--packets N] [--seed N] [--min-reduced N] [--bench PATH]

The report is also written to ``benchmarks/results/BENCH_optimizer.json``
(override with ``--bench``) for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.fpm.library import render_dispatcher, render_fast_path
from repro.ebpf.analysis.opt import optimize_program
from repro.ebpf.maps import ProgArray
from repro.ebpf.memory import Pointer, Region
from repro.ebpf.minic import compile_c
from repro.ebpf.program import Program
from repro.ebpf.vm import VM, Env, VMError
from repro.kernel import Kernel
from repro.kernel.hooks_api import TC_ACT_REDIRECT, XDP_REDIRECT
from repro.netsim.addresses import IPv4Addr, MacAddr
from repro.netsim.cost import CostModel
from repro.netsim.packet import Ethernet, IPv4, TCP, UDP
from repro.tools.fpmlint import HOOKS, _configurations

DEFAULT_BENCH = os.path.join("benchmarks", "results", "BENCH_optimizer.json")


# ------------------------------------------------------------------ corpus

def _udp_frame(rng: random.Random, ttl: int) -> bytes:
    src = IPv4Addr((10 << 24) | (0 << 16) | (1 << 8) | rng.randrange(2, 250))
    dst = IPv4Addr(((10 << 24) | ((100 + rng.randrange(8)) << 16)) | rng.randrange(1, 1 << 16))
    payload = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 40)))
    udp = UDP(sport=rng.randrange(1024, 65536), dport=rng.choice((53, 80, 443, 8080)))
    ip = IPv4(src=src, dst=dst, proto=17, ttl=ttl)
    eth = Ethernet(dst=MacAddr(rng.getrandbits(48)), src=MacAddr(rng.getrandbits(48)))
    return eth.pack() + ip.pack(UDP.HDR_LEN + len(payload)) + udp.pack(payload, src, dst) + payload


def _tcp_frame(rng: random.Random) -> bytes:
    src = IPv4Addr(rng.getrandbits(32))
    dst = IPv4Addr((10 << 24) | (96 << 16) | rng.randrange(1, 3))  # hits the ipvs VIPs
    tcp = TCP(sport=rng.randrange(1024, 65536), dport=rng.choice((80, 53, 22)), flags=TCP.SYN)
    ip = IPv4(src=src, dst=dst, proto=6, ttl=rng.choice((1, 2, 64)))
    eth = Ethernet(dst=MacAddr(rng.getrandbits(48)), src=MacAddr(rng.getrandbits(48)))
    body = tcp.pack(b"", src, dst)
    return eth.pack() + ip.pack(len(body)) + body


def frame_corpus(packets: int, seed: int) -> List[bytes]:
    """A deterministic mixed corpus: well-formed, hostile, and garbage."""
    rng = random.Random(seed)
    corpus: List[bytes] = []
    for i in range(packets):
        kind = i % 4
        if kind == 0:
            corpus.append(_udp_frame(rng, ttl=rng.choice((1, 2, 64, 255))))
        elif kind == 1:
            corpus.append(_tcp_frame(rng))
        elif kind == 2:
            # Truncation attack: a valid frame cut mid-header.
            frame = _udp_frame(rng, ttl=64)
            corpus.append(frame[: rng.randrange(0, len(frame))])
        else:
            corpus.append(bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 128))))
    return corpus


# -------------------------------------------------------------- execution

def _run_once(kernel: Kernel, program: Program, frame: bytes) -> Tuple[object, ...]:
    """One differential sample: (verdict, out_bytes, redirect) or abort."""
    region = Region("pkt", bytearray(frame))
    verdict_base = XDP_REDIRECT if program.hook == "xdp" else TC_ACT_REDIRECT
    env = Env(kernel, redirect_verdict=verdict_base)
    vm = VM(kernel, charge_costs=False)
    try:
        verdict = vm.run(program, [Pointer(region, 0), len(frame), 1], env)
    except VMError as exc:
        return ("abort", type(exc).__name__), 0
    return ("ok", int(verdict), bytes(region.data), env.redirect_ifindex), vm.insns_executed


def differential(
    baseline: Program, optimized: Program, corpus: List[bytes]
) -> Tuple[List[str], float, float]:
    """Run both programs over the corpus on twin kernels.

    Returns (mismatch descriptions, mean executed insns baseline, mean
    executed insns optimized). Both sides see identical pristine state:
    separately-compiled programs own separate map objects, so mutations
    stay on their own side.
    """
    k_base, k_opt = Kernel("fpmopt-base"), Kernel("fpmopt-opt")
    mismatches: List[str] = []
    executed_base = executed_opt = 0
    for i, frame in enumerate(corpus):
        out_base, n_base = _run_once(k_base, baseline, frame)
        out_opt, n_opt = _run_once(k_opt, optimized, frame)
        executed_base += n_base
        executed_opt += n_opt
        if out_base != out_opt:
            mismatches.append(
                f"packet {i} ({len(frame)}B, {frame[:18].hex()}...): "
                f"baseline {out_base!r} != optimized {out_opt!r}"
            )
    count = max(1, len(corpus))
    return mismatches, executed_base / count, executed_opt / count


# ----------------------------------------------------------------- driver

def _programs() -> List[Tuple[str, str, Optional[str], Dict]]:
    """(label, hook, source, compile maps factory marker) per config."""
    out = []
    for label, nodes in _configurations().items():
        for hook in HOOKS:
            out.append((label, hook, render_fast_path("eth0", hook, nodes), None))
    for hook in HOOKS:
        out.append(("dispatcher", hook, render_dispatcher("eth0", hook), "jmp"))
    return out


def _compile(label: str, hook: str, source: str, maps_kind: Optional[str]) -> Program:
    maps = {"jmp": ProgArray("jmp")} if maps_kind else None
    return compile_c(source, name=f"{label}@{hook}", hook=hook, maps=maps)


def run_audit(packets: int = 64, seed: int = 0, verbose: bool = False) -> Dict[str, object]:
    """Optimize every template config and audit the result. Pure: no exit."""
    cost = CostModel()
    corpus = frame_corpus(packets, seed)
    configs: List[Dict[str, object]] = []
    failures: List[str] = []
    total_before = total_after = 0
    reduced = 0
    for label, hook, source, maps_kind in _programs():
        name = f"{label}@{hook}"
        baseline = _compile(label, hook, source, maps_kind)
        candidate = _compile(label, hook, source, maps_kind)
        optimized, report = optimize_program(candidate, seed=seed)
        if report.status == "fallback":
            failures.append(f"{name}: optimizer fallback: {report.error}")
        for cex in report.rejected:
            failures.append(f"{name}: refuted candidate: {cex}")
        mismatches, exec_base, exec_opt = differential(baseline, optimized, corpus)
        for line in mismatches[:5]:
            failures.append(f"{name}: differential mismatch: {line}")
        total_before += len(baseline)
        total_after += len(optimized)
        if len(optimized) < len(baseline):
            reduced += 1
        entry = {
            "config": label,
            "hook": hook,
            "status": report.status,
            "insns_before": len(baseline),
            "insns_after": len(optimized),
            "insns_removed": len(baseline) - len(optimized),
            "folded_branches": report.folded_branches,
            "dead_writes": report.dead_writes,
            "dead_stores": report.dead_stores,
            "applied": dict(report.applied),
            "rejected": len(report.rejected),
            "unproven": report.unproven,
            "executed_per_packet_before": round(exec_base, 2),
            "executed_per_packet_after": round(exec_opt, 2),
            "latency_ns_before": round(exec_base * cost.ebpf_insn, 3),
            "latency_ns_after": round(exec_opt * cost.ebpf_insn, 3),
            "latency_ns_saved": round((exec_base - exec_opt) * cost.ebpf_insn, 3),
            "differential_packets": len(corpus),
            "differential_mismatches": len(mismatches),
        }
        configs.append(entry)
        if verbose:
            print(
                f"  {name}: {entry['insns_before']} -> {entry['insns_after']} insns "
                f"(-{entry['insns_removed']}), exec/pkt "
                f"{entry['executed_per_packet_before']} -> {entry['executed_per_packet_after']}, "
                f"~{entry['latency_ns_saved']}ns/pkt saved, "
                f"{entry['rejected']} rejected, diff {'OK' if not mismatches else 'FAIL'}"
            )
    return {
        "tool": "fpmopt",
        "seed": seed,
        "packets": packets,
        "cost_ns_per_insn": cost.ebpf_insn,
        "configs": configs,
        "totals": {
            "configs": len(configs),
            "reduced": reduced,
            "insns_before": total_before,
            "insns_after": total_after,
            "insns_removed": total_before - total_after,
        },
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fpmopt", description="superoptimize every FPM template config and audit the wins"
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="per-config progress lines")
    parser.add_argument("--json", action="store_true", help="print the full report as JSON")
    parser.add_argument("--packets", type=int, default=64, help="differential corpus size")
    parser.add_argument("--seed", type=int, default=0, help="corpus / checker seed")
    parser.add_argument(
        "--min-reduced", type=int, default=0, metavar="N",
        help="fail unless at least N configs shrank (CI gate)",
    )
    parser.add_argument(
        "--bench", default=DEFAULT_BENCH, metavar="PATH",
        help=f"report output path (default {DEFAULT_BENCH})",
    )
    args = parser.parse_args(argv)

    report = run_audit(packets=args.packets, seed=args.seed, verbose=args.verbose and not args.json)
    totals = report["totals"]
    failures: List[str] = list(report["failures"])
    if totals["reduced"] < args.min_reduced:
        failures.append(
            f"only {totals['reduced']}/{totals['configs']} configs reduced "
            f"(--min-reduced {args.min_reduced})"
        )
    report["min_reduced"] = args.min_reduced
    report["ok"] = not failures
    report["failures"] = failures

    if args.bench:
        os.makedirs(os.path.dirname(args.bench) or ".", exist_ok=True)
        with open(args.bench, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for line in failures:
            print(f"FAIL {line}")
        print(
            f"fpmopt: {totals['configs']} configs, {totals['reduced']} reduced, "
            f"{totals['insns_before']} -> {totals['insns_after']} insns "
            f"(-{totals['insns_removed']}), differential over {report['packets']} packets/config"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
