"""fpmtool: a bpftool-style inspection CLI for the LinuxFP simulation.

Drives a canonical router/gateway scenario (LinuxFP controller attached),
injects a small traffic mix — normal forwarded flows plus a handful of
crafted oddballs that exercise known drop paths — and then inspects the
resulting kernel state, the same way ``bpftool`` / ``pwru`` / ``kfree_skb``
tracing would on a real host:

- ``drops``        per-reason drop table (and the conservation ledger);
                   ``--self-check`` runs the static drop-site audit only
- ``trace``        pwru-style per-packet journeys through the pipeline
- ``metrics``      the unified registry (Prometheus text or JSON)
- ``prog list``    deployed dispatchers and serving fast-path programs
- ``map dump``     prog-array slots and each program's referenced maps
- ``reliability``  storm-scale scorecard: drive a fault-armed traffic storm
                   (with mid-storm CPU hotplug) and print drops by reason,
                   incidents by kind, and per-CPU backlog high-water marks

Usage::

    PYTHONPATH=src python -m repro.tools.fpmtool drops --self-check
    PYTHONPATH=src python -m repro.tools.fpmtool --scenario gateway drops
    PYTHONPATH=src python -m repro.tools.fpmtool trace --filter proto=udp,dport=9 --limit 3
    PYTHONPATH=src python -m repro.tools.fpmtool metrics --format prom
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.netsim.packet import make_udp
from repro.observability.drop_reasons import all_reasons, scan_drop_sites, self_check
from repro.observability.tracer import TraceFilter, TraceFilterError

NUM_FLOWS = 64


# ------------------------------------------------------------------ traffic

def _build_topology(scenario: str, hook: str, optimize: bool = False, jit: bool = None):
    from repro.measure.scenarios import setup_gateway, setup_router

    if scenario == "router":
        return setup_router("linuxfp", hook=hook, optimize=optimize, jit=jit)
    return setup_gateway("linuxfp", hook=hook, optimize=optimize, jit=jit)


def _drive_traffic(topo, packets: int) -> None:
    """Normal forwarded flows plus crafted packets for known drop paths."""
    nic = topo.dut_in.nic
    src_mac = topo.src_eth.mac
    dst_mac = topo.dut_in.mac
    for i in range(packets):
        pkt = make_udp(
            src_mac,
            dst_mac,
            "10.0.1.2",
            topo.flow_destination(i % NUM_FLOWS),
            sport=1024 + (i % NUM_FLOWS),
            dport=9,
        )
        nic.receive_from_wire(pkt.to_bytes())
    oddballs = [
        # TTL expires in the forward path -> ttl_exceeded
        make_udp(src_mac, dst_mac, "10.0.1.2", "10.100.0.1", dport=9, ttl=1),
        # no route installed for TEST-NET-1 -> no_route
        make_udp(src_mac, dst_mac, "10.0.1.2", "192.0.2.1", dport=9),
        # loopback source on the wire -> martian_source (rp_filter)
        make_udp(src_mac, dst_mac, "127.0.0.1", "10.100.0.1", dport=9),
        # first blacklist address -> nf_forward (gateway scenario only)
        make_udp(src_mac, dst_mac, "172.16.0.1", "10.100.0.1", dport=9),
        # truncated runt frame -> malformed
    ]
    for pkt in oddballs:
        nic.receive_from_wire(pkt.to_bytes())
    nic.receive_from_wire(b"\x00" * 10)


# ----------------------------------------------------------------- commands

def cmd_drops(args) -> int:
    if args.self_check:
        problems = self_check()
        sites = scan_drop_sites()
        if problems:
            for line in problems:
                print(line)
            print(f"fpmtool: drop-reason audit FAILED ({len(problems)} problem(s))")
            return 1
        print(
            f"fpmtool: drop-reason audit clean: {len(all_reasons())} registered "
            f"reason(s), {len(sites)} drop site(s)"
        )
        return 0

    topo = _build_topology(args.scenario, args.hook, args.optimize, args.jit)
    _drive_traffic(topo, args.packets)
    stack = topo.dut.stack
    obs = topo.dut.observability
    print(f"== drop reasons ({args.scenario}/{args.hook}, {args.packets} flow packets) ==")
    table = obs.drops.table()
    if not table:
        print("  (no drops)")
    for subsys, reason, count in table:
        print(f"  {count:8d}  {subsys:10s} {reason}")
    print("== per-device ==")
    for (device, reason), count in sorted(obs.drops.by_device.items()):
        print(f"  {count:8d}  {device or '-':8s} {reason}")
    pending = stack.pending_packets()
    rx = stack.rx_packets + stack.tx_local_packets
    balanced = rx == stack.settled + pending
    print(
        f"ledger: rx+tx_local={rx} settled={stack.settled} pending={pending} "
        f"dropped={stack.dropped} -> {'balanced' if balanced else 'IMBALANCED'}"
    )
    return 0 if balanced else 1


def cmd_trace(args) -> int:
    try:
        flt = TraceFilter.parse(args.filter) if args.filter else TraceFilter()
    except TraceFilterError as exc:
        print(f"fpmtool: bad --filter: {exc}", file=sys.stderr)
        return 2
    topo = _build_topology(args.scenario, args.hook, args.optimize, args.jit)
    tracer = topo.dut.observability.tracer
    tracer.arm(flt, capacity=max(args.limit, 16))
    _drive_traffic(topo, args.packets)
    tracer.disarm()
    traces = tracer.traces()[-args.limit:]
    for trace in traces:
        print("\n".join(trace.render()))
        print()
    summary = tracer.summary()
    print(
        f"fpmtool: {summary['matched']} matched, {summary['captured']} held, "
        f"{summary['overflowed']} overflowed (ring {summary['capacity']})"
    )
    return 0


def cmd_metrics(args) -> int:
    topo = _build_topology(args.scenario, args.hook, args.optimize, args.jit)
    _drive_traffic(topo, args.packets)
    registry = topo.controller.metrics()
    if args.format == "json":
        print(registry.to_json())
    else:
        print(registry.to_prometheus(), end="")
    return 0


def cmd_prog(args) -> int:
    if args.prog_cmd != "list":
        print(f"fpmtool: unknown prog subcommand {args.prog_cmd!r}", file=sys.stderr)
        return 2
    topo = _build_topology(args.scenario, args.hook, args.optimize, args.jit)
    _drive_traffic(topo, args.packets)
    deployed = topo.controller.deployer.deployed
    if not deployed:
        print("(no interfaces deployed)")
        return 0
    print(f"{'iface':8s} {'hook':4s} {'program':28s} {'insns':>6s} {'swaps':>6s} {'optimizer':16s} jit")
    for ifname in sorted(deployed):
        entry = deployed[ifname]
        current = entry.current
        if current is not None:
            name = current.program.name
            insns = str(len(current.program))
            report = current.opt_report
            if report is None:
                optimizer = "-"
            elif report.status == "optimized":
                optimizer = f"optimized(-{report.insns_removed})"
            else:
                optimizer = report.status  # unchanged | fallback
            jit_report = current.jit_report
            if jit_report is None:
                jit = "-"
            elif jit_report.status == "compiled":
                jit = f"compiled({jit_report.inline_mem_ops} inline)"
            else:
                jit = jit_report.status  # fallback
        else:
            name, insns, optimizer, jit = "(slow path)", "-", "-", "-"
        print(
            f"{ifname:8s} {entry.hook:4s} {name:28s} {insns:>6s} {entry.swaps:>6d} {optimizer:16s} {jit}"
        )
    return 0


def _dump_map(m, indent: str = "  ") -> None:
    size = ""
    if getattr(m, "byte_addressable", True):
        size = f" key={m.key_size}B value={m.value_size}B"
    entries = ""
    data = getattr(m, "_data", None)
    if data is not None:
        entries = f" entries={len(data)}/{m.max_entries}"
    count = getattr(m, "_count", None)
    if count is not None:
        entries = f" entries={count}/{m.max_entries}"
    pressure = ""
    if getattr(m, "update_errors", 0) or getattr(m, "evictions", 0):
        pressure = f" update_errors={m.update_errors} evictions={m.evictions}"
    print(f"{indent}{m.name}: {m.map_type}{size}{entries}{pressure}")


def cmd_map(args) -> int:
    if args.map_cmd != "dump":
        print(f"fpmtool: unknown map subcommand {args.map_cmd!r}", file=sys.stderr)
        return 2
    topo = _build_topology(args.scenario, args.hook, args.optimize, args.jit)
    _drive_traffic(topo, args.packets)
    deployed = topo.controller.deployer.deployed
    if not deployed:
        print("(no interfaces deployed)")
        return 0
    for ifname in sorted(deployed):
        entry = deployed[ifname]
        array = entry.prog_array
        slots = {i: array.get_prog(i) for i in range(array.max_entries)}
        live = {i: p for i, p in slots.items() if p is not None}
        print(f"{ifname} ({entry.hook}) prog_array {array.name}:")
        if not live:
            print("  (all slots empty: slow path)")
        for i, prog in sorted(live.items()):
            target = getattr(prog, "program", prog)
            name = getattr(target, "name", "?")
            print(f"  slot {i}: {name}")
            for m in getattr(target, "maps", []) or []:
                _dump_map(m, indent="    ")
    return 0


def _parse_seeds(spec: Optional[str], default: List[int]) -> List[int]:
    if not spec:
        return default
    try:
        return [int(s) for s in spec.split(",") if s.strip() != ""]
    except ValueError:
        raise SystemExit(f"fpmtool: bad --seeds {spec!r} (want e.g. 7,19,42)")


def cmd_reliability(args) -> int:
    from repro.measure.storm import StormConfig, run_storm, write_report

    seeds = _parse_seeds(args.seeds, [args.seed])
    reports = []
    for seed in seeds:
        config = StormConfig(
            seed=seed,
            num_cpus=args.cpus,
            hook=args.hook,
            packets=args.packets,
            arm_faults=not args.no_faults,
        )
        reports.append(run_storm(config))
    if args.out:
        write_report(reports, args.out)
        print(f"fpmtool: wrote {args.out} ({len(reports)} run(s))")
    exit_code = 0
    for report in reports:
        if _print_storm_report(report):
            exit_code = 1
    return exit_code


def _print_storm_report(report) -> bool:
    """Print one storm scorecard; returns True when the run failed."""
    config = report.config
    print(
        f"== reliability scorecard (seed={config.seed}, {config.num_cpus} CPUs, "
        f"{report.injected} packets in {report.bursts} bursts) =="
    )
    print("-- drops by reason --")
    if not report.drops_by_reason:
        print("  (no drops)")
    for reason, count in sorted(report.drops_by_reason.items(), key=lambda kv: -kv[1]):
        print(f"  {count:8d}  {reason}")
    print("-- incidents by kind --")
    if not report.incidents_by_kind:
        print("  (no incidents)")
    for kind, count in sorted(report.incidents_by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {count:8d}  {kind}")
    print("-- faults fired --")
    if not report.faults_fired:
        print("  (none)")
    for site, count in sorted(report.faults_fired.items(), key=lambda kv: -kv[1]):
        print(f"  {count:8d}  {site}")
    print("-- per-CPU backlog --")
    for cpu, (high, drops) in enumerate(zip(report.backlog_high_water, report.backlog_drops)):
        state = "offline" if cpu in report.offline_cpus else "online"
        print(f"  cpu{cpu}: high_water={high:5d} overflow_drops={drops:5d} ({state})")
    print("-- hotplug --")
    if not report.hotplug_events:
        print("  (none)")
    for event in report.hotplug_events:
        print(f"  {event}")
    if report.recovery_ns:
        worst = max(report.recovery_ns) / 1e6
        print(f"recovery: {len(report.recovery_ns)} episode(s), worst {worst:.1f} ms (simulated)")
    print(
        f"ledger: rx+tx_local={report.rx_packets + report.tx_local_packets} "
        f"settled={report.settled} pending={report.pending} "
        f"-> {'balanced' if report.conserved else 'IMBALANCED'}"
    )
    verdict = "PASS" if report.ok else "FAIL"
    print(
        f"verdict: {verdict} (conserved={report.conserved} "
        f"healthy={report.final_health_ok} quarantined={report.quarantined} "
        f"unhandled={len(report.unhandled_exceptions)})"
    )
    for exc in report.unhandled_exceptions:
        print(f"  unhandled: {exc}")
    return not report.ok


def cmd_failover(args) -> int:
    from repro.measure.failover import run_scorecard, write_report

    seeds = _parse_seeds(args.seeds, [7, 19, 42])
    payload = run_scorecard(
        seeds,
        num_routers=args.routers,
        num_flows=args.flows,
        chaos=not args.no_chaos,
    )
    print(
        f"== failover scorecard ({args.routers} routers, {args.flows} flows, "
        f"seeds {','.join(str(s) for s in seeds)}) =="
    )
    print(f"{'seed':>6s} {'event':10s} {'policy':10s} {'disrupted':>10s} {'threshold':>10s} {'detect_ms':>10s} verdict")
    for run in payload["runs"]:
        config = run["config"]
        detect = "-" if run["detection_ns"] is None else f"{run['detection_ns'] / 1e6:.1f}"
        relation = ">=" if config["policy"] == "modn" else "<="
        print(
            f"{config['seed']:>6d} {config['event']:10s} {config['policy']:10s} "
            f"{run['disrupted_fraction']:>10.3f} {relation}{run['threshold']:>8.3f} "
            f"{detect:>10s} {'PASS' if run['ok'] else 'FAIL'}"
        )
    summary = payload["summary"]
    print(
        f"summary: resilient worst {summary['resilient_kill_max_fraction']:.3f} "
        f"(<= {summary['resilient_threshold']:.3f}), "
        f"mod-N best {summary['modn_kill_min_fraction']:.3f} (>= {summary['modn_threshold']:.2f}), "
        f"drain worst {summary['drain_max_fraction']:.3f} (== 0), "
        f"conserved={summary['all_conserved']}"
    )
    if args.out:
        write_report(payload, args.out)
        print(f"fpmtool: wrote {args.out} ({len(payload['runs'])} run(s))")
    print(f"verdict: {'PASS' if payload['all_ok'] else 'FAIL'}")
    return 0 if payload["all_ok"] else 1


# --------------------------------------------------------------------- main

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fpmtool", description="bpftool-style inspection for the LinuxFP simulation"
    )
    parser.add_argument("--scenario", choices=("router", "gateway"), default="gateway")
    parser.add_argument("--hook", choices=("xdp", "tc"), default="xdp")
    parser.add_argument("--packets", type=int, default=256, help="normal flow packets to inject")
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="enable the equivalence-checked superoptimizer on the controller",
    )
    parser.add_argument(
        "--jit",
        action="store_true",
        default=None,
        help="compile deployed FPM bytecode to Python closures (LINUXFP_JIT)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_drops = sub.add_parser("drops", help="per-reason drop table / static audit")
    p_drops.add_argument(
        "--self-check",
        action="store_true",
        help="audit drop call sites against the registry (no traffic run)",
    )
    p_drops.set_defaults(func=cmd_drops)

    p_trace = sub.add_parser("trace", help="pwru-style packet journeys")
    p_trace.add_argument("--filter", default="", help="e.g. src=10.0.0.0/8,proto=udp,dport=9")
    p_trace.add_argument("--limit", type=int, default=4, help="traces to print")
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser("metrics", help="unified metrics registry")
    p_metrics.add_argument("--format", choices=("prom", "json"), default="prom")
    p_metrics.set_defaults(func=cmd_metrics)

    p_prog = sub.add_parser("prog", help="deployed fast-path programs")
    p_prog.add_argument("prog_cmd", choices=("list",))
    p_prog.set_defaults(func=cmd_prog)

    p_map = sub.add_parser("map", help="prog-array slots and referenced maps")
    p_map.add_argument("map_cmd", choices=("dump",))
    p_map.set_defaults(func=cmd_map)

    p_rel = sub.add_parser("reliability", help="storm-scale reliability scorecard")
    p_rel.add_argument("--seed", type=int, default=0, help="storm RNG seed")
    p_rel.add_argument("--seeds", default="", help="comma-separated seeds (overrides --seed)")
    p_rel.add_argument("--cpus", type=int, default=8, help="DUT CPU count")
    p_rel.add_argument("--no-faults", action="store_true", help="run the storm with fault injection disarmed")
    p_rel.add_argument("--out", default="", help="write BENCH_reliability.json here")
    p_rel.set_defaults(func=cmd_reliability)

    p_fail = sub.add_parser("failover", help="multi-router ECMP/anycast failover scorecard")
    p_fail.add_argument("--seeds", default="", help="comma-separated seeds (default 7,19,42)")
    p_fail.add_argument("--routers", type=int, default=4, help="fleet size")
    p_fail.add_argument("--flows", type=int, default=128, help="established flows per run")
    p_fail.add_argument("--no-chaos", action="store_true", help="disarm probe_flap noise")
    p_fail.add_argument("--out", default="", help="write BENCH_failover.json here")
    p_fail.set_defaults(func=cmd_failover)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
